// Quickstart: the market-basket flock of Fig. 2 end to end — build a
// small basket database, state the flock in the paper's notation, evaluate
// it three ways (direct, level-wise a-priori plan, dynamic), and show they
// agree with the classic a-priori algorithm.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"queryflocks/internal/apriori"
	"queryflocks/internal/core"
	"queryflocks/internal/planner"
	"queryflocks/internal/workload"
)

func main() {
	const support = 20

	// 1. Data: 5,000 baskets over 1,000 items with Zipfian popularity.
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 5_000, Items: 1_000, MeanSize: 6, Skew: 1.0, Seed: 42,
	})
	fmt.Printf("baskets relation: %d tuples\n\n", db.MustRelation("baskets").Len())

	// 2. The flock, in the paper's notation (Fig. 2 plus the $1 < $2
	// refinement of §2.3).
	flock := core.MustParse(fmt.Sprintf(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= %d`, support))
	fmt.Printf("flock:\n%s\n\n", flock)

	// 3a. Direct evaluation.
	start := time.Now()
	direct, err := flock.Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct:          %4d frequent pairs in %v\n", direct.Len(), time.Since(start).Round(time.Millisecond))

	// 3b. The generalized a-priori plan: pre-filter each item parameter.
	plan, err := planner.PlanLevelwise(flock, 0)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res, err := plan.Execute(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a-priori plan:   %4d frequent pairs in %v\n", res.Answer.Len(), time.Since(start).Round(time.Millisecond))

	// 3c. Dynamic filter selection (§4.4).
	start = time.Now()
	dyn, err := planner.EvalDynamic(db, flock, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic (§4.4):  %4d frequent pairs in %v\n\n", dyn.Answer.Len(), time.Since(start).Round(time.Millisecond))

	// 4. Cross-check against the classic specialized algorithm.
	ds, err := apriori.FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		log.Fatal(err)
	}
	classic := apriori.PairsRelation(ds, apriori.FrequentPairs(ds, support))
	if !direct.Equal(classic) || !res.Answer.Equal(direct) || !dyn.Answer.Equal(direct) {
		log.Fatal("strategies disagree!")
	}
	fmt.Println("all strategies agree with classic a-priori ✓")

	fmt.Println("\ntop pairs:")
	for i, t := range direct.Sorted() {
		if i == 5 {
			break
		}
		fmt.Printf("  items %v and %v\n", t[0], t[1])
	}
	fmt.Printf("\nthe plan the optimizer built:\n%s\n", plan)

	// 5. The other two measures §1.1 reviews — confidence and interest —
	// derived from the frequent itemsets as association rules.
	rules := apriori.Rules(ds, support, &apriori.RuleOptions{
		MinConfidence: 0.5, SingleConsequent: true,
	})
	fmt.Printf("\nassociation rules with confidence >= 0.5 (top 5 of %d):\n", len(rules))
	for i, r := range rules {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", r.Render(ds))
	}
}
