// Medical side-effect mining (Example 2.2, Figs. 3, 5, 8, 9): find
// (symptom, medicine) pairs where many patients take the medicine and
// exhibit the symptom, yet the symptom is not explained by any diagnosed
// disease. Two side effects are planted in the synthetic data; the example
// shows the flock recovering exactly those, under the Fig. 5 static plan
// and under §4.4 dynamic filter selection.
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/workload"
)

func main() {
	const support = 20

	cfg := workload.MedicalConfig{
		Patients:            10_000,
		Diseases:            40,
		Symptoms:            5_000,
		Medicines:           80,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 2,
		ExhibitRate:         0.7,
		ExtraMedicines:      1.5,
		NoiseRate:           2.0,
		SideEffects: []workload.SideEffect{
			{Medicine: 5, Symptom: 4_900, Rate: 0.06}, // m5 -> s4900 in 6% of takers (borderline)
			{Medicine: 9, Symptom: 4_950, Rate: 0.25}, // m9 -> s4950 in 25% of takers
		},
		Seed: 7,
	}
	db := workload.Medical(cfg)
	for _, name := range db.Names() {
		fmt.Printf("%-12s %6d tuples\n", name, db.MustRelation(name).Len())
	}

	flock := paper.Medical(support)
	fmt.Printf("\nflock (Fig. 3):\n%s\n\n", flock)

	// The Fig. 5 plan: pre-filter symptoms and medicines.
	plan, err := planner.PlanWithParamSets(flock, [][]datalog.Param{{"s"}, {"m"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 5 plan:\n%s\n\n", plan)

	start := time.Now()
	res, err := plan.Execute(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan executed in %v; step survivors:\n%s\n\n", time.Since(start).Round(time.Millisecond), res)

	// Dynamic evaluation with the Fig. 8 join order, showing its
	// filter/skip decisions (Example 4.4).
	dyn, err := planner.EvalDynamic(db, flock, &planner.DynamicOptions{FixedOrder: []int{0, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dynamic decisions (Example 4.4):")
	for _, d := range dyn.Decisions {
		fmt.Printf("  %s\n", d)
	}
	if !dyn.Answer.Equal(res.Answer) {
		log.Fatal("dynamic and static answers disagree!")
	}

	fmt.Println("\nunexplained (medicine, symptom) associations found:")
	for _, t := range res.Answer.Sorted() {
		fmt.Printf("  medicine %v with symptom %v\n", t[0], t[1])
	}
	fmt.Println("\n(planted side effects were m5->s4900 and m9->s4950)")

	// The same mining task as a single SQL statement would require the
	// optimizer tricks this library implements — print the flock's safe
	// subqueries, the raw material of those tricks.
	fmt.Println("\ncandidate subqueries (Example 3.2; 8 safe of 14 subsets):")
	for _, s := range core.EnumerateSubqueries(flock.Query[0]) {
		fmt.Printf("  params %-10v %s\n", s.Params, s.Rule)
	}
}
