// Weighted market baskets (Fig. 10, §5): the monotone-filter extension.
// Baskets carry an importance weight; a pair qualifies when the summed
// importance of its co-occurrence baskets reaches the threshold. The
// example shows that the SUM filter admits the same a-priori plan space as
// COUNT, and contrasts the weighted and unweighted answers.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"
	"time"

	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/workload"
)

func main() {
	const (
		countSupport = 20
		maxWeight    = 10
		sumSupport   = 110 // ~20 baskets at the mean weight of 5.5
	)

	db := workload.Baskets(workload.BasketConfig{
		Baskets: 5_000, Items: 2_000, MeanSize: 6, Skew: 1.0, Seed: 21,
	})
	if err := workload.AttachWeights(db, maxWeight, 22); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baskets: %d tuples; importance: %d tuples\n\n",
		db.MustRelation("baskets").Len(), db.MustRelation("importance").Len())

	weighted := paper.WeightedBasket(sumSupport)
	fmt.Printf("flock (Fig. 10):\n%s\n\n", weighted)
	if !weighted.Filter.Monotone() {
		log.Fatal("SUM >= must be monotone")
	}

	// The same item pre-filter plan as in the COUNT case — §5's claim that
	// the techniques "apply directly to any monotone filter condition".
	plan, err := planner.PlanWithParamSets(weighted, [][]datalog.Param{{"1"}, {"2"}})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := plan.Execute(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	planTime := time.Since(start)

	direct, err := weighted.Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !direct.Equal(res.Answer) {
		log.Fatal("plan and direct disagree!")
	}
	fmt.Printf("weighted pairs (SUM importance >= %d): %d, plan time %v\n",
		sumSupport, res.Answer.Len(), planTime.Round(time.Millisecond))

	// Contrast with the unweighted flock at the matching support.
	unweighted, err := paper.MarketBasket(countSupport).Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unweighted pairs (COUNT >= %d):         %d\n\n", countSupport, unweighted.Len())

	// Pairs the weighting promotes or demotes.
	promoted, demoted := 0, 0
	for _, t := range res.Answer.Tuples() {
		if !unweighted.Contains(t) {
			promoted++
		}
	}
	for _, t := range unweighted.Tuples() {
		if !res.Answer.Contains(t) {
			demoted++
		}
	}
	fmt.Printf("weighting promoted %d pairs (heavy baskets) and demoted %d (light baskets)\n", promoted, demoted)
}
