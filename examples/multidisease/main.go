// Intermediate predicates (§2.2): the paper's Fig. 3 flock assumes "each
// patient has one disease only"; with several diseases it over-reports,
// because NOT causes(D,$s) only checks one diagnosis at a time. The §2.2
// extension — "a predicate relating patients to the set of symptoms from
// all their diseases" — fixes it. This example builds a comorbid
// population, shows the single-disease flock reporting false side effects,
// and the view-based flock reporting only the planted one.
//
// Run with: go run ./examples/multidisease
package main

import (
	"fmt"
	"log"
	"math/rand"

	"queryflocks/internal/core"
	"queryflocks/internal/sqlgen"
	"queryflocks/internal/storage"
)

func main() {
	db := comorbidPopulation(4_000, 99)

	// The naive Fig. 3 flock: unexplained means "not caused by SOME
	// diagnosed disease".
	naive := core.MustParse(`
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20`)

	// The §2.2 extension: allCaused(P,S) collects the symptoms of ALL of
	// a patient's diseases; unexplained means "caused by NONE of them".
	withView := core.MustParse(`
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    NOT allCaused(P,$s)
FILTER:
COUNT(answer.P) >= 20`)

	wrong, err := naive.Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	right, err := withView.Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("single-disease flock (Fig. 3 as printed): %d 'side effects'\n", wrong.Len())
	for _, t := range wrong.Sorted() {
		marker := "  FALSE POSITIVE (explained by the patient's other disease)"
		if right.Contains(t) {
			marker = "  genuine"
		}
		fmt.Printf("  (%v, %v)%s\n", t[0], t[1], marker)
	}
	fmt.Printf("\nwith the §2.2 intermediate predicate: %d unexplained association(s)\n", right.Len())
	for _, t := range right.Sorted() {
		fmt.Printf("  (%v, %v)\n", t[0], t[1])
	}
	fmt.Println("\n(insomnia was planted on the whole population, so BOTH universal" +
		"\nmedicines clear the support floor with it — support alone cannot name" +
		"\nthe culprit; that is what §1.1's confidence/interest measures are for.)")

	fmt.Printf("\nthe extended flock:\n%s\n", withView)
	sql, err := sqlgen.FlockSQL(withView)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nas SQL (the view becomes a CTE):\n%s;\n", sql)
}

// comorbidPopulation: every patient has flu AND hypertension, takes both
// antiviral and betablock, and 2% exhibit unexplained insomnia. Flu causes
// fever; hypertension causes headache. Without the view, (fever,
// betablock) and (headache, antiviral) surface as spurious "side effects"
// because NOT causes(D,$s) can pick the diagnosis row that doesn't explain
// the symptom.
func comorbidPopulation(patients int, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	diagnoses := storage.NewRelation("diagnoses", "Patient", "Disease")
	exhibits := storage.NewRelation("exhibits", "Patient", "Symptom")
	treatments := storage.NewRelation("treatments", "Patient", "Medicine")
	causes := storage.NewRelation("causes", "Disease", "Symptom")

	causes.InsertValues(storage.Str("flu"), storage.Str("fever"))
	causes.InsertValues(storage.Str("hypertension"), storage.Str("headache"))

	for p := 0; p < patients; p++ {
		pid := storage.Int(int64(p))
		diagnoses.Insert(storage.Tuple{pid, storage.Str("flu")})
		diagnoses.Insert(storage.Tuple{pid, storage.Str("hypertension")})
		treatments.Insert(storage.Tuple{pid, storage.Str("antiviral")})
		treatments.Insert(storage.Tuple{pid, storage.Str("betablock")})
		if rng.Float64() < 0.7 {
			exhibits.Insert(storage.Tuple{pid, storage.Str("fever")})
		}
		if rng.Float64() < 0.6 {
			exhibits.Insert(storage.Tuple{pid, storage.Str("headache")})
		}
		if rng.Float64() < 0.02 { // the planted unexplained symptom
			exhibits.Insert(storage.Tuple{pid, storage.Str("insomnia")})
		}
	}

	db := storage.NewDatabase()
	db.Add(diagnoses)
	db.Add(exhibits)
	db.Add(treatments)
	db.Add(causes)
	return db
}
