// Strongly connected words (Example 2.3, Fig. 4): a union flock over an
// HTML collection, counting word pairs that co-occur in titles or bridge
// an anchor and its target's title. Demonstrates the §3.4 union-of-
// subqueries bound (Example 3.3) and the SQL rendering of a union flock.
//
// Run with: go run ./examples/webwords
package main

import (
	"fmt"
	"log"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/sqlgen"
	"queryflocks/internal/workload"
)

func main() {
	const support = 20

	db := workload.Web(workload.WebConfig{
		Docs:          4_000,
		Vocab:         20_000,
		TitleWords:    6,
		AnchorsPerDoc: 3,
		AnchorWords:   5,
		Skew:          1.0,
		Seed:          11,
	})
	for _, name := range db.Names() {
		fmt.Printf("%-10s %6d tuples\n", name, db.MustRelation(name).Len())
	}

	flock := paper.WebWords(support)
	fmt.Printf("\nflock (Fig. 4, a 3-rule union):\n%s\n\n", flock)

	// Example 3.3: the essentially unique safe subquery per rule for $1.
	sub, err := core.UnionSubquery(flock.Query, []datalog.Param{"1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§3.4 union bound for $1 (Example 3.3):\n%s\n\n", sub)

	start := time.Now()
	direct, err := flock.Eval(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(start)

	plan, err := planner.PlanWithParamSets(flock, [][]datalog.Param{{"1"}, {"2"}})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res, err := plan.Execute(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	planTime := time.Since(start)
	if !res.Answer.Equal(direct) {
		log.Fatal("plan and direct answers disagree!")
	}

	fmt.Printf("direct: %d strongly connected pairs in %v\n", direct.Len(), directTime.Round(time.Millisecond))
	fmt.Printf("with union pre-filters: same answer in %v\n\n", planTime.Round(time.Millisecond))

	fmt.Println("sample pairs:")
	for i, t := range direct.Sorted() {
		if i == 5 {
			break
		}
		fmt.Printf("  %v ~ %v\n", t[0], t[1])
	}

	sql, err := sqlgen.FlockSQL(flock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe same flock as SQL:\n%s;\n", sql)
}
