// Path flock (Figs. 6–7): nodes with at least c successors from which a
// path of length n extends, evaluated under prefix-cascade plans of
// increasing depth. Shows the paper's point that each added FILTER step
// can shrink the candidate set further, and that the best depth is a cost
// trade-off.
//
// Run with: go run ./examples/graphpaths
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/workload"
)

func main() {
	const (
		support = 20
		n       = 3
	)

	db := workload.Graph(workload.GraphConfig{
		Nodes:       15_000,
		OutDegree:   2,
		Hubs:        300,
		HubDegree:   60,
		DeadEndFrac: 0.55,
		Seed:        5,
	})
	fmt.Printf("arc relation: %d edges\n\n", db.MustRelation("arc").Len())

	flock := paper.Path(n, support)
	fmt.Printf("flock (Fig. 6, n=%d):\n%s\n\n", n, flock)

	var reference int
	for depth := 0; depth <= n; depth++ {
		plan, err := planner.PlanCascade(flock, depth)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := plan.Execute(db, nil)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		var survivors []string
		for _, s := range res.Steps[:len(res.Steps)-1] {
			survivors = append(survivors, fmt.Sprintf("%d", s.Rows))
		}
		desc := strings.Join(survivors, " -> ")
		if desc == "" {
			desc = "(no pre-filters)"
		}
		fmt.Printf("depth %d: %7v  survivors %-20s answer %d\n", depth, elapsed.Round(time.Millisecond), desc, res.Answer.Len())

		if depth == 0 {
			reference = res.Answer.Len()
		} else if res.Answer.Len() != reference {
			log.Fatal("cascade changed the answer!")
		}
	}

	plan, _ := planner.PlanCascade(flock, 2)
	fmt.Printf("\nthe depth-2 cascade (Fig. 7 shape):\n%s\n", plan)
}
