// Frequent itemsets of every cardinality as a *sequence of query flocks*
// (footnote 2 of the paper): the k-th flock's query is extended with
// subgoals over the (k-1)-th flock's answer, reconstructing the level-wise
// a-priori algorithm inside the flock framework. The example prints each
// level, the maximal sets, and the generated k=3 flock so the dependence
// on the previous level is visible.
//
// Run with: go run ./examples/itemsets
package main

import (
	"fmt"
	"log"
	"time"

	"queryflocks/internal/apriori"
	"queryflocks/internal/mining"
	"queryflocks/internal/workload"
)

func main() {
	const support = 60

	db := workload.Baskets(workload.BasketConfig{
		Baskets: 8_000, Items: 500, MeanSize: 8, Skew: 1.1, Seed: 33,
	})
	fmt.Printf("baskets: %d tuples\n\n", db.MustRelation("baskets").Len())

	start := time.Now()
	res, err := mining.FrequentItemsets(db, support, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d frequent itemsets across %d levels in %v:\n",
		res.Count(), len(res.Levels), time.Since(start).Round(time.Millisecond))
	for k, level := range res.Levels {
		fmt.Printf("  L%d: %d sets\n", k+1, level.Len())
	}

	maximal := res.MaximalItemsets()
	fmt.Printf("\nmaximal frequent sets: %d; the largest:\n", len(maximal))
	shown := 0
	for _, m := range maximal {
		if len(m) == len(res.Levels) {
			fmt.Printf("  %v\n", m)
			shown++
			if shown == 5 {
				break
			}
		}
	}

	// Cross-check against the classic algorithm.
	ds, err := apriori.FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, l := range apriori.Frequent(ds, support, 0) {
		total += len(l)
	}
	if total != res.Count() {
		log.Fatalf("flock sequence found %d sets, classic a-priori %d", res.Count(), total)
	}
	fmt.Printf("\nmatches classic a-priori (%d sets) ✓\n", total)

	if len(res.Flocks) >= 3 {
		fmt.Printf("\nthe k=3 flock (note the freq2 subgoals — footnote 2's dependence):\n%s\n", res.Flocks[2])
	}
}
