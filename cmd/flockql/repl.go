package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"queryflocks/internal/analysis"
	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/planner"
	"queryflocks/internal/sqlgen"
	"queryflocks/internal/storage"
)

// repl runs the interactive mode: flock definitions are accumulated until
// a blank line after the FILTER: section, then evaluated with the current
// strategy. A flock may begin with EXPLAIN (print subqueries, join order,
// and plan without executing) or EXPLAIN ANALYZE (execute and render the
// observed operator tree). Backslash commands control the session:
//
//	\rels              list loaded relations
//	\strategy NAME     switch evaluation strategy
//	\explain on|off    toggle plan/decision explanations
//	\sql               print the SQL translation of the last flock
//	\plan              print the chosen plan for the last flock
//	\lint              diagnostics for the last flock (schema-checked)
//	\help              this summary
//	\quit              exit
func repl(in io.Reader, out io.Writer, db *storage.Database) error {
	fmt.Fprintln(out, "queryflocks interactive shell — \\help for commands; finish a flock with a blank line")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	strategy := "direct"
	explain := false
	var lastFlock *core.Flock
	var lastSrc string
	var buf strings.Builder
	prompt := func() { fmt.Fprint(out, "flockql> ") }
	prompt()

	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "\\"):
			quit := false
			guard(out, func() error {
				quit = replCommand(out, trimmed, db, &strategy, &explain, lastFlock, lastSrc)
				return nil
			})
			if quit {
				return nil
			}
		case trimmed == "" && strings.Contains(buf.String(), "FILTER:"):
			src := buf.String()
			buf.Reset()
			lastSrc = src // \lint works even when the parse below fails
			mode, text := splitExplain(src)
			flock, err := core.Parse(text)
			if err != nil {
				fmt.Fprintln(out, "parse error:", err)
				break
			}
			lastFlock = flock
			if mode == modeExplain {
				guard(out, func() error {
					if err := flock.CheckDatabase(db); err != nil {
						return err
					}
					explainFlock(out, flock)
					return explainStatic(out, flock, db, strategy, 2)
				})
				break
			}
			guard(out, func() error {
				return replEval(out, db, flock, strategy, explain, mode == modeAnalyze)
			})
		case trimmed == "":
			// blank line with no complete flock: keep accumulating
		default:
			buf.WriteString(line)
			buf.WriteByte('\n')
			continue // no fresh prompt mid-statement
		}
		prompt()
	}
	fmt.Fprintln(out)
	return scanner.Err()
}

// guard runs one statement's work and keeps the session alive whatever
// happens: returned errors print as "error: ...", and engine invariant
// panics (storage arity checks, unknown aggregates) are recovered and
// printed instead of killing the interactive session.
func guard(out io.Writer, f func() error) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(out, "error: internal panic: %v\n", r)
		}
	}()
	if err := f(); err != nil {
		fmt.Fprintln(out, "error:", err)
	}
}

// replCommand executes one backslash command; reports whether to quit.
func replCommand(out io.Writer, cmd string, db *storage.Database, strategy *string, explain *bool, last *core.Flock, lastSrc string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q", "\\exit":
		fmt.Fprintln(out, "bye")
		return true
	case "\\help":
		fmt.Fprintln(out, `commands:
  \rels              list loaded relations
  \strategy NAME     direct|naive|static|exhaustive|levelwise|dynamic (current: `+*strategy+`)
  \explain on|off    toggle explanations
  \sql               SQL translation of the last flock
  \plan              chosen static plan for the last flock
  \lint              diagnostics for the last flock, schema-checked against
                     the loaded relations (stable QFxxx codes)
  \quit              exit
end a flock definition (QUERY:/FILTER: sections) with a blank line to run it
prefix a flock with EXPLAIN to see its subqueries, join order, and plan
without running it, or EXPLAIN ANALYZE to run it and print the observed
operator tree (per-step cardinalities and wall time)`)
	case "\\rels":
		names := append([]string(nil), db.Names()...)
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(out, "  %s\n", db.MustRelation(n))
		}
	case "\\strategy":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\strategy NAME")
			break
		}
		switch fields[1] {
		case "direct", "naive", "static", "exhaustive", "levelwise", "dynamic":
			*strategy = fields[1]
			fmt.Fprintln(out, "strategy:", *strategy)
		default:
			fmt.Fprintln(out, "unknown strategy:", fields[1])
		}
	case "\\explain":
		*explain = len(fields) == 2 && fields[1] == "on"
		fmt.Fprintln(out, "explain:", *explain)
	case "\\sql":
		if last == nil {
			fmt.Fprintln(out, "no flock yet")
			break
		}
		sql, err := sqlgen.FlockSQL(last)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintln(out, sql+";")
	case "\\plan":
		if last == nil {
			fmt.Fprintln(out, "no flock yet")
			break
		}
		plan, err := planner.PlanStatic(last, planner.NewEstimator(db), nil)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintln(out, plan)
	case "\\lint":
		if lastSrc == "" {
			fmt.Fprintln(out, "no flock yet")
			break
		}
		ds := analysis.AnalyzeSource(lastSrc, analysis.Options{DB: db})
		if len(ds) == 0 {
			fmt.Fprintln(out, "no diagnostics")
			break
		}
		fmt.Fprint(out, analysis.Render(ds))
	default:
		fmt.Fprintln(out, "unknown command:", fields[0], "(try \\help)")
	}
	return false
}

// replEval runs one flock with the session strategy and prints the answer;
// with analyze set it instead renders the observed operator tree.
func replEval(out io.Writer, db *storage.Database, flock *core.Flock, strategy string, explain, analyze bool) error {
	if err := flock.CheckDatabase(db); err != nil {
		return err
	}
	var tr *eval.Trace
	if analyze {
		tr = &eval.Trace{}
		tr.Collector() // anchor the wall-clock/alloc baseline before evaluation
	}
	ev := &core.EvalOptions{Trace: tr}
	start := time.Now()
	var answer *storage.Relation
	var err error
	switch strategy {
	case "direct":
		answer, err = flock.Eval(db, ev)
	case "naive":
		answer, err = flock.EvalNaive(db)
	case "static":
		var plan *core.Plan
		plan, err = planner.PlanStatic(flock, planner.NewEstimator(db), nil)
		if err == nil {
			if explain {
				fmt.Fprintf(out, "%s\n", plan)
			}
			var res *core.PlanResult
			res, err = plan.Execute(db, ev)
			if err == nil {
				answer = res.Answer
			}
		}
	case "exhaustive":
		var plan *core.Plan
		plan, err = planner.PlanExhaustive(flock, planner.NewEstimator(db), nil)
		if err == nil {
			if explain {
				fmt.Fprintf(out, "%s\n", plan)
			}
			var res *core.PlanResult
			res, err = plan.Execute(db, ev)
			if err == nil {
				answer = res.Answer
			}
		}
	case "levelwise":
		var plan *core.Plan
		plan, err = planner.PlanLevelwise(flock, 0)
		if err == nil {
			var res *core.PlanResult
			res, err = plan.Execute(db, ev)
			if err == nil {
				answer = res.Answer
			}
		}
	case "dynamic":
		var res *planner.DynamicResult
		res, err = planner.EvalDynamic(db, flock, &planner.DynamicOptions{Trace: tr})
		if err == nil {
			if explain {
				for _, d := range res.Decisions {
					fmt.Fprintf(out, "decision: %s\n", d)
				}
			}
			answer = res.Answer
		}
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	if err != nil {
		return err
	}

	if analyze {
		fmt.Fprintln(out, tr.Report(strategy, 0, answer.Len()).Tree())
		return nil
	}
	header := strings.Join(answer.Columns(), "\t")
	fmt.Fprintln(out, header)
	const maxRows = 25
	for i, t := range answer.Sorted() {
		if i == maxRows {
			fmt.Fprintf(out, "... (%d more)\n", answer.Len()-maxRows)
			break
		}
		cells := make([]string, len(t))
		for j, v := range t {
			cells[j] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
	}
	fmt.Fprintf(out, "%d answers in %v (%s)\n", answer.Len(), time.Since(start).Round(time.Millisecond), strategy)
	return nil
}
