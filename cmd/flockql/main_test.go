package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// setupData writes a small basket dataset and a Fig. 2 flock file,
// returning their paths.
func setupData(t *testing.T) (dataDir, flockFile string) {
	t.Helper()
	dataDir = t.TempDir()
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 300, Items: 40, MeanSize: 4, Skew: 1.0, Seed: 6,
	})
	if err := storage.WriteCSVFile(db.MustRelation("baskets"),
		filepath.Join(dataDir, "baskets.csv")); err != nil {
		t.Fatal(err)
	}
	flockFile = filepath.Join(t.TempDir(), "fig2.flock")
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5`
	if err := os.WriteFile(flockFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dataDir, flockFile
}

func TestStrategiesRun(t *testing.T) {
	dataDir, flockFile := setupData(t)
	for _, strategy := range []string{"direct", "static", "exhaustive", "levelwise", "cascade", "dynamic"} {
		args := []string{"-data", dataDir, "-strategy", strategy, "-quiet", flockFile}
		if err := run(args); err != nil {
			t.Errorf("%s: %v", strategy, err)
		}
	}
	// Explain mode.
	if err := run([]string{"-data", dataDir, "-strategy", "static", "-explain", "-quiet", flockFile}); err != nil {
		t.Errorf("explain: %v", err)
	}
}

func TestNaiveStrategySmall(t *testing.T) {
	dataDir := t.TempDir()
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 30, Items: 8, MeanSize: 3, Skew: 0.5, Seed: 1,
	})
	if err := storage.WriteCSVFile(db.MustRelation("baskets"),
		filepath.Join(dataDir, "baskets.csv")); err != nil {
		t.Fatal(err)
	}
	flockFile := filepath.Join(t.TempDir(), "f.flock")
	os.WriteFile(flockFile, []byte("QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\nFILTER:\nCOUNT(answer.B) >= 2"), 0o644)
	if err := run([]string{"-data", dataDir, "-strategy", "naive", "-quiet", flockFile}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanStrategy(t *testing.T) {
	dataDir, flockFile := setupData(t)
	planFile := filepath.Join(t.TempDir(), "plan.plan")
	plan := `
ok1($1) := FILTER($1,
    answer(B) :- baskets(B,$1),
    COUNT(answer.B) >= 5
);
ok($1,$2) := FILTER(($1,$2),
    answer(B) :- ok1($1) AND baskets(B,$1) AND baskets(B,$2) AND $1 < $2,
    COUNT(answer.B) >= 5
);`
	if err := os.WriteFile(planFile, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dataDir, "-strategy", "plan", "-plan", planFile, "-quiet", flockFile}); err != nil {
		t.Fatal(err)
	}
	// plan strategy without -plan errors.
	if err := run([]string{"-data", dataDir, "-strategy", "plan", "-quiet", flockFile}); err == nil {
		t.Error("plan strategy without -plan should error")
	}
}

func TestSQLMode(t *testing.T) {
	_, flockFile := setupData(t)
	if err := run([]string{"-sql", flockFile}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dataDir, flockFile := setupData(t)
	cases := [][]string{
		{},                                   // missing flock file
		{"-data", dataDir, "/no/such.flock"}, // unreadable flock
		{"-data", "/no/such/dir/x", flockFile},
		{"-data", dataDir, "-strategy", "bogus", flockFile},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	// Flock referencing a missing relation.
	badFlock := filepath.Join(t.TempDir(), "bad.flock")
	os.WriteFile(badFlock, []byte("QUERY:\nanswer(X) :- nosuch(X,$1)\nFILTER:\nCOUNT(answer.X) >= 2"), 0o644)
	if err := run([]string{"-data", dataDir, badFlock}); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("missing relation should error, got %v", err)
	}
}

// TestLintOnLoad pins the load-time analyzer hookup: error diagnostics
// abort before evaluation, warnings do not.
func TestLintOnLoad(t *testing.T) {
	dataDir, _ := setupData(t)

	unsafe := filepath.Join(t.TempDir(), "unsafe.flock")
	os.WriteFile(unsafe, []byte("QUERY:\nanswer(X) :- baskets(B,$1) AND X > 5\nFILTER:\nCOUNT(answer.X) >= 2"), 0o644)
	if err := run([]string{"-data", dataDir, unsafe}); err == nil || !strings.Contains(err.Error(), "lint errors") {
		t.Errorf("unsafe flock should abort with lint errors, got %v", err)
	}

	// Redundant second subgoal and singleton X are warnings only.
	warn := filepath.Join(t.TempDir(), "warn.flock")
	os.WriteFile(warn, []byte("QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,X)\nFILTER:\nCOUNT(answer.B) >= 2"), 0o644)
	if err := run([]string{"-data", dataDir, "-quiet", warn}); err != nil {
		t.Errorf("warnings must not abort the run: %v", err)
	}
}

func TestViewsThroughCLI(t *testing.T) {
	dataDir := t.TempDir()
	db := workload.Medical(workload.DefaultMedical(200, 8))
	for _, name := range db.Names() {
		if err := storage.WriteCSVFile(db.MustRelation(name), filepath.Join(dataDir, name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	flockFile := filepath.Join(t.TempDir(), "views.flock")
	src := `
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT allCaused(P,$s)
FILTER:
COUNT(answer.P) >= 3`
	os.WriteFile(flockFile, []byte(src), 0o644)
	if err := run([]string{"-data", dataDir, "-quiet", flockFile}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dataDir, "-strategy", "dynamic", "-quiet", flockFile}); err != nil {
		t.Fatal(err)
	}
}
