package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitExplain(t *testing.T) {
	cases := []struct {
		src, mode, rest string
	}{
		{"QUERY:\nanswer(B) :- r(B,$1)", modeNone, "QUERY:\nanswer(B) :- r(B,$1)"},
		{"EXPLAIN\nQUERY:\nx", modeExplain, "\nQUERY:\nx"},
		{"explain query:", modeExplain, " query:"},
		{"  EXPLAIN ANALYZE\nQUERY:\nx", modeAnalyze, "\nQUERY:\nx"},
		{"Explain Analyze QUERY:", modeAnalyze, " QUERY:"},
		{"EXPLAINQUERY:", modeNone, "EXPLAINQUERY:"},
		{"", modeNone, ""},
	}
	for _, c := range cases {
		mode, rest := splitExplain(c.src)
		if mode != c.mode || rest != c.rest {
			t.Errorf("splitExplain(%q) = (%q, %q), want (%q, %q)", c.src, mode, rest, c.mode, c.rest)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("run: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// writeExplainFlock writes the Fig. 2 flock with the given source prefix.
func writeExplainFlock(t *testing.T, prefix string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "e.flock")
	src := prefix + `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5`
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExplainDoesNotExecute(t *testing.T) {
	dataDir, _ := setupData(t)
	flockFile := writeExplainFlock(t, "EXPLAIN")
	for _, strategy := range []string{"static", "direct"} {
		out := captureStdout(t, func() error {
			return run([]string{"-data", dataDir, "-strategy", strategy, flockFile})
		})
		for _, want := range []string{"safe subqueries", "join order (greedy", "baskets(B,$1)"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: EXPLAIN output missing %q:\n%s", strategy, want, out)
			}
		}
		if strings.Contains(out, "answers in") {
			t.Errorf("%s: EXPLAIN must not execute:\n%s", strategy, out)
		}
	}
	// Plan-producing strategy prints the chosen plan; run-time strategies say so.
	out := captureStdout(t, func() error {
		return run([]string{"-data", dataDir, "-strategy", "static", flockFile})
	})
	if !strings.Contains(out, "chosen static plan:") {
		t.Errorf("EXPLAIN static missing plan:\n%s", out)
	}
	if !strings.Contains(out, "physical plans per FILTER step") {
		t.Errorf("EXPLAIN static missing physical step plans:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return run([]string{"-data", dataDir, "-strategy", "dynamic", flockFile})
	})
	if !strings.Contains(out, "materialize barrier decides at run time") {
		t.Errorf("EXPLAIN dynamic should render the barrier plan:\n%s", out)
	}
	if !strings.Contains(out, "materialize#") {
		t.Errorf("EXPLAIN dynamic missing materialize barrier nodes:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return run([]string{"-data", dataDir, "-strategy", "direct", flockFile})
	})
	for _, want := range []string{"physical plan (direct):", "group#", "scan#"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN direct missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAnalyzeRendersTree(t *testing.T) {
	dataDir, _ := setupData(t)
	flockFile := writeExplainFlock(t, "EXPLAIN ANALYZE")
	for _, strategy := range []string{"direct", "static", "dynamic"} {
		out := captureStdout(t, func() error {
			return run([]string{"-data", dataDir, "-strategy", strategy, flockFile})
		})
		if !strings.Contains(out, strategy+": ") || !strings.Contains(out, "answers") {
			t.Errorf("%s: EXPLAIN ANALYZE missing headline:\n%s", strategy, out)
		}
		if !strings.Contains(out, "rows") {
			t.Errorf("%s: EXPLAIN ANALYZE missing cardinalities:\n%s", strategy, out)
		}
	}
	// Dynamic must surface its filter decisions as typed events.
	out := captureStdout(t, func() error {
		return run([]string{"-data", dataDir, "-strategy", "dynamic", flockFile})
	})
	if !strings.Contains(out, "decide") {
		t.Errorf("dynamic EXPLAIN ANALYZE missing decisions:\n%s", out)
	}
}

func TestMetricsJSON(t *testing.T) {
	dataDir, flockFile := setupData(t)
	out := captureStdout(t, func() error {
		return run([]string{"-data", dataDir, "-strategy", "direct", "-quiet", "-metrics", "json", flockFile})
	})
	var report struct {
		Strategy   string `json:"strategy"`
		AnswerRows int    `json:"answer_rows"`
		WallNs     int64  `json:"wall_ns"`
		Steps      []struct {
			Op      string `json:"op"`
			RowsOut int    `json:"rows_out"`
		} `json:"steps"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("invalid metrics JSON: %v\n%s", err, out)
	}
	if report.Strategy != "direct" || report.WallNs <= 0 || len(report.Steps) == 0 {
		t.Errorf("incomplete report: %+v", report)
	}
	ops := map[string]bool{}
	for _, s := range report.Steps {
		ops[s.Op] = true
	}
	for _, want := range []string{"join", "group"} {
		if !ops[want] {
			t.Errorf("metrics JSON missing %q events: %v", want, ops)
		}
	}
	// Unknown format rejected.
	if err := run([]string{"-data", dataDir, "-metrics", "xml", flockFile}); err == nil {
		t.Error("-metrics xml should error")
	}
}
