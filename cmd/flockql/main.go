// Command flockql evaluates a query flock over CSV relations.
//
// Usage:
//
//	flockql -data DIR [flags] FLOCK_FILE
//
// DIR holds one CSV file per relation (header row = column names; the
// file's base name is the relation name). Alternatively -data-dir opens a
// segment data directory created by flockgen -data-dir, with -engine
// choosing between materializing it (memory) and streaming tuples from
// the sorted segment files (disk). FLOCK_FILE holds a flock in the
// paper's notation:
//
//	QUERY:
//	answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
//	FILTER:
//	COUNT(answer.B) >= 20
//
// Strategies:
//
//	direct     evaluate the flock by grouping (default)
//	naive      generate-and-test reference semantics (slow; small data)
//	static     cost-based static plan (§4.3 heuristic 1)
//	exhaustive exponential search over filter subsets (§4.3, cost model)
//	levelwise  level-wise a-priori plan (§4.3 heuristic 2)
//	cascade    prefix cascade plan (Fig. 7); see -depth
//	dynamic    dynamic filter selection (§4.4)
//	plan       execute the FILTER-step plan in -plan (Fig. 5 notation)
//
// Other modes: -sql prints the SQL translation and exits; -explain prints
// safe subqueries, the chosen plan, and (for dynamic) the decisions.
//
// Every flock file is linted on load with the internal/analysis passes
// (the same checks flockvet runs): error-severity diagnostics abort the
// run before evaluation, warnings print to stderr and the run continues.
//
// A flock source may begin with EXPLAIN or EXPLAIN ANALYZE:
//
//	EXPLAIN          print the candidate subqueries, the chosen join
//	                 order, and the chosen plan — without executing
//	EXPLAIN ANALYZE  execute, then render the observed operator tree
//	                 (per-step cardinalities, workers, wall time)
//
// -metrics json prints the run's machine-readable operator report (the
// same obs.RunReport schema flockbench -json embeds) to stdout.
//
// -timeout bounds the evaluation's wall clock; a run that exceeds it
// aborts promptly with a typed cancellation error (strategies other than
// naive; see eval.Limits).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"queryflocks/internal/analysis"
	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/planner"
	"queryflocks/internal/sqlgen"
	"queryflocks/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flockql:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flockql", flag.ContinueOnError)
	var (
		dataDir     = fs.String("data", ".", "directory of CSV relations")
		segDir      = fs.String("data-dir", "", "segment data directory created by flockgen -data-dir; overrides -data")
		engine      = fs.String("engine", "memory", "storage engine for -data-dir: memory (materialize at open) or disk (stream from segments)")
		strategy    = fs.String("strategy", "direct", "direct|naive|static|exhaustive|levelwise|cascade|dynamic|plan")
		planFile    = fs.String("plan", "", "plan file (for -strategy plan)")
		depth       = fs.Int("depth", 2, "cascade depth (for -strategy cascade)")
		printSQL    = fs.Bool("sql", false, "print the SQL translation and exit")
		explain     = fs.Bool("explain", false, "print subqueries, plans, and decisions")
		quiet       = fs.Bool("quiet", false, "suppress the answer listing (timing only)")
		interactive = fs.Bool("i", false, "interactive shell over the loaded relations")
		workers     = fs.Int("workers", 0, "join/group-by worker count (0 = one per CPU, 1 = sequential)")
		metrics     = fs.String("metrics", "", `"json" prints the run's operator report (obs.RunReport) to stdout`)
		timeout     = fs.Duration("timeout", 0, "wall-clock limit for the evaluation (0 = none); exceeding runs abort with a typed error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *timeout)
	}
	if *metrics != "" && *metrics != "json" {
		return fmt.Errorf("unknown -metrics format %q (only \"json\")", *metrics)
	}
	eng, err := storage.ParseEngine(*engine)
	if err != nil {
		return err
	}
	if *engine == "disk" && *segDir == "" {
		return fmt.Errorf("-engine disk requires -data-dir (CSV loading is memory-only)")
	}
	loadDB := func() (*storage.Database, error) {
		if *segDir != "" {
			db, _, err := storage.OpenDir(*segDir, eng)
			return db, err
		}
		return storage.LoadDir(*dataDir)
	}
	if *interactive {
		db, err := loadDB()
		if err != nil {
			return err
		}
		return repl(os.Stdin, os.Stdout, db)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one flock file, got %d args", fs.NArg())
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	// Lint on load: error-severity diagnostics abort before any evaluation
	// (with positions, unlike the constructor's errors); warnings print to
	// stderr and the run continues.
	if ds := analysis.AnalyzeSource(string(src), analysis.Options{File: fs.Arg(0)}); len(ds) > 0 {
		fmt.Fprint(os.Stderr, analysis.Render(ds))
		if analysis.HasErrors(ds) {
			return fmt.Errorf("%s has lint errors", fs.Arg(0))
		}
	}

	mode, text := splitExplain(string(src))
	flock, err := core.Parse(text)
	if err != nil {
		return err
	}

	if *printSQL {
		sql, err := sqlgen.FlockSQL(flock)
		if err != nil {
			return err
		}
		fmt.Println(sql + ";")
		return nil
	}

	db, err := loadDB()
	if err != nil {
		return err
	}
	if err := flock.CheckDatabase(db); err != nil {
		return err
	}
	if *explain {
		explainFlock(os.Stdout, flock)
	}
	if mode == modeExplain {
		// EXPLAIN: show what would run — subqueries, join order, plan —
		// without executing.
		if !*explain {
			explainFlock(os.Stdout, flock)
		}
		return explainStatic(os.Stdout, flock, db, *strategy, *depth)
	}

	var tr *eval.Trace
	if mode == modeAnalyze || *metrics == "json" {
		tr = &eval.Trace{}
		tr.Collector() // anchor the wall-clock/alloc baseline before evaluation
	}

	start := time.Now()
	answer, err := evaluate(flock, db, *strategy, *planFile, *depth, *explain, *workers, *timeout, tr)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if mode == modeAnalyze {
		fmt.Println(tr.Report(*strategy, *workers, answer.Len()).Tree())
	} else if !*quiet {
		printAnswer(answer)
	}
	if *metrics == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr.Report(*strategy, *workers, answer.Len())); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "%d answers in %v (%s strategy)\n", answer.Len(), elapsed.Round(time.Millisecond), *strategy)
	return nil
}

// Explain modes recognised as a source prefix on the flock text.
const (
	modeNone    = ""
	modeExplain = "explain"
	modeAnalyze = "analyze"
)

// splitExplain strips a leading EXPLAIN or EXPLAIN ANALYZE keyword off a
// flock source, returning the mode and the remaining text. The keywords
// are case-insensitive and must precede the QUERY: section.
func splitExplain(src string) (string, string) {
	rest := strings.TrimLeft(src, " \t\r\n")
	word, tail := nextWord(rest)
	if !strings.EqualFold(word, "EXPLAIN") {
		return modeNone, src
	}
	word2, tail2 := nextWord(tail)
	if strings.EqualFold(word2, "ANALYZE") {
		return modeAnalyze, tail2
	}
	return modeExplain, tail
}

func nextWord(s string) (word, rest string) {
	s = strings.TrimLeft(s, " \t\r\n")
	i := strings.IndexFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\r' || r == '\n'
	})
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i:]
}

// explainStatic prints the plan-side view of a flock without executing it:
// the greedy join order each rule would use and, for the plan-producing
// strategies, the chosen FILTER-step plan.
func explainStatic(w io.Writer, flock *core.Flock, db *storage.Database, strategy string, depth int) error {
	// Views participate in join ordering by their materialized size, so
	// materialize them first (cheap relative to the main query).
	vdb, err := flock.MaterializeViews(db, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "join order (greedy, smallest relation first):")
	for ri, r := range flock.Query {
		order, err := eval.JoinOrder(vdb, r, eval.OrderGreedy)
		if err != nil {
			return err
		}
		atoms := r.PositiveAtoms()
		parts := make([]string, len(order))
		for i, idx := range order {
			parts[i] = atoms[idx].String()
		}
		fmt.Fprintf(w, "  rule %d: %s\n", ri+1, strings.Join(parts, " ⋈ "))
	}
	fmt.Fprintln(w)

	var plan *core.Plan
	switch strategy {
	case "static":
		plan, err = planner.PlanStatic(flock, planner.NewEstimator(db), nil)
	case "exhaustive":
		plan, err = planner.PlanExhaustive(flock, planner.NewEstimator(db), nil)
	case "levelwise":
		plan, err = planner.PlanLevelwise(flock, 0)
	case "cascade":
		plan, err = planner.PlanCascade(flock, depth)
	case "direct":
		phys, err := core.CompileDirect(vdb, flock, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "physical plan (direct):\n%s\n", phys.Explain())
		return nil
	case "dynamic":
		phys, err := planner.CompileDynamic(vdb, flock, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "physical plan (dynamic; each materialize barrier decides at run time whether to FILTER):\n%s\n", phys.Explain())
		return nil
	default:
		fmt.Fprintf(w, "strategy %q decides at run time; use EXPLAIN ANALYZE to observe it\n", strategy)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chosen %s plan:\n%s\n", strategy, plan)
	steps, err := plan.CompileSteps(vdb, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nphysical plans per FILTER step (join orders re-resolve at run time against actual step sizes):")
	for _, st := range steps {
		fmt.Fprintf(w, "step %s:\n%s\n", st.Name, st.Plan.Explain())
	}
	return nil
}

func evaluate(flock *core.Flock, db *storage.Database, strategy, planFile string, depth int, explain bool, workers int, timeout time.Duration, tr *eval.Trace) (*storage.Relation, error) {
	limits := eval.Limits{Wall: timeout}
	ev := &core.EvalOptions{Workers: workers, Trace: tr, Limits: limits}
	switch strategy {
	case "direct":
		return flock.Eval(db, ev)
	case "naive":
		return flock.EvalNaive(db)
	case "static":
		plan, err := planner.PlanStatic(flock, planner.NewEstimator(db), nil)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("chosen static plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "exhaustive":
		plan, err := planner.PlanExhaustive(flock, planner.NewEstimator(db), nil)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("exhaustive-search plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "levelwise":
		plan, err := planner.PlanLevelwise(flock, 0)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("level-wise plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "cascade":
		plan, err := planner.PlanCascade(flock, depth)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("cascade plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "dynamic":
		res, err := planner.EvalDynamic(db, flock, &planner.DynamicOptions{Workers: workers, Trace: tr, Limits: limits})
		if err != nil {
			return nil, err
		}
		if explain {
			for _, d := range res.Decisions {
				fmt.Printf("decision: %s\n", d)
			}
			fmt.Println()
		}
		return res.Answer, nil
	case "plan":
		if planFile == "" {
			return nil, fmt.Errorf("-strategy plan requires -plan FILE")
		}
		src, err := os.ReadFile(planFile)
		if err != nil {
			return nil, err
		}
		spec, err := datalog.ParsePlan(string(src))
		if err != nil {
			return nil, err
		}
		plan, err := core.PlanFromSpec(flock, spec)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("executed plan:\n%s\nstep sizes: %s\n\n", plan, res)
		}
		return res.Answer, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
}

func explainFlock(w io.Writer, flock *core.Flock) {
	fmt.Fprintf(w, "flock:\n%s\n\n", flock)
	fmt.Fprintln(w, "safe subqueries (candidate pre-filters, §3):")
	for ri, r := range flock.Query {
		if len(flock.Query) > 1 {
			fmt.Fprintf(w, "rule %d:\n", ri+1)
		}
		for _, s := range core.EnumerateSubqueries(r) {
			fmt.Fprintf(w, "  params %-12v %s\n", s.Params, s.Rule)
		}
	}
	fmt.Fprintln(w)
}

func printAnswer(answer *storage.Relation) {
	header := ""
	for i, c := range answer.Columns() {
		if i > 0 {
			header += "\t"
		}
		header += c
	}
	fmt.Println(header)
	for _, t := range answer.Sorted() {
		line := ""
		for i, v := range t {
			if i > 0 {
				line += "\t"
			}
			line += v.String()
		}
		fmt.Println(line)
	}
}
