// Command flockql evaluates a query flock over CSV relations.
//
// Usage:
//
//	flockql -data DIR [flags] FLOCK_FILE
//
// DIR holds one CSV file per relation (header row = column names; the
// file's base name is the relation name). FLOCK_FILE holds a flock in the
// paper's notation:
//
//	QUERY:
//	answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
//	FILTER:
//	COUNT(answer.B) >= 20
//
// Strategies:
//
//	direct     evaluate the flock by grouping (default)
//	naive      generate-and-test reference semantics (slow; small data)
//	static     cost-based static plan (§4.3 heuristic 1)
//	exhaustive exponential search over filter subsets (§4.3, cost model)
//	levelwise  level-wise a-priori plan (§4.3 heuristic 2)
//	cascade    prefix cascade plan (Fig. 7); see -depth
//	dynamic    dynamic filter selection (§4.4)
//	plan       execute the FILTER-step plan in -plan (Fig. 5 notation)
//
// Other modes: -sql prints the SQL translation and exits; -explain prints
// safe subqueries, the chosen plan, and (for dynamic) the decisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/planner"
	"queryflocks/internal/sqlgen"
	"queryflocks/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flockql:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flockql", flag.ContinueOnError)
	var (
		dataDir     = fs.String("data", ".", "directory of CSV relations")
		strategy    = fs.String("strategy", "direct", "direct|naive|static|exhaustive|levelwise|cascade|dynamic|plan")
		planFile    = fs.String("plan", "", "plan file (for -strategy plan)")
		depth       = fs.Int("depth", 2, "cascade depth (for -strategy cascade)")
		printSQL    = fs.Bool("sql", false, "print the SQL translation and exit")
		explain     = fs.Bool("explain", false, "print subqueries, plans, and decisions")
		quiet       = fs.Bool("quiet", false, "suppress the answer listing (timing only)")
		interactive = fs.Bool("i", false, "interactive shell over the loaded relations")
		workers     = fs.Int("workers", 0, "join/group-by worker count (0 = one per CPU, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interactive {
		db, err := storage.LoadDir(*dataDir)
		if err != nil {
			return err
		}
		return repl(os.Stdin, os.Stdout, db)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one flock file, got %d args", fs.NArg())
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	flock, err := core.Parse(string(src))
	if err != nil {
		return err
	}

	if *printSQL {
		sql, err := sqlgen.FlockSQL(flock)
		if err != nil {
			return err
		}
		fmt.Println(sql + ";")
		return nil
	}

	db, err := storage.LoadDir(*dataDir)
	if err != nil {
		return err
	}
	if err := flock.CheckDatabase(db); err != nil {
		return err
	}
	if *explain {
		explainFlock(flock)
	}

	start := time.Now()
	answer, err := evaluate(flock, db, *strategy, *planFile, *depth, *explain, *workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if !*quiet {
		printAnswer(answer)
	}
	fmt.Fprintf(os.Stderr, "%d answers in %v (%s strategy)\n", answer.Len(), elapsed.Round(time.Millisecond), *strategy)
	return nil
}

func evaluate(flock *core.Flock, db *storage.Database, strategy, planFile string, depth int, explain bool, workers int) (*storage.Relation, error) {
	ev := &core.EvalOptions{Workers: workers}
	switch strategy {
	case "direct":
		return flock.Eval(db, ev)
	case "naive":
		return flock.EvalNaive(db)
	case "static":
		plan, err := planner.PlanStatic(flock, planner.NewEstimator(db), nil)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("chosen static plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "exhaustive":
		plan, err := planner.PlanExhaustive(flock, planner.NewEstimator(db), nil)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("exhaustive-search plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "levelwise":
		plan, err := planner.PlanLevelwise(flock, 0)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("level-wise plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "cascade":
		plan, err := planner.PlanCascade(flock, depth)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("cascade plan:\n%s\n\n", plan)
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "dynamic":
		res, err := planner.EvalDynamic(db, flock, &planner.DynamicOptions{Workers: workers})
		if err != nil {
			return nil, err
		}
		if explain {
			for _, d := range res.Decisions {
				fmt.Printf("decision: %s\n", d)
			}
			fmt.Println()
		}
		return res.Answer, nil
	case "plan":
		if planFile == "" {
			return nil, fmt.Errorf("-strategy plan requires -plan FILE")
		}
		src, err := os.ReadFile(planFile)
		if err != nil {
			return nil, err
		}
		spec, err := datalog.ParsePlan(string(src))
		if err != nil {
			return nil, err
		}
		plan, err := core.PlanFromSpec(flock, spec)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		if explain {
			fmt.Printf("executed plan:\n%s\nstep sizes: %s\n\n", plan, res)
		}
		return res.Answer, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
}

func explainFlock(flock *core.Flock) {
	fmt.Printf("flock:\n%s\n\n", flock)
	fmt.Println("safe subqueries (candidate pre-filters, §3):")
	for ri, r := range flock.Query {
		if len(flock.Query) > 1 {
			fmt.Printf("rule %d:\n", ri+1)
		}
		for _, s := range core.EnumerateSubqueries(r) {
			fmt.Printf("  params %-12v %s\n", s.Params, s.Rule)
		}
	}
	fmt.Println()
}

func printAnswer(answer *storage.Relation) {
	header := ""
	for i, c := range answer.Columns() {
		if i > 0 {
			header += "\t"
		}
		header += c
	}
	fmt.Println(header)
	for _, t := range answer.Sorted() {
		line := ""
		for i, v := range t {
			if i > 0 {
				line += "\t"
			}
			line += v.String()
		}
		fmt.Println(line)
	}
}
