package main

import (
	"strings"
	"testing"

	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

func replDB(t *testing.T) *storage.Database {
	t.Helper()
	return workload.Baskets(workload.BasketConfig{
		Baskets: 200, Items: 20, MeanSize: 4, Skew: 0.8, Seed: 4,
	})
}

func runREPL(t *testing.T, db *storage.Database, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out, db); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLEvaluatesFlock(t *testing.T) {
	script := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\quit
`
	got := runREPL(t, replDB(t), script)
	for _, want := range []string{"$1\t$2", "answers in", "bye"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func TestREPLCommands(t *testing.T) {
	script := `
\help
\rels
\strategy dynamic
\strategy bogus
\explain on
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\sql
\plan
\nosuch
\quit
`
	got := runREPL(t, replDB(t), script)
	cases := []string{
		"commands:",
		"baskets(BID, Item)",
		"strategy: dynamic",
		"unknown strategy: bogus",
		"explain: true",
		"decision:",       // dynamic explanations
		"GROUP BY p1, p2", // \sql
		"FILTER",          // \plan rendering
		"unknown command: \\nosuch",
	}
	for _, want := range cases {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func TestREPLSQLBeforeFlock(t *testing.T) {
	got := runREPL(t, replDB(t), "\\sql\n\\plan\n\\quit\n")
	if strings.Count(got, "no flock yet") != 2 {
		t.Errorf("expected two 'no flock yet':\n%s", got)
	}
}

func TestREPLParseError(t *testing.T) {
	script := `
QUERY:
answer(B) :- baskets(B,
FILTER:
COUNT(answer.B) >= 5

\quit
`
	got := runREPL(t, replDB(t), script)
	if !strings.Contains(got, "parse error:") {
		t.Errorf("expected parse error:\n%s", got)
	}
}

func TestREPLStrategies(t *testing.T) {
	for _, s := range []string{"direct", "static", "exhaustive", "levelwise", "dynamic", "naive"} {
		script := "\\strategy " + s + `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\quit
`
		got := runREPL(t, replDB(t), script)
		if !strings.Contains(got, "answers in") {
			t.Errorf("%s: no answer line:\n%s", s, got)
		}
	}
}

func TestREPLExplainPrefix(t *testing.T) {
	script := `EXPLAIN
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\quit
`
	got := runREPL(t, replDB(t), script)
	for _, want := range []string{"safe subqueries", "join order (greedy", "physical plan (direct):", "scan#"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL EXPLAIN missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "answers in") {
		t.Errorf("REPL EXPLAIN must not execute:\n%s", got)
	}
}

func TestREPLExplainAnalyze(t *testing.T) {
	script := `\strategy dynamic
EXPLAIN ANALYZE
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\quit
`
	got := runREPL(t, replDB(t), script)
	for _, want := range []string{"dynamic: ", "answers", "decide", "rows"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL EXPLAIN ANALYZE missing %q:\n%s", want, got)
		}
	}
}

func TestREPLSurvivesEnginePanic(t *testing.T) {
	// SUM over a string column panics inside the engine
	// (storage.Value.AsFloat rejects strings); the session must print
	// the error and keep evaluating the next statement.
	db := replDB(t)
	tags := storage.NewRelation("tags", "BID", "Tag")
	tags.InsertValues(storage.Int(1), storage.Str("x"))
	tags.InsertValues(storage.Int(2), storage.Str("y"))
	db.Add(tags)
	script := `
QUERY:
answer(T) :- tags($1,T)
FILTER:
SUM(answer.T) >= 1

QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5

\quit
`
	got := runREPL(t, db, script)
	if !strings.Contains(got, "internal panic:") {
		t.Errorf("expected recovered panic message:\n%s", got)
	}
	if !strings.Contains(got, "answers in") {
		t.Errorf("session did not survive to evaluate the next statement:\n%s", got)
	}
	if !strings.Contains(got, "bye") {
		t.Errorf("\\quit did not run after the panic:\n%s", got)
	}
}

func TestREPLLint(t *testing.T) {
	// \lint before any flock; then a flock whose relation is missing from
	// the loaded database (QF016 needs the DB) and whose X is a singleton
	// (QF013); \lint reports both even though evaluation failed.
	script := `\lint
QUERY:
answer(B) :- baskets(B,$1) AND nosuch(B,X)
FILTER:
COUNT(answer.B) >= 5

\lint
\quit
`
	got := runREPL(t, replDB(t), script)
	for _, want := range []string{"no flock yet", "[QF016]", "[QF013]"} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL \\lint output missing %q:\n%s", want, got)
		}
	}
}

func TestREPLEOFWithoutQuit(t *testing.T) {
	got := runREPL(t, replDB(t), "\\rels\n")
	if !strings.Contains(got, "baskets") {
		t.Errorf("output:\n%s", got)
	}
}
