package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

func TestGenerateKinds(t *testing.T) {
	for kind, wantRels := range map[string][]string{
		"baskets": {"baskets"},
		"words":   {"baskets"},
		"medical": {"diagnoses", "exhibits", "treatments", "causes"},
		"web":     {"inTitle", "inAnchor", "link"},
		"graph":   {"arc"},
	} {
		dir := t.TempDir()
		if err := run([]string{"-kind", kind, "-n", "50", "-out", dir, "-seed", "4"}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, rel := range wantRels {
			path := filepath.Join(dir, rel+".csv")
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: missing %s", kind, path)
			}
			loaded, err := storage.ReadCSVFile(path)
			if err != nil {
				t.Errorf("%s: %s unreadable: %v", kind, rel, err)
			} else if loaded.Len() == 0 {
				t.Errorf("%s: %s is empty", kind, rel)
			}
		}
	}
}

func TestGenerateWeights(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-kind", "baskets", "-n", "30", "-out", dir, "-weights"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "importance.csv")); err != nil {
		t.Error("missing importance.csv")
	}
	// -weights on a kind without baskets errors.
	if err := run([]string{"-kind", "graph", "-n", "30", "-out", t.TempDir(), "-weights"}); err == nil {
		t.Error("graph -weights should error")
	}
}

func TestGenerateFlockFiles(t *testing.T) {
	for _, kind := range []string{"baskets", "medical", "web", "graph"} {
		dir := t.TempDir()
		if err := run([]string{"-kind", kind, "-n", "40", "-out", dir, "-flock"}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		src, err := os.ReadFile(filepath.Join(dir, kind+".flock"))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		flock, err := core.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: sample flock does not parse: %v", kind, err)
		}
		db, err := storage.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := flock.CheckDatabase(db); err != nil {
			t.Errorf("%s: sample flock does not match generated data: %v", kind, err)
		}
	}
	// Weighted variant references importance.
	dir := t.TempDir()
	if err := run([]string{"-kind", "baskets", "-n", "40", "-out", dir, "-weights", "-flock"}); err != nil {
		t.Fatal(err)
	}
	src, _ := os.ReadFile(filepath.Join(dir, "baskets.flock"))
	if !strings.Contains(string(src), "SUM(answer.W)") {
		t.Errorf("weighted sample flock should use SUM:\n%s", src)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-kind", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown kind should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
