// Command flockgen writes synthetic datasets as CSV relations, ready for
// flockql. The generators mirror the experiment workloads (DESIGN.md's
// substitution table).
//
// Usage:
//
//	flockgen -kind baskets|words|medical|web|graph [-out DIR] [-n N] [-seed S] [-weights]
//	         [-data-dir DIR]
//
// -n scales the primary size (baskets, documents, patients, or nodes).
// -data-dir additionally ingests the dataset into a storage data
// directory (sorted segments + dictionary + catalog) that flockd,
// flockql, and flockbench can open with either the memory or the disk
// engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flockgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flockgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "baskets", "baskets|words|medical|web|graph")
		out     = fs.String("out", ".", "output directory")
		n       = fs.Int("n", 1000, "primary size (baskets/docs/patients/nodes)")
		seed    = fs.Int64("seed", 1, "generator seed")
		weights = fs.Bool("weights", false, "also write importance(BID,W) (baskets/words only)")
		flock   = fs.Bool("flock", false, "also write a matching sample .flock file")
		dataDir = fs.String("data-dir", "", "also ingest into a segment data directory for -engine disk serving")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var db *storage.Database
	switch *kind {
	case "baskets":
		db = workload.Baskets(workload.BasketConfig{
			Baskets: *n, Items: *n / 2, MeanSize: 8, Skew: 1.0, Seed: *seed,
		})
	case "words":
		db = workload.Words(*n, 6**n, 15, *seed)
	case "medical":
		db = workload.Medical(workload.DefaultMedical(*n, *seed))
	case "web":
		db = workload.Web(workload.DefaultWeb(*n, *seed))
	case "graph":
		db = workload.Graph(workload.DefaultGraph(*n, *seed))
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *weights {
		if err := workload.AttachWeights(db, 10, *seed+1); err != nil {
			return fmt.Errorf("-weights requires a baskets relation: %w", err)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, name := range db.Names() {
		rel := db.MustRelation(name)
		path := filepath.Join(*out, name+".csv")
		if err := storage.WriteCSVFile(rel, path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, rel.Len())
	}
	if *dataDir != "" {
		if err := storage.CreateDir(*dataDir, db); err != nil {
			return err
		}
		fmt.Printf("wrote data dir %s (%d relations; open with -engine memory|disk)\n", *dataDir, len(db.Names()))
	}
	if *flock {
		src, ok := sampleFlock(*kind, *weights)
		if !ok {
			return fmt.Errorf("no sample flock for kind %q", *kind)
		}
		path := filepath.Join(*out, *kind+".flock")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (run: flockql -data %s %s)\n", path, *out, path)
	}
	return nil
}

// sampleFlock returns the paper flock matching a generated dataset, with a
// support floor suited to the default sizes.
func sampleFlock(kind string, weights bool) (string, bool) {
	switch kind {
	case "baskets", "words":
		if weights {
			return `# Fig. 10: item pairs whose co-occurrence baskets have total importance >= 110
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= 110
`, true
		}
		return `# Fig. 2: pairs of items appearing together in >= 20 baskets
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 20
`, true
	case "medical":
		return `# Fig. 3: unexplained (symptom, medicine) pairs in >= 20 patients
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20
`, true
	case "web":
		return `# Fig. 4: strongly connected word pairs (union of three relationships)
QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= 20
`, true
	case "graph":
		return `# Fig. 6: nodes with >= 20 successors from which a length-3 path extends
QUERY:
answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2) AND arc(Y2,Y3)
FILTER:
COUNT(answer.X) >= 20
`, true
	default:
		return "", false
	}
}
