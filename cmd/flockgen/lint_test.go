package main

import (
	"testing"

	"queryflocks/internal/analysis"
)

// TestSampleFlocksLintClean runs the analyzer over every flock source the
// generator can emit: the canonical paper programs must produce zero
// error-severity diagnostics (warnings such as the Fig. 4 singleton D1
// are expected and pinned by the golden corpus test in internal/analysis).
func TestSampleFlocksLintClean(t *testing.T) {
	for _, tc := range []struct {
		kind    string
		weights bool
	}{
		{"baskets", false},
		{"baskets", true},
		{"words", false},
		{"medical", false},
		{"web", false},
		{"graph", false},
	} {
		src, ok := sampleFlock(tc.kind, tc.weights)
		if !ok {
			t.Fatalf("no sample flock for kind %q", tc.kind)
		}
		ds := analysis.AnalyzeSource(src, analysis.Options{File: tc.kind})
		if analysis.HasErrors(ds) {
			t.Errorf("sample flock %q (weights=%v) has lint errors:\n%s",
				tc.kind, tc.weights, analysis.Render(ds))
		}
	}
}
