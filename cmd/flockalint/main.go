// Command flockalint statically checks the engine's own Go source
// against its determinism and safety invariants (catalogued in
// docs/DESIGN.md, "Engine invariants"): ordered output never built by
// random map iteration (DL001), streaming pull loops that consult the
// resource gate (DL002), fan-in merged by worker index rather than
// arrival order (DL003), fsync before any durable publish (DL004),
// storage.Value equality routed through Equal/AppendKey (DL005), and no
// wall clock or randomness as data in deterministic packages (DL006).
//
// Usage:
//
//	flockalint [-json] [PACKAGES ...]
//
// Packages are directories or "dir/..." trees; the default is "./...".
// Findings are suppressed per line with `//lint:ignore DLxxx reason`;
// unused suppressions are themselves reported (DL000).
//
// Exit status: 0 when no findings survive suppression, 1 when at least
// one did, 2 on usage, parse, or type-checking problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"queryflocks/internal/golint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flockalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := golint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "flockalint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "flockalint: no packages matched")
		return 2
	}

	loader := golint.NewLoader()
	cfg := golint.DefaultConfig()
	var all []golint.Finding
	broken := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "flockalint:", err)
			broken = true
			continue
		}
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(stderr, "flockalint: %s: %v\n", pkg.Path, terr)
			broken = true
		}
		all = append(all, golint.Analyze(pkg, cfg)...)
	}
	golint.Sort(all)

	if *jsonOut {
		if all == nil {
			all = []golint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "flockalint:", err)
			return 2
		}
	} else if len(all) > 0 {
		fmt.Fprint(stdout, golint.Render(all))
	}
	switch {
	case broken:
		return 2
	case len(all) > 0:
		return 1
	}
	return 0
}
