package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunSingleExperimentTinyScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"reproduction suite", "E8", "paper says 1, 5, 8"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tables []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(tables) != 1 || tables[0]["id"] != "E8" {
		t.Errorf("JSON tables = %v", tables)
	}
}

// TestRunJSONOperatorMetrics validates the op_reports schema on an
// instrumented experiment: -json must attach one report per strategy run,
// each with the aggregate fields and a non-empty typed step list whose
// events carry operator kinds and cardinalities.
func TestRunJSONOperatorMetrics(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E3", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID        string `json:"id"`
		OpReports []struct {
			Strategy   string `json:"strategy"`
			AnswerRows int    `json:"answer_rows"`
			WallNs     int64  `json:"wall_ns"`
			MaxRows    int    `json:"max_rows"`
			TotalRows  int    `json:"total_rows"`
			Steps      []struct {
				Op      string `json:"op"`
				Desc    string `json:"desc"`
				RowsOut int    `json:"rows_out"`
			} `json:"steps"`
		} `json:"op_reports"`
	}
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "E3" {
		t.Fatalf("expected one E3 table, got %+v", tables)
	}
	reports := tables[0].OpReports
	if len(reports) != 6 {
		t.Fatalf("E3 runs 6 plan variants, got %d op_reports", len(reports))
	}
	ops := map[string]bool{}
	for _, r := range reports {
		if r.Strategy == "" || r.WallNs <= 0 {
			t.Errorf("report missing strategy/wall time: %+v", r)
		}
		if len(r.Steps) == 0 {
			t.Errorf("report %q has no steps", r.Strategy)
		}
		if r.MaxRows > r.TotalRows {
			t.Errorf("report %q: max_rows %d > total_rows %d", r.Strategy, r.MaxRows, r.TotalRows)
		}
		for _, s := range r.Steps {
			if s.Op == "" || s.Desc == "" {
				t.Errorf("report %q: step missing op/desc: %+v", r.Strategy, s)
			}
			ops[s.Op] = true
		}
	}
	for _, want := range []string{"join", "group", "step"} {
		if !ops[want] {
			t.Errorf("no %q events recorded across E3 plans", want)
		}
	}
}

// TestRunE1TinyScaleClampsSupports is the regression for the tiny-scale
// crash: -scale 0.0001 used to drive E1's derived support floors
// (docs/100, docs/20) to zero, making the filter accept empty results and
// failing the whole suite. The derived supports now clamp to >= 1.
func TestRunE1TinyScaleClampsSupports(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-scale", "0.0001"}, &out); err != nil {
		t.Fatalf("E1 at scale 0.0001: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "E1") {
		t.Errorf("output missing E1 table:\n%s", out.String())
	}
}

// TestRunPipelineOut checks -pipeline-out writes the BENCH_pipeline.json
// schema with the three-executor comparison and dictionary statistics.
func TestRunPipelineOut(t *testing.T) {
	path := t.TempDir() + "/pipeline.json"
	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-scale", "0.05", "-pipeline-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		Generator   string  `json:"generator"`
		Scale       float64 `json:"scale"`
		Seed        int64   `json:"seed"`
		Experiments []struct {
			ID       string `json:"id"`
			Pipeline []struct {
				Name            string `json:"name"`
				AllocStream     int64  `json:"alloc_stream_bytes"`
				AllocStreamRows int64  `json:"alloc_stream_rows_bytes"`
				DictSize        int    `json:"dict_size"`
			} `json:"pipeline"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &pf); err != nil {
		t.Fatalf("invalid pipeline JSON: %v\n%s", err, raw)
	}
	if pf.Scale != 0.05 || pf.Seed != 1998 || !strings.Contains(pf.Generator, "-exp E1") {
		t.Errorf("header = %+v", pf)
	}
	if len(pf.Experiments) != 1 || pf.Experiments[0].ID != "E1" || len(pf.Experiments[0].Pipeline) == 0 {
		t.Fatalf("experiments = %+v", pf.Experiments)
	}
	p := pf.Experiments[0].Pipeline[0]
	if p.Name == "" || p.AllocStream <= 0 || p.AllocStreamRows <= 0 || p.DictSize < 1 {
		t.Errorf("pipeline metric = %+v", p)
	}
	// An experiment with no pipeline metrics must refuse to write an
	// empty comparison.
	if err := run([]string{"-exp", "E8", "-scale", "0.05", "-pipeline-out", t.TempDir() + "/x.json"}, &out); err == nil {
		t.Error("E8 records no pipeline metrics; -pipeline-out should error")
	}
}

func TestRunRejectsBadScaleAndTimeout(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-scale", "0"},
		{"-scale", "-1"},
		{"-timeout", "-5s"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}
