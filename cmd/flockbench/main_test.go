package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleExperimentTinyScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"reproduction suite", "E8", "paper says 1, 5, 8"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tables []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(tables) != 1 || tables[0]["id"] != "E8" {
		t.Errorf("JSON tables = %v", tables)
	}
}

// TestRunJSONOperatorMetrics validates the op_reports schema on an
// instrumented experiment: -json must attach one report per strategy run,
// each with the aggregate fields and a non-empty typed step list whose
// events carry operator kinds and cardinalities.
func TestRunJSONOperatorMetrics(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E3", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID        string `json:"id"`
		OpReports []struct {
			Strategy   string `json:"strategy"`
			AnswerRows int    `json:"answer_rows"`
			WallNs     int64  `json:"wall_ns"`
			MaxRows    int    `json:"max_rows"`
			TotalRows  int    `json:"total_rows"`
			Steps      []struct {
				Op      string `json:"op"`
				Desc    string `json:"desc"`
				RowsOut int    `json:"rows_out"`
			} `json:"steps"`
		} `json:"op_reports"`
	}
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "E3" {
		t.Fatalf("expected one E3 table, got %+v", tables)
	}
	reports := tables[0].OpReports
	if len(reports) != 6 {
		t.Fatalf("E3 runs 6 plan variants, got %d op_reports", len(reports))
	}
	ops := map[string]bool{}
	for _, r := range reports {
		if r.Strategy == "" || r.WallNs <= 0 {
			t.Errorf("report missing strategy/wall time: %+v", r)
		}
		if len(r.Steps) == 0 {
			t.Errorf("report %q has no steps", r.Strategy)
		}
		if r.MaxRows > r.TotalRows {
			t.Errorf("report %q: max_rows %d > total_rows %d", r.Strategy, r.MaxRows, r.TotalRows)
		}
		for _, s := range r.Steps {
			if s.Op == "" || s.Desc == "" {
				t.Errorf("report %q: step missing op/desc: %+v", r.Strategy, s)
			}
			ops[s.Op] = true
		}
	}
	for _, want := range []string{"join", "group", "step"} {
		if !ops[want] {
			t.Errorf("no %q events recorded across E3 plans", want)
		}
	}
}

// TestRunE1TinyScaleClampsSupports is the regression for the tiny-scale
// crash: -scale 0.0001 used to drive E1's derived support floors
// (docs/100, docs/20) to zero, making the filter accept empty results and
// failing the whole suite. The derived supports now clamp to >= 1.
func TestRunE1TinyScaleClampsSupports(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-scale", "0.0001"}, &out); err != nil {
		t.Fatalf("E1 at scale 0.0001: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "E1") {
		t.Errorf("output missing E1 table:\n%s", out.String())
	}
}

func TestRunRejectsBadScaleAndTimeout(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-scale", "0"},
		{"-scale", "-1"},
		{"-timeout", "-5s"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}
