package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleExperimentTinyScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"reproduction suite", "E8", "paper says 1, 5, 8"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E8", "-scale", "0.05", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tables []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(tables) != 1 || tables[0]["id"] != "E8" {
		t.Errorf("JSON tables = %v", tables)
	}
}
