// Command flockbench runs the reproduction suite: one experiment per
// figure/claim of "Query Flocks: A Generalization of Association-Rule
// Mining" (SIGMOD 1998). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded reference output.
//
// Usage:
//
//	flockbench [-exp E1,E3] [-scale 1.0] [-seed 1998] [-workers 0] [-json] [-pprof addr] [-timeout 30s]
//
// Without -exp, the whole suite (E1–E12) runs in order; -exp selects a
// comma-separated subset; -json emits the tables as a JSON array. E11 sweeps the parallel worker knob and, under
// -json, reports machine-readable ns/op plus the speedup over workers=1
// in each table's "metrics" field; -workers sets the worker count the
// other experiments evaluate with (0 = one per CPU, 1 = sequential).
//
// -json additionally turns on per-operator observability: instrumented
// experiments attach one "op_reports" entry per strategy run (joins,
// anti-joins, group-bys, filter decisions, with rows in/out and wall
// time). -pprof serves net/http/pprof and expvar on the given address for
// live profiling of long runs; the last completed experiment's reports are
// published under the expvar key "flock_last_report".
//
// -pipeline-out FILE extracts the executor pipeline comparison (interned
// columnar vs row-at-a-time streaming vs materializing: peak buffered
// tuples, allocation, dictionary statistics) into FILE using the
// BENCH_pipeline.json schema; it implies metrics collection and composes
// with both output modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"queryflocks/internal/experiments"
	"queryflocks/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flockbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flockbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiments to run, comma-separated (e.g. E1,E3,E6); empty runs all")
		scale   = fs.Float64("scale", 1.0, "workload scale factor (1.0 = EXPERIMENTS.md reference)")
		seed    = fs.Int64("seed", 1998, "generator seed")
		workers = fs.Int("workers", 0, "join/group-by worker count (0 = one per CPU, 1 = sequential)")
		asJSON  = fs.Bool("json", false, "emit results as a JSON array (with per-operator op_reports) instead of tables")
		pprof   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		timeout = fs.Duration("timeout", 0, "wall-clock limit per strategy evaluation (0 = none); exceeding runs abort with a typed error")
		pipeOut = fs.String("pipeline-out", "", "write the executor pipeline comparison (BENCH_pipeline.json schema) to this file; implies metrics collection")
		dataDir = fs.String("data-dir", "", "persistent storage data directory for the engine experiments (E12); empty uses a temp dir")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale must be > 0 (got %g)", *scale)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *timeout)
	}

	if *pprof != "" {
		addr, err := obs.StartDebugServer(*pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flockbench: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers,
		Metrics: *asJSON || *pprof != "" || *pipeOut != "", Timeout: *timeout,
		DataDir: *dataDir}
	suite := experiments.Suite()
	if *exp != "" {
		suite = suite[:0:0]
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			suite = append(suite, e)
		}
	}

	if *asJSON {
		var tables []*experiments.Table
		for _, e := range suite {
			tab, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			for _, r := range tab.OpReports {
				obs.PublishReport(r)
			}
			tables = append(tables, tab)
		}
		if err := writePipeline(*pipeOut, cfg, *exp, tables); err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}

	fmt.Fprintf(out, "query-flocks reproduction suite (scale %.2f, seed %d)\n\n", cfg.Scale, cfg.Seed)
	failed := 0
	var tables []*experiments.Table
	for _, e := range suite {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			failed++
			fmt.Fprintf(out, "%s FAILED: %v\n\n", e.ID, err)
			continue
		}
		for _, r := range tab.OpReports {
			obs.PublishReport(r)
		}
		tables = append(tables, tab)
		fmt.Fprintln(out, tab)
		fmt.Fprintf(out, "(%s total %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return writePipeline(*pipeOut, cfg, *exp, tables)
}

// pipelineFile is the BENCH_pipeline.json schema: the command line that
// regenerates the numbers, the workload knobs, and each experiment's
// executor comparison.
type pipelineFile struct {
	Generator   string               `json:"generator"`
	Scale       float64              `json:"scale"`
	Seed        int64                `json:"seed"`
	Experiments []pipelineExperiment `json:"experiments"`
}

type pipelineExperiment struct {
	ID       string                       `json:"id"`
	Title    string                       `json:"title"`
	Pipeline []experiments.PipelineMetric `json:"pipeline"`
}

// writePipeline writes the pipeline comparison of every table that
// recorded one. A table with no pipeline metrics (the experiment does
// not call AddPipeline) is skipped, not an error; an empty path is a
// no-op.
func writePipeline(path string, cfg experiments.Config, exp string, tables []*experiments.Table) error {
	if path == "" {
		return nil
	}
	gen := "go run ./cmd/flockbench -json"
	if exp != "" {
		gen = fmt.Sprintf("go run ./cmd/flockbench -exp %s -scale %g -json", exp, cfg.Scale)
	}
	if cfg.Workers != 0 {
		gen += fmt.Sprintf(" -workers %d", cfg.Workers)
	}
	pf := pipelineFile{Generator: gen, Scale: cfg.Scale, Seed: cfg.Seed}
	for _, t := range tables {
		if len(t.Pipeline) == 0 {
			continue
		}
		pf.Experiments = append(pf.Experiments, pipelineExperiment{ID: t.ID, Title: t.Title, Pipeline: t.Pipeline})
	}
	if len(pf.Experiments) == 0 {
		return fmt.Errorf("-pipeline-out: no selected experiment records pipeline metrics")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
