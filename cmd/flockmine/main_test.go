package main

import (
	"os"
	"path/filepath"
	"testing"

	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

func basketsCSV(t *testing.T) string {
	t.Helper()
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 300, Items: 30, MeanSize: 5, Skew: 0.8, Seed: 14,
	})
	path := filepath.Join(t.TempDir(), "baskets.csv")
	if err := storage.WriteCSVFile(db.MustRelation("baskets"), path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMineEngines(t *testing.T) {
	path := basketsCSV(t)
	for _, engine := range []string{"flocks", "classic"} {
		if err := run([]string{"-data", path, "-support", "10", "-engine", engine}); err != nil {
			t.Errorf("%s: %v", engine, err)
		}
	}
}

func TestMineRulesAndCSVExport(t *testing.T) {
	path := basketsCSV(t)
	out := filepath.Join(t.TempDir(), "rules.csv")
	err := run([]string{"-data", path, "-support", "10", "-rules", "-min-confidence", "0.3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := storage.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Error("exported rules CSV is empty")
	}
	if rel.Arity() != 5 {
		t.Errorf("rules CSV arity = %d", rel.Arity())
	}
}

func TestMinePprofServer(t *testing.T) {
	path := basketsCSV(t)
	if err := run([]string{"-data", path, "-support", "10", "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	// Unbindable address errors out before mining.
	if err := run([]string{"-data", path, "-pprof", "256.0.0.1:1"}); err == nil {
		t.Error("bad -pprof address should error")
	}
}

func TestMineErrors(t *testing.T) {
	path := basketsCSV(t)
	cases := [][]string{
		{},
		{"-data", "/no/such.csv"},
		{"-data", path, "-engine", "bogus"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	// Wrong arity CSV.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("A,B,C\n1,2,3\n"), 0o644)
	if err := run([]string{"-data", bad}); err == nil {
		t.Error("arity-3 CSV should error")
	}
}
