// Command flockmine mines frequent itemsets and association rules from a
// baskets CSV, exposing the two mining stacks of this repository:
//
//   - "flocks": footnote 2's sequence of query flocks, one per itemset
//     cardinality, each semi-joining the previous level;
//   - "classic": the [AS94] level-wise algorithm.
//
// Both find identical itemsets; rules (with the §1.1 support, confidence
// and interest measures) always derive from the classic counts.
//
// Usage:
//
//	flockmine -data baskets.csv [-support 20] [-engine flocks|classic]
//	          [-maxk 0] [-rules] [-min-confidence 0.5] [-out rules.csv]
//	          [-timeout 5m]
//
// -pprof ADDR serves net/http/pprof and expvar on ADDR for live profiling
// of long mining runs; -timeout bounds the whole flocks-engine run with
// one wall-clock deadline shared by every level's evaluation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"queryflocks/internal/apriori"
	"queryflocks/internal/core"
	"queryflocks/internal/mining"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flockmine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flockmine", flag.ContinueOnError)
	var (
		data    = fs.String("data", "", "baskets CSV file (2 columns: basket, item)")
		support = fs.Int("support", 20, "minimum support count")
		engine  = fs.String("engine", "flocks", "flocks|classic")
		maxK    = fs.Int("maxk", 0, "max itemset size (0 = unbounded)")
		rules   = fs.Bool("rules", false, "also derive association rules")
		minConf = fs.Float64("min-confidence", 0.5, "confidence floor for -rules")
		out     = fs.String("out", "", "write rules as CSV to this file (with -rules)")
		top     = fs.Int("top", 10, "rules to print (by confidence)")
		workers = fs.Int("workers", 0, "join/group-by worker count for the flocks engine (0 = one per CPU, 1 = sequential)")
		pprof   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		timeout = fs.Duration("timeout", 0, "wall-clock limit for the whole flocks-engine mining run (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data FILE is required")
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *timeout)
	}
	if *pprof != "" {
		addr, err := obs.StartDebugServer(*pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flockmine: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}
	rel, err := storage.ReadCSVFile(*data)
	if err != nil {
		return err
	}

	switch *engine {
	case "flocks":
		db := storage.NewDatabase()
		db.Add(rel.Rename("baskets", nil))
		// One deadline covers the whole level sequence: every level's
		// evaluation derives its gate from the same expiring context.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		res, err := mining.FrequentItemsets(db, *support, &mining.Options{
			MaxK: *maxK,
			Eval: &core.EvalOptions{Workers: *workers, Ctx: ctx},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d frequent itemsets in %d levels (flock sequence):\n", res.Count(), len(res.Levels))
		for k, level := range res.Levels {
			fmt.Printf("  L%d: %d sets\n", k+1, level.Len())
		}
		fmt.Printf("maximal sets: %d\n", len(res.MaximalItemsets()))
	case "classic":
		ds, err := apriori.FromBaskets(rel)
		if err != nil {
			return err
		}
		levels := apriori.Frequent(ds, *support, *maxK)
		total := 0
		fmt.Println("frequent itemsets (classic a-priori):")
		for k, level := range levels {
			if len(level) == 0 {
				break
			}
			total += len(level)
			fmt.Printf("  L%d: %d sets\n", k+1, len(level))
		}
		fmt.Printf("total: %d\n", total)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	if !*rules {
		return nil
	}
	ds, err := apriori.FromBaskets(rel)
	if err != nil {
		return err
	}
	mined := apriori.Rules(ds, *support, &apriori.RuleOptions{
		MinConfidence: *minConf, MaxK: *maxK, SingleConsequent: true,
	})
	fmt.Printf("\n%d rules with confidence >= %.2f; top %d:\n", len(mined), *minConf, *top)
	for i, r := range mined {
		if i == *top {
			break
		}
		fmt.Printf("  %s\n", r.Render(ds))
	}
	if *out != "" {
		if err := storage.WriteCSVFile(apriori.RulesRelation(ds, mined), *out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
