// Command flockd serves query-flock evaluation over HTTP: load a
// directory of CSV relations once, then answer flock programs posted by
// clients. It is the long-running face of the engine — the cooperative
// cancellation layer (contexts, wall deadlines, tuple and row budgets)
// keeps one runaway query from taking the service down, and graceful
// shutdown drains in-flight queries before exiting.
//
// Usage:
//
//	flockd -data DIR [-addr localhost:8080] [-timeout 30s]
//	       [-max-queries 4] [-max-tuples 0] [-max-rows 0]
//	       [-workers 0] [-plan-cache 256] [-memo-mb 64] [-pprof addr]
//	flockd -data-dir DIR [-engine memory|disk] [...]
//
// With -data-dir the server opens a data directory created by flockgen
// -data-dir (segments + dictionary + catalog) under the chosen storage
// engine; -engine disk streams relations from the sorted segment files
// instead of materializing them. Mutations then append durably to the
// directory's delta layer and prepared flocks are persisted in it, so
// both survive restarts.
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /rels             loaded relations (JSON: name, columns, rows)
//	GET  /stats            serving-layer cache counters (obs.CacheStats)
//	POST /query            flock program in the body; evaluates and
//	                       returns the answer plus an obs.RunReport
//	                       (?strategy=, ?timeout= tighten per request;
//	                       ?cache=0 bypasses the caches)
//	POST /prepare          registers a prepared flock, returns its handle
//	POST /invoke/{handle}  evaluates a prepared flock without re-parsing,
//	                       re-linting, or re-planning; optional JSON body
//	                       {"threshold": N} rebinds the filter threshold
//	POST /mutate/{rel}     appends CSV rows to a relation (copy-on-write)
//	                       and bumps the data version, invalidating every
//	                       cached plan and memoized subquery result
//
// Caching: -plan-cache bounds the LRU plan cache (entries; 0 disables)
// and -memo-mb the cross-request candidate-subquery memo (MiB of
// estimated relation payload; 0 disables). Cache keys embed the
// canonical program text and the data version, so answers are identical
// with caches hot, cold, or disabled.
//
// Statuses: 400 parse/validation errors, 404 unknown handle or relation,
// 413 body over 1 MiB, 503 over the -max-queries cap, 504 wall deadline
// or client disconnect, 422 a -max-tuples/-max-rows budget was exceeded,
// 500 a recovered engine panic.
//
// SIGINT/SIGTERM stop accepting connections, drain in-flight queries
// (bounded by -drain), and exit. -pprof serves net/http/pprof and expvar
// (including flock_last_report) on a second address.
//
// Cluster mode shards one flockd across worker processes:
//
//	flockd -data DIR -shard-index I -shard-count N [-shard-by rel[:col]]
//	flockd -data DIR -coordinator -shards host:port,host:port[,...]
//	flockd -data DIR -coordinator -spawn-workers N
//
// Every process loads the same data; a worker restricts itself to its
// contiguous range partition of the sharded relation (the map is a
// deterministic function of the data, so coordinator and workers agree
// without a handshake) and serves POST /partial, the read-only
// partial-group-state endpoint. The coordinator answers the normal query
// API, scattering each FILTER computation it can legally partition to
// the shards and merging their partial states in shard order — answers
// are bit-identical at every shard count. Computations the shard map
// cannot partition run coordinator-local. -spawn-workers execs N local
// workers instead of connecting to an externally managed fleet. A dead
// shard fails the query with a 502 naming the shard; -allow-partial
// instead serves the surviving shards' merge with partial=true in the
// report. /mutate is refused (501) in coordinator mode: workers derive
// their partition from their own data load, so data changes require a
// cluster restart.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"queryflocks/internal/cluster"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flockd:", err)
		os.Exit(1)
	}
}

// run parses flags, loads the database, and serves until ctx is
// canceled; it returns after in-flight queries drain. The bound address
// is announced on out ("flockd: listening on ...") so callers — and the
// tests — can use -addr with port 0.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := newFlagSet()
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if err := fs.validate(); err != nil {
		return err
	}

	if *fs.pprof != "" {
		addr, err := obs.StartDebugServer(*fs.pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "flockd: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}

	var (
		db     *storage.Database
		dir    *storage.Dir
		source string
		err    error
	)
	if *fs.dataDir != "" {
		// A data directory created by flockgen -data-dir (or
		// storage.CreateDir): segments, dictionary, catalog, and deltas,
		// served by the chosen engine. Mutations append to the delta layer
		// and survive restarts, as do prepared-flock registrations.
		engine, perr := storage.ParseEngine(*fs.engine)
		if perr != nil {
			return perr
		}
		db, dir, err = storage.OpenDir(*fs.dataDir, engine)
		source = fmt.Sprintf("%s (engine=%s)", *fs.dataDir, engine)
	} else {
		db, err = storage.LoadDir(*fs.data)
		source = *fs.data
	}
	if err != nil {
		return err
	}
	if len(db.Names()) == 0 {
		return fmt.Errorf("no relations found in %s", source)
	}

	if *fs.shardCount > 0 {
		// Worker mode: cut the loaded database down to this shard's
		// partition. The map is rebuilt from the full data, so every
		// worker — and the coordinator — derives the same assignment.
		rel, col, perr := cluster.ParseShardBy(*fs.shardBy)
		if perr != nil {
			return perr
		}
		m, merr := cluster.BuildMap(db, rel, col, *fs.shardCount)
		if merr != nil {
			return merr
		}
		db, err = m.Restrict(db, *fs.shardIndex)
		if err != nil {
			return err
		}
		source = fmt.Sprintf("%s, shard %d/%d of %s", source, *fs.shardIndex, *fs.shardCount, m)
	}

	var coord *cluster.Coordinator
	if *fs.coordinator {
		shards := splitShards(*fs.shards)
		if *fs.spawnWorkers > 0 {
			spawned, cleanup, serr := spawnLocalWorkers(ctx, fs, *fs.spawnWorkers, out)
			if serr != nil {
				return serr
			}
			defer cleanup()
			shards = spawned
		}
		rel, col, perr := cluster.ParseShardBy(*fs.shardBy)
		if perr != nil {
			return perr
		}
		m, merr := cluster.BuildMap(db, rel, col, len(shards))
		if merr != nil {
			return merr
		}
		coord = cluster.New(m, &cluster.Client{
			Shards:  shards,
			Timeout: *fs.shardTimeout,
			Retries: *fs.shardRetries,
			Backoff: *fs.shardBackoff,
		}, db.Names())
		coord.AllowPartial = *fs.allowPartial
		fmt.Fprintf(out, "flockd: coordinating %d shard(s) over %s (%s)\n",
			len(shards), m, strings.Join(shards, ","))
	}

	srv := newServer(db, serverConfig{
		Timeout:       *fs.timeout,
		MaxQueries:    *fs.maxQueries,
		MaxTuples:     *fs.maxTuples,
		MaxRows:       *fs.maxRows,
		Workers:       *fs.workers,
		PlanCacheSize: *fs.planCache,
		MemoMaxBytes:  int64(*fs.memoMB) << 20,
		Dir:           dir,
		Cluster:       coord,
	})
	srv.loadPrepared(out)

	ln, err := net.Listen("tcp", *fs.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "flockd: listening on %s (%d relations from %s)\n",
		ln.Addr(), len(db.Names()), source)
	return serveHTTP(ctx, ln, srv.handler(), *fs.drain, out)
}

// serveHTTP runs the HTTP server on ln until ctx is canceled, then shuts
// down gracefully: the listener closes immediately, in-flight requests
// get up to drain to finish, and only then does serveHTTP return.
func serveHTTP(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration, out io.Writer) error {
	httpSrv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "flockd: shutting down, draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", drain, err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}

// flockdFlags groups the flag set so run and the tests share one
// definition of the knobs and their validation.
type flockdFlags struct {
	fs         *flag.FlagSet
	data       *string
	dataDir    *string
	engine     *string
	addr       *string
	timeout    *time.Duration
	drain      *time.Duration
	maxQueries *int
	maxTuples  *int
	maxRows    *int
	workers    *int
	planCache  *int
	memoMB     *int
	pprof      *string

	coordinator  *bool
	shards       *string
	spawnWorkers *int
	shardBy      *string
	shardIndex   *int
	shardCount   *int
	allowPartial *bool
	shardTimeout *time.Duration
	shardRetries *int
	shardBackoff *time.Duration
}

func newFlagSet() *flockdFlags {
	fs := flag.NewFlagSet("flockd", flag.ContinueOnError)
	f := &flockdFlags{fs: fs}
	f.data = fs.String("data", ".", "directory of CSV relations (header row = column names)")
	f.dataDir = fs.String("data-dir", "", "data directory created by flockgen -data-dir; overrides -data and makes /mutate and /prepare durable")
	f.engine = fs.String("engine", "memory", "storage engine for -data-dir: memory (materialize at open) or disk (stream from segments)")
	f.addr = fs.String("addr", "localhost:8080", "listen address (port 0 picks a free port)")
	f.timeout = fs.Duration("timeout", 30*time.Second, "per-query wall-clock limit (0 = none); ?timeout= may tighten it")
	f.drain = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
	f.maxQueries = fs.Int("max-queries", 4, "concurrent-query admission cap; excess requests get 503 (0 = no cap)")
	f.maxTuples = fs.Int("max-tuples", 0, "per-query live-tuple budget (0 = unlimited)")
	f.maxRows = fs.Int("max-rows", 0, "per-query answer-row budget (0 = unlimited)")
	f.workers = fs.Int("workers", 0, "join/group-by worker count (0 = one per CPU, 1 = sequential)")
	f.planCache = fs.Int("plan-cache", 256, "LRU plan-cache capacity in entries (0 = disabled)")
	f.memoMB = fs.Int("memo-mb", 64, "candidate-subquery memo bound in MiB (0 = disabled)")
	f.pprof = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	f.coordinator = fs.Bool("coordinator", false, "coordinate a shard cluster: scatter FILTER computations to -shards and merge their partial states")
	f.shards = fs.String("shards", "", "comma-separated worker addresses in shard-index order (coordinator mode)")
	f.spawnWorkers = fs.Int("spawn-workers", 0, "exec this many local worker processes instead of connecting to -shards (coordinator mode)")
	f.shardBy = fs.String("shard-by", "", "relation to range-shard, as rel or rel:col (default: the largest relation, column 0)")
	f.shardIndex = fs.Int("shard-index", -1, "this worker's shard index in [0,-shard-count)")
	f.shardCount = fs.Int("shard-count", 0, "worker mode: restrict the loaded data to shard -shard-index of this many")
	f.allowPartial = fs.Bool("allow-partial", false, "serve degraded answers when some (not all) shards fail, marked partial in the report")
	f.shardTimeout = fs.Duration("shard-timeout", 10*time.Second, "per-attempt limit for one shard call")
	f.shardRetries = fs.Int("shard-retries", 2, "additional attempts after a retryable shard failure")
	f.shardBackoff = fs.Duration("shard-backoff", 100*time.Millisecond, "linear backoff unit between shard retries")
	return f
}

func (f *flockdFlags) validate() error {
	if *f.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *f.timeout)
	}
	if *f.drain <= 0 {
		return fmt.Errorf("-drain must be > 0 (got %v)", *f.drain)
	}
	if *f.maxQueries < 0 {
		return fmt.Errorf("-max-queries must be >= 0 (got %d)", *f.maxQueries)
	}
	if *f.maxTuples < 0 || *f.maxRows < 0 {
		return fmt.Errorf("-max-tuples and -max-rows must be >= 0")
	}
	if *f.planCache < 0 || *f.memoMB < 0 {
		return fmt.Errorf("-plan-cache and -memo-mb must be >= 0")
	}
	if _, err := storage.ParseEngine(*f.engine); err != nil {
		return err
	}
	if *f.engine == "disk" && *f.dataDir == "" {
		return fmt.Errorf("-engine disk requires -data-dir (CSV loading is memory-only)")
	}
	if _, _, err := cluster.ParseShardBy(*f.shardBy); err != nil {
		return err
	}
	if *f.shardCount < 0 || *f.spawnWorkers < 0 || *f.shardRetries < 0 {
		return fmt.Errorf("-shard-count, -spawn-workers, and -shard-retries must be >= 0")
	}
	if *f.shardTimeout < 0 || *f.shardBackoff < 0 {
		return fmt.Errorf("-shard-timeout and -shard-backoff must be >= 0")
	}
	if *f.shardCount > 0 {
		if *f.coordinator {
			return fmt.Errorf("-shard-count is worker mode; it cannot be combined with -coordinator")
		}
		if *f.shardIndex < 0 || *f.shardIndex >= *f.shardCount {
			return fmt.Errorf("-shard-index must be in [0,%d) (got %d)", *f.shardCount, *f.shardIndex)
		}
	} else if *f.shardIndex >= 0 {
		return fmt.Errorf("-shard-index requires -shard-count")
	}
	if *f.coordinator {
		haveShards, haveSpawn := *f.shards != "", *f.spawnWorkers > 0
		if haveShards == haveSpawn {
			return fmt.Errorf("-coordinator requires exactly one of -shards or -spawn-workers")
		}
	} else if *f.shards != "" || *f.spawnWorkers > 0 {
		return fmt.Errorf("-shards and -spawn-workers require -coordinator")
	}
	return nil
}

// splitShards parses the -shards list, tolerating blanks from trailing
// commas.
func splitShards(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// workerCommand resolves the executable (plus leading args) used to exec
// one local worker. The tests override it to re-enter the test binary.
var workerCommand = func() (string, []string, error) {
	exe, err := os.Executable()
	return exe, nil, err
}

// workerAnnounceTimeout bounds how long a spawned worker may take to
// announce its bound address.
const workerAnnounceTimeout = 30 * time.Second

// spawnLocalWorkers execs n worker flockds against the same data flags as
// the coordinator, each on a free port, and returns their addresses in
// shard-index order. Workers announce "flockd: listening on ADDR ..." on
// stderr; the announcement is parsed and the rest of each worker's output
// is forwarded to out. The cleanup function TERMs and reaps the fleet.
func spawnLocalWorkers(ctx context.Context, f *flockdFlags, n int, out io.Writer) ([]string, func(), error) {
	exe, baseArgs, err := workerCommand()
	if err != nil {
		return nil, nil, err
	}
	var procs []*exec.Cmd
	cleanup := func() {
		for _, c := range procs {
			if c.Process != nil {
				c.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, c := range procs {
			c.Wait()
		}
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		args := append(append([]string(nil), baseArgs...), workerArgs(f, i, n)...)
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), "FLOCKD_WORKER_HELPER=1")
		stderr, perr := cmd.StderrPipe()
		if perr == nil {
			perr = cmd.Start()
		}
		if perr != nil {
			cleanup()
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, perr)
		}
		procs = append(procs, cmd)
		addr, aerr := awaitAnnouncement(ctx, stderr, out)
		if aerr != nil {
			cleanup()
			return nil, nil, fmt.Errorf("worker %d: %w", i, aerr)
		}
		addrs[i] = addr
		fmt.Fprintf(out, "flockd: worker %d/%d up on %s\n", i, n, addr)
	}
	return addrs, cleanup, nil
}

// workerArgs derives one worker's command line from the coordinator's
// flags: same data source, same shard map inputs, a free port.
func workerArgs(f *flockdFlags, idx, count int) []string {
	args := []string{}
	if *f.dataDir != "" {
		args = append(args, "-data-dir", *f.dataDir, "-engine", *f.engine)
	} else {
		args = append(args, "-data", *f.data)
	}
	if *f.shardBy != "" {
		args = append(args, "-shard-by", *f.shardBy)
	}
	return append(args,
		"-addr", "127.0.0.1:0",
		"-shard-index", strconv.Itoa(idx),
		"-shard-count", strconv.Itoa(count),
		"-workers", strconv.Itoa(*f.workers),
		"-timeout", (*f.timeout).String(),
	)
}

// awaitAnnouncement scans a worker's stderr for the listen announcement,
// then keeps draining the pipe to out in the background.
func awaitAnnouncement(ctx context.Context, r io.Reader, out io.Writer) (string, error) {
	type hit struct {
		addr string
		err  error
	}
	ch := make(chan hit, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "flockd: listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					rest = rest[:i]
				}
				ch <- hit{addr: rest}
				// Keep the pipe drained so the worker never blocks on a
				// full stderr buffer.
				for sc.Scan() {
					fmt.Fprintln(out, sc.Text())
				}
				return
			}
			fmt.Fprintln(out, line)
		}
		ch <- hit{err: fmt.Errorf("worker exited before announcing its address")}
	}()
	select {
	case h := <-ch:
		return h.addr, h.err
	case <-ctx.Done():
		return "", ctx.Err()
	case <-time.After(workerAnnounceTimeout):
		return "", fmt.Errorf("no listen announcement within %v", workerAnnounceTimeout)
	}
}
