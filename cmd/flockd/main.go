// Command flockd serves query-flock evaluation over HTTP: load a
// directory of CSV relations once, then answer flock programs posted by
// clients. It is the long-running face of the engine — the cooperative
// cancellation layer (contexts, wall deadlines, tuple and row budgets)
// keeps one runaway query from taking the service down, and graceful
// shutdown drains in-flight queries before exiting.
//
// Usage:
//
//	flockd -data DIR [-addr localhost:8080] [-timeout 30s]
//	       [-max-queries 4] [-max-tuples 0] [-max-rows 0]
//	       [-workers 0] [-plan-cache 256] [-memo-mb 64] [-pprof addr]
//	flockd -data-dir DIR [-engine memory|disk] [...]
//
// With -data-dir the server opens a data directory created by flockgen
// -data-dir (segments + dictionary + catalog) under the chosen storage
// engine; -engine disk streams relations from the sorted segment files
// instead of materializing them. Mutations then append durably to the
// directory's delta layer and prepared flocks are persisted in it, so
// both survive restarts.
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /rels             loaded relations (JSON: name, columns, rows)
//	GET  /stats            serving-layer cache counters (obs.CacheStats)
//	POST /query            flock program in the body; evaluates and
//	                       returns the answer plus an obs.RunReport
//	                       (?strategy=, ?timeout= tighten per request;
//	                       ?cache=0 bypasses the caches)
//	POST /prepare          registers a prepared flock, returns its handle
//	POST /invoke/{handle}  evaluates a prepared flock without re-parsing,
//	                       re-linting, or re-planning; optional JSON body
//	                       {"threshold": N} rebinds the filter threshold
//	POST /mutate/{rel}     appends CSV rows to a relation (copy-on-write)
//	                       and bumps the data version, invalidating every
//	                       cached plan and memoized subquery result
//
// Caching: -plan-cache bounds the LRU plan cache (entries; 0 disables)
// and -memo-mb the cross-request candidate-subquery memo (MiB of
// estimated relation payload; 0 disables). Cache keys embed the
// canonical program text and the data version, so answers are identical
// with caches hot, cold, or disabled.
//
// Statuses: 400 parse/validation errors, 404 unknown handle or relation,
// 413 body over 1 MiB, 503 over the -max-queries cap, 504 wall deadline
// or client disconnect, 422 a -max-tuples/-max-rows budget was exceeded,
// 500 a recovered engine panic.
//
// SIGINT/SIGTERM stop accepting connections, drain in-flight queries
// (bounded by -drain), and exit. -pprof serves net/http/pprof and expvar
// (including flock_last_report) on a second address.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flockd:", err)
		os.Exit(1)
	}
}

// run parses flags, loads the database, and serves until ctx is
// canceled; it returns after in-flight queries drain. The bound address
// is announced on out ("flockd: listening on ...") so callers — and the
// tests — can use -addr with port 0.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := newFlagSet()
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if err := fs.validate(); err != nil {
		return err
	}

	if *fs.pprof != "" {
		addr, err := obs.StartDebugServer(*fs.pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "flockd: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}

	var (
		db     *storage.Database
		dir    *storage.Dir
		source string
		err    error
	)
	if *fs.dataDir != "" {
		// A data directory created by flockgen -data-dir (or
		// storage.CreateDir): segments, dictionary, catalog, and deltas,
		// served by the chosen engine. Mutations append to the delta layer
		// and survive restarts, as do prepared-flock registrations.
		engine, perr := storage.ParseEngine(*fs.engine)
		if perr != nil {
			return perr
		}
		db, dir, err = storage.OpenDir(*fs.dataDir, engine)
		source = fmt.Sprintf("%s (engine=%s)", *fs.dataDir, engine)
	} else {
		db, err = storage.LoadDir(*fs.data)
		source = *fs.data
	}
	if err != nil {
		return err
	}
	if len(db.Names()) == 0 {
		return fmt.Errorf("no relations found in %s", source)
	}

	srv := newServer(db, serverConfig{
		Timeout:       *fs.timeout,
		MaxQueries:    *fs.maxQueries,
		MaxTuples:     *fs.maxTuples,
		MaxRows:       *fs.maxRows,
		Workers:       *fs.workers,
		PlanCacheSize: *fs.planCache,
		MemoMaxBytes:  int64(*fs.memoMB) << 20,
		Dir:           dir,
	})
	srv.loadPrepared(out)

	ln, err := net.Listen("tcp", *fs.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "flockd: listening on %s (%d relations from %s)\n",
		ln.Addr(), len(db.Names()), source)
	return serveHTTP(ctx, ln, srv.handler(), *fs.drain, out)
}

// serveHTTP runs the HTTP server on ln until ctx is canceled, then shuts
// down gracefully: the listener closes immediately, in-flight requests
// get up to drain to finish, and only then does serveHTTP return.
func serveHTTP(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration, out io.Writer) error {
	httpSrv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "flockd: shutting down, draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", drain, err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}

// flockdFlags groups the flag set so run and the tests share one
// definition of the knobs and their validation.
type flockdFlags struct {
	fs         *flag.FlagSet
	data       *string
	dataDir    *string
	engine     *string
	addr       *string
	timeout    *time.Duration
	drain      *time.Duration
	maxQueries *int
	maxTuples  *int
	maxRows    *int
	workers    *int
	planCache  *int
	memoMB     *int
	pprof      *string
}

func newFlagSet() *flockdFlags {
	fs := flag.NewFlagSet("flockd", flag.ContinueOnError)
	f := &flockdFlags{fs: fs}
	f.data = fs.String("data", ".", "directory of CSV relations (header row = column names)")
	f.dataDir = fs.String("data-dir", "", "data directory created by flockgen -data-dir; overrides -data and makes /mutate and /prepare durable")
	f.engine = fs.String("engine", "memory", "storage engine for -data-dir: memory (materialize at open) or disk (stream from segments)")
	f.addr = fs.String("addr", "localhost:8080", "listen address (port 0 picks a free port)")
	f.timeout = fs.Duration("timeout", 30*time.Second, "per-query wall-clock limit (0 = none); ?timeout= may tighten it")
	f.drain = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
	f.maxQueries = fs.Int("max-queries", 4, "concurrent-query admission cap; excess requests get 503 (0 = no cap)")
	f.maxTuples = fs.Int("max-tuples", 0, "per-query live-tuple budget (0 = unlimited)")
	f.maxRows = fs.Int("max-rows", 0, "per-query answer-row budget (0 = unlimited)")
	f.workers = fs.Int("workers", 0, "join/group-by worker count (0 = one per CPU, 1 = sequential)")
	f.planCache = fs.Int("plan-cache", 256, "LRU plan-cache capacity in entries (0 = disabled)")
	f.memoMB = fs.Int("memo-mb", 64, "candidate-subquery memo bound in MiB (0 = disabled)")
	f.pprof = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return f
}

func (f *flockdFlags) validate() error {
	if *f.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *f.timeout)
	}
	if *f.drain <= 0 {
		return fmt.Errorf("-drain must be > 0 (got %v)", *f.drain)
	}
	if *f.maxQueries < 0 {
		return fmt.Errorf("-max-queries must be >= 0 (got %d)", *f.maxQueries)
	}
	if *f.maxTuples < 0 || *f.maxRows < 0 {
		return fmt.Errorf("-max-tuples and -max-rows must be >= 0")
	}
	if *f.planCache < 0 || *f.memoMB < 0 {
		return fmt.Errorf("-plan-cache and -memo-mb must be >= 0")
	}
	if _, err := storage.ParseEngine(*f.engine); err != nil {
		return err
	}
	if *f.engine == "disk" && *f.dataDir == "" {
		return fmt.Errorf("-engine disk requires -data-dir (CSV loading is memory-only)")
	}
	return nil
}
