package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"queryflocks/internal/cluster"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

func basketsDB(t *testing.T) *storage.Database {
	t.Helper()
	return workload.Baskets(workload.BasketConfig{
		Baskets: 200, Items: 20, MeanSize: 4, Skew: 0.8, Seed: 4,
	})
}

// explosiveDB holds pairs(G,X): a triple self-join on G produces n³ rows
// per group — slow enough to outlive a short deadline.
func explosiveDB(t *testing.T, groups, n int) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	rel := storage.NewRelation("pairs", "G", "X")
	for g := 0; g < groups; g++ {
		for i := 0; i < n; i++ {
			rel.InsertValues(storage.Int(int64(g)), storage.Int(int64(i)))
		}
	}
	db.Add(rel)
	return db
}

const pairCountFlock = `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5
`

// explosiveFlock's filter threshold exceeds any group's n³ result, so
// monotone short-circuiting never kicks in: the engine must produce and
// hold the full extended answer, which a tuple budget or deadline cuts
// short.
const explosiveFlock = `
QUERY:
answer(X,Y,Z) :- pairs($g,X) AND pairs($g,Y) AND pairs($g,Z)
FILTER:
COUNT(answer.X) >= 1000000
`

func postQuery(t *testing.T, ts *httptest.Server, query, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/query"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

func TestHealthzAndRels(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/rels")
	if err != nil {
		t.Fatal(err)
	}
	var rels []relInfo
	if err := json.NewDecoder(resp.Body).Decode(&rels); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rels) != 1 || rels[0].Name != "baskets" || rels[0].Rows == 0 {
		t.Fatalf("unexpected /rels payload: %+v", rels)
	}
}

func TestQueryEvaluates(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Strategy != "direct" || qr.AnswerRows == 0 || len(qr.Rows) != qr.AnswerRows {
		t.Fatalf("unexpected response: strategy=%q answer_rows=%d rows=%d", qr.Strategy, qr.AnswerRows, len(qr.Rows))
	}
	if len(qr.Columns) != 2 {
		t.Fatalf("expected 2 answer columns, got %v", qr.Columns)
	}
	if qr.Report == nil || len(qr.Report.Steps) == 0 {
		t.Fatalf("expected an operator report, got %+v", qr.Report)
	}
}

func TestQueryStrategiesAgree(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	var baseline []byte
	for _, strat := range []string{"direct", "naive", "static", "exhaustive", "levelwise", "dynamic"} {
		status, body := postQuery(t, ts, "?strategy="+strat, pairCountFlock)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", strat, status, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		rows, err := json.Marshal(qr.Rows)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = rows
			continue
		}
		if string(rows) != string(baseline) {
			t.Errorf("%s: answers diverge from direct:\n%s\nvs\n%s", strat, rows, baseline)
		}
	}
}

func TestQueryErrorsAre400(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	cases := []struct {
		name, query, body string
	}{
		{"parse error", "", "QUERY:\nanswer(B) :- baskets(B,\nFILTER:\nCOUNT(answer.B) >= 1"},
		{"unknown relation", "", "QUERY:\nanswer(X) :- nosuch(X,$1)\nFILTER:\nCOUNT(answer.X) >= 1"},
		{"unknown strategy", "?strategy=bogus", pairCountFlock},
		{"bad timeout", "?timeout=banana", pairCountFlock},
	}
	for _, c := range cases {
		status, body := postQuery(t, ts, c.query, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d: %s", c.name, status, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: want 405, got %d", resp.StatusCode)
	}
}

// TestQueryLintRejectsBeforeEvaluation pins the pre-admission contract:
// an error-severity program gets a 400 whose payload carries structured
// diagnostics (stable code, severity, position) and never reaches the
// engine.
func TestQueryLintRejectsBeforeEvaluation(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	unsafe := "QUERY:\nanswer(X) :- baskets(B,$1) AND X > 5\nFILTER:\nCOUNT(answer.X) >= 2"
	status, body := postQuery(t, ts, "", unsafe)
	if status != http.StatusBadRequest {
		t.Fatalf("want 400, got %d: %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" || len(er.Diagnostics) == 0 {
		t.Fatalf("rejection must carry diagnostics: %s", body)
	}
	var found bool
	for _, d := range er.Diagnostics {
		if d.Code == "QF002" && d.Line > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("want a positioned QF002 diagnostic, got %s", body)
	}

	// Schema errors are caught the same way: the database is fixed, so
	// the analyzer runs its QF016 checks against it.
	status, body = postQuery(t, ts, "", "QUERY:\nanswer(X) :- nosuch(X,$1)\nFILTER:\nCOUNT(answer.X) >= 1")
	if status != http.StatusBadRequest || !strings.Contains(string(body), "QF016") {
		t.Errorf("missing relation should reject with QF016: %d %s", status, body)
	}
}

// TestQueryLintMode pins ?lint=1: diagnostics only, no evaluation.
func TestQueryLintMode(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "?lint=1", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("want 200, got %d: %s", status, body)
	}
	var lr lintResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Errors != 0 || lr.Warnings != 0 || len(lr.Diagnostics) != 0 {
		t.Errorf("clean program should lint clean: %s", body)
	}
	if strings.Contains(string(body), "answer_rows") {
		t.Errorf("?lint=1 must not evaluate: %s", body)
	}

	unsafe := "QUERY:\nanswer(X) :- baskets(B,$1) AND X > 5\nFILTER:\nCOUNT(answer.X) >= 2"
	status, body = postQuery(t, ts, "?lint=1", unsafe)
	if status != http.StatusOK {
		t.Fatalf("lint mode reports, it does not reject: got %d", status)
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Errors == 0 || len(lr.Diagnostics) == 0 {
		t.Errorf("unsafe program should report errors: %s", body)
	}
}

// TestQueryWarningsInResponse pins the non-fatal path: warning
// diagnostics ride along in the success payload next to the answer.
func TestQueryWarningsInResponse(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	// The second subgoal is containment-redundant (QF009) and X is a
	// singleton (QF013) — warnings, so the query still evaluates.
	redundant := "QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,X)\nFILTER:\nCOUNT(answer.B) >= 5"
	status, body := postQuery(t, ts, "", redundant)
	if status != http.StatusOK {
		t.Fatalf("warnings must not reject: %d %s", status, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.AnswerRows == 0 {
		t.Error("query should still have evaluated")
	}
	codes := map[string]bool{}
	for _, d := range qr.Warnings {
		codes[d.Code] = true
	}
	if !codes["QF009"] {
		t.Errorf("want a QF009 warning in the response, got %+v", qr.Warnings)
	}

	// A clean program carries no warnings field at all.
	status, body = postQuery(t, ts, "", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("clean: %d %s", status, body)
	}
	if strings.Contains(string(body), "\"warnings\"") {
		t.Errorf("clean program should omit warnings: %s", body)
	}
}

func TestQueryDeadlineIs504(t *testing.T) {
	ts := httptest.NewServer(newServer(explosiveDB(t, 6, 48), serverConfig{Timeout: time.Hour}).handler())
	defer ts.Close()

	start := time.Now()
	status, body := postQuery(t, ts, "?timeout=10ms", explosiveFlock)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d: %s", status, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
	if !strings.Contains(string(body), "canceled") {
		t.Fatalf("error should name the cancellation: %s", body)
	}
}

func TestQueryBudgetIs422(t *testing.T) {
	ts := httptest.NewServer(newServer(explosiveDB(t, 4, 30), serverConfig{MaxTuples: 1000}).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "", explosiveFlock)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422, got %d: %s", status, body)
	}
	if !strings.Contains(string(body), "budget") {
		t.Fatalf("error should name the budget: %s", body)
	}
}

func TestQueryMaxRowsIs422(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{MaxRows: 1}).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "", pairCountFlock)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422, got %d: %s", status, body)
	}
}

func TestAdmissionCapIs503(t *testing.T) {
	srv := newServer(basketsDB(t), serverConfig{MaxQueries: 1})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	srv.sem <- struct{}{} // occupy the only slot
	status, body := postQuery(t, ts, "", pairCountFlock)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 while the slot is held, got %d: %s", status, body)
	}
	<-srv.sem
	status, body = postQuery(t, ts, "", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("want 200 after the slot freed, got %d: %s", status, body)
	}
}

func TestRequestTimeoutTightensOnly(t *testing.T) {
	req := func(q string) *http.Request {
		r, err := http.NewRequest(http.MethodPost, "/query"+q, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if d, err := requestTimeout(req(""), time.Minute); err != nil || d != time.Minute {
		t.Errorf("no param: got %v, %v", d, err)
	}
	if d, err := requestTimeout(req("?timeout=1s"), time.Minute); err != nil || d != time.Second {
		t.Errorf("tighten: got %v, %v", d, err)
	}
	if d, err := requestTimeout(req("?timeout=2h"), time.Minute); err != nil || d != time.Minute {
		t.Errorf("loosen must clamp to the server limit: got %v, %v", d, err)
	}
	if d, err := requestTimeout(req("?timeout=2h"), 0); err != nil || d != 2*time.Hour {
		t.Errorf("no server limit: got %v, %v", d, err)
	}
	if _, err := requestTimeout(req("?timeout=-1s"), 0); err == nil {
		t.Error("negative timeout must be rejected")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	srv := newServer(explosiveDB(t, 6, 48), serverConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	var drainLog strings.Builder
	go func() { served <- serveHTTP(ctx, ln, srv.handler(), 30*time.Second, &drainLog) }()

	// Start a query that runs ~200ms, then request shutdown while it is
	// in flight; the drain must let it finish and deliver its response.
	url := fmt.Sprintf("http://%s/query?timeout=200ms", ln.Addr())
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "text/plain", strings.NewReader(explosiveFlock))
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()

	time.Sleep(50 * time.Millisecond) // let the request reach the engine
	cancel()

	select {
	case status := <-reqDone:
		if status != http.StatusGatewayTimeout {
			t.Fatalf("in-flight query got %d; shutdown must not sever it", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	if !strings.Contains(drainLog.String(), "draining") {
		t.Errorf("expected a drain announcement, got %q", drainLog.String())
	}
}

func TestRunServesFromCSVDir(t *testing.T) {
	dir := t.TempDir()
	rel := basketsDB(t).MustRelation("baskets")
	if err := storage.WriteCSVFile(rel, dir+"/baskets.csv"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-data", dir, "-addr", "127.0.0.1:0"}, &out)
	}()

	// Wait for the listen announcement to learn the bound port.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listen announcement; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "flockd: listening on ") {
				addr = strings.Fields(line)[3]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post("http://"+addr+"/query", "text/plain", strings.NewReader(pairCountFlock))
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.AnswerRows == 0 {
		t.Fatalf("status %d, answer_rows %d", resp.StatusCode, qr.AnswerRows)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

func TestFlagValidation(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-timeout", "-1s"},
		{"-drain", "0s"},
		{"-max-queries", "-1"},
		{"-max-tuples", "-1"},
		{"-max-rows", "-1"},
		{"-data", "/nonexistent-dir-for-flockd-test"},
	} {
		if err := run(ctx, args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// syncWriter is a strings.Builder safe for the announce-then-poll pattern
// in TestRunServesFromCSVDir.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestQueryLintShardability pins the QF024 wiring: a coordinator-mode
// server's lint pass warns when a flock (or the requested strategy)
// forces a coordinator-local fallback, stays quiet for shardable
// programs, and never fires on a single-node server.
func TestQueryLintShardability(t *testing.T) {
	db := basketsDB(t)
	m, err := cluster.BuildMap(db, "baskets", 0, 2)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	// No scatter happens under ?lint=1, so the coordinator needs no
	// client or workers — only the shard map the hook closes over.
	co := cluster.New(m, nil, []string{"baskets"})
	ts := httptest.NewServer(newServer(db, serverConfig{Cluster: co}).handler())
	defer ts.Close()

	lint := func(t *testing.T, query, body string) lintResponse {
		t.Helper()
		status, payload := postQuery(t, ts, query, body)
		if status != http.StatusOK {
			t.Fatalf("want 200, got %d: %s", status, payload)
		}
		var lr lintResponse
		if err := json.Unmarshal(payload, &lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}
	qf024 := func(lr lintResponse) string {
		for _, d := range lr.Diagnostics {
			if d.Code == "QF024" {
				return d.Message
			}
		}
		return ""
	}

	// Shardable flock, scattering strategy: no warning.
	if lr := lint(t, "?lint=1", pairCountFlock); qf024(lr) != "" || lr.Warnings != 0 {
		t.Errorf("shardable flock should lint clean in cluster mode: %+v", lr.Diagnostics)
	}

	// A strategy that never scatters warns regardless of the flock.
	for _, strat := range []string{"naive", "dynamic"} {
		lr := lint(t, "?lint=1&strategy="+strat, pairCountFlock)
		msg := qf024(lr)
		if msg == "" || !strings.Contains(msg, strat) {
			t.Errorf("strategy %s: want QF024 naming the strategy, got %+v", strat, lr.Diagnostics)
		}
	}

	// Atoms binding different terms at the shard column (rule 3): the
	// coordinator would fall back, and lint says why.
	rule3 := `
QUERY:
answer(B,C) :- baskets(B,$1) AND baskets(C,$2)
FILTER:
COUNT(answer.B) >= 5
`
	if msg := qf024(lint(t, "?lint=1", rule3)); !strings.Contains(msg, "different terms at the shard column") {
		t.Errorf("rule-3 violation should surface QF024 with its reason, got %q", msg)
	}

	// The same programs on a single-node server: no QF024, ever.
	single := httptest.NewServer(newServer(db, serverConfig{}).handler())
	defer single.Close()
	ts, single = single, ts // reuse lint() against the single-node server
	if msg := qf024(lint(t, "?lint=1&strategy=naive", rule3)); msg != "" {
		t.Errorf("single-node lint must not report QF024: %q", msg)
	}
}
