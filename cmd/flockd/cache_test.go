package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"queryflocks/internal/storage"
)

// This file covers the serving-layer caches (prepared flocks, the LRU
// plan cache, and the candidate-subquery memo) and the correctness-sweep
// regressions: naive-strategy resource controls, the 413 body cap, and
// lint-only admission.

func postPath(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	return qr
}

func rowsJSON(t *testing.T, qr queryResponse) string {
	t.Helper()
	b, err := json.Marshal(qr.Rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cachedConfig enables all cache layers at comfortable sizes.
func cachedConfig() serverConfig {
	return serverConfig{PlanCacheSize: 64, MemoMaxBytes: 8 << 20}
}

// groupsDB is a database small enough to reason about exactly:
// r(A,B) where the filter COUNT(answer.X) >= 3 over answer(X) :- r(X,$p)
// admits $p=1 (three members) and rejects $p=2 (two members).
func groupsDB() *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation("r", "A", "B")
	for _, row := range [][2]int64{{1, 1}, {2, 1}, {3, 1}, {1, 2}, {2, 2}} {
		r.InsertValues(storage.Int(row[0]), storage.Int(row[1]))
	}
	db.Add(r)
	return db
}

const groupsFlock = `
QUERY:
answer(X) :- r(X,$p)
FILTER:
COUNT(answer.X) >= 3
`

// TestNaiveStrategyRespectsDeadline is the regression for the resource-
// control bypass: ?strategy=naive used to ignore the request context and
// the wall deadline entirely, so a short ?timeout= returned 200 only
// after the full generate-and-test run finished. It must 504 like every
// other strategy.
func TestNaiveStrategyRespectsDeadline(t *testing.T) {
	ts := httptest.NewServer(newServer(explosiveDB(t, 6, 48), serverConfig{Timeout: time.Hour}).handler())
	defer ts.Close()

	start := time.Now()
	status, body := postQuery(t, ts, "?strategy=naive&timeout=10ms", explosiveFlock)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (after %v): %s", status, time.Since(start), body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline was not enforced promptly: %v", elapsed)
	}
}

// TestNaiveStrategyRespectsBudget: the same bypass, for the tuple budget.
func TestNaiveStrategyRespectsBudget(t *testing.T) {
	ts := httptest.NewServer(newServer(explosiveDB(t, 6, 48), serverConfig{MaxTuples: 10_000}).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "?strategy=naive", explosiveFlock)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", status, body)
	}
}

// TestOversizedProgramIs413 is the regression for the silent truncation:
// the body used to be clipped at 1 MiB, and a clipped flock can still
// parse as a different valid program. Here the padding kept the program
// valid, so the pre-fix server answered 200 from a truncated read.
func TestOversizedProgramIs413(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()

	over := pairCountFlock + strings.Repeat("\n", maxProgramBytes)
	status, body := postQuery(t, ts, "", over)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d: %s", status, truncate(body))
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("413 must carry a structured error: %v %s", err, truncate(body))
	}

	// A body exactly at the limit still evaluates.
	atLimit := pairCountFlock + strings.Repeat("\n", maxProgramBytes-len(pairCountFlock))
	if len(atLimit) != maxProgramBytes {
		t.Fatalf("test setup: %d bytes", len(atLimit))
	}
	if status, body := postQuery(t, ts, "", atLimit); status != http.StatusOK {
		t.Fatalf("at-limit body: status %d: %s", status, truncate(body))
	}

	// /prepare shares the cap.
	if status, _ := postPath(t, ts, "/prepare", over); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("/prepare oversized body: status %d", status)
	}
}

func truncate(b []byte) []byte {
	if len(b) > 200 {
		return b[:200]
	}
	return b
}

// TestLintDoesNotConsumeAdmission is the regression for lint-only
// requests competing with evaluations for admission slots: with the cap
// saturated, ?lint=1 must still answer while /query is refused.
func TestLintDoesNotConsumeAdmission(t *testing.T) {
	srv := newServer(basketsDB(t), serverConfig{MaxQueries: 1})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	srv.sem <- struct{}{} // saturate the only slot
	if status, body := postQuery(t, ts, "", pairCountFlock); status != http.StatusServiceUnavailable {
		t.Fatalf("evaluation under a full cap: status %d: %s", status, body)
	}
	status, body := postQuery(t, ts, "?lint=1", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("lint under a full cap: status %d: %s", status, body)
	}
	var lr lintResponse
	if err := json.Unmarshal(body, &lr); err != nil || lr.Errors != 0 {
		t.Fatalf("lint payload: %v %s", err, body)
	}
	<-srv.sem
	if status, body := postQuery(t, ts, "", pairCountFlock); status != http.StatusOK {
		t.Fatalf("evaluation after release: status %d: %s", status, body)
	}
}

// TestPlanCacheHitsAcrossAlphaVariants: a repeated static-strategy query
// is served from the plan cache, and an alpha-renamed spelling of the
// same program shares the entry.
func TestPlanCacheHitsAcrossAlphaVariants(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), cachedConfig()).handler())
	defer ts.Close()

	status, body := postQuery(t, ts, "?strategy=static", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d: %s", status, body)
	}
	cold := decodeQuery(t, body)
	if cold.Report == nil || cold.Report.Caches == nil {
		t.Fatalf("response carries no cache counters: %s", truncate(body))
	}
	if cold.Report.Caches.PlanMisses == 0 || cold.Report.Caches.PlanEntries == 0 {
		t.Fatalf("cold run should miss and populate the plan cache: %+v", cold.Report.Caches)
	}

	status, body = postQuery(t, ts, "?strategy=static", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, body)
	}
	warm := decodeQuery(t, body)
	if warm.Report.Caches.PlanHits <= cold.Report.Caches.PlanHits {
		t.Fatalf("repeat did not hit the plan cache: %+v", warm.Report.Caches)
	}
	if rowsJSON(t, warm) != rowsJSON(t, cold) {
		t.Fatal("cached plan changed the answer")
	}

	// Rename only the variable: parameters name answer columns and are
	// kept verbatim in the canonical form.
	renamed := strings.ReplaceAll(pairCountFlock, "B", "Basket")
	status, body = postQuery(t, ts, "?strategy=static", renamed)
	if status != http.StatusOK {
		t.Fatalf("alpha variant: status %d: %s", status, body)
	}
	alpha := decodeQuery(t, body)
	if alpha.Report.Caches.PlanHits <= warm.Report.Caches.PlanHits {
		t.Fatalf("variable-renamed program did not share the cache entry: %+v", alpha.Report.Caches)
	}
}

// TestMemoSharesAcrossThresholds: an identical re-post is served from
// the survivor plane; a threshold-tightened variant reuses the memoized
// (filter-independent) extended answer and recomputes only the filter.
func TestMemoSharesAcrossThresholds(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), cachedConfig()).handler())
	defer ts.Close()

	_, body := postQuery(t, ts, "", pairCountFlock)
	first := decodeQuery(t, body)
	if first.Report.Caches.MemoExtMisses == 0 || first.Report.Caches.MemoEntries == 0 {
		t.Fatalf("cold run should populate the memo: %+v", first.Report.Caches)
	}

	_, body = postQuery(t, ts, "", pairCountFlock)
	second := decodeQuery(t, body)
	if second.Report.Caches.MemoSurvHits <= first.Report.Caches.MemoSurvHits {
		t.Fatalf("identical re-post should hit the survivor plane: %+v", second.Report.Caches)
	}
	if rowsJSON(t, second) != rowsJSON(t, first) {
		t.Fatal("memoized answer differs")
	}

	tightened := strings.Replace(pairCountFlock, ">= 5", ">= 9", 1)
	_, body = postQuery(t, ts, "", tightened)
	tight := decodeQuery(t, body)
	if tight.Report.Caches.MemoExtHits <= second.Report.Caches.MemoExtHits {
		t.Fatalf("threshold change should reuse the extended answer: %+v", tight.Report.Caches)
	}
	if tight.AnswerRows >= first.AnswerRows {
		t.Fatalf("tightened filter should shrink the answer: %d vs %d", tight.AnswerRows, first.AnswerRows)
	}

	status, body := postQuery(t, ts, "?cache=0", tightened)
	if status != http.StatusOK {
		t.Fatalf("cache=0: status %d: %s", status, body)
	}
	if rowsJSON(t, decodeQuery(t, body)) != rowsJSON(t, tight) {
		t.Fatal("memo-served tightened answer differs from the uncached evaluation")
	}
}

// TestMutationInvalidatesCaches: a /mutate publishes a new data version,
// so warm caches must not serve the old answer.
func TestMutationInvalidatesCaches(t *testing.T) {
	ts := httptest.NewServer(newServer(groupsDB(), cachedConfig()).handler())
	defer ts.Close()

	_, body := postQuery(t, ts, "", groupsFlock)
	before := decodeQuery(t, body)
	if before.AnswerRows != 1 {
		t.Fatalf("pre-mutation answer: %s", body)
	}
	postQuery(t, ts, "", groupsFlock) // warm every layer

	// Grow group 2 past the threshold.
	status, body := postPath(t, ts, "/mutate/r", "4,2\n5,2\n")
	if status != http.StatusOK {
		t.Fatalf("/mutate: status %d: %s", status, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Inserted != 2 || mr.Version == 0 {
		t.Fatalf("mutate payload: %+v", mr)
	}

	_, body = postQuery(t, ts, "", groupsFlock)
	after := decodeQuery(t, body)
	if after.AnswerRows != 2 {
		t.Fatalf("post-mutation cached answer is stale: %s", body)
	}
	if after.Report.Caches.DBVersion != mr.Version {
		t.Fatalf("report version %d, mutation published %d", after.Report.Caches.DBVersion, mr.Version)
	}
	_, body = postQuery(t, ts, "?cache=0", groupsFlock)
	if rowsJSON(t, decodeQuery(t, body)) != rowsJSON(t, after) {
		t.Fatal("post-mutation cached answer differs from the uncached one")
	}

	// Unknown relation and bad arity are refused without publishing.
	if status, _ := postPath(t, ts, "/mutate/nosuch", "1,2\n"); status != http.StatusNotFound {
		t.Fatalf("mutate unknown relation: status %d", status)
	}
	if status, _ := postPath(t, ts, "/mutate/r", "1,2,3\n"); status != http.StatusBadRequest {
		t.Fatalf("mutate bad arity: status %d", status)
	}
}

// TestPrepareInvoke covers the prepared-flock contract: stable content-
// derived handles, idempotent registration, invoke parity with /query,
// threshold rebinding, and 404 for unknown handles.
func TestPrepareInvoke(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), cachedConfig()).handler())
	defer ts.Close()

	status, body := postPath(t, ts, "/prepare", pairCountFlock)
	if status != http.StatusOK {
		t.Fatalf("/prepare: status %d: %s", status, body)
	}
	var pr prepareResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Handle == "" || pr.Existing || len(pr.Params) != 2 {
		t.Fatalf("prepare payload: %+v", pr)
	}

	// Re-preparing an alpha-variant is idempotent: same handle.
	renamed := strings.ReplaceAll(pairCountFlock, "B", "Basket")
	status, body = postPath(t, ts, "/prepare", renamed)
	if status != http.StatusOK {
		t.Fatalf("re-prepare: status %d: %s", status, body)
	}
	var pr2 prepareResponse
	if err := json.Unmarshal(body, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Existing || pr2.Handle != pr.Handle {
		t.Fatalf("alpha-variant re-prepare: %+v vs %+v", pr2, pr)
	}

	// Invoke parity with the ad-hoc path.
	_, body = postQuery(t, ts, "?cache=0", pairCountFlock)
	want := decodeQuery(t, body)
	status, body = postPath(t, ts, "/invoke/"+pr.Handle, "")
	if status != http.StatusOK {
		t.Fatalf("/invoke: status %d: %s", status, body)
	}
	got := decodeQuery(t, body)
	if got.Handle != pr.Handle {
		t.Fatalf("invoke response handle: %q", got.Handle)
	}
	if rowsJSON(t, got) != rowsJSON(t, want) {
		t.Fatal("invoke answer differs from /query")
	}

	// Threshold rebinding matches an edited program, and reuses the
	// memoized extended answer (the interactive-mining fast path).
	tightened := strings.Replace(pairCountFlock, ">= 5", ">= 9", 1)
	_, body = postQuery(t, ts, "?cache=0", tightened)
	wantTight := decodeQuery(t, body)
	status, body = postPath(t, ts, "/invoke/"+pr.Handle, `{"threshold": 9}`)
	if status != http.StatusOK {
		t.Fatalf("/invoke with threshold: status %d: %s", status, body)
	}
	gotTight := decodeQuery(t, body)
	if rowsJSON(t, gotTight) != rowsJSON(t, wantTight) {
		t.Fatal("threshold-rebound invoke differs from the edited program")
	}
	if gotTight.Report.Caches.MemoExtHits <= got.Report.Caches.MemoExtHits {
		t.Fatalf("threshold rebinding should hit the extended plane: %+v", gotTight.Report.Caches)
	}

	if status, _ := postPath(t, ts, "/invoke/nosuch", ""); status != http.StatusNotFound {
		t.Fatalf("unknown handle: status %d", status)
	}
	if status, _ := postPath(t, ts, "/invoke/"+pr.Handle+"?strategy=bogus", ""); status != http.StatusBadRequest {
		t.Fatalf("bad strategy on invoke: status %d", status)
	}
}

// TestAnswersIdenticalAcrossCacheModes is the serving-layer oracle: for
// every strategy and worker count, the answer must be bit-identical with
// caches cold, hot, per-request disabled, and configured off.
func TestAnswersIdenticalAcrossCacheModes(t *testing.T) {
	strategies := []string{"direct", "naive", "static", "exhaustive", "levelwise", "dynamic"}
	for _, workers := range []int{1, 2, 8} {
		cfg := cachedConfig()
		cfg.Workers = workers
		cached := httptest.NewServer(newServer(basketsDB(t), cfg).handler())
		uncached := httptest.NewServer(newServer(basketsDB(t), serverConfig{Workers: workers}).handler())

		var baseline string
		for _, strat := range strategies {
			for _, run := range []struct {
				name  string
				ts    *httptest.Server
				query string
			}{
				{"cold", cached, "?strategy=" + strat},
				{"hot", cached, "?strategy=" + strat},
				{"bypass", cached, "?strategy=" + strat + "&cache=0"},
				{"disabled", uncached, "?strategy=" + strat},
			} {
				status, body := postQuery(t, run.ts, run.query, pairCountFlock)
				if status != http.StatusOK {
					t.Fatalf("workers=%d %s/%s: status %d: %s", workers, strat, run.name, status, body)
				}
				rows := rowsJSON(t, decodeQuery(t, body))
				if baseline == "" {
					baseline = rows
					continue
				}
				if rows != baseline {
					t.Errorf("workers=%d %s/%s: answer diverges\n%s\nvs\n%s", workers, strat, run.name, rows, baseline)
				}
			}
		}
		cached.Close()
		uncached.Close()
	}
}

// TestConcurrentCacheChurn hammers queries, threshold variants, and
// mutations through deliberately tiny caches; it exists to fail under
// -race and to catch eviction/invalidation crashes under contention.
func TestConcurrentCacheChurn(t *testing.T) {
	cfg := serverConfig{PlanCacheSize: 2, MemoMaxBytes: 256 << 10}
	ts := httptest.NewServer(newServer(basketsDB(t), cfg).handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch {
				case g == 0 && i%3 == 2:
					row := fmt.Sprintf("%d,%d\n", 10_000+i, 1+i%20)
					resp, err := ts.Client().Post(ts.URL+"/mutate/baskets", "text/csv", strings.NewReader(row))
					if err == nil {
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("mutate: status %d", resp.StatusCode)
						}
					}
				default:
					threshold := 3 + (g+i)%4
					flock := strings.Replace(pairCountFlock, ">= 5", fmt.Sprintf(">= %d", threshold), 1)
					strat := []string{"direct", "static", "levelwise"}[(g+i)%3]
					resp, err := ts.Client().Post(ts.URL+"/query?strategy="+strat, "text/plain", strings.NewReader(flock))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("query %s threshold %d: status %d", strat, threshold, resp.StatusCode)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The byte bound held through the churn.
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		MemoBytes    int64  `json:"memo_bytes"`
		MemoMaxBytes int64  `json:"memo_max_bytes"`
		DBVersion    uint64 `json:"db_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.MemoBytes < 0 || stats.MemoBytes > stats.MemoMaxBytes {
		t.Fatalf("memo byte gauge out of bounds: %+v", stats)
	}
	if stats.DBVersion == 0 {
		t.Fatalf("mutations should have bumped the version: %+v", stats)
	}
}
