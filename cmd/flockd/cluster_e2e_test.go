package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"queryflocks/internal/storage"
)

// TestFlockdWorkerHelper is not a test: it is the worker process the
// coordinator E2E tests exec. spawnLocalWorkers re-enters the test
// binary with -test.run anchored here plus "-- <flockd args>", and the
// helper runs the real flockd main loop on those args.
func TestFlockdWorkerHelper(t *testing.T) {
	if os.Getenv("FLOCKD_WORKER_HELPER") != "1" {
		t.Skip("not a worker helper invocation")
	}
	sep := -1
	for i, a := range os.Args {
		if a == "--" {
			sep = i
			break
		}
	}
	if sep < 0 {
		fmt.Fprintln(os.Stderr, "flockd: worker helper started without -- args")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[sep+1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flockd:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// useHelperWorkers points workerCommand at the test binary for the
// duration of one test.
func useHelperWorkers(t *testing.T) {
	t.Helper()
	orig := workerCommand
	workerCommand = func() (string, []string, error) {
		return os.Args[0], []string{"-test.run=^TestFlockdWorkerHelper$", "--"}, nil
	}
	t.Cleanup(func() { workerCommand = orig })
}

// writeBasketsDir materializes the test workload as a CSV directory every
// cluster process loads identically.
func writeBasketsDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := storage.WriteCSVFile(basketsDB(t).MustRelation("baskets"), dir+"/baskets.csv"); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startFlockd launches run() in a goroutine and polls the announcement
// for the bound address. The returned stop cancels and waits for exit.
func startFlockd(t *testing.T, args []string) (addr string, out *syncWriter, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncWriter{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()
	deadline := time.Now().Add(30 * time.Second)
	for addr == "" {
		select {
		case err := <-done:
			cancel()
			t.Fatalf("flockd %v exited early: %v\noutput: %s", args, err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("flockd %v: no listen announcement; output: %s", args, out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "flockd: listening on ") {
				addr = strings.Fields(line)[3]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop = func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return fmt.Errorf("flockd %v did not exit after cancel", args)
		}
	}
	return addr, out, stop
}

func queryAt(t *testing.T, addr, query, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/query"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// TestCoordinatorSpawnWorkersE2E is the full multi-process path: a
// coordinator execs two local workers, scatters the FILTER computation,
// and the merged answer is bit-identical to a single-node flockd over
// the same data — for the direct strategy and an executed static plan.
func TestCoordinatorSpawnWorkersE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	useHelperWorkers(t)
	dir := writeBasketsDir(t)

	soloAddr, _, stopSolo := startFlockd(t, []string{"-data", dir, "-addr", "127.0.0.1:0"})
	defer stopSolo()
	coordAddr, _, stopCoord := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-coordinator", "-spawn-workers", "2"})

	for _, strategy := range []string{"direct", "static"} {
		wantStatus, wantPayload := queryAt(t, soloAddr, "?strategy="+strategy, pairCountFlock)
		gotStatus, gotPayload := queryAt(t, coordAddr, "?strategy="+strategy, pairCountFlock)
		if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
			t.Fatalf("%s: solo %d, coordinator %d\n%s", strategy, wantStatus, gotStatus, gotPayload)
		}
		var want, got queryResponse
		if err := json.Unmarshal(wantPayload, &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(gotPayload, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Columns, want.Columns) {
			t.Fatalf("%s: sharded answer differs from single node\nsolo: %v\ncluster: %v", strategy, want.Rows, got.Rows)
		}
		if got.Report == nil || got.Report.Cluster == nil {
			t.Fatalf("%s: merged report is missing the cluster block: %s", strategy, gotPayload)
		}
		if c := got.Report.Cluster; c.Shards != 2 || c.Scattered < 1 || c.Partial {
			t.Fatalf("%s: cluster block %+v, want 2 shards, >=1 scattered, not partial", strategy, c)
		}
	}

	// /mutate is refused in coordinator mode: the workers derived their
	// partitions from their own data load.
	resp, err := http.Post("http://"+coordAddr+"/mutate/baskets", "text/csv", strings.NewReader("9999,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("coordinator /mutate: status %d, want 501", resp.StatusCode)
	}

	// Shutdown TERMs and reaps the spawned workers.
	if err := stopCoord(); err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
}

// TestCoordinatorDeadShard502AndRecovery kills a worker mid-cluster and
// asserts the failure contract: a structured 502 naming the dead shard
// (never a hang or a silent partial answer), then full recovery once the
// worker is back.
func TestCoordinatorDeadShard502AndRecovery(t *testing.T) {
	dir := writeBasketsDir(t)

	w0Addr, _, stopW0 := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-shard-index", "0", "-shard-count", "2"})
	w1Addr, _, stopW1 := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-shard-index", "1", "-shard-count", "2"})
	defer stopW1()

	coordAddr, _, stopCoord := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-coordinator", "-shards", w0Addr + "," + w1Addr,
		"-shard-retries", "1", "-shard-backoff", "10ms", "-shard-timeout", "5s"})
	defer stopCoord()

	status, payload := queryAt(t, coordAddr, "", pairCountFlock)
	var healthy queryResponse
	if err := json.Unmarshal(payload, &healthy); err != nil || status != http.StatusOK {
		t.Fatalf("healthy cluster: status %d: %s", status, payload)
	}

	// Kill worker 0 and query again: a structured 502 naming the shard.
	if err := stopW0(); err != nil {
		t.Fatalf("stopping worker 0: %v", err)
	}
	status, payload = queryAt(t, coordAddr, "", pairCountFlock)
	if status != http.StatusBadGateway {
		t.Fatalf("dead shard: status %d, want 502: %s", status, payload)
	}
	var er errorResponse
	if err := json.Unmarshal(payload, &er); err != nil || er.Error == "" {
		t.Fatalf("dead shard: unstructured error: %s", payload)
	}
	if er.Shard != w0Addr || !strings.Contains(er.Error, w0Addr) {
		t.Fatalf("dead shard: error %+v does not name the dead shard %s", er, w0Addr)
	}

	// Restart worker 0 on its old address (the closed listener's port is
	// immediately rebindable); the same cluster answers again.
	_, _, stopW0b := startFlockd(t, []string{
		"-data", dir, "-addr", w0Addr, "-shard-index", "0", "-shard-count", "2"})
	defer stopW0b()
	status, payload = queryAt(t, coordAddr, "", pairCountFlock)
	var recovered queryResponse
	if err := json.Unmarshal(payload, &recovered); err != nil || status != http.StatusOK {
		t.Fatalf("recovered cluster: status %d: %s", status, payload)
	}
	if !reflect.DeepEqual(recovered.Rows, healthy.Rows) {
		t.Fatal("recovered cluster answer differs from the healthy answer")
	}
}

// TestCoordinatorAllowPartialFlag: with -allow-partial a dead shard
// degrades the answer instead of failing it, and the report says so.
func TestCoordinatorAllowPartialFlag(t *testing.T) {
	dir := writeBasketsDir(t)
	w0Addr, _, stopW0 := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-shard-index", "0", "-shard-count", "2"})
	w1Addr, _, stopW1 := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-shard-index", "1", "-shard-count", "2"})
	defer stopW1()
	coordAddr, _, stopCoord := startFlockd(t, []string{
		"-data", dir, "-addr", "127.0.0.1:0", "-coordinator", "-shards", w0Addr + "," + w1Addr,
		"-allow-partial", "-shard-retries", "0", "-shard-timeout", "5s"})
	defer stopCoord()

	if err := stopW0(); err != nil {
		t.Fatal(err)
	}
	status, payload := queryAt(t, coordAddr, "", pairCountFlock)
	var qr queryResponse
	if err := json.Unmarshal(payload, &qr); err != nil || status != http.StatusOK {
		t.Fatalf("allow-partial: status %d: %s", status, payload)
	}
	c := qr.Report.Cluster
	if c == nil || !c.Partial || len(c.Failed) != 1 || c.Failed[0] != w0Addr {
		t.Fatalf("allow-partial: cluster block %+v, want partial=true failed=[%s]", c, w0Addr)
	}
}

// TestClusterFlagValidation covers the new knobs' structural rules.
func TestClusterFlagValidation(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-coordinator"},                                        // needs -shards or -spawn-workers
		{"-coordinator", "-shards", "a:1", "-spawn-workers", "2"}, // not both
		{"-shards", "a:1"},                                      // needs -coordinator
		{"-spawn-workers", "2"},                                 // needs -coordinator
		{"-shard-index", "0"},                                   // needs -shard-count
		{"-shard-count", "2"},                                   // index out of range (default -1)
		{"-shard-count", "2", "-shard-index", "2"},              // index out of range
		{"-shard-count", "2", "-shard-index", "0", "-coordinator", "-shards", "a:1"}, // worker xor coordinator
		{"-shard-by", "rel:notanumber"},
		{"-shard-by", ":1"},
		{"-shard-retries", "-1"},
		{"-shard-timeout", "-1s"},
	} {
		if err := run(ctx, args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
