package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"queryflocks/internal/workload"
)

// BenchmarkQueryPath measures the serving-layer cache payoff on a
// repeated ad-hoc /query: the cold path re-parses, re-lints, re-plans,
// and re-evaluates every request (?cache=0), while the warm path answers
// from the plan cache and the survivor plane of the subquery memo.
func BenchmarkQueryPath(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 2000, Items: 40, MeanSize: 6, Skew: 0.8, Seed: 11,
	})
	post := func(b *testing.B, ts *httptest.Server, query string) {
		b.Helper()
		resp, err := ts.Client().Post(ts.URL+"/query"+query, "text/plain", strings.NewReader(pairCountFlock))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	for _, bc := range []struct{ name, query string }{
		{"cold", "?cache=0"},
		{"warm", ""},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ts := httptest.NewServer(newServer(db, cachedConfig()).handler())
			defer ts.Close()
			post(b, ts, bc.query) // populate the caches once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, ts, bc.query)
			}
		})
	}
}
