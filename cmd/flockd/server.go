package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"queryflocks/internal/analysis"
	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
)

// serverConfig bounds every query the service runs. Timeout and limits
// compose with each request's own context, so a client disconnect, the
// per-request wall clock, and the resource budgets all abort the same
// evaluation through the engine's cooperative checkpoints.
type serverConfig struct {
	// Timeout is the per-request wall-clock limit (0 = none). A request
	// may lower it with ?timeout=, never raise it.
	Timeout time.Duration
	// MaxQueries is the concurrent-query admission cap; requests beyond
	// it are refused with 503 rather than queued (0 = no cap).
	MaxQueries int
	// MaxTuples and MaxRows are the per-query resource budgets
	// (eval.Limits semantics; 0 = unlimited).
	MaxTuples int
	MaxRows   int
	// Workers is the engine worker knob (0 = one per CPU).
	Workers int
}

// server evaluates flocks over a fixed database via HTTP.
//
//	GET  /healthz  liveness probe
//	GET  /rels     the loaded relations (name, columns, rows)
//	POST /query    body = flock source; evaluates and returns JSON
//
// /query accepts ?strategy= (direct|naive|static|exhaustive|levelwise|
// dynamic, default direct) and ?timeout= (a Go duration that may only
// tighten the server-wide limit).
//
// Every posted program is linted (internal/analysis, schema-checked
// against the loaded database) before any evaluation starts: programs
// with error-severity diagnostics are rejected with a 400 whose payload
// carries the structured diagnostics, and warning diagnostics ride along
// in the success payload's "warnings" field. ?lint=1 runs only the
// analyzer and returns its diagnostics without evaluating.
type server struct {
	db  *storage.Database
	cfg serverConfig
	sem chan struct{} // admission slots; nil when uncapped
}

func newServer(db *storage.Database, cfg serverConfig) *server {
	s := &server{db: db, cfg: cfg}
	if cfg.MaxQueries > 0 {
		s.sem = make(chan struct{}, cfg.MaxQueries)
	}
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/rels", s.handleRels)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// relInfo is one /rels entry.
type relInfo struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    int      `json:"rows"`
}

func (s *server) handleRels(w http.ResponseWriter, r *http.Request) {
	names := append([]string(nil), s.db.Names()...)
	sort.Strings(names)
	infos := make([]relInfo, 0, len(names))
	for _, n := range names {
		rel := s.db.MustRelation(n)
		infos = append(infos, relInfo{Name: n, Columns: rel.Columns(), Rows: rel.Len()})
	}
	writeJSON(w, http.StatusOK, infos)
}

// queryResponse is the /query success payload: the answer relation plus
// the run's operator report (the obs.RunReport schema of flockbench
// -json and flockql -metrics json).
type queryResponse struct {
	Strategy   string                `json:"strategy"`
	AnswerRows int                   `json:"answer_rows"`
	Columns    []string              `json:"columns"`
	Rows       [][]string            `json:"rows"`
	WallNs     int64                 `json:"wall_ns"`
	Warnings   []analysis.Diagnostic `json:"warnings,omitempty"`
	Report     *obs.RunReport        `json:"report,omitempty"`
}

// errorResponse is the payload of every non-200 /query outcome. Lint
// rejections carry the analyzer's structured diagnostics alongside the
// one-line error.
type errorResponse struct {
	Error       string                `json:"error"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

// lintResponse is the ?lint=1 payload: the analyzer's findings for the
// posted program, without evaluating it.
type lintResponse struct {
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a flock program to /query"})
		return
	}

	// Admission control: refuse rather than queue, so an overloaded
	// service degrades predictably and load-balancers can react.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: fmt.Sprintf("over the concurrent-query cap (%d); retry later", s.cfg.MaxQueries)})
			return
		}
	}

	src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	strategy := r.URL.Query().Get("strategy")
	if strategy == "" {
		strategy = "direct"
	}
	timeout, err := requestTimeout(r, s.cfg.Timeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// Static pre-admission check: the analyzer runs (schema-aware, since
	// the served database is fixed) before any evaluation work starts.
	// Error-severity findings reject the program with the structured
	// diagnostics; warnings are kept to ride along in the success payload.
	diags := analysis.AnalyzeSource(string(src), analysis.Options{DB: s.db})
	if r.URL.Query().Get("lint") == "1" {
		lr := lintResponse{Diagnostics: diags}
		if lr.Diagnostics == nil {
			lr.Diagnostics = []analysis.Diagnostic{}
		}
		for _, d := range diags {
			if d.Severity == analysis.SevError {
				lr.Errors++
			} else {
				lr.Warnings++
			}
		}
		writeJSON(w, http.StatusOK, lr)
		return
	}
	if analysis.HasErrors(diags) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:       "flock rejected by static analysis; see diagnostics",
			Diagnostics: diags,
		})
		return
	}

	flock, err := core.Parse(string(src))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := flock.CheckDatabase(s.db); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// The request context carries the client-disconnect signal; the wall
	// limit rides on it so either aborts the evaluation cooperatively.
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := &eval.Trace{}
	tr.Collector() // anchor the wall-clock/alloc baseline before evaluation
	start := time.Now()
	answer, err := s.evaluate(ctx, flock, strategy, tr)
	if err != nil {
		writeJSON(w, statusForEvalError(err), errorResponse{Error: err.Error()})
		return
	}
	report := tr.Report(strategy, s.cfg.Workers, answer.Len())
	obs.PublishReport(report)

	resp := queryResponse{
		Strategy:   strategy,
		AnswerRows: answer.Len(),
		Columns:    answer.Columns(),
		WallNs:     time.Since(start).Nanoseconds(),
		Warnings:   diags, // only warning/info diagnostics survive to here
		Report:     report,
	}
	resp.Rows = make([][]string, 0, answer.Len())
	for _, t := range answer.Sorted() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// errPanic marks an evaluation that died in an engine invariant panic.
var errPanic = errors.New("internal panic")

// evaluate runs one flock under the request's context and the server's
// resource budgets. Engine panics are recovered into errors so a bad
// query cannot take the service down.
func (s *server) evaluate(ctx context.Context, flock *core.Flock, strategy string, tr *eval.Trace) (answer *storage.Relation, err error) {
	defer func() {
		if r := recover(); r != nil {
			answer, err = nil, fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	limits := eval.Limits{MaxTuples: s.cfg.MaxTuples, MaxRows: s.cfg.MaxRows}
	ev := &core.EvalOptions{Workers: s.cfg.Workers, Trace: tr, Ctx: ctx, Limits: limits}
	switch strategy {
	case "direct":
		return flock.Eval(s.db, ev)
	case "naive":
		// The reference evaluator takes no options; it is for tiny data.
		return flock.EvalNaive(s.db)
	case "static":
		plan, err := planner.PlanStatic(flock, planner.NewEstimator(s.db), nil)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(s.db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "exhaustive":
		plan, err := planner.PlanExhaustive(flock, planner.NewEstimator(s.db), nil)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(s.db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "levelwise":
		plan, err := planner.PlanLevelwise(flock, 0)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(s.db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "dynamic":
		res, err := planner.EvalDynamic(s.db, flock, &planner.DynamicOptions{
			Workers: s.cfg.Workers, Trace: tr, Ctx: ctx, Limits: limits,
		})
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
}

// requestTimeout resolves the effective wall limit: the server-wide limit,
// tightened (never loosened) by a ?timeout= duration.
func requestTimeout(r *http.Request, serverLimit time.Duration) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return serverLimit, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout must be > 0 (got %v)", d)
	}
	if serverLimit > 0 && d > serverLimit {
		return serverLimit, nil
	}
	return d, nil
}

// statusForEvalError maps evaluation failures onto HTTP statuses: deadline
// and cancellation are the gateway-timeout family, an exceeded resource
// budget is the client's query being too expensive, panics are 500s, and
// anything else (unknown strategy, plan errors) is a bad request.
func statusForEvalError(err error) int {
	switch {
	case errors.Is(err, eval.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, eval.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errPanic):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once the status is written
}
