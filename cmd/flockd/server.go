package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"queryflocks/internal/analysis"
	"queryflocks/internal/cluster"
	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/planner"
	"queryflocks/internal/serve"
	"queryflocks/internal/storage"
)

// maxProgramBytes is the request-body cap for posted programs. Bodies are
// read with one spare byte so an over-limit program is *detected* and
// refused with 413 — silently truncating at the limit is dangerous
// because a truncated flock can still parse as a different valid program.
const maxProgramBytes = 1 << 20

// serverConfig bounds every query the service runs. Timeout and limits
// compose with each request's own context, so a client disconnect, the
// per-request wall clock, and the resource budgets all abort the same
// evaluation through the engine's cooperative checkpoints.
type serverConfig struct {
	// Timeout is the per-request wall-clock limit (0 = none). A request
	// may lower it with ?timeout=, never raise it.
	Timeout time.Duration
	// MaxQueries is the concurrent-query admission cap; requests beyond
	// it are refused with 503 rather than queued (0 = no cap). The cap
	// covers planning and evaluation only — lint-only requests and cache
	// lookups never consume a slot.
	MaxQueries int
	// MaxTuples and MaxRows are the per-query resource budgets
	// (eval.Limits semantics; 0 = unlimited).
	MaxTuples int
	MaxRows   int
	// Workers is the engine worker knob (0 = one per CPU).
	Workers int
	// PlanCacheSize bounds the LRU plan cache (entries; 0 disables).
	PlanCacheSize int
	// MemoMaxBytes bounds the candidate-subquery memo (estimated bytes;
	// 0 disables).
	MemoMaxBytes int64
	// Dir, when non-nil, is the opened data directory: mutations append
	// durably to its delta layer and prepared flocks persist in it.
	Dir *storage.Dir
	// Cluster, when non-nil, makes this server a shard coordinator:
	// FILTER computations scatter to the worker shards and their partial
	// group states merge in shard order (see internal/cluster). Mutations
	// are refused — workers derive their partition from their own data
	// load, so the cluster must restart to change data.
	Cluster *cluster.Coordinator
}

// server evaluates flocks over a served database via HTTP.
//
//	GET  /healthz          liveness probe
//	GET  /rels             the loaded relations (name, columns, rows)
//	GET  /stats            serving-layer cache counters (obs.CacheStats)
//	POST /query            body = flock source; evaluates and returns JSON
//	POST /prepare          body = flock source; registers a prepared flock
//	                       and returns its stable handle
//	POST /invoke/{handle}  evaluates a prepared flock; optional JSON body
//	                       {"threshold": N} rebinds the filter threshold
//	POST /mutate/{rel}     body = CSV rows (no header); appends to the
//	                       relation, bumps the data version, and thereby
//	                       invalidates every cached plan and memo entry
//	                       (501 in coordinator mode)
//	POST /partial          body = cluster.PartialRequest; evaluates one
//	                       FILTER computation's partial group states over
//	                       this instance's (restricted) snapshot
//
// /query and /invoke accept ?strategy= (direct|naive|static|exhaustive|
// levelwise|dynamic, default direct), ?timeout= (a Go duration that may
// only tighten the server-wide limit), and ?cache=0 (bypass the plan
// cache and memo for this request).
//
// Every posted program is parsed once; the parse result is shared by the
// linter (internal/analysis), the evaluator, and the canonicalizer that
// derives cache keys. Programs with error-severity diagnostics are
// rejected with a 400 whose payload carries the structured diagnostics,
// and warning diagnostics ride along in the success payload's "warnings"
// field. ?lint=1 runs only the analyzer and returns its diagnostics
// without evaluating (and without consuming an admission slot).
//
// Caching: three layers, all keyed through the canonical (alpha-renamed)
// program text and the database's data-version counter. The prepared-
// flock registry skips parse/lint/plan on /invoke; the LRU plan cache
// skips analysis and planning for repeated ad-hoc /query programs; the
// candidate-subquery memo (core.SubqueryMemo) shares §3.1 subquery
// results across requests — including across threshold changes, whose
// extended answers are filter-independent. A mutation publishes a bumped
// copy-on-write database, so in-flight requests keep their snapshot and
// stale cache entries become unreachable by key.
type server struct {
	cfg serverConfig
	sem chan struct{} // admission slots; nil when uncapped

	mu sync.RWMutex // guards db (copy-on-write pointer swap on mutation)
	db *storage.Database

	plans    *serve.PlanCache
	memo     *serve.Memo
	prepared *serve.Registry

	// preparedMu guards preparedSrcs, the handle -> source table persisted
	// to the data directory (nil Dir = in-memory only).
	preparedMu   sync.Mutex
	preparedSrcs map[string]string
}

func newServer(db *storage.Database, cfg serverConfig) *server {
	s := &server{
		db:           db,
		cfg:          cfg,
		plans:        serve.NewPlanCache(cfg.PlanCacheSize),
		memo:         serve.NewMemo(cfg.MemoMaxBytes),
		prepared:     serve.NewRegistry(),
		preparedSrcs: make(map[string]string),
	}
	if cfg.MaxQueries > 0 {
		s.sem = make(chan struct{}, cfg.MaxQueries)
	}
	return s
}

// snapshot returns the current database. The pointer is immutable data:
// mutations publish a new database rather than changing this one, so a
// request evaluates against one consistent version end to end.
func (s *server) snapshot() *storage.Database {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/rels", s.handleRels)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/invoke/", s.handleInvoke)
	mux.HandleFunc("/mutate/", s.handleMutate)
	// Every flockd serves the read-only partial-group-state endpoint, so
	// any instance can be enlisted as a worker shard.
	mux.HandleFunc("/partial", cluster.PartialHandler(s.snapshot, s.cfg.Workers, s.cfg.Timeout))
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// relInfo is one /rels entry.
type relInfo struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    int      `json:"rows"`
}

func (s *server) handleRels(w http.ResponseWriter, r *http.Request) {
	db := s.snapshot()
	names := append([]string(nil), db.Names()...)
	sort.Strings(names)
	infos := make([]relInfo, 0, len(names))
	for _, n := range names {
		src := db.MustSource(n)
		infos = append(infos, relInfo{Name: n, Columns: src.Columns(), Rows: src.Len()})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cacheStats(s.snapshot()))
}

// cacheStats samples all three cache layers into the obs counter block.
func (s *server) cacheStats(db *storage.Database) *obs.CacheStats {
	cs := &obs.CacheStats{PreparedFlocks: s.prepared.Len(), DBVersion: db.Version()}
	ps := s.plans.Stats()
	cs.PlanEntries, cs.PlanCapacity = ps.Entries, ps.Capacity
	cs.PlanHits, cs.PlanMisses, cs.PlanEvictions = ps.Hits, ps.Misses, ps.Evictions
	ms := s.memo.Stats()
	cs.MemoEntries, cs.MemoBytes, cs.MemoMaxBytes = ms.Entries, ms.Bytes, ms.MaxBytes
	cs.MemoExtHits, cs.MemoExtMisses = ms.ExtHits, ms.ExtMisses
	cs.MemoSurvHits, cs.MemoSurvMisses = ms.SurvHits, ms.SurvMiss
	cs.MemoEvictions = ms.Evictions
	return cs
}

// queryResponse is the /query and /invoke success payload: the answer
// relation plus the run's operator report (the obs.RunReport schema of
// flockbench -json and flockql -metrics json), including the serving
// layer's cumulative cache counters under "caches".
type queryResponse struct {
	Strategy   string                `json:"strategy"`
	Handle     string                `json:"handle,omitempty"`
	AnswerRows int                   `json:"answer_rows"`
	Columns    []string              `json:"columns"`
	Rows       [][]string            `json:"rows"`
	WallNs     int64                 `json:"wall_ns"`
	Warnings   []analysis.Diagnostic `json:"warnings,omitempty"`
	Report     *obs.RunReport        `json:"report,omitempty"`
}

// errorResponse is the payload of every non-200 outcome. Lint rejections
// carry the analyzer's structured diagnostics alongside the one-line
// error; shard failures (502) name the dead shard.
type errorResponse struct {
	Error       string                `json:"error"`
	Shard       string                `json:"shard,omitempty"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

// lintResponse is the ?lint=1 payload: the analyzer's findings for the
// posted program, without evaluating it.
type lintResponse struct {
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
}

// prepareResponse is the /prepare payload: the stable content-derived
// handle for POST /invoke/{handle}.
type prepareResponse struct {
	Handle   string                `json:"handle"`
	Params   []string              `json:"params"`
	Existing bool                  `json:"existing"`
	Warnings []analysis.Diagnostic `json:"warnings,omitempty"`
}

// mutateResponse is the /mutate payload.
type mutateResponse struct {
	Relation string `json:"relation"`
	Inserted int    `json:"inserted"`
	Rows     int    `json:"rows"`
	Version  uint64 `json:"version"`
}

// planEntry is one plan-cache value: everything needed to evaluate a
// program again without re-analyzing or re-planning it. plan is nil for
// strategies that do not execute a §4.2 plan (direct, naive, dynamic).
type planEntry struct {
	flock    *core.Flock
	plan     *core.Plan
	warnings []analysis.Diagnostic
}

// planKey composes a plan-cache key: strategy and data version scope the
// canonical program text, so a strategy switch or a mutation can never
// be answered by the wrong plan.
func planKey(canon, strategy string, version uint64) string {
	return fmt.Sprintf("%s|v%d|%s", strategy, version, canon)
}

// validStrategy is the closed set /query and /invoke accept.
func validStrategy(s string) bool {
	switch s {
	case "direct", "naive", "static", "exhaustive", "levelwise", "dynamic":
		return true
	}
	return false
}

// needsPlan reports whether the strategy executes a prebuilt §4.2 plan.
func needsPlan(s string) bool {
	return s == "static" || s == "exhaustive" || s == "levelwise"
}

// memoStrategy reports whether the strategy routes FILTER computations
// through the candidate-subquery memo. naive is the definitional oracle
// (it must not share state with what it checks) and dynamic re-decides
// its plan from observed sizes mid-run, so both stay memo-free.
func memoStrategy(s string) bool {
	return s == "direct" || s == "static" || s == "exhaustive" || s == "levelwise"
}

// readProgram reads a request body under the program-size cap, reporting
// an over-limit body as 413 instead of truncating it.
func readProgram(r *http.Request) ([]byte, int, error) {
	src, err := io.ReadAll(io.LimitReader(r.Body, maxProgramBytes+1))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(src) > maxProgramBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("program exceeds the %d-byte limit (a truncated flock could evaluate as a different program)", maxProgramBytes)
	}
	return src, 0, nil
}

// admit claims an admission slot (refusing rather than queueing, so an
// overloaded service degrades predictably and load-balancers can react);
// the returned release must be called when the evaluation finishes.
func (s *server) admit() (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		return nil, false
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a flock program to /query"})
		return
	}
	src, status, err := readProgram(r)
	if err != nil {
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	q := r.URL.Query()
	strategy := q.Get("strategy")
	if strategy == "" {
		strategy = "direct"
	}
	timeout, err := requestTimeout(r, s.cfg.Timeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	db := s.snapshot()
	useCache := q.Get("cache") != "0"
	lintOnly := q.Get("lint") == "1"

	// One parse, shared by the linter, the canonicalizer, and the
	// evaluator (the source used to be parsed twice, once per consumer).
	fs, perr := datalog.ParseFlock(analysis.StripExplain(string(src)))
	if perr != nil {
		d := analysis.ParseDiagnostic(perr, analysis.Options{})
		if lintOnly {
			writeJSON(w, http.StatusOK, lintResponse{Diagnostics: []analysis.Diagnostic{d}, Errors: 1})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: perr.Error(), Diagnostics: []analysis.Diagnostic{d}})
		return
	}
	if lintOnly {
		// Lint-only traffic never competes for admission slots.
		writeJSON(w, http.StatusOK, lintResult(analysis.AnalyzeFlockSource(fs, s.analysisOptions(db, strategy))))
		return
	}
	if !validStrategy(strategy) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown strategy %q", strategy)})
		return
	}

	// Plan-cache lookup: a hit skips analysis, flock construction, and
	// planning. Alpha-equivalent programs share an entry via the
	// canonical text; the embedded data version keeps entries from
	// answering across mutations.
	canon := analysis.CanonicalProgram(fs)
	key := planKey(canon, strategy, db.Version())
	var ent *planEntry
	if useCache {
		if v, ok := s.plans.Get(key); ok {
			ent = v.(*planEntry)
		}
	}
	if ent == nil {
		// Static pre-admission check: the analyzer runs (schema-aware,
		// against this request's snapshot) before any evaluation work.
		// Error-severity findings reject the program with the structured
		// diagnostics; warnings ride along in the success payload.
		diags := analysis.AnalyzeFlockSource(fs, s.analysisOptions(db, strategy))
		if analysis.HasErrors(diags) {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:       "flock rejected by static analysis; see diagnostics",
				Diagnostics: diags,
			})
			return
		}
		flock, err := core.NewWithViews(fs.Views, fs.Query, fs.Filter)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if err := flock.CheckDatabase(db); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ent = &planEntry{flock: flock, warnings: diags}
	}

	// Admission covers the expensive work only: planning and evaluation.
	release, ok := s.admit()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("over the concurrent-query cap (%d); retry later", s.cfg.MaxQueries)})
		return
	}
	defer release()
	if ent.plan == nil && needsPlan(strategy) {
		plan, err := buildPlan(strategy, ent.flock, db)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ent.plan = plan
	}
	if useCache {
		s.plans.Put(key, ent)
	}
	s.respondEval(w, r.Context(), db, ent, strategy, timeout, useCache, "")
}

// analysisOptions builds the analyzer options for one request: the
// schema snapshot plus, in coordinator mode, the QF024 shardability hook
// — a closure over the shard map and the requested strategy, so the
// analysis package never imports the cluster machinery. Pass strategy ""
// when none is known yet (prepare/restore paths): the hook then checks
// only the shard map's legality rules.
func (s *server) analysisOptions(db *storage.Database, strategy string) analysis.Options {
	opts := analysis.Options{DB: db}
	co := s.cfg.Cluster
	if co == nil {
		return opts
	}
	opts.Shardable = func(fs *datalog.FlockSource) (bool, string) {
		if strategy != "" && !memoStrategy(strategy) {
			return false, fmt.Sprintf("the %q strategy never scatters (it stays coordinator-local by design)", strategy)
		}
		flock, err := core.NewWithViews(fs.Views, fs.Query, fs.Filter)
		if err != nil {
			// Construction failures get their own error elsewhere; the
			// shardability pass has nothing to add.
			return true, ""
		}
		return cluster.Shardable(co.Map, flock.Params, flock.Query, flock.Filter)
	}
	return opts
}

// lintResult folds analyzer diagnostics into the ?lint=1 payload.
func lintResult(diags []analysis.Diagnostic) lintResponse {
	lr := lintResponse{Diagnostics: diags}
	if lr.Diagnostics == nil {
		lr.Diagnostics = []analysis.Diagnostic{}
	}
	for _, d := range diags {
		if d.Severity == analysis.SevError {
			lr.Errors++
		} else {
			lr.Warnings++
		}
	}
	return lr
}

// preparedFlock is one registry entry: the parse result and validated
// flock, retained so /invoke skips parse, lint, and construction.
type preparedFlock struct {
	fs       *datalog.FlockSource
	flock    *core.Flock
	canon    string
	warnings []analysis.Diagnostic
}

func (s *server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a flock program to /prepare"})
		return
	}
	src, status, err := readProgram(r)
	if err != nil {
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	db := s.snapshot()
	fs, perr := datalog.ParseFlock(analysis.StripExplain(string(src)))
	if perr != nil {
		d := analysis.ParseDiagnostic(perr, analysis.Options{})
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: perr.Error(), Diagnostics: []analysis.Diagnostic{d}})
		return
	}
	diags := analysis.AnalyzeFlockSource(fs, s.analysisOptions(db, ""))
	if analysis.HasErrors(diags) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:       "flock rejected by static analysis; see diagnostics",
			Diagnostics: diags,
		})
		return
	}
	flock, err := core.NewWithViews(fs.Views, fs.Query, fs.Filter)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := flock.CheckDatabase(db); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	canon := analysis.CanonicalProgram(fs)
	handle, existed := s.prepared.Register(canon, &preparedFlock{fs: fs, flock: flock, canon: canon, warnings: diags})
	if !existed {
		if err := s.persistPrepared(handle, string(src)); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("persisting prepared flock: %v", err)})
			return
		}
	}
	writeJSON(w, http.StatusOK, prepareResponse{
		Handle: handle, Params: flock.ParamColumns(), Existing: existed, Warnings: diags,
	})
}

// preparedFile is the sidecar in the data directory holding every
// prepared program's source, so registrations survive flockd restarts.
const preparedFile = "prepared.json"

// preparedRecord is one persisted prepared-flock entry.
type preparedRecord struct {
	Handle  string `json:"handle"`
	Program string `json:"program"`
}

// persistPrepared records a registration and, when serving a data
// directory, rewrites the prepared-flock sidecar (temp file + rename, so
// a crash mid-write leaves the previous snapshot intact).
func (s *server) persistPrepared(handle, src string) error {
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	s.preparedSrcs[handle] = src
	if s.cfg.Dir == nil {
		return nil
	}
	recs := make([]preparedRecord, 0, len(s.preparedSrcs))
	for h, p := range s.preparedSrcs {
		recs = append(recs, preparedRecord{Handle: h, Program: p})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Handle < recs[j].Handle })
	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.Dir.Path(), preparedFile)
	tmp := path + ".tmp"
	// Sync the temp file before the rename: an unsynced rename can
	// atomically publish a hollow file, losing both snapshots. The
	// directory sync after the rename makes the swap itself durable.
	if err := storage.WriteFileSync(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return storage.SyncDir(s.cfg.Dir.Path())
}

// loadPrepared restores persisted prepared flocks from the data
// directory, re-validating each program against the freshly opened
// database — entries that no longer parse, lint clean, or match the
// schema are dropped with a warning rather than served stale.
func (s *server) loadPrepared(out io.Writer) {
	if s.cfg.Dir == nil {
		return
	}
	raw, err := os.ReadFile(filepath.Join(s.cfg.Dir.Path(), preparedFile))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(out, "flockd: ignoring prepared-flock sidecar: %v\n", err)
		}
		return
	}
	var recs []preparedRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		fmt.Fprintf(out, "flockd: ignoring prepared-flock sidecar: %v\n", err)
		return
	}
	db := s.snapshot()
	restored := 0
	for _, rec := range recs {
		p, err := s.validatePrepared(db, rec.Program)
		if err != nil {
			fmt.Fprintf(out, "flockd: dropping prepared flock %s: %v\n", rec.Handle, err)
			continue
		}
		handle, _ := s.prepared.Register(p.canon, p)
		s.preparedMu.Lock()
		s.preparedSrcs[handle] = rec.Program
		s.preparedMu.Unlock()
		restored++
	}
	if restored > 0 {
		fmt.Fprintf(out, "flockd: restored %d prepared flock(s)\n", restored)
	}
}

// validatePrepared runs the full prepare pipeline (parse, lint, flock
// construction, database check) on a persisted program.
func (s *server) validatePrepared(db *storage.Database, src string) (*preparedFlock, error) {
	fsrc, perr := datalog.ParseFlock(analysis.StripExplain(src))
	if perr != nil {
		return nil, perr
	}
	diags := analysis.AnalyzeFlockSource(fsrc, s.analysisOptions(db, ""))
	if analysis.HasErrors(diags) {
		return nil, fmt.Errorf("rejected by static analysis")
	}
	flock, err := core.NewWithViews(fsrc.Views, fsrc.Query, fsrc.Filter)
	if err != nil {
		return nil, err
	}
	if err := flock.CheckDatabase(db); err != nil {
		return nil, err
	}
	return &preparedFlock{fs: fsrc, flock: flock, canon: analysis.CanonicalProgram(fsrc), warnings: diags}, nil
}

// invokeRequest is the optional /invoke/{handle} JSON body. Threshold,
// when present, rebinds the prepared flock's filter threshold for this
// invocation — the interactive-mining knob: tightening it reuses the
// memoized extended answers, which are threshold-independent.
type invokeRequest struct {
	Threshold *json.Number `json:"threshold"`
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST to /invoke/{handle}"})
		return
	}
	handle := strings.TrimPrefix(r.URL.Path, "/invoke/")
	v, ok := s.prepared.Get(handle)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no prepared flock %q (POST the program to /prepare first)", handle)})
		return
	}
	p := v.(*preparedFlock)

	q := r.URL.Query()
	strategy := q.Get("strategy")
	if strategy == "" {
		strategy = "direct"
	}
	if !validStrategy(strategy) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown strategy %q", strategy)})
		return
	}
	timeout, err := requestTimeout(r, s.cfg.Timeout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req invokeRequest
	if len(strings.TrimSpace(string(body))) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad invoke body: %v", err)})
			return
		}
	}

	db := s.snapshot()
	useCache := q.Get("cache") != "0"
	flock, canon, fs := p.flock, p.canon, p.fs
	if req.Threshold != nil {
		tv, terr := thresholdValue(*req.Threshold)
		if terr != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad threshold binding: %v", terr)})
			return
		}
		spec := fs.Filter
		spec.Threshold = tv
		rebound, err := core.NewWithViews(fs.Views, fs.Query, spec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad threshold binding: %v", err)})
			return
		}
		flock = rebound
		canon = analysis.CanonicalProgram(&datalog.FlockSource{Views: fs.Views, Query: fs.Query, Filter: spec})
	}

	key := planKey(canon, strategy, db.Version())
	var ent *planEntry
	if useCache {
		if v, ok := s.plans.Get(key); ok {
			ent = v.(*planEntry)
		}
	}
	if ent == nil {
		// The program was fully checked at prepare time; only the
		// database binding needs re-verification (the schema could in
		// principle drift across mutations).
		if err := flock.CheckDatabase(db); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ent = &planEntry{flock: flock, warnings: p.warnings}
	}

	release, ok := s.admit()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("over the concurrent-query cap (%d); retry later", s.cfg.MaxQueries)})
		return
	}
	defer release()
	if ent.plan == nil && needsPlan(strategy) {
		plan, err := buildPlan(strategy, ent.flock, db)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ent.plan = plan
	}
	if useCache {
		s.plans.Put(key, ent)
	}
	s.respondEval(w, r.Context(), db, ent, strategy, timeout, useCache, handle)
}

// thresholdValue validates a rebound filter threshold. json.Number
// guarantees JSON-number syntax, but not a usable value: 1e999 overflows
// float64 to +Inf, and 1e-999 silently underflows to exactly 0 — which
// would rebind the filter to a different threshold than the client sent
// (COUNT >= 0 accepts the empty group, turning the answer infinite, and a
// MIN/MAX comparison against 0 quietly means something else). Both are
// refused here with the offending token in the message, instead of being
// evaluated or bounced with a misleading downstream error.
func thresholdValue(n json.Number) (storage.Value, error) {
	f, err := n.Float64()
	if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
		return storage.Value{}, fmt.Errorf("threshold %s does not fit a finite float64", n)
	}
	if f == 0 && !zeroLiteral(string(n)) {
		return storage.Value{}, fmt.Errorf("threshold %s underflows to zero", n)
	}
	v := storage.ParseValue(n.String())
	if !v.IsNumeric() {
		return storage.Value{}, fmt.Errorf("threshold %s is not numeric", n)
	}
	return v, nil
}

// zeroLiteral reports whether a JSON number token denotes exactly zero
// (no nonzero mantissa digit).
func zeroLiteral(s string) bool {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == 'e' || c == 'E':
			return true // the exponent cannot make a zero mantissa nonzero
		case c >= '1' && c <= '9':
			return false
		}
	}
	return true
}

// handleMutate appends CSV rows (no header; columns in relation order) to
// the named relation. The mutation is copy-on-write: a clone of the
// relation and catalog is built, the data-version counter is bumped, and
// the new database is published atomically — in-flight requests keep
// evaluating their snapshot, and every cache entry keyed on the old
// version becomes unreachable.
func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST CSV rows to /mutate/{relation}"})
		return
	}
	if s.cfg.Cluster != nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{
			Error: "mutations are not supported in coordinator mode: workers derive their shard partition from their own data load; update the data and restart the cluster"})
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/mutate/")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProgramBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(body) > maxProgramBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("mutation exceeds the %d-byte limit", maxProgramBytes)})
		return
	}
	records, err := csv.NewReader(strings.NewReader(string(body))).ReadAll()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad CSV: %v", err)})
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	src, err := s.db.Source(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	arity := src.Arity()
	rows := make([]storage.Tuple, 0, len(records))
	for i, rec := range records {
		if len(rec) != arity {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("row %d has %d fields but relation %s has %d columns", i+1, len(rec), name, arity)})
			return
		}
		t := make(storage.Tuple, len(rec))
		for j, field := range rec {
			t[j] = storage.ParseValue(field)
		}
		rows = append(rows, t)
	}

	// The mutation is copy-on-write under either engine: a new relation
	// view (cloned in-memory relation, or a disk view with the rows in its
	// delta layer) is registered in a cloned catalog published atomically.
	newVersion := s.db.Version() + 1
	var (
		added    []storage.Tuple
		totalLen int
	)
	db := s.db.Clone()
	if drel, isDisk := src.(*storage.DiskRelation); isDisk {
		next, fresh, err := drel.WithDelta(rows)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		added, totalLen = fresh, next.Len()
		db.AddSource(next)
	} else {
		old, err := s.db.Relation(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		next := old.Clone()
		for _, t := range rows {
			if next.Insert(t) {
				added = append(added, t)
			}
		}
		totalLen = next.Len()
		db.Add(next)
	}
	// Durability before visibility: the delta lands on disk before the
	// bumped database is published, so a crash can lose an acknowledged
	// response but never serve rows that later vanish.
	if s.cfg.Dir != nil {
		if err := s.cfg.Dir.AppendDelta(name, added, newVersion); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("persisting mutation: %v", err)})
			return
		}
	}
	db.SetVersion(newVersion)
	s.db = db
	writeJSON(w, http.StatusOK, mutateResponse{
		Relation: name, Inserted: len(added), Rows: totalLen, Version: db.Version(),
	})
}

// respondEval runs one evaluation (shared by /query and /invoke) and
// writes the success or error payload.
func (s *server) respondEval(w http.ResponseWriter, rctx context.Context, db *storage.Database,
	ent *planEntry, strategy string, timeout time.Duration, useCache bool, handle string) {

	// The request context carries the client-disconnect signal; the wall
	// limit rides on it so either aborts the evaluation cooperatively.
	ctx := rctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := &eval.Trace{}
	tr.Collector() // anchor the wall-clock/alloc baseline before evaluation
	// In coordinator mode each request gets its own scatter/gather
	// session, whose shard stats land in the merged report.
	var sess *cluster.Session
	if s.cfg.Cluster != nil {
		sess = s.cfg.Cluster.Session()
	}
	start := time.Now()
	answer, err := s.evaluate(ctx, db, ent, strategy, tr, useCache, sess)
	if err != nil {
		resp := errorResponse{Error: err.Error()}
		var se *cluster.ShardError
		if errors.As(err, &se) {
			resp.Shard = se.Shard
		}
		writeJSON(w, statusForEvalError(err), resp)
		return
	}
	report := tr.Report(strategy, s.cfg.Workers, answer.Len())
	if report != nil {
		report.Caches = s.cacheStats(db)
		if sess != nil {
			report.Cluster = sess.Stats()
		}
	}
	obs.PublishReport(report)

	resp := queryResponse{
		Strategy:   strategy,
		Handle:     handle,
		AnswerRows: answer.Len(),
		Columns:    answer.Columns(),
		WallNs:     time.Since(start).Nanoseconds(),
		Warnings:   ent.warnings, // only warning/info diagnostics survive to here
		Report:     report,
	}
	resp.Rows = make([][]string, 0, answer.Len())
	for _, t := range answer.Sorted() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// errPanic marks an evaluation that died in an engine invariant panic.
var errPanic = errors.New("internal panic")

// buildPlan derives the §4.2 plan the strategy executes.
func buildPlan(strategy string, flock *core.Flock, db *storage.Database) (*core.Plan, error) {
	switch strategy {
	case "static":
		return planner.PlanStatic(flock, planner.NewEstimator(db), nil)
	case "exhaustive":
		return planner.PlanExhaustive(flock, planner.NewEstimator(db), nil)
	case "levelwise":
		return planner.PlanLevelwise(flock, 0)
	default:
		return nil, fmt.Errorf("strategy %q does not use a prebuilt plan", strategy)
	}
}

// evaluate runs one flock under the request's context and the server's
// resource budgets. Engine panics are recovered into errors so a bad
// query cannot take the service down.
func (s *server) evaluate(ctx context.Context, db *storage.Database, ent *planEntry,
	strategy string, tr *eval.Trace, useCache bool, sess *cluster.Session) (answer *storage.Relation, err error) {
	defer func() {
		if r := recover(); r != nil {
			answer, err = nil, fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	flock := ent.flock
	limits := eval.Limits{MaxTuples: s.cfg.MaxTuples, MaxRows: s.cfg.MaxRows}
	ev := &core.EvalOptions{Workers: s.cfg.Workers, Trace: tr, Ctx: ctx, Limits: limits}
	if useCache && s.memo != nil && memoStrategy(strategy) {
		ev.Memo = s.memo
		ev.MemoSalt = core.MemoContext(db, flock)
	}
	// The coordinator hook covers the strategies whose FILTER steps route
	// through the engine's group-by: naive is the definitional oracle (it
	// must not share machinery with what it checks) and dynamic re-decides
	// its plan from observed sizes, so both stay coordinator-local.
	if sess != nil && memoStrategy(strategy) {
		ev.FilterEval = sess.FilterEval
	}
	switch strategy {
	case "direct":
		return flock.Eval(db, ev)
	case "naive":
		return flock.EvalNaiveOpts(db, ev)
	case "static", "exhaustive", "levelwise":
		res, err := ent.plan.Execute(db, ev)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case "dynamic":
		res, err := planner.EvalDynamic(db, flock, &planner.DynamicOptions{
			Workers: s.cfg.Workers, Trace: tr, Ctx: ctx, Limits: limits,
		})
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
}

// requestTimeout resolves the effective wall limit: the server-wide limit,
// tightened (never loosened) by a ?timeout= duration.
func requestTimeout(r *http.Request, serverLimit time.Duration) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return serverLimit, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout must be > 0 (got %v)", d)
	}
	if serverLimit > 0 && d > serverLimit {
		return serverLimit, nil
	}
	return d, nil
}

// statusForEvalError maps evaluation failures onto HTTP statuses: a dead
// worker shard is a bad gateway, deadline and cancellation are the
// gateway-timeout family, an exceeded resource budget is the client's
// query being too expensive, panics are 500s, and anything else (unknown
// strategy, plan errors) is a bad request.
func statusForEvalError(err error) int {
	var se *cluster.ShardError
	switch {
	case errors.As(err, &se):
		return http.StatusBadGateway
	case errors.Is(err, eval.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, eval.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errPanic):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once the status is written
}
