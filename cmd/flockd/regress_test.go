package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// prepareFlock registers a program and returns its handle.
func prepareFlock(t *testing.T, ts *httptest.Server, program string) string {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/prepare", "text/plain", strings.NewReader(program))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr prepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pr.Handle == "" {
		t.Fatalf("prepare: status %d, handle %q", resp.StatusCode, pr.Handle)
	}
	return pr.Handle
}

func postInvoke(t *testing.T, ts *httptest.Server, handle, query, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/invoke/"+handle+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// TestInvokeThresholdMalformed is the regression test for the threshold-
// rebinding edge cases: every malformed body must produce a structured
// 400 naming the problem. Before the fix, 1e-999 silently underflowed to
// a threshold of exactly 0 (rebinding the filter to a different
// condition than the client sent), and ±1e999 bounced with a misleading
// "not numeric" message from the datalog layer.
func TestInvokeThresholdMalformed(t *testing.T) {
	ts := httptest.NewServer(newServer(basketsDB(t), serverConfig{}).handler())
	defer ts.Close()
	handle := prepareFlock(t, ts, pairCountFlock)

	cases := []struct {
		body string
		want string // substring of the structured error
	}{
		{`{"threshold": 1e999}`, "threshold 1e999"},
		{`{"threshold": -1e999}`, "threshold -1e999"},
		{`{"threshold": 1e-999}`, "underflows to zero"},
		{`{"threshold": 1e-400}`, "underflows to zero"},
		{`{"threshold": "1e999"}`, "threshold 1e999"},
		{`{"threshold": "abc"}`, "bad invoke body"},
		{`{"threshold": "NaN"}`, "bad invoke body"},
		{`{"threshold": [1]}`, "bad invoke body"},
		{`not json`, "bad invoke body"},
	}
	for _, tc := range cases {
		status, payload := postInvoke(t, ts, handle, "", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400 (payload %s)", tc.body, status, payload)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(payload, &er); err != nil || er.Error == "" {
			t.Errorf("body %s: unstructured error payload %s", tc.body, payload)
			continue
		}
		if !strings.Contains(er.Error, tc.want) {
			t.Errorf("body %s: error %q does not mention %q", tc.body, er.Error, tc.want)
		}
	}

	// Well-formed rebinds still work, including an exact zero written
	// with an exponent (not an underflow).
	status, payload := postInvoke(t, ts, handle, "", `{"threshold": 3}`)
	var qr queryResponse
	if err := json.Unmarshal(payload, &qr); err != nil || status != http.StatusOK || qr.AnswerRows == 0 {
		t.Fatalf("threshold 3: status %d, payload %s", status, payload)
	}
	if status, payload = postInvoke(t, ts, handle, "", `{"threshold": 0e10}`); status != http.StatusBadRequest ||
		!strings.Contains(string(payload), "empty result") {
		// COUNT >= 0 accepts the empty group — rejected for being
		// infinite, not for being malformed.
		t.Fatalf("threshold 0e10: status %d, payload %s", status, payload)
	}
}

// TestConcurrentMutateInvokeSoak drives /mutate and /invoke (with
// threshold rebinding and both cached and uncached paths) concurrently.
// Run under -race in CI, it guards the copy-on-write publish path: every
// request must see one consistent snapshot, and nothing may tear.
func TestConcurrentMutateInvokeSoak(t *testing.T) {
	srv := newServer(basketsDB(t), serverConfig{PlanCacheSize: 16, MemoMaxBytes: 1 << 20})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	handle := prepareFlock(t, ts, pairCountFlock)

	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan string, 128)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := ""
				if i%2 == 0 {
					q = "?strategy=static"
				}
				if i%5 == 0 {
					q += map[bool]string{true: "?", false: "&"}[q == ""] + "cache=0"
				}
				body := ""
				if i%3 == 0 {
					body = fmt.Sprintf(`{"threshold": %d}`, 3+i%4)
				}
				status, payload := postInvoke(t, ts, handle, q, body)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("invoke[%d,%d] %s: status %d: %s", g, i, q, status, payload)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				row := fmt.Sprintf("%d,%d\n", 10000+g*iters+i, i%20)
				resp, err := ts.Client().Post(ts.URL+"/mutate/baskets", "text/csv", strings.NewReader(row))
				if err != nil {
					errs <- err.Error()
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("mutate[%d,%d]: status %d: %s", g, i, resp.StatusCode, raw)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
