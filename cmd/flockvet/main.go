// Command flockvet statically checks flock programs without evaluating
// them. It reports diagnostics with stable QFxxx codes (catalogued in
// docs/LANGUAGE.md): unsafe rules, unbound parameters, redundant subgoals
// found by containment mappings (§3.1), subsumed union branches (§3.4),
// non-monotone filters (§5), illegal FILTER plans (§4.2), and — given a
// data directory — schema mismatches.
//
// Usage:
//
//	flockvet [-json] [-data DIR] [-plan FILE] [FLOCK_FILE ...]
//
// With no files, the program is read from stdin. -plan checks a FILTER-
// step plan (Fig. 5 notation) against the single given flock. -data loads
// CSV relations and enables the QF016 schema checks. -json emits the
// diagnostics as a JSON array instead of file:line:col text.
//
// Exit status: 0 when no error-severity diagnostics were found (warnings
// are reported but do not fail the run), 1 when at least one error was,
// 2 on usage or I/O problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"queryflocks/internal/analysis"
	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flockvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		dataDir  = fs.String("data", "", "directory of CSV relations (enables schema checks)")
		planFile = fs.String("plan", "", "FILTER-step plan to check against the flock")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts := analysis.Options{}
	if *dataDir != "" {
		db, err := storage.LoadDir(*dataDir)
		if err != nil {
			fmt.Fprintln(stderr, "flockvet:", err)
			return 2
		}
		opts.DB = db
	}
	if *planFile != "" && fs.NArg() != 1 {
		fmt.Fprintln(stderr, "flockvet: -plan requires exactly one flock file")
		return 2
	}

	type input struct {
		name string
		src  string
	}
	var inputs []input
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "flockvet:", err)
			return 2
		}
		inputs = append(inputs, input{name: "<stdin>", src: string(src)})
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "flockvet:", err)
			return 2
		}
		inputs = append(inputs, input{name: path, src: string(src)})
	}

	var all []analysis.Diagnostic
	for _, in := range inputs {
		fileOpts := opts
		fileOpts.File = in.name
		ds := analysis.AnalyzeSource(in.src, fileOpts)
		if *planFile != "" {
			ds = append(ds, lintPlan(in.src, *planFile, fileOpts, stderr)...)
		}
		all = append(all, ds...)
	}

	if *jsonOut {
		if all == nil {
			all = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "flockvet:", err)
			return 2
		}
	} else if len(all) > 0 {
		fmt.Fprint(stdout, analysis.Render(all))
	}
	if analysis.HasErrors(all) {
		return 1
	}
	return 0
}

// lintPlan checks the plan file against the flock, provided the flock
// itself builds; flock-level errors are already reported by the analyzer.
func lintPlan(flockSrc, planPath string, opts analysis.Options, stderr io.Writer) []analysis.Diagnostic {
	f, err := core.Parse(analysis.StripExplain(flockSrc))
	if err != nil {
		return nil
	}
	src, err := os.ReadFile(planPath)
	if err != nil {
		fmt.Fprintln(stderr, "flockvet:", err)
		return nil
	}
	planOpts := opts
	planOpts.File = planPath
	return analysis.AnalyzePlanSource(f, string(src), planOpts)
}
