package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"queryflocks/internal/analysis"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const unsafeSrc = `
QUERY:
answer(X) :- baskets(B,$1) AND X > 5
FILTER:
COUNT(answer.X) >= 2
`

const cleanSrc = `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2
`

func TestVetFileWithErrorsExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "bad.flock", unsafeSrc)
	var out, errOut bytes.Buffer
	code := run([]string{path}, strings.NewReader(""), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[QF002]") || !strings.Contains(out.String(), "bad.flock:3:") {
		t.Errorf("output should carry code and position:\n%s", out.String())
	}
}

func TestVetCleanFileExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "ok.flock", cleanSrc)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean file should print nothing, got %q", out.String())
	}
}

func TestVetStdinJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json"}, strings.NewReader(unsafeSrc), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var ds []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &ds); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	var found bool
	for _, d := range ds {
		if d.Code == "QF002" && d.Severity == analysis.SevError && d.File == "<stdin>" {
			found = true
		}
	}
	if !found {
		t.Errorf("want a QF002 error for <stdin>, got %+v", ds)
	}

	out.Reset()
	if code := run([]string{"-json"}, strings.NewReader(cleanSrc), &out, &errOut); code != 0 {
		t.Fatalf("clean stdin exit = %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}

func TestVetPlanFlag(t *testing.T) {
	dir := t.TempDir()
	flock := write(t, dir, "medical.flock", `
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m)
FILTER:
COUNT(answer.P) >= 2
`)
	plan := write(t, dir, "bad.plan", `
okS($s) := FILTER($s,
    answer(P) :- unrelated(P,$s),
    COUNT(answer.P) >= 2
);
ok($s,$m) := FILTER(($s,$m),
    answer(P) :- okS($s) AND exhibits(P,$s) AND treatments(P,$m),
    COUNT(answer.P) >= 2
);
`)
	var out, errOut bytes.Buffer
	code := run([]string{"-plan", plan, flock}, strings.NewReader(""), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "[QF022]") || !strings.Contains(out.String(), "bad.plan:2:") {
		t.Errorf("output should name the illegal step in the plan file:\n%s", out.String())
	}
}

func TestVetDataDirSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "baskets.csv", "BID,Item\n1,beer\n")
	path := write(t, dir, "q.flock", `
QUERY:
answer(B) :- baskets(B,$1) AND nosuch(B,$1)
FILTER:
COUNT(answer.B) >= 2
`)
	var out, errOut bytes.Buffer
	code := run([]string{"-data", dir, path}, strings.NewReader(""), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; out: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[QF016]") {
		t.Errorf("want QF016 schema error:\n%s", out.String())
	}
}

func TestVetUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-plan", "p.plan"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("-plan without a flock file exit = %d, want 2", code)
	}
	if code := run([]string{"/no/such/file.flock"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}

// TestVetWarningsDoNotFail pins the contract front-ends rely on: warnings
// print but exit 0.
func TestVetWarningsDoNotFail(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "warn.flock", `
QUERY:
answer(B) :- baskets(B,$1) AND sales(B,X)
FILTER:
COUNT(answer.B) >= 2
`)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("warnings-only exit = %d, want 0; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "[QF013]") {
		t.Errorf("warning should still print:\n%s", out.String())
	}
}
