package main

import (
	"encoding/json"
	"strings"
	"testing"

	"queryflocks/internal/obs"
)

// goodInput builds a minimal flockbench -json document with one valid
// instrumented report.
func goodInput(t *testing.T) string {
	t.Helper()
	c := obs.NewCollector()
	c.Record(obs.Event{Op: obs.OpJoin, Desc: "r(A,B)", RowsIn: 10, RowsOut: 20})
	c.Record(obs.Event{Op: obs.OpGroup, Desc: "answer [COUNT >= 2]", RowsIn: 20, RowsOut: 5, Groups: 5})
	r := c.Report("direct", 1, 5)
	doc := []map[string]any{{"id": "E3", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBenchcheckAccepts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-require-ops", "join,group", "-min-reports", "1"},
		strings.NewReader(goodInput(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 op_report(s)") {
		t.Errorf("summary: %s", out.String())
	}
}

func TestBenchcheckRejects(t *testing.T) {
	good := goodInput(t)
	cases := []struct {
		name  string
		args  []string
		input string
	}{
		{"bad json", nil, "{not json"},
		{"empty array", nil, "[]"},
		{"missing op", []string{"-require-ops", "antijoin"}, good},
		{"too few reports", []string{"-min-reports", "2"}, good},
		{"no reports at all", nil, `[{"id":"E1","title":"t"}]`},
		{"empty id", nil, strings.Replace(good, `"id":"E3"`, `"id":""`, 1)},
		{"empty steps", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":0,"total_rows":0,"steps":[]}]}]`},
		{"no wall time", nil, `[{"id":"E3","op_reports":[{"strategy":"s","answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"aggregate mismatch", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":9,"total_rows":9,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"bad flag", []string{"-bogus"}, good},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(c.args, strings.NewReader(c.input), &out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
