package main

import (
	"encoding/json"
	"strings"
	"testing"

	"queryflocks/internal/obs"
)

// goodInput builds a minimal flockbench -json document with one valid
// instrumented report.
func goodInput(t *testing.T) string {
	t.Helper()
	c := obs.NewCollector()
	c.Record(obs.Event{Op: obs.OpJoin, Desc: "r(A,B)", RowsIn: 10, RowsOut: 20})
	c.Record(obs.Event{Op: obs.OpGroup, Desc: "answer [COUNT >= 2]", RowsIn: 20, RowsOut: 5, Groups: 5})
	r := c.Report("direct", 1, 5)
	doc := []map[string]any{{"id": "E3", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBenchcheckAccepts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-require-ops", "join,group", "-min-reports", "1"},
		strings.NewReader(goodInput(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 op_report(s)") {
		t.Errorf("summary: %s", out.String())
	}
}

// TestBenchcheckAcceptsPhysicalOps feeds a report whose steps use every
// physical operator kind (with plan-node ids) and checks the closed-set
// validation admits them all.
func TestBenchcheckAcceptsPhysicalOps(t *testing.T) {
	c := obs.NewCollector()
	kinds := []obs.Op{
		obs.OpScan, obs.OpBuild, obs.OpJoin, obs.OpAntiJoin, obs.OpSelect,
		obs.OpProject, obs.OpUnion, obs.OpGroup, obs.OpMaterialize,
		obs.OpStep, obs.OpDecision, obs.OpView, obs.OpNote,
	}
	for i, op := range kinds {
		c.Record(obs.Event{Op: op, ID: i + 1, Desc: "d", RowsIn: 1, RowsOut: 1})
	}
	r := c.Report("direct", 1, 1)
	doc := []map[string]any{{"id": "E1", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-require-ops", "scan,build,join,project,union,materialize"},
		strings.NewReader(string(b)), &out); err != nil {
		t.Fatal(err)
	}
}

func TestBenchcheckRejects(t *testing.T) {
	good := goodInput(t)
	cases := []struct {
		name  string
		args  []string
		input string
	}{
		{"bad json", nil, "{not json"},
		{"empty array", nil, "[]"},
		{"missing op", []string{"-require-ops", "antijoin"}, good},
		{"too few reports", []string{"-min-reports", "2"}, good},
		{"no reports at all", nil, `[{"id":"E1","title":"t"}]`},
		{"empty id", nil, strings.Replace(good, `"id":"E3"`, `"id":""`, 1)},
		{"empty steps", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":0,"total_rows":0,"steps":[]}]}]`},
		{"no wall time", nil, `[{"id":"E3","op_reports":[{"strategy":"s","answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"aggregate mismatch", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":9,"total_rows":9,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"unknown op kind", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"mystery","rows_out":1}]}]}]`},
		{"negative node id", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"join","id":-2,"rows_out":1}]}]}]`},
		{"negative peak", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"peak_tuples":-1,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"bad flag", []string{"-bogus"}, good},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(c.args, strings.NewReader(c.input), &out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
