package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"queryflocks/internal/obs"
)

// goodInput builds a minimal flockbench -json document with one valid
// instrumented report.
func goodInput(t *testing.T) string {
	t.Helper()
	c := obs.NewCollector()
	c.Record(obs.Event{Op: obs.OpJoin, Desc: "r(A,B)", RowsIn: 10, RowsOut: 20})
	c.Record(obs.Event{Op: obs.OpGroup, Desc: "answer [COUNT >= 2]", RowsIn: 20, RowsOut: 5, Groups: 5})
	r := c.Report("direct", 1, 5)
	doc := []map[string]any{{"id": "E3", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBenchcheckAccepts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-require-ops", "join,group", "-min-reports", "1"},
		strings.NewReader(goodInput(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 op_report(s)") {
		t.Errorf("summary: %s", out.String())
	}
}

// TestBenchcheckAcceptsPhysicalOps feeds a report whose steps use every
// physical operator kind (with plan-node ids) and checks the closed-set
// validation admits them all.
func TestBenchcheckAcceptsPhysicalOps(t *testing.T) {
	c := obs.NewCollector()
	kinds := []obs.Op{
		obs.OpScan, obs.OpBuild, obs.OpJoin, obs.OpAntiJoin, obs.OpSelect,
		obs.OpProject, obs.OpUnion, obs.OpGroup, obs.OpMaterialize,
		obs.OpSymJoin, obs.OpStep, obs.OpDecision, obs.OpView, obs.OpNote,
	}
	for i, op := range kinds {
		c.Record(obs.Event{Op: op, ID: i + 1, Desc: "d", RowsIn: 1, RowsOut: 1})
	}
	r := c.Report("direct", 1, 1)
	doc := []map[string]any{{"id": "E1", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-require-ops", "scan,build,join,symjoin,project,union,materialize"},
		strings.NewReader(string(b)), &out); err != nil {
		t.Fatal(err)
	}
}

// pipelineInput builds a flockbench -json document carrying one valid
// pipeline metric alongside a valid op_report.
func pipelineInput(t *testing.T, alloc int64) string {
	t.Helper()
	p := pipelineMetric{
		Name: "direct support=20", PeakStream: 100, PeakMaterialize: 200,
		AllocStream: alloc, AllocMaterialize: 2000, PeakStreamRows: 120,
		AllocStreamRows: 1500, DictSize: 7, InternHits: 5, InternMisses: 1,
	}
	var doc []map[string]any
	if err := json.Unmarshal([]byte(goodInput(t)), &doc); err != nil {
		t.Fatal(err)
	}
	doc[0]["pipeline"] = []pipelineMetric{p}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func writeBaseline(t *testing.T, alloc int64) string {
	t.Helper()
	path := t.TempDir() + "/baseline.json"
	base := map[string]any{"experiments": []map[string]any{{
		"id": "E3",
		"pipeline": []map[string]any{{
			"name": "direct support=20", "alloc_stream_bytes": alloc,
		}},
	}}}
	b, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchcheckPipeline(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(pipelineInput(t, 1000)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 pipeline metric(s)") {
		t.Errorf("summary: %s", out.String())
	}

	// Invalid metrics must be rejected.
	for name, mutate := range map[string]string{
		"empty name":     `"name":"direct support=20"`,
		"zero dict":      `"dict_size":7`,
		"negative alloc": `"alloc_stream_bytes":1000`,
	} {
		bad := pipelineInput(t, 1000)
		switch name {
		case "empty name":
			bad = strings.Replace(bad, mutate, `"name":""`, 1)
		case "zero dict":
			bad = strings.Replace(bad, mutate, `"dict_size":0`, 1)
		case "negative alloc":
			bad = strings.Replace(bad, mutate, `"alloc_stream_bytes":-5`, 1)
		}
		if err := run(nil, strings.NewReader(bad), &strings.Builder{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBenchcheckPipelineBaseline(t *testing.T) {
	// Within 10% of the baseline: passes.
	ok := writeBaseline(t, 950)
	if err := run([]string{"-pipeline-baseline", ok},
		strings.NewReader(pipelineInput(t, 1000)), &strings.Builder{}); err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
	// More than 1.1x the baseline: the regression gate trips.
	low := writeBaseline(t, 500)
	err := run([]string{"-pipeline-baseline", low},
		strings.NewReader(pipelineInput(t, 1000)), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "exceeds 1.1x baseline") {
		t.Fatalf("regression should trip the gate, got %v", err)
	}
	// A baseline that matches nothing is a configuration error.
	drift := t.TempDir() + "/drift.json"
	if err := os.WriteFile(drift, []byte(`{"experiments":[{"id":"E9","pipeline":[{"name":"x","alloc_stream_bytes":1}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pipeline-baseline", drift},
		strings.NewReader(pipelineInput(t, 1000)), &strings.Builder{}); err == nil {
		t.Error("unmatched baseline should fail")
	}
}

func TestBenchcheckRejects(t *testing.T) {
	good := goodInput(t)
	cases := []struct {
		name  string
		args  []string
		input string
	}{
		{"bad json", nil, "{not json"},
		{"empty array", nil, "[]"},
		{"missing op", []string{"-require-ops", "antijoin"}, good},
		{"too few reports", []string{"-min-reports", "2"}, good},
		{"no reports at all", nil, `[{"id":"E1","title":"t"}]`},
		{"empty id", nil, strings.Replace(good, `"id":"E3"`, `"id":""`, 1)},
		{"empty steps", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":0,"total_rows":0,"steps":[]}]}]`},
		{"no wall time", nil, `[{"id":"E3","op_reports":[{"strategy":"s","answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"aggregate mismatch", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":9,"total_rows":9,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"unknown op kind", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"mystery","rows_out":1}]}]}]`},
		{"negative node id", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"steps":[{"op":"join","id":-2,"rows_out":1}]}]}]`},
		{"negative peak", nil, `[{"id":"E3","op_reports":[{"strategy":"s","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,"peak_tuples":-1,"steps":[{"op":"join","rows_out":1}]}]}]`},
		{"bad flag", []string{"-bogus"}, good},
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(c.args, strings.NewReader(c.input), &out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestBenchcheckCaches validates the serving-layer cache block flockd
// attaches to its reports: bounded gauges and hit/occupancy consistency.
func TestBenchcheckCaches(t *testing.T) {
	report := func(caches string) string {
		return `[{"id":"E3","op_reports":[{"strategy":"direct","wall_ns":5,"answer_rows":1,"max_rows":1,"total_rows":1,` +
			`"caches":` + caches + `,"steps":[{"op":"join","rows_out":1}]}]}]`
	}
	var out strings.Builder
	ok := report(`{"plan_entries":2,"plan_capacity":8,"plan_hits":3,"plan_misses":2,"memo_entries":4,"memo_bytes":100,"memo_max_bytes":1000,"memo_surv_hits":1,"db_version":2}`)
	if err := run(nil, strings.NewReader(ok), &out); err != nil {
		t.Fatalf("valid cache block rejected: %v", err)
	}
	bad := []struct{ name, caches string }{
		{"entries over capacity", `{"plan_entries":9,"plan_capacity":8}`},
		{"bytes over bound", `{"memo_entries":1,"memo_bytes":2000,"memo_max_bytes":1000}`},
		{"plan hits from nowhere", `{"plan_hits":3}`},
		{"memo hits from nowhere", `{"memo_ext_hits":2}`},
		{"negative bytes", `{"memo_bytes":-1}`},
	}
	for _, c := range bad {
		if err := run(nil, strings.NewReader(report(c.caches)), &out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// clusterInput attaches a cluster block to an otherwise valid report.
func clusterInput(t *testing.T, c *obs.ClusterStats) string {
	t.Helper()
	col := obs.NewCollector()
	col.Record(obs.Event{Op: obs.OpShard, Desc: "127.0.0.1:9001", RowsOut: 4})
	col.Record(obs.Event{Op: obs.OpGroup, Desc: "answer [COUNT >= 2] (merged 2 shards)", RowsIn: 8, RowsOut: 3, Groups: 8})
	r := col.Report("direct", 1, 3)
	r.Cluster = c
	doc := []map[string]any{{"id": "E13", "title": "t", "op_reports": []*obs.RunReport{r}}}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBenchcheckCluster(t *testing.T) {
	good := &obs.ClusterStats{Shards: 2, ShardRel: "baskets", Scattered: 1, MergedGroups: 8}
	var out strings.Builder
	if err := run(nil, strings.NewReader(clusterInput(t, good)), &out); err != nil {
		t.Fatalf("valid cluster block rejected: %v", err)
	}
	for name, bad := range map[string]*obs.ClusterStats{
		"no shards":          {Shards: 0, ShardRel: "baskets"},
		"missing rel":        {Shards: 2, Scattered: 1},
		"merged w/o scatter": {Shards: 2, ShardRel: "baskets", MergedGroups: 3},
		"partial mismatch":   {Shards: 2, ShardRel: "baskets", Scattered: 1, Partial: true},
		"all shards dead":    {Shards: 2, ShardRel: "baskets", Scattered: 1, Partial: true, Failed: []string{"a", "b"}},
	} {
		if err := run(nil, strings.NewReader(clusterInput(t, bad)), &strings.Builder{}); err == nil {
			t.Errorf("%s: invalid cluster block accepted", name)
		}
	}
}
