// Command benchcheck validates flockbench -json output read from stdin:
// the table array must parse, and every embedded op_report must satisfy
// the metrics schema invariants (a strategy name, positive wall time, a
// non-empty step list, max_rows <= total_rows, non-negative
// cardinalities, and — when the report carries flockd's "caches" block —
// bounded cache gauges). It is the CI smoke check that keeps the
// observability layer's JSON contract honest.
//
// Usage:
//
//	flockbench -exp E3 -json | benchcheck [-require-ops join,group] [-min-reports 1]
//
// -require-ops lists operator kinds that must appear somewhere across the
// reports; -min-reports is the minimum number of op_reports expected in
// total; -require-storage demands at least one report with storage-engine
// I/O (segments_opened > 0), the gate the CI disk-engine step uses.
// Reports carrying storage counters are checked for internal consistency
// (index blocks and delta rows imply opened segments, opened segments
// imply bytes read). Embedded "pipeline" entries (the three-executor comparison) are
// validated too, and -pipeline-baseline FILE additionally fails the check
// when any (experiment, workload) pair allocates more than 1.1x its
// committed alloc_stream_bytes — the CI columnar-regression gate.
// Violations print to stderr and exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"queryflocks/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

// table is the slice of the flockbench JSON schema benchcheck inspects.
type table struct {
	ID        string           `json:"id"`
	Title     string           `json:"title"`
	OpReports []*obs.RunReport `json:"op_reports"`
	Pipeline  []pipelineMetric `json:"pipeline"`
}

// pipelineMetric mirrors experiments.PipelineMetric: the three-executor
// comparison plus the columnar run's dictionary statistics.
type pipelineMetric struct {
	Name             string `json:"name"`
	PeakStream       int    `json:"peak_stream_tuples"`
	PeakMaterialize  int    `json:"peak_materialize_tuples"`
	AllocStream      int64  `json:"alloc_stream_bytes"`
	AllocMaterialize int64  `json:"alloc_materialize_bytes"`
	PeakStreamRows   int    `json:"peak_stream_rows_tuples"`
	AllocStreamRows  int64  `json:"alloc_stream_rows_bytes"`
	DictSize         int    `json:"dict_size"`
	InternHits       uint64 `json:"intern_hits"`
	InternMisses     uint64 `json:"intern_misses"`
}

// baselineFile is the BENCH_pipeline.json schema -pipeline-baseline reads.
type baselineFile struct {
	Experiments []struct {
		ID       string           `json:"id"`
		Pipeline []pipelineMetric `json:"pipeline"`
	} `json:"experiments"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	requireOps := fs.String("require-ops", "", "comma-separated operator kinds that must appear (e.g. join,group,step)")
	minReports := fs.Int("min-reports", 1, "minimum total op_reports across all tables")
	requireStorage := fs.Bool("require-storage", false, "require at least one report with storage-engine I/O (segments_opened > 0)")
	baseline := fs.String("pipeline-baseline", "", "BENCH_pipeline.json-schema file; fail if any matching (id,name) allocates more than 1.1x its baseline alloc_stream_bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tables []table
	if err := json.NewDecoder(in).Decode(&tables); err != nil {
		return fmt.Errorf("invalid flockbench JSON: %w", err)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no tables in input")
	}

	seenOps := map[obs.Op]bool{}
	reports, pipelines, storageReports := 0, 0, 0
	for _, t := range tables {
		if t.ID == "" {
			return fmt.Errorf("table with empty id")
		}
		for i, r := range t.OpReports {
			reports++
			if err := checkReport(r); err != nil {
				return fmt.Errorf("%s op_reports[%d]: %w", t.ID, i, err)
			}
			if r.SegmentsOpened > 0 {
				storageReports++
			}
			for _, s := range r.Steps {
				seenOps[s.Op] = true
			}
		}
		for i, p := range t.Pipeline {
			pipelines++
			if err := checkPipeline(p); err != nil {
				return fmt.Errorf("%s pipeline[%d]: %w", t.ID, i, err)
			}
		}
	}
	if *baseline != "" {
		if err := checkBaseline(*baseline, tables); err != nil {
			return err
		}
	}
	if reports < *minReports {
		return fmt.Errorf("%d op_reports, want at least %d (run an instrumented experiment with -json)", reports, *minReports)
	}
	if *requireStorage && storageReports == 0 {
		return fmt.Errorf("no report carries storage-engine I/O (segments_opened > 0); run a data-directory experiment (e.g. E12)")
	}
	for _, op := range splitOps(*requireOps) {
		if !seenOps[op] {
			return fmt.Errorf("no %q events in any report (have %s)", op, opList(seenOps))
		}
	}

	fmt.Fprintf(out, "benchcheck: %d table(s), %d op_report(s), %d pipeline metric(s), ops %s\n",
		len(tables), reports, pipelines, opList(seenOps))
	return nil
}

// checkPipeline enforces the pipeline-metric invariants: a workload
// name, non-negative gauges, and a populated dictionary — the columnar
// executor always holds at least the null sentinel, so dict_size == 0
// means the run silently fell back to boxed values.
func checkPipeline(p pipelineMetric) error {
	if p.Name == "" {
		return fmt.Errorf("missing workload name")
	}
	for field, v := range map[string]int64{
		"peak_stream_tuples":      int64(p.PeakStream),
		"peak_materialize_tuples": int64(p.PeakMaterialize),
		"peak_stream_rows_tuples": int64(p.PeakStreamRows),
		"alloc_stream_bytes":      p.AllocStream,
		"alloc_materialize_bytes": p.AllocMaterialize,
		"alloc_stream_rows_bytes": p.AllocStreamRows,
	} {
		if v < 0 {
			return fmt.Errorf("%s: negative %s", p.Name, field)
		}
	}
	if p.DictSize < 1 {
		return fmt.Errorf("%s: dict_size %d, want >= 1 (columnar run never touched the dictionary)", p.Name, p.DictSize)
	}
	return nil
}

// checkBaseline compares each pipeline metric against the committed
// baseline file by (experiment id, workload name): the columnar
// executor's allocation may not regress by more than 10%. Entries
// missing from the baseline (new workloads) pass.
func checkBaseline(path string, tables []table) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading pipeline baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("invalid pipeline baseline %s: %w", path, err)
	}
	ref := map[string]int64{}
	for _, e := range bf.Experiments {
		for _, p := range e.Pipeline {
			ref[e.ID+"/"+p.Name] = p.AllocStream
		}
	}
	if len(ref) == 0 {
		return fmt.Errorf("pipeline baseline %s has no entries", path)
	}
	matched := 0
	for _, t := range tables {
		for _, p := range t.Pipeline {
			want, ok := ref[t.ID+"/"+p.Name]
			if !ok {
				continue
			}
			matched++
			if limit := want + want/10; p.AllocStream > limit {
				return fmt.Errorf("%s %q: alloc_stream_bytes %d exceeds 1.1x baseline %d",
					t.ID, p.Name, p.AllocStream, want)
			}
		}
	}
	if matched == 0 {
		return fmt.Errorf("no pipeline metric matches any baseline entry (ids/names drifted?)")
	}
	return nil
}

// knownOps is the closed set of operator kinds the metrics schema
// admits: the physical operators (internal/physical.Kind values double
// as obs.Op strings) plus the strategy-level step, decision, view, and
// note events. A kind outside this set means a producer and the schema
// have drifted, which must fail CI rather than pass silently.
var knownOps = map[obs.Op]bool{
	obs.OpScan:        true,
	obs.OpBuild:       true,
	obs.OpJoin:        true,
	obs.OpAntiJoin:    true,
	obs.OpSelect:      true,
	obs.OpProject:     true,
	obs.OpUnion:       true,
	obs.OpGroup:       true,
	obs.OpMaterialize: true,
	obs.OpSymJoin:     true,
	obs.OpStep:        true,
	obs.OpDecision:    true,
	obs.OpView:        true,
	obs.OpNote:        true,
	obs.OpShard:       true,
}

// checkReport enforces the per-report invariants of the metrics schema.
func checkReport(r *obs.RunReport) error {
	if r == nil {
		return fmt.Errorf("null report")
	}
	if r.Strategy == "" {
		return fmt.Errorf("missing strategy")
	}
	if r.WallNs <= 0 {
		return fmt.Errorf("%s: wall_ns %d, want > 0", r.Strategy, r.WallNs)
	}
	if len(r.Steps) == 0 {
		return fmt.Errorf("%s: empty step list", r.Strategy)
	}
	if r.MaxRows > r.TotalRows {
		return fmt.Errorf("%s: max_rows %d > total_rows %d", r.Strategy, r.MaxRows, r.TotalRows)
	}
	if r.AnswerRows < 0 {
		return fmt.Errorf("%s: negative answer_rows", r.Strategy)
	}
	if r.PeakTuples < 0 {
		return fmt.Errorf("%s: negative peak_tuples", r.Strategy)
	}
	maxRows, totalRows := 0, 0
	for i, s := range r.Steps {
		if s.Op == "" {
			return fmt.Errorf("%s steps[%d]: missing op", r.Strategy, i)
		}
		if !knownOps[s.Op] {
			return fmt.Errorf("%s steps[%d]: unknown operator kind %q", r.Strategy, i, s.Op)
		}
		if s.ID < 0 {
			return fmt.Errorf("%s steps[%d]: negative plan-node id %d", r.Strategy, i, s.ID)
		}
		if s.RowsOut < 0 || s.RowsIn < 0 {
			return fmt.Errorf("%s steps[%d]: negative cardinality", r.Strategy, i)
		}
		totalRows += s.RowsOut
		if s.RowsOut > maxRows {
			maxRows = s.RowsOut
		}
	}
	if maxRows != r.MaxRows || totalRows != r.TotalRows {
		return fmt.Errorf("%s: aggregates (max %d, total %d) disagree with steps (max %d, total %d)",
			r.Strategy, r.MaxRows, r.TotalRows, maxRows, totalRows)
	}
	if r.Caches != nil {
		if err := checkCaches(r.Caches); err != nil {
			return fmt.Errorf("%s caches: %w", r.Strategy, err)
		}
	}
	if r.Cluster != nil {
		if err := checkCluster(r.Cluster); err != nil {
			return fmt.Errorf("%s cluster: %w", r.Strategy, err)
		}
	}
	return checkStorage(r)
}

// checkCluster enforces the coordinator's merged-report invariants: the
// shard layout is well-formed, every computation either scattered or
// fell back, and a degraded (partial) merge names the shards it lost —
// but never all of them, since an all-dead scatter must fail the query
// instead of answering.
func checkCluster(c *obs.ClusterStats) error {
	if c.Shards <= 0 {
		return fmt.Errorf("shards %d, want > 0", c.Shards)
	}
	if c.ShardRel == "" {
		return fmt.Errorf("missing shard_rel")
	}
	if c.ShardCol < 0 {
		return fmt.Errorf("negative shard_col %d", c.ShardCol)
	}
	if c.Scattered < 0 || c.Fallbacks < 0 || c.MergedGroups < 0 {
		return fmt.Errorf("negative counter: %+v", c)
	}
	if c.MergedGroups > 0 && c.Scattered == 0 {
		return fmt.Errorf("merged_groups %d with scattered 0", c.MergedGroups)
	}
	if c.Partial != (len(c.Failed) > 0) {
		return fmt.Errorf("partial=%v disagrees with failed_shards %v", c.Partial, c.Failed)
	}
	if len(c.Failed) >= c.Shards && c.Shards > 0 && c.Partial {
		return fmt.Errorf("all %d shards failed but the report claims a (partial) answer", c.Shards)
	}
	return nil
}

// checkStorage enforces the storage-engine counter invariants: reading
// an index block or a delta row means a segment file was opened, and an
// opened segment always reads at least its header bytes. A violation
// means the I/O accounting in storage.IOStats and the report plumbing
// have drifted.
func checkStorage(r *obs.RunReport) error {
	if r.IndexBlocksRead > 0 && r.SegmentsOpened == 0 {
		return fmt.Errorf("%s: index_blocks_read %d with segments_opened 0", r.Strategy, r.IndexBlocksRead)
	}
	if r.DeltaRows > 0 && r.SegmentsOpened == 0 {
		return fmt.Errorf("%s: delta_rows %d with segments_opened 0", r.Strategy, r.DeltaRows)
	}
	if r.SegmentsOpened > 0 && r.StorageBytesRead == 0 {
		return fmt.Errorf("%s: segments_opened %d with storage_bytes_read 0", r.Strategy, r.SegmentsOpened)
	}
	return nil
}

// checkCaches enforces the serving-layer counter invariants on reports
// that carry the flockd cache block: gauges stay within their configured
// bounds, and a bounded cache that reports hits must also report the
// entries (or evictions) those hits came from.
func checkCaches(c *obs.CacheStats) error {
	if c.PlanEntries < 0 || c.MemoEntries < 0 || c.MemoBytes < 0 || c.PreparedFlocks < 0 {
		return fmt.Errorf("negative gauge: %+v", c)
	}
	if c.PlanCapacity > 0 && c.PlanEntries > c.PlanCapacity {
		return fmt.Errorf("plan_entries %d over plan_capacity %d", c.PlanEntries, c.PlanCapacity)
	}
	if c.MemoMaxBytes > 0 && c.MemoBytes > c.MemoMaxBytes {
		return fmt.Errorf("memo_bytes %d over memo_max_bytes %d", c.MemoBytes, c.MemoMaxBytes)
	}
	if c.PlanHits > 0 && c.PlanEntries == 0 && c.PlanEvictions == 0 {
		return fmt.Errorf("plan_hits %d with no entries or evictions", c.PlanHits)
	}
	if (c.MemoExtHits > 0 || c.MemoSurvHits > 0) && c.MemoEntries == 0 && c.MemoEvictions == 0 {
		return fmt.Errorf("memo hits with no entries or evictions: %+v", c)
	}
	return nil
}

func splitOps(s string) []obs.Op {
	var out []obs.Op
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, obs.Op(part))
		}
	}
	return out
}

func opList(seen map[obs.Op]bool) string {
	var names []string
	for op := range seen {
		names = append(names, string(op))
	}
	if len(names) == 0 {
		return "none"
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
