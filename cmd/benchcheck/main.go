// Command benchcheck validates flockbench -json output read from stdin:
// the table array must parse, and every embedded op_report must satisfy
// the metrics schema invariants (a strategy name, positive wall time, a
// non-empty step list, max_rows <= total_rows, non-negative
// cardinalities). It is the CI smoke check that keeps the observability
// layer's JSON contract honest.
//
// Usage:
//
//	flockbench -exp E3 -json | benchcheck [-require-ops join,group] [-min-reports 1]
//
// -require-ops lists operator kinds that must appear somewhere across the
// reports; -min-reports is the minimum number of op_reports expected in
// total. Violations print to stderr and exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"queryflocks/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

// table is the slice of the flockbench JSON schema benchcheck inspects.
type table struct {
	ID        string           `json:"id"`
	Title     string           `json:"title"`
	OpReports []*obs.RunReport `json:"op_reports"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	requireOps := fs.String("require-ops", "", "comma-separated operator kinds that must appear (e.g. join,group,step)")
	minReports := fs.Int("min-reports", 1, "minimum total op_reports across all tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tables []table
	if err := json.NewDecoder(in).Decode(&tables); err != nil {
		return fmt.Errorf("invalid flockbench JSON: %w", err)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no tables in input")
	}

	seenOps := map[obs.Op]bool{}
	reports := 0
	for _, t := range tables {
		if t.ID == "" {
			return fmt.Errorf("table with empty id")
		}
		for i, r := range t.OpReports {
			reports++
			if err := checkReport(r); err != nil {
				return fmt.Errorf("%s op_reports[%d]: %w", t.ID, i, err)
			}
			for _, s := range r.Steps {
				seenOps[s.Op] = true
			}
		}
	}
	if reports < *minReports {
		return fmt.Errorf("%d op_reports, want at least %d (run an instrumented experiment with -json)", reports, *minReports)
	}
	for _, op := range splitOps(*requireOps) {
		if !seenOps[op] {
			return fmt.Errorf("no %q events in any report (have %s)", op, opList(seenOps))
		}
	}

	fmt.Fprintf(out, "benchcheck: %d table(s), %d op_report(s), ops %s\n", len(tables), reports, opList(seenOps))
	return nil
}

// knownOps is the closed set of operator kinds the metrics schema
// admits: the physical operators (internal/physical.Kind values double
// as obs.Op strings) plus the strategy-level step, decision, view, and
// note events. A kind outside this set means a producer and the schema
// have drifted, which must fail CI rather than pass silently.
var knownOps = map[obs.Op]bool{
	obs.OpScan:        true,
	obs.OpBuild:       true,
	obs.OpJoin:        true,
	obs.OpAntiJoin:    true,
	obs.OpSelect:      true,
	obs.OpProject:     true,
	obs.OpUnion:       true,
	obs.OpGroup:       true,
	obs.OpMaterialize: true,
	obs.OpStep:        true,
	obs.OpDecision:    true,
	obs.OpView:        true,
	obs.OpNote:        true,
}

// checkReport enforces the per-report invariants of the metrics schema.
func checkReport(r *obs.RunReport) error {
	if r == nil {
		return fmt.Errorf("null report")
	}
	if r.Strategy == "" {
		return fmt.Errorf("missing strategy")
	}
	if r.WallNs <= 0 {
		return fmt.Errorf("%s: wall_ns %d, want > 0", r.Strategy, r.WallNs)
	}
	if len(r.Steps) == 0 {
		return fmt.Errorf("%s: empty step list", r.Strategy)
	}
	if r.MaxRows > r.TotalRows {
		return fmt.Errorf("%s: max_rows %d > total_rows %d", r.Strategy, r.MaxRows, r.TotalRows)
	}
	if r.AnswerRows < 0 {
		return fmt.Errorf("%s: negative answer_rows", r.Strategy)
	}
	if r.PeakTuples < 0 {
		return fmt.Errorf("%s: negative peak_tuples", r.Strategy)
	}
	maxRows, totalRows := 0, 0
	for i, s := range r.Steps {
		if s.Op == "" {
			return fmt.Errorf("%s steps[%d]: missing op", r.Strategy, i)
		}
		if !knownOps[s.Op] {
			return fmt.Errorf("%s steps[%d]: unknown operator kind %q", r.Strategy, i, s.Op)
		}
		if s.ID < 0 {
			return fmt.Errorf("%s steps[%d]: negative plan-node id %d", r.Strategy, i, s.ID)
		}
		if s.RowsOut < 0 || s.RowsIn < 0 {
			return fmt.Errorf("%s steps[%d]: negative cardinality", r.Strategy, i)
		}
		totalRows += s.RowsOut
		if s.RowsOut > maxRows {
			maxRows = s.RowsOut
		}
	}
	if maxRows != r.MaxRows || totalRows != r.TotalRows {
		return fmt.Errorf("%s: aggregates (max %d, total %d) disagree with steps (max %d, total %d)",
			r.Strategy, r.MaxRows, r.TotalRows, maxRows, totalRows)
	}
	return nil
}

func splitOps(s string) []obs.Op {
	var out []obs.Op
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, obs.Op(part))
		}
	}
	return out
}

func opList(seen map[obs.Op]bool) string {
	var names []string
	for op := range seen {
		names = append(names, string(op))
	}
	if len(names) == 0 {
		return "none"
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
