# Common development targets. Everything is stdlib-only Go; no external
# dependencies are fetched.

GO ?= go

.PHONY: all build vet test test-short race cover bench fuzz experiments examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The full race pass covers every package: the parallel partitioned join,
# anti-join, and group-by operators are exercised with workers > cores by
# the *_test.go worker sweeps, so any shared mutable state surfaces here.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/eval/ ./internal/storage/ ./internal/core/ ./internal/planner/

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test -fuzz=FuzzParseFlock -fuzztime=30s ./internal/datalog/

# Regenerate the EXPERIMENTS.md reference tables (several minutes).
experiments:
	$(GO) run ./cmd/flockbench -scale 1.0

examples:
	for ex in quickstart medical webwords graphpaths weighted itemsets multidisease; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

clean:
	$(GO) clean ./...
