# Common development targets. Everything is stdlib-only Go; no external
# dependencies are fetched.

GO ?= go

.PHONY: all build vet staticcheck test test-short race cover bench bench-pipeline fuzz lint lint-go experiments examples clean

all: build vet staticcheck lint-go test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (the image is stdlib-only); CI installs
# it. The target degrades to a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The full race pass covers every package: the parallel partitioned join,
# anti-join, and group-by operators are exercised with workers > cores by
# the *_test.go worker sweeps, so any shared mutable state surfaces here.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/eval/ ./internal/storage/ ./internal/core/ ./internal/planner/

cover:
	$(GO) test -cover ./internal/... ./cmd/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate BENCH_pipeline.json: the three-executor comparison (interned
# columnar vs row streaming vs materializing) on E1/E3/E6 at the
# canonical scale and seed. Commit the refreshed file with any executor
# change; CI gates allocation regressions against it via benchcheck.
bench-pipeline:
	$(GO) run ./cmd/flockbench -exp E1,E3,E6 -scale 0.25 -seed 1998 -json \
		-pipeline-out BENCH_pipeline.json >/dev/null

fuzz:
	$(GO) test -fuzz=FuzzParseFlock -fuzztime=30s ./internal/datalog/

# Static analysis of the example flock corpus (zero errors required;
# the warnings it prints are pinned by the golden tests under
# internal/analysis/testdata).
lint:
	$(GO) run ./cmd/flockvet examples/flocks/*.flock

# Engine-invariant analysis of the Go tree itself (determinism, limits
# gating, fsync-before-publish, Value equality discipline). Any DLxxx
# error fails the build; suppress only with a written reason via
# `//lint:ignore DLxxx reason`.
lint-go:
	$(GO) run ./cmd/flockalint ./...

# Regenerate the EXPERIMENTS.md reference tables (several minutes).
experiments:
	$(GO) run ./cmd/flockbench -scale 1.0

examples:
	for ex in quickstart medical webwords graphpaths weighted itemsets multidisease; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

clean:
	$(GO) clean ./...
