// Package queryflocks_test holds the benchmark harness of the
// reproduction: one benchmark group per paper figure/claim (E1–E8, see
// DESIGN.md §4 and EXPERIMENTS.md), plus ablations of the design choices
// DESIGN.md calls out (join-order strategy, dynamic filter ratio,
// group-size statistics). cmd/flockbench runs the same experiments at
// full scale with wall-clock tables; these benches give stable,
// allocation-aware numbers at a reduced scale.
//
// Run with: go test -bench=. -benchmem
package queryflocks_test

import (
	"fmt"
	"sync"
	"testing"

	"queryflocks/internal/apriori"
	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// Lazily built, shared workloads (building them per-benchmark would
// dominate the timings).
var (
	onceWords   sync.Once
	wordsDB     *storage.Database
	onceBaskets sync.Once
	basketsDB   *storage.Database
	onceMedical sync.Once
	medicalDB   *storage.Database
	onceWeb     sync.Once
	webDB       *storage.Database
	onceGraph   sync.Once
	graphDB     *storage.Database
)

func words(b *testing.B) *storage.Database {
	b.Helper()
	onceWords.Do(func() {
		wordsDB = workload.Baskets(workload.BasketConfig{
			Baskets: 2_000, Items: 12_000, MeanSize: 15, Skew: 1.0, Seed: 1998,
		})
	})
	return wordsDB
}

func baskets(b *testing.B) *storage.Database {
	b.Helper()
	onceBaskets.Do(func() {
		basketsDB = workload.Baskets(workload.BasketConfig{
			Baskets: 4_000, Items: 1_600, MeanSize: 8, Skew: 1.0, Seed: 1998,
		})
		if err := workload.AttachWeights(basketsDB, 10, 1999); err != nil {
			panic(err)
		}
	})
	return basketsDB
}

func medical(b *testing.B) *storage.Database {
	b.Helper()
	onceMedical.Do(func() {
		medicalDB = workload.Medical(workload.MedicalConfig{
			Patients: 4_000, Diseases: 50, Symptoms: 4_000, Medicines: 100,
			SymptomsPerDisease: 4, MedicinesPerDisease: 2,
			ExhibitRate: 0.6, ExtraMedicines: 2.0, NoiseRate: 3.0,
			SideEffects: []workload.SideEffect{
				{Medicine: 3, Symptom: 1, Rate: 0.4},
				{Medicine: 7, Symptom: 5, Rate: 0.3},
			},
			Seed: 1998,
		})
	})
	return medicalDB
}

func web(b *testing.B) *storage.Database {
	b.Helper()
	onceWeb.Do(func() {
		webDB = workload.Web(workload.WebConfig{
			Docs: 2_000, Vocab: 10_000, TitleWords: 7, AnchorsPerDoc: 3,
			AnchorWords: 6, Skew: 1.0, Seed: 1998,
		})
	})
	return webDB
}

func graph(b *testing.B) *storage.Database {
	b.Helper()
	onceGraph.Do(func() {
		graphDB = workload.Graph(workload.GraphConfig{
			Nodes: 8_000, OutDegree: 2, Hubs: 160, HubDegree: 30,
			DeadEndFrac: 0.55, Seed: 1998,
		})
	})
	return graphDB
}

// benchFlockDirect times direct flock evaluation.
func benchFlockDirect(b *testing.B, db *storage.Database, f *core.Flock, opts *core.EvalOptions) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Eval(db, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlan times executing a prepared plan.
func benchPlan(b *testing.B, db *storage.Database, plan *core.Plan) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func mustPlan(b *testing.B, f *core.Flock, sets [][]datalog.Param) *core.Plan {
	b.Helper()
	plan, err := planner.PlanWithParamSets(f, sets)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// --- E1: Fig. 1 / §1.3 — direct SQL pair count vs a-priori rewrite ------

func BenchmarkE1_Fig1_SQLDirect(b *testing.B) {
	benchFlockDirect(b, words(b), paper.MarketBasket(20), nil)
}

func BenchmarkE1_AprioriRewrite(b *testing.B) {
	f := paper.MarketBasket(20)
	benchPlan(b, words(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

func BenchmarkE1_SQLDirect_Support5pct(b *testing.B) {
	benchFlockDirect(b, words(b), paper.MarketBasket(100), nil)
}

func BenchmarkE1_AprioriRewrite_Support5pct(b *testing.B) {
	f := paper.MarketBasket(100)
	benchPlan(b, words(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

// --- E2: Fig. 2 — market-basket flock vs classic a-priori ----------------

func BenchmarkE2_Fig2_FlockDirect(b *testing.B) {
	benchFlockDirect(b, baskets(b), paper.MarketBasket(20), nil)
}

func BenchmarkE2_Fig2_ItemFilterPlan(b *testing.B) {
	f := paper.MarketBasket(20)
	benchPlan(b, baskets(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

func BenchmarkE2_Fig2_ClassicApriori(b *testing.B) {
	ds, err := apriori.FromBaskets(baskets(b).MustRelation("baskets"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.FrequentPairs(ds, 20)
	}
}

func BenchmarkE2_Fig2_NaivePairCount(b *testing.B) {
	ds, err := apriori.FromBaskets(baskets(b).MustRelation("baskets"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.NaivePairs(ds, 20)
	}
}

// --- E3: Figs. 3 & 5 — medical flock under the Example 3.2 plan space ----

func BenchmarkE3_Fig5_NoFilter(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, nil))
}

func BenchmarkE3_Fig5_OkS(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, [][]datalog.Param{{"s"}}))
}

func BenchmarkE3_Fig5_OkM(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, [][]datalog.Param{{"m"}}))
}

func BenchmarkE3_Fig5_Both(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, [][]datalog.Param{{"s"}, {"m"}}))
}

func BenchmarkE3_Fig5_PairFilter(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, [][]datalog.Param{{"s", "m"}}))
}

// --- E4: Fig. 4 / §3.4 — union flock ------------------------------------

func BenchmarkE4_Fig4_NoFilter(b *testing.B) {
	f := paper.WebWords(20)
	benchPlan(b, web(b), mustPlan(b, f, nil))
}

func BenchmarkE4_Fig4_UnionFilter(b *testing.B) {
	f := paper.WebWords(20)
	benchPlan(b, web(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

func BenchmarkE4_Fig4_ParallelBranches(b *testing.B) {
	benchFlockDirect(b, web(b), paper.WebWords(20), &core.EvalOptions{Parallel: true})
}

// --- E5: Figs. 6–7 — cascade depth sweep ---------------------------------

func benchCascade(b *testing.B, depth int) {
	f := paper.Path(3, 20)
	plan, err := planner.PlanCascade(f, depth)
	if err != nil {
		b.Fatal(err)
	}
	benchPlan(b, graph(b), plan)
}

func BenchmarkE5_Fig7_CascadeDepth0(b *testing.B) { benchCascade(b, 0) }
func BenchmarkE5_Fig7_CascadeDepth1(b *testing.B) { benchCascade(b, 1) }
func BenchmarkE5_Fig7_CascadeDepth2(b *testing.B) { benchCascade(b, 2) }
func BenchmarkE5_Fig7_CascadeDepth3(b *testing.B) { benchCascade(b, 3) }

// --- E6: Figs. 8–9 / Ex. 4.4 — dynamic vs static -------------------------

func BenchmarkE6_Fig9_Dynamic(b *testing.B) {
	db := medical(b)
	f := paper.Medical(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.EvalDynamic(db, f, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_Fig9_BestStatic(b *testing.B) {
	f := paper.Medical(20)
	benchPlan(b, medical(b), mustPlan(b, f, [][]datalog.Param{{"s"}, {"m"}}))
}

// --- E7: Fig. 10 / §5 — monotone SUM filter ------------------------------

func BenchmarkE7_Fig10_WeightedDirect(b *testing.B) {
	benchFlockDirect(b, baskets(b), paper.WeightedBasket(110), nil)
}

func BenchmarkE7_Fig10_WeightedPlan(b *testing.B) {
	f := paper.WeightedBasket(110)
	benchPlan(b, baskets(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

// --- E8: Ex. 3.2 — subquery enumeration ----------------------------------

func BenchmarkE8_SubqueryEnum(b *testing.B) {
	r := paper.Medical(20).Query[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if subs := core.EnumerateSubqueries(r); len(subs) != 8 {
			b.Fatalf("got %d subqueries", len(subs))
		}
	}
}

func BenchmarkE8_SafetyCheck(b *testing.B) {
	r := paper.Medical(20).Query[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !datalog.IsSafe(r) {
			b.Fatal("medical rule should be safe")
		}
	}
}

// --- Parallel execution layer ---------------------------------------------

// BenchmarkParallelJoin sweeps the worker knob over the join-dominated
// Fig. 1 word-pair flock. Workers=1 is the sequential baseline; on a
// single-core host the other counts should sit within noise of it, and on
// multi-core hosts they track the core count until the group-by merge and
// index build start to bound the speedup.
func BenchmarkParallelJoin(b *testing.B) {
	db := words(b)
	f := paper.MarketBasket(20)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchFlockDirect(b, db, f, &core.EvalOptions{Workers: w})
		})
	}
}

// BenchmarkParallelGroupBy isolates the partitioned group-by: the extended
// answer is materialized once outside the timer, so each iteration measures
// only GroupAndFilterWorkers (partition, partial aggregation, merge).
func BenchmarkParallelGroupBy(b *testing.B) {
	db := words(b)
	f := paper.MarketBasket(20)
	r := f.Query[0]
	ext, err := eval.EvalUnion(db, f.Query, func(*datalog.Rule) []datalog.Term {
		out := make([]datalog.Term, 0, len(f.Params)+len(r.Head.Args))
		for _, p := range f.Params {
			out = append(out, p)
		}
		return append(out, r.Head.Args...)
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.GroupAndFilterWorkers(ext, len(f.Params), f.Filter, "bench", w)
			}
		})
	}
}

// BenchmarkParallelDynamic sweeps the worker knob through the §4.4 dynamic
// strategy end to end (joins, intermediate filters, final group-by).
func BenchmarkParallelDynamic(b *testing.B) {
	db := medical(b)
	f := paper.Medical(20)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := planner.EvalDynamic(db, f, &planner.DynamicOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations ------------------------------------------------------------

// Join-order strategy: greedy vs body order vs exhaustive on the medical
// flock (DESIGN.md §5 calls out the join-order choice).
func benchJoinOrder(b *testing.B, order eval.OrderStrategy) {
	benchFlockDirect(b, medical(b), paper.Medical(20), &core.EvalOptions{Order: order})
}

func BenchmarkAblation_JoinOrderGreedy(b *testing.B)     { benchJoinOrder(b, eval.OrderGreedy) }
func BenchmarkAblation_JoinOrderBodyOrder(b *testing.B)  { benchJoinOrder(b, eval.OrderBodyOrder) }
func BenchmarkAblation_JoinOrderExhaustive(b *testing.B) { benchJoinOrder(b, eval.OrderExhaustive) }

// Dynamic filter-ratio sensitivity (§4.4's filter/don't-filter threshold).
func benchDynamicRatio(b *testing.B, ratio float64) {
	db := medical(b)
	f := paper.Medical(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.EvalDynamic(db, f, &planner.DynamicOptions{FilterRatio: ratio, RefilterRatio: ratio / 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DynamicRatio02(b *testing.B) { benchDynamicRatio(b, 0.2) }
func BenchmarkAblation_DynamicRatio10(b *testing.B) { benchDynamicRatio(b, 1.0) }
func BenchmarkAblation_DynamicRatio50(b *testing.B) { benchDynamicRatio(b, 5.0) }

// Static planner end to end: estimation + plan construction + execution.
func BenchmarkAblation_PlanStaticEndToEnd(b *testing.B) {
	db := medical(b)
	f := paper.Medical(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := planner.NewEstimator(db)
		plan, err := planner.PlanStatic(f, est, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Execute(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Symmetric shared filter (§3.1/footnote 3) vs two independent singleton
// steps: the shared variant computes one survivor relation instead of two.
func BenchmarkAblation_SharedFilter(b *testing.B) {
	f := paper.MarketBasket(20)
	plan, err := planner.PlanSharedFilter(f, "1")
	if err != nil {
		b.Fatal(err)
	}
	benchPlan(b, baskets(b), plan)
}

func BenchmarkAblation_TwoSingletonFilters(b *testing.B) {
	f := paper.MarketBasket(20)
	benchPlan(b, baskets(b), mustPlan(b, f, [][]datalog.Param{{"1"}, {"2"}}))
}

// Exhaustive plan search end to end (cost model + 2^candidates plans).
func BenchmarkAblation_PlanExhaustiveEndToEnd(b *testing.B) {
	db := medical(b)
	f := paper.Medical(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := planner.NewEstimator(db)
		plan, err := planner.PlanExhaustive(f, est, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Execute(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Naive generate-and-test reference semantics (tiny data; the point is the
// asymptotic gap to the direct evaluator, not the absolute number).
func BenchmarkAblation_NaiveReference(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 60, Items: 12, MeanSize: 3, Skew: 0.8, Seed: 5,
	})
	f := paper.MarketBasket(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.EvalNaive(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DirectOnNaiveData(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 60, Items: 12, MeanSize: 3, Skew: 0.8, Seed: 5,
	})
	f := paper.MarketBasket(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Eval(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}
