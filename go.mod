module queryflocks

go 1.22
