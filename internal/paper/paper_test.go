package paper

import (
	"strings"
	"testing"
)

func TestConstructorsParse(t *testing.T) {
	for name, n := range map[string]int{
		"MarketBasket":          len(MarketBasket(20).Params),
		"MarketBasketUnordered": len(MarketBasketUnordered(20).Params),
		"Medical":               len(Medical(20).Params),
		"WebWords":              len(WebWords(20).Params),
		"WeightedBasket":        len(WeightedBasket(20).Params),
	} {
		if n != 2 {
			t.Errorf("%s: params = %d, want 2", name, n)
		}
	}
	if len(WebWords(20).Query) != 3 {
		t.Error("WebWords should be a 3-rule union")
	}
}

func TestPathArity(t *testing.T) {
	for n := 0; n <= 4; n++ {
		f := Path(n, 20)
		if got := len(f.Query[0].Body); got != n+1 {
			t.Errorf("Path(%d): %d subgoals, want %d", n, got, n+1)
		}
		if len(f.Params) != 1 {
			t.Errorf("Path(%d): params = %v", n, f.Params)
		}
	}
	// Fig. 6 shape for n = 3.
	src := Path(3, 20).Query[0].String()
	want := "answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2) AND arc(Y2,Y3)"
	if src != want {
		t.Errorf("Path(3) = %s", src)
	}
}

func TestThresholdWiring(t *testing.T) {
	f := MarketBasket(37)
	if !strings.Contains(f.Filter.String(), ">= 37") {
		t.Errorf("filter = %s", f.Filter)
	}
}
