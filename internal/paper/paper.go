// Package paper provides the query flocks of the paper's figures as
// ready-made constructors, parametrized by support threshold. These are
// the canonical artifacts the experiment suite (EXPERIMENTS.md) runs.
package paper

import (
	"fmt"
	"strings"

	"queryflocks/internal/core"
)

// MarketBasket returns the Fig. 2 flock — pairs of items appearing in at
// least `support` baskets — including the §2.3 arithmetic refinement
// $1 < $2 that reports each pair once.
func MarketBasket(support int) *core.Flock {
	return core.MustParse(fmt.Sprintf(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= %d`, support))
}

// MarketBasketUnordered returns Fig. 2 exactly as printed (no ordering
// subgoal): every qualifying pair appears in both orders.
func MarketBasketUnordered(support int) *core.Flock {
	return core.MustParse(fmt.Sprintf(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2)
FILTER:
COUNT(answer.B) >= %d`, support))
}

// Medical returns the Fig. 3 flock: (symptom, medicine) pairs where at
// least `support` patients take the medicine and exhibit the symptom, yet
// their disease does not explain it.
func Medical(support int) *core.Flock {
	return core.MustParse(fmt.Sprintf(`
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= %d`, support))
}

// WebWords returns the Fig. 4 union flock: strongly connected word pairs,
// counted across title-title co-occurrence and anchor-to-title links.
func WebWords(support int) *core.Flock {
	return core.MustParse(fmt.Sprintf(`
QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= %d`, support))
}

// Path returns the Fig. 6 flock: nodes $1 with at least `support`
// successors X from which a path of length n extends. n >= 0; n = 0 gives
// the single-subgoal fanout query.
func Path(n, support int) *core.Flock {
	var b strings.Builder
	b.WriteString("QUERY:\nanswer(X) :- arc($1,X)")
	prev := "X"
	for i := 1; i <= n; i++ {
		cur := fmt.Sprintf("Y%d", i)
		fmt.Fprintf(&b, " AND arc(%s,%s)", prev, cur)
		prev = cur
	}
	fmt.Fprintf(&b, "\nFILTER:\nCOUNT(answer.X) >= %d", support)
	return core.MustParse(b.String())
}

// WeightedBasket returns the Fig. 10 monotone-SUM flock: item pairs whose
// co-occurring baskets have total importance at least `support`.
func WeightedBasket(support int) *core.Flock {
	return core.MustParse(fmt.Sprintf(`
QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= %d`, support))
}
