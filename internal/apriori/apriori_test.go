package apriori

import (
	"math/rand"
	"testing"

	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// tinyDataset builds the classic beer/diapers example.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	rel := storage.NewRelation("baskets", "BID", "Item")
	add := func(bid int64, items ...string) {
		for _, it := range items {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	add(1, "beer", "diapers", "relish")
	add(2, "beer", "diapers")
	add(3, "beer", "chips")
	add(4, "diapers")
	d, err := FromBaskets(rel)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromBaskets(t *testing.T) {
	d := tinyDataset(t)
	if len(d.Txs) != 4 {
		t.Fatalf("transactions = %d", len(d.Txs))
	}
	if len(d.Dict) != 4 {
		t.Fatalf("dictionary = %d items", len(d.Dict))
	}
	for _, tx := range d.Txs {
		for i := 1; i < len(tx); i++ {
			if tx[i-1] >= tx[i] {
				t.Fatal("transaction not sorted/deduped")
			}
		}
	}
	bad := storage.NewRelation("bad", "A", "B", "C")
	if _, err := FromBaskets(bad); err == nil {
		t.Error("arity 3 should error")
	}
}

func TestFrequentTiny(t *testing.T) {
	d := tinyDataset(t)
	levels := Frequent(d, 2, 0)
	if len(levels) < 2 {
		t.Fatalf("levels = %d", len(levels))
	}
	// L1: beer(3), diapers(3). L2: {beer,diapers}(2). L3: none.
	if len(levels[0]) != 2 {
		t.Errorf("L1 = %v", levels[0])
	}
	if len(levels[1]) != 1 || levels[1][0].Count != 2 {
		t.Fatalf("L2 = %v", levels[1])
	}
	pair := levels[1][0].Items
	a, b := d.Value(pair[0]).AsString(), d.Value(pair[1]).AsString()
	if !(a == "beer" && b == "diapers" || a == "diapers" && b == "beer") {
		t.Errorf("L2 pair = %s, %s", a, b)
	}
}

func TestFrequentTriples(t *testing.T) {
	rel := storage.NewRelation("baskets", "BID", "Item")
	// 3 baskets with {a,b,c}, 1 with {a,b}, 1 with {c,d}.
	for bid, items := range map[int64][]string{
		1: {"a", "b", "c"}, 2: {"a", "b", "c"}, 3: {"a", "b", "c"},
		4: {"a", "b"}, 5: {"c", "d"},
	} {
		for _, it := range items {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	d, _ := FromBaskets(rel)
	levels := Frequent(d, 3, 0)
	if len(levels) < 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	if len(levels[2]) != 1 || levels[2][0].Count != 3 {
		t.Fatalf("L3 = %v", levels[2])
	}
	// maxK truncation.
	capped := Frequent(d, 3, 2)
	if len(capped) != 2 {
		t.Errorf("maxK=2 produced %d levels", len(capped))
	}
}

func TestNaivePairsEqualsFrequentPairs(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{Baskets: 300, Items: 40, MeanSize: 5, Skew: 1.0, Seed: 9})
	rel := db.MustRelation("baskets")
	d, err := FromBaskets(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, sup := range []int{2, 5, 10} {
		ap := FrequentPairs(d, sup)
		naive := NaivePairs(d, sup)
		if len(ap) != len(naive) {
			t.Fatalf("support %d: apriori %d pairs, naive %d", sup, len(ap), len(naive))
		}
		for i := range ap {
			if itemsetKey(ap[i].Items) != itemsetKey(naive[i].Items) || ap[i].Count != naive[i].Count {
				t.Fatalf("support %d: pair %d differs: %v vs %v", sup, i, ap[i], naive[i])
			}
		}
	}
}

// TestAprioriPropertyDownwardClosure checks the defining invariant: every
// subset of a frequent itemset is frequent with at least the same count.
func TestAprioriPropertyDownwardClosure(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{Baskets: 200, Items: 15, MeanSize: 6, Skew: 0.8, Seed: 11})
	d, err := FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		t.Fatal(err)
	}
	levels := Frequent(d, 3, 0)
	index := make(map[string]int)
	for _, level := range levels {
		for _, c := range level {
			index[itemsetKey(c.Items)] = c.Count
		}
	}
	for k := 1; k < len(levels); k++ {
		for _, c := range levels[k] {
			for skip := range c.Items {
				sub := make(Itemset, 0, len(c.Items)-1)
				for i, it := range c.Items {
					if i != skip {
						sub = append(sub, it)
					}
				}
				subCount, ok := index[itemsetKey(sub)]
				if !ok {
					t.Fatalf("subset %v of frequent %v missing", sub, c.Items)
				}
				if subCount < c.Count {
					t.Fatalf("subset %v count %d < superset count %d", sub, subCount, c.Count)
				}
			}
		}
	}
}

// TestFlockMatchesApriori is experiment E2's correctness half: the Fig. 2
// flock and the classic algorithm must find exactly the same pairs.
func TestFlockMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		db := workload.Baskets(workload.BasketConfig{
			Baskets:  50 + rng.Intn(200),
			Items:    8 + rng.Intn(20),
			MeanSize: 2 + rng.Intn(4),
			Skew:     rng.Float64(),
			Seed:     rng.Int63(),
		})
		support := 2 + rng.Intn(4)
		d, err := FromBaskets(db.MustRelation("baskets"))
		if err != nil {
			t.Fatal(err)
		}
		want := PairsRelation(d, FrequentPairs(d, support))

		f := paper.MarketBasket(support)
		got, err := f.Eval(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d support %d: flock %d pairs, apriori %d pairs\nflock:\n%s\napriori:\n%s",
				trial, support, got.Len(), want.Len(), got.Dump(), want.Dump())
		}
	}
}

func TestMinSupportFloor(t *testing.T) {
	d := tinyDataset(t)
	// minSupport < 1 clamps to 1: every occurring itemset is frequent.
	levels := Frequent(d, 0, 1)
	if len(levels[0]) != len(d.Dict) {
		t.Errorf("support 0: L1 = %d, want all %d items", len(levels[0]), len(d.Dict))
	}
}
