package apriori_test

import (
	"fmt"

	"queryflocks/internal/apriori"
	"queryflocks/internal/storage"
)

func exampleDataset() *apriori.Dataset {
	rel := storage.NewRelation("baskets", "BID", "Item")
	add := func(bid int64, items ...string) {
		for _, it := range items {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	add(1, "beer", "diapers")
	add(2, "beer", "diapers")
	add(3, "beer", "diapers")
	add(4, "beer")
	add(5, "diapers")
	add(6, "milk")
	d, err := apriori.FromBaskets(rel)
	if err != nil {
		panic(err)
	}
	return d
}

// The classic level-wise algorithm on the beer/diapers data.
func ExampleFrequent() {
	d := exampleDataset()
	levels := apriori.Frequent(d, 3, 0)
	for k, level := range levels {
		if len(level) == 0 {
			break
		}
		fmt.Printf("L%d:", k+1)
		for _, c := range level {
			names := ""
			for i, it := range c.Items {
				if i > 0 {
					names += "+"
				}
				names += d.Value(it).String()
			}
			fmt.Printf(" %s(%d)", names, c.Count)
		}
		fmt.Println()
	}
	// Output:
	// L1: beer(4) diapers(4)
	// L2: beer+diapers(3)
}

// Association rules with the three §1.1 measures.
func ExampleRules() {
	d := exampleDataset()
	rules := apriori.Rules(d, 3, &apriori.RuleOptions{SingleConsequent: true})
	for _, r := range rules {
		fmt.Println(r.Render(d))
	}
	// Output:
	// {beer} -> {diapers} (support 3, confidence 0.75, interest 1.12)
	// {diapers} -> {beer} (support 3, confidence 0.75, interest 1.12)
}
