package apriori

import (
	"math/rand"
	"testing"

	"queryflocks/internal/workload"
)

func TestSETMMatchesAprioriRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		db := workload.Baskets(workload.BasketConfig{
			Baskets:  100 + rng.Intn(400),
			Items:    8 + rng.Intn(20),
			MeanSize: 3 + rng.Intn(4),
			Skew:     rng.Float64(),
			Seed:     rng.Int63(),
		})
		d, err := FromBaskets(db.MustRelation("baskets"))
		if err != nil {
			t.Fatal(err)
		}
		support := 3 + rng.Intn(6)
		want := Frequent(d, support, 0)
		got := SETM(d, support, 0)

		// Frequent may end with a trailing empty level; trim both.
		trim := func(levels [][]Counted) [][]Counted {
			for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
				levels = levels[:len(levels)-1]
			}
			return levels
		}
		want, got = trim(want), trim(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d support %d: SETM %d levels, apriori %d", trial, support, len(got), len(want))
		}
		for k := range want {
			if len(got[k]) != len(want[k]) {
				t.Fatalf("trial %d level %d: SETM %d sets, apriori %d", trial, k+1, len(got[k]), len(want[k]))
			}
			for i := range want[k] {
				if itemsetKey(got[k][i].Items) != itemsetKey(want[k][i].Items) ||
					got[k][i].Count != want[k][i].Count {
					t.Fatalf("trial %d level %d entry %d: %v vs %v", trial, k+1, i, got[k][i], want[k][i])
				}
			}
		}
	}
}

func TestSETMMaxK(t *testing.T) {
	d := tinyDataset(t)
	levels := SETM(d, 2, 1)
	if len(levels) != 1 {
		t.Errorf("maxK=1: %d levels", len(levels))
	}
	all := SETM(d, 2, 0)
	if len(all) < 2 {
		t.Fatalf("unbounded: %d levels", len(all))
	}
	if all[1][0].Count != 2 {
		t.Errorf("beer+diapers count = %d", all[1][0].Count)
	}
}

func BenchmarkSETM(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 3_000, Items: 300, MeanSize: 8, Skew: 1.1, Seed: 10,
	})
	d, err := FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SETM(d, 30, 0)
	}
}

func BenchmarkAprioriSameWorkload(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 3_000, Items: 300, MeanSize: 8, Skew: 1.1, Seed: 10,
	})
	d, err := FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Frequent(d, 30, 0)
	}
}
