package apriori

import "sort"

// SETM implements the set-oriented mining algorithm of [HS95] ("Set-
// oriented mining of association rules", Houtsma & Swami), the SQL-styled
// comparator the paper's §1.3 discussion builds on. Where a-priori counts
// candidates against transactions, SETM carries the (transaction, itemset)
// pairs themselves between levels: level k+1 joins the level-k pairs with
// the level-1 pairs on the transaction ID, extending each itemset with a
// strictly larger item, then filters itemsets by support. The result is
// identical to Frequent's levels; the cost profile differs (SETM
// materializes every qualifying occurrence, which is exactly what a
// relational engine executing it as SQL would do).
func SETM(d *Dataset, minSupport, maxK int) [][]Counted {
	if minSupport < 1 {
		minSupport = 1
	}
	// R1: per-transaction single items, filtered by support.
	type occurrence struct {
		tx   int
		last int // largest (and most recently added) item
	}
	counts := make(map[int]int)
	for _, tx := range d.Txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	frequent1 := make(map[int]bool)
	var l1 []Counted
	for it, c := range counts {
		if c >= minSupport {
			frequent1[it] = true
			l1 = append(l1, Counted{Items: Itemset{it}, Count: c})
		}
	}
	sortLevel(l1)
	levels := [][]Counted{l1}

	// Occurrences are grouped by itemset key so level filtering and the
	// per-level output share one map.
	type group struct {
		items Itemset
		occ   []occurrence
	}
	cur := make(map[string]*group)
	for txID, tx := range d.Txs {
		for _, it := range tx {
			if !frequent1[it] {
				continue
			}
			key := itemsetKey([]int{it})
			g, ok := cur[key]
			if !ok {
				g = &group{items: Itemset{it}}
				cur[key] = g
			}
			g.occ = append(g.occ, occurrence{tx: txID, last: it})
		}
	}

	for k := 2; maxK == 0 || k <= maxK; k++ {
		next := make(map[string]*group)
		buf := make(Itemset, k)
		for _, g := range cur {
			for _, o := range g.occ {
				// Join with the transaction's frequent items larger than
				// the occurrence's last item.
				tx := d.Txs[o.tx]
				i := sort.SearchInts(tx, o.last+1)
				for ; i < len(tx); i++ {
					it := tx[i]
					if !frequent1[it] {
						continue
					}
					copy(buf, g.items)
					buf[k-1] = it
					key := itemsetKey(buf)
					ng, ok := next[key]
					if !ok {
						items := make(Itemset, k)
						copy(items, buf)
						ng = &group{items: items}
						next[key] = ng
					}
					ng.occ = append(ng.occ, occurrence{tx: o.tx, last: it})
				}
			}
		}
		var level []Counted
		cur = make(map[string]*group)
		for key, g := range next {
			if len(g.occ) >= minSupport {
				level = append(level, Counted{Items: g.items, Count: len(g.occ)})
				cur[key] = g
			}
		}
		if len(level) == 0 {
			break
		}
		sortLevel(level)
		levels = append(levels, level)
	}
	return levels
}
