// Package apriori implements the classic level-wise frequent-itemset
// algorithm of [AS94] ("Fast algorithms for mining association rules") and
// a no-pruning pair counter. These are the specialized comparators the
// query-flock framework generalizes: experiment E2 cross-validates the
// flock engine's answers against this implementation, and E1 uses the
// naive counter as the "unoptimized SQL" cost baseline.
package apriori

import (
	"fmt"
	"sort"

	"queryflocks/internal/storage"
)

// Itemset is a sorted list of dense item IDs.
type Itemset []int

// Counted pairs an itemset with its support count.
type Counted struct {
	Items Itemset
	Count int
}

// Dataset is the transaction-list representation of a baskets relation,
// with a dictionary mapping dense item IDs back to stored values.
type Dataset struct {
	// Txs holds one sorted, duplicate-free item-ID list per basket.
	Txs [][]int
	// Dict maps item IDs back to the original item values.
	Dict []storage.Value
}

// FromBaskets converts a baskets(BID, Item)-shaped relation (any column
// names, arity 2) into transactions.
func FromBaskets(rel *storage.Relation) (*Dataset, error) {
	if rel.Arity() != 2 {
		return nil, fmt.Errorf("apriori: relation %s has arity %d, want 2 (BID, Item)", rel.Name(), rel.Arity())
	}
	// Keys are normalized so Equal values (Int(1) and Float(1)) land in
	// one item ID / one basket, matching how joins group them.
	//lint:ignore DL005 keys are Normalize()d at the insertion below
	ids := make(map[storage.Value]int)
	var dict []storage.Value
	//lint:ignore DL005 keys are Normalize()d at the insertion below
	byBasket := make(map[storage.Value][]int)
	var order []storage.Value
	for _, t := range rel.Tuples() {
		bid, item := t[0].Normalize(), t[1].Normalize()
		id, ok := ids[item]
		if !ok {
			id = len(dict)
			ids[item] = id
			dict = append(dict, item)
		}
		if _, seen := byBasket[bid]; !seen {
			order = append(order, bid)
		}
		byBasket[bid] = append(byBasket[bid], id)
	}
	txs := make([][]int, 0, len(order))
	for _, bid := range order {
		items := byBasket[bid]
		sort.Ints(items)
		// The relation is a set, so (bid, item) pairs are unique already.
		txs = append(txs, items)
	}
	return &Dataset{Txs: txs, Dict: dict}, nil
}

// Value maps an item ID back to its stored value.
func (d *Dataset) Value(id int) storage.Value { return d.Dict[id] }

// Frequent runs the level-wise a-priori algorithm: level k is computed by
// joining and pruning level k-1's survivors ("compute candidate sets of k
// items by restricting to those itemsets such that each subset of k-1
// items previously has met the support test", §4.3), then counting
// candidates in one pass over the transactions. It returns one slice per
// level (index k-1 holds the frequent k-itemsets), stopping after maxK
// levels (0 = no limit) or when a level comes up empty. Each level is
// sorted lexicographically.
func Frequent(d *Dataset, minSupport, maxK int) [][]Counted {
	if minSupport < 1 {
		minSupport = 1
	}
	// Level 1 by direct counting.
	counts := make(map[int]int)
	for _, tx := range d.Txs {
		for _, it := range tx {
			counts[it]++
		}
	}
	var l1 []Counted
	frequent1 := make(map[int]bool)
	for it, c := range counts {
		if c >= minSupport {
			l1 = append(l1, Counted{Items: Itemset{it}, Count: c})
			frequent1[it] = true
		}
	}
	sortLevel(l1)
	levels := [][]Counted{l1}

	prev := l1
	for k := 2; (maxK == 0 || k <= maxK) && len(prev) > 0; k++ {
		// Level 2 skips candidate materialization: C2 = L1 x L1, so pairs
		// of frequent items are counted directly ([AS94] §2.1.1 makes the
		// same observation).
		if k == 2 {
			level := countFrequentPairs(d, frequent1, minSupport)
			levels = append(levels, level)
			prev = level
			if len(level) == 0 {
				break
			}
			continue
		}
		candidates := generateCandidates(prev, k)
		if len(candidates.sets) == 0 {
			break
		}
		// Count candidates: for every transaction (restricted to items
		// frequent at level 1), enumerate its k-subsets that are
		// candidates.
		cnt := make([]int, len(candidates.sets))
		for _, tx := range d.Txs {
			filtered := tx[:0:0]
			for _, it := range tx {
				if frequent1[it] {
					filtered = append(filtered, it)
				}
			}
			if len(filtered) < k {
				continue
			}
			forEachSubset(filtered, k, func(sub []int) {
				if idx, ok := candidates.lookup(sub); ok {
					cnt[idx]++
				}
			})
		}
		var level []Counted
		for i, set := range candidates.sets {
			if cnt[i] >= minSupport {
				level = append(level, Counted{Items: set, Count: cnt[i]})
			}
		}
		sortLevel(level)
		levels = append(levels, level)
		prev = level
		if len(level) == 0 {
			break
		}
	}
	return levels
}

// FrequentPairs returns just the frequent 2-itemsets — the Fig. 1 / Fig. 2
// question — using the a-priori optimization.
func FrequentPairs(d *Dataset, minSupport int) []Counted {
	levels := Frequent(d, minSupport, 2)
	if len(levels) < 2 {
		return nil
	}
	return levels[1]
}

// countFrequentPairs counts pairs of level-1-frequent items per
// transaction.
func countFrequentPairs(d *Dataset, frequent1 map[int]bool, minSupport int) []Counted {
	counts := make(map[[2]int]int)
	var filtered []int
	for _, tx := range d.Txs {
		filtered = filtered[:0]
		for _, it := range tx {
			if frequent1[it] {
				filtered = append(filtered, it)
			}
		}
		for i := 0; i < len(filtered); i++ {
			for j := i + 1; j < len(filtered); j++ {
				counts[[2]int{filtered[i], filtered[j]}]++
			}
		}
	}
	var out []Counted
	for pair, c := range counts {
		if c >= minSupport {
			out = append(out, Counted{Items: Itemset{pair[0], pair[1]}, Count: c})
		}
	}
	sortLevel(out)
	return out
}

// NaivePairs counts every item pair occurring in any transaction, with no
// a-priori pruning — the cost shape of the direct SQL self-join of Fig. 1.
func NaivePairs(d *Dataset, minSupport int) []Counted {
	counts := make(map[[2]int]int)
	for _, tx := range d.Txs {
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				counts[[2]int{tx[i], tx[j]}]++
			}
		}
	}
	var out []Counted
	for pair, c := range counts {
		if c >= minSupport {
			out = append(out, Counted{Items: Itemset{pair[0], pair[1]}, Count: c})
		}
	}
	sortLevel(out)
	return out
}

// PairsRelation converts counted pairs into a relation with the shape of a
// market-basket flock answer: columns $1, $2 with $1's item value ordering
// before $2's.
func PairsRelation(d *Dataset, pairs []Counted) *storage.Relation {
	rel := storage.NewRelation("flock", "$1", "$2")
	for _, c := range pairs {
		a, b := d.Value(c.Items[0]), d.Value(c.Items[1])
		if a.Compare(b) > 0 {
			a, b = b, a
		}
		rel.Insert(storage.Tuple{a, b})
	}
	return rel
}

// candidateSet indexes candidate itemsets for O(1) lookup during counting.
type candidateSet struct {
	sets []Itemset
	idx  map[string]int
}

func (c *candidateSet) lookup(items []int) (int, bool) {
	i, ok := c.idx[itemsetKey(items)]
	return i, ok
}

// generateCandidates joins level k-1 survivors sharing their first k-2
// items, then prunes candidates with an infrequent (k-1)-subset.
func generateCandidates(prev []Counted, k int) *candidateSet {
	prevSet := make(map[string]bool, len(prev))
	for _, c := range prev {
		prevSet[itemsetKey(c.Items)] = true
	}
	out := &candidateSet{idx: make(map[string]int)}
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i].Items, prev[j].Items
			if !samePrefix(a, b, k-2) {
				continue
			}
			// a and b are sorted and share the first k-2 items; a[k-2] <
			// b[k-2] by level ordering.
			cand := make(Itemset, k)
			copy(cand, a)
			cand[k-1] = b[k-2]
			if cand[k-2] > cand[k-1] {
				cand[k-2], cand[k-1] = cand[k-1], cand[k-2]
			}
			if !allSubsetsFrequent(cand, prevSet) {
				continue
			}
			key := itemsetKey(cand)
			if _, dup := out.idx[key]; !dup {
				out.idx[key] = len(out.sets)
				out.sets = append(out.sets, cand)
			}
		}
	}
	return out
}

// allSubsetsFrequent is the a-priori prune: every (k-1)-subset of cand
// must be in the previous level.
func allSubsetsFrequent(cand Itemset, prevSet map[string]bool) bool {
	buf := make(Itemset, 0, len(cand)-1)
	for skip := range cand {
		buf = buf[:0]
		for i, it := range cand {
			if i != skip {
				buf = append(buf, it)
			}
		}
		if !prevSet[itemsetKey(buf)] {
			return false
		}
	}
	return true
}

// forEachSubset calls fn on every sorted k-subset of the sorted slice tx.
func forEachSubset(tx []int, k int, fn func([]int)) {
	sub := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(sub)
			return
		}
		for i := start; i <= len(tx)-(k-depth); i++ {
			sub[depth] = tx[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func itemsetKey(items []int) string {
	buf := make([]byte, 0, 4*len(items))
	for _, it := range items {
		buf = append(buf, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(buf)
}

func sortLevel(level []Counted) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i].Items, level[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
