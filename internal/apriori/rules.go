package apriori

import (
	"fmt"
	"sort"
	"strings"

	"queryflocks/internal/storage"
)

// This file derives association rules from frequent itemsets, with the
// three measures §1.1 reviews: support (the itemset count), confidence
// (P(consequent | antecedent)), and interest (how far the confidence sits
// from the consequent's base rate — lift).

// Rule is an association rule antecedent → consequent.
type Rule struct {
	// Antecedent and Consequent partition a frequent itemset.
	Antecedent, Consequent Itemset
	// Support is the joint count: baskets containing both sides.
	Support int
	// Confidence is Support / count(Antecedent): "the probability of one
	// item given that the others are in the basket".
	Confidence float64
	// Interest is Confidence divided by the consequent's base rate
	// (lift): values far from 1 mean the rule is "significantly higher or
	// lower than the expected probability if items were purchased at
	// random".
	Interest float64
}

// Render formats the rule with item values resolved through the dataset.
func (r Rule) Render(d *Dataset) string {
	part := func(items Itemset) string {
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = d.Value(it).String()
		}
		return "{" + strings.Join(vals, ", ") + "}"
	}
	return fmt.Sprintf("%s -> %s (support %d, confidence %.2f, interest %.2f)",
		part(r.Antecedent), part(r.Consequent), r.Support, r.Confidence, r.Interest)
}

// RuleOptions configures rule derivation.
type RuleOptions struct {
	// MinConfidence filters rules below this confidence (default 0: keep
	// all).
	MinConfidence float64
	// MaxK bounds the itemset sizes mined (0 = all).
	MaxK int
	// SingleConsequent restricts output to rules with a one-item
	// consequent, the classic beer → diapers shape. Default false: every
	// nonempty proper subset split is produced.
	SingleConsequent bool
}

// Rules mines frequent itemsets at minSupport and derives every
// association rule meeting the options, sorted by descending confidence
// (ties: descending support, then antecedent order).
func Rules(d *Dataset, minSupport int, opts *RuleOptions) []Rule {
	var o RuleOptions
	if opts != nil {
		o = *opts
	}
	levels := Frequent(d, minSupport, o.MaxK)
	counts := make(map[string]int)
	for _, level := range levels {
		for _, c := range level {
			counts[itemsetKey(c.Items)] = c.Count
		}
	}
	n := len(d.Txs)
	var out []Rule
	for k := 1; k < len(levels); k++ { // sets of size >= 2
		for _, c := range levels[k] {
			out = append(out, rulesFromSet(c, counts, n, o)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return lessItemsets(a.Antecedent, b.Antecedent)
	})
	return out
}

// rulesFromSet splits one frequent itemset into antecedent/consequent
// pairs.
func rulesFromSet(c Counted, counts map[string]int, n int, o RuleOptions) []Rule {
	items := c.Items
	var out []Rule
	for mask := 1; mask < (1<<len(items))-1; mask++ {
		var ante, cons Itemset
		for i, it := range items {
			if mask&(1<<i) != 0 {
				ante = append(ante, it)
			} else {
				cons = append(cons, it)
			}
		}
		if o.SingleConsequent && len(cons) != 1 {
			continue
		}
		anteCount := counts[itemsetKey(ante)]
		consCount := counts[itemsetKey(cons)]
		if anteCount == 0 || consCount == 0 {
			// Both subsets of a frequent set are frequent (a-priori
			// property), so this indicates an internal inconsistency.
			continue
		}
		conf := float64(c.Count) / float64(anteCount)
		if conf < o.MinConfidence {
			continue
		}
		baseRate := float64(consCount) / float64(n)
		interest := 0.0
		if baseRate > 0 {
			interest = conf / baseRate
		}
		out = append(out, Rule{
			Antecedent: ante, Consequent: cons,
			Support: c.Count, Confidence: conf, Interest: interest,
		})
	}
	return out
}

func lessItemsets(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// RulesRelation renders rules as a relation (Antecedent, Consequent,
// Support, Confidence, Interest) for CSV export or display, with itemsets
// rendered as space-joined item values.
func RulesRelation(d *Dataset, rules []Rule) *storage.Relation {
	rel := storage.NewRelation("rules", "Antecedent", "Consequent", "Support", "Confidence", "Interest")
	join := func(items Itemset) storage.Value {
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = d.Value(it).String()
		}
		return storage.Str(strings.Join(vals, " "))
	}
	for _, r := range rules {
		rel.Insert(storage.Tuple{
			join(r.Antecedent), join(r.Consequent),
			storage.Int(int64(r.Support)),
			storage.Float(r.Confidence),
			storage.Float(r.Interest),
		})
	}
	return rel
}
