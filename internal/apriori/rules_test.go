package apriori

import (
	"math"
	"strings"
	"testing"

	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// beerDiapers builds the §1.1 classic: diapers-buyers usually buy beer,
// while beer is bought broadly.
func beerDiapers(t *testing.T) *Dataset {
	t.Helper()
	rel := storage.NewRelation("baskets", "BID", "Item")
	bid := int64(0)
	add := func(n int, items ...string) {
		for i := 0; i < n; i++ {
			bid++
			for _, it := range items {
				rel.InsertValues(storage.Int(bid), storage.Str(it))
			}
		}
	}
	add(8, "beer", "diapers") // joint buyers
	add(2, "diapers")         // diapers alone
	add(10, "beer")           // beer alone
	add(20, "milk")           // unrelated bulk
	d, err := FromBaskets(rel)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRulesBeerDiapers(t *testing.T) {
	d := beerDiapers(t)
	rules := Rules(d, 5, &RuleOptions{SingleConsequent: true})
	var d2b, b2d *Rule
	for i := range rules {
		r := &rules[i]
		if len(r.Antecedent) != 1 {
			continue
		}
		a := d.Value(r.Antecedent[0]).String()
		c := d.Value(r.Consequent[0]).String()
		switch {
		case a == "diapers" && c == "beer":
			d2b = r
		case a == "beer" && c == "diapers":
			b2d = r
		}
	}
	if d2b == nil || b2d == nil {
		t.Fatalf("missing classic rules; got %d rules", len(rules))
	}
	// diapers -> beer: 8/10 = 0.8; beer -> diapers: 8/18 ≈ 0.44.
	if math.Abs(d2b.Confidence-0.8) > 1e-9 {
		t.Errorf("diapers->beer confidence = %g", d2b.Confidence)
	}
	if math.Abs(b2d.Confidence-8.0/18.0) > 1e-9 {
		t.Errorf("beer->diapers confidence = %g", b2d.Confidence)
	}
	// Interest (lift) is symmetric: conf/baseRate = jointN/(anteN*consN/N).
	wantLift := (8.0 / 40.0) / ((18.0 / 40.0) * (10.0 / 40.0))
	if math.Abs(d2b.Interest-wantLift) > 1e-9 || math.Abs(b2d.Interest-wantLift) > 1e-9 {
		t.Errorf("lift = %g / %g, want %g", d2b.Interest, b2d.Interest, wantLift)
	}
	if wantLift < 1.5 {
		t.Fatalf("test data should make the association interesting; lift %g", wantLift)
	}
	// Support of both rules is the joint count.
	if d2b.Support != 8 || b2d.Support != 8 {
		t.Errorf("supports = %d, %d", d2b.Support, b2d.Support)
	}
	// Rendering mentions everything.
	s := d2b.Render(d)
	for _, want := range []string{"diapers", "beer", "support 8", "confidence 0.80"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered rule %q missing %q", s, want)
		}
	}
}

func TestRulesMinConfidence(t *testing.T) {
	d := beerDiapers(t)
	all := Rules(d, 5, &RuleOptions{SingleConsequent: true})
	strict := Rules(d, 5, &RuleOptions{SingleConsequent: true, MinConfidence: 0.75})
	if len(strict) >= len(all) {
		t.Errorf("min confidence did not filter: %d vs %d", len(strict), len(all))
	}
	for _, r := range strict {
		if r.Confidence < 0.75 {
			t.Errorf("rule below cutoff: %s", r.Render(d))
		}
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	d := beerDiapers(t)
	rules := Rules(d, 5, nil)
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Confidence < rules[i].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

// TestRulesProperties checks the measure invariants on random data:
// confidence in (0,1], joint support <= antecedent support, and the split
// count: a frequent k-set yields 2^k - 2 rules (all splits).
func TestRulesProperties(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 400, Items: 12, MeanSize: 5, Skew: 0.6, Seed: 19,
	})
	d, err := FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		t.Fatal(err)
	}
	const support = 10
	rules := Rules(d, support, nil)
	if len(rules) == 0 {
		t.Fatal("expected some rules")
	}
	levels := Frequent(d, support, 0)
	counts := make(map[string]int)
	nSets := 0
	for k, level := range levels {
		for _, c := range level {
			counts[itemsetKey(c.Items)] = c.Count
			if k >= 1 {
				nSets += (1 << len(c.Items)) - 2
			}
		}
	}
	if len(rules) != nSets {
		t.Errorf("rule count %d, want %d (all splits of all frequent sets)", len(rules), nSets)
	}
	for _, r := range rules {
		if r.Confidence <= 0 || r.Confidence > 1+1e-12 {
			t.Fatalf("confidence out of range: %s", r.Render(d))
		}
		if r.Support < support {
			t.Fatalf("support below floor: %s", r.Render(d))
		}
		anteCount := counts[itemsetKey(r.Antecedent)]
		if r.Support > anteCount {
			t.Fatalf("joint support exceeds antecedent support: %s", r.Render(d))
		}
		if r.Interest < 0 {
			t.Fatalf("negative interest: %s", r.Render(d))
		}
	}
}

func TestRulesRelation(t *testing.T) {
	d := beerDiapers(t)
	rules := Rules(d, 5, &RuleOptions{SingleConsequent: true})
	rel := RulesRelation(d, rules)
	if rel.Len() != len(rules) {
		t.Errorf("relation rows = %d, want %d", rel.Len(), len(rules))
	}
	if rel.Arity() != 5 {
		t.Errorf("arity = %d", rel.Arity())
	}
}
