package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("beer"), KindString, "beer"},
		{Null(), KindNull, "NULL"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(5).AsInt() != 5 {
		t.Error("AsInt(Int(5)) != 5")
	}
	if Int(5).AsFloat() != 5.0 {
		t.Error("AsFloat(Int(5)) != 5.0")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat(Float(1.5)) != 1.5")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString(Str(x)) != x")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("1").IsNumeric() {
		t.Error("IsNumeric wrong")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(1.0), Int(1), 0}, // cross-kind numeric equality
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(-100), -1},
		{Int(1 << 62), Str(""), -1}, // numerics before strings
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueCompareLargeInts(t *testing.T) {
	// Large int64s that would collide as float64s must still order exactly.
	a, b := Int(math.MaxInt64-1), Int(math.MaxInt64)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("large int comparison lost precision")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should Equal Float(3)")
	}
	if Int(3) == Float(3) {
		t.Error("Int(3) must differ from Float(3) under ==")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-1", Int(-1)},
		{"2.5", Float(2.5)},
		{"1e3", Float(1000)},
		{"beer", Str("beer")},
		{"", Str("")},
		{`"42"`, Str("42")}, // quoted stays string
		{"12abc", Str("12abc")},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); got != c.want {
			t.Errorf("ParseValue(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestValueLiteralRoundTrip(t *testing.T) {
	vals := []Value{Int(7), Float(3.25), Str("hello world"), Str("42")}
	for _, v := range vals {
		got := ParseValue(v.Literal())
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("ParseValue(Literal(%v)) = %v (kind %v), want same", v, got, got.Kind())
		}
	}
}

// randomValue produces an arbitrary Value for property tests. Floats are
// drawn from a finite, NaN-free range.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return Int(r.Int63n(2000) - 1000)
	case 1:
		return Float(float64(r.Intn(2000)-1000) / 4)
	default:
		letters := "abcdefgh"
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Property: keys coincide exactly when the values are Equal. This is
	// deliberately kind-insensitive — Int(1) and Float(1) compare Equal, so
	// they must share a key (hash joins and distinct-counting are keyed on
	// this encoding and must agree with Compare).
	f := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomValue(ra), randomValue(rb)
		ka := string(a.AppendKey(nil))
		kb := string(b.AppendKey(nil))
		return (ka == kb) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestValueKeyCrossKind is the regression for the kind-sensitive key
// encoding: Equal/Compare treat Int(n) and Float(n) as the same value, but
// AppendKey used to tag them with different kind bytes, so semantically
// equal numerics missed each other in hash joins and were double-counted
// by COUNT-distinct.
func TestValueKeyCrossKind(t *testing.T) {
	pairs := []struct{ a, b Value }{
		{Int(1), Float(1)},
		{Int(0), Float(math.Copysign(0, -1))},
		{Int(-7), Float(-7.0)},
		{Int(1 << 40), Float(float64(int64(1) << 40))},
		{Int(-9223372036854775808), Float(-9223372036854775808.0)},
	}
	for _, p := range pairs {
		ka := string(p.a.AppendKey(nil))
		kb := string(p.b.AppendKey(nil))
		if !p.a.Equal(p.b) {
			t.Fatalf("%v and %v should be Equal", p.a, p.b)
		}
		if ka != kb {
			t.Errorf("%v and %v are Equal but key differently", p.a, p.b)
		}
	}
	// Non-Equal values must keep distinct keys.
	distinct := []struct{ a, b Value }{
		{Float(1.5), Int(1)},
		{Float(1.5), Int(2)},
		{Float(math.NaN()), Int(0)},
		{Float(math.Inf(1)), Int(1)},
		{Str("1"), Int(1)},
		{Null(), Int(0)},
	}
	for _, p := range distinct {
		ka := string(p.a.AppendKey(nil))
		kb := string(p.b.AppendKey(nil))
		if ka == kb {
			t.Errorf("%v and %v are not Equal but share a key", p.a, p.b)
		}
	}
}

func TestValueNormalize(t *testing.T) {
	cases := []struct{ in, want Value }{
		{Float(3), Int(3)},
		{Float(-0.0), Int(0)},
		{Float(1.5), Float(1.5)},
		{Float(math.NaN()), Float(math.NaN())},
		{Float(math.Inf(1)), Float(math.Inf(1))},
		// 2^63 is integral but above int64 range: must stay a float.
		{Float(9223372036854775808.0), Float(9223372036854775808.0)},
		{Float(-9223372036854775808.0), Int(-9223372036854775808)},
		{Int(5), Int(5)},
		{Str("5"), Str("5")},
		{Null(), Null()},
	}
	for _, c := range cases {
		got := c.in.Normalize()
		if got.Kind() != c.want.Kind() {
			t.Errorf("Normalize(%v): kind %v, want %v", c.in, got.Kind(), c.want.Kind())
			continue
		}
		// NaN != NaN, so compare keys rather than values.
		if string(got.AppendKey(nil)) != string(c.want.AppendKey(nil)) {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFloatBitsNegZero(t *testing.T) {
	if floatBits(0.0) != floatBits(math.Copysign(0, -1)) {
		t.Error("-0 and +0 must share a key")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive on random triples.
	f := func(s1, s2, s3 int64) bool {
		r1, r2, r3 := rand.New(rand.NewSource(s1)), rand.New(rand.NewSource(s2)), rand.New(rand.NewSource(s3))
		a, b, c := randomValue(r1), randomValue(r2), randomValue(r3)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// transitivity: a<=b && b<=c => a<=c
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
