package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("beer"), KindString, "beer"},
		{Null(), KindNull, "NULL"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(5).AsInt() != 5 {
		t.Error("AsInt(Int(5)) != 5")
	}
	if Int(5).AsFloat() != 5.0 {
		t.Error("AsFloat(Int(5)) != 5.0")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat(Float(1.5)) != 1.5")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString(Str(x)) != x")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("1").IsNumeric() {
		t.Error("IsNumeric wrong")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(1.0), Int(1), 0}, // cross-kind numeric equality
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(-100), -1},
		{Int(1 << 62), Str(""), -1}, // numerics before strings
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueCompareLargeInts(t *testing.T) {
	// Large int64s that would collide as float64s must still order exactly.
	a, b := Int(math.MaxInt64-1), Int(math.MaxInt64)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("large int comparison lost precision")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should Equal Float(3)")
	}
	if Int(3) == Float(3) {
		t.Error("Int(3) must differ from Float(3) under ==")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-1", Int(-1)},
		{"2.5", Float(2.5)},
		{"1e3", Float(1000)},
		{"beer", Str("beer")},
		{"", Str("")},
		{`"42"`, Str("42")}, // quoted stays string
		{"12abc", Str("12abc")},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); got != c.want {
			t.Errorf("ParseValue(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestValueLiteralRoundTrip(t *testing.T) {
	vals := []Value{Int(7), Float(3.25), Str("hello world"), Str("42")}
	for _, v := range vals {
		got := ParseValue(v.Literal())
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("ParseValue(Literal(%v)) = %v (kind %v), want same", v, got, got.Kind())
		}
	}
}

// randomValue produces an arbitrary Value for property tests. Floats are
// drawn from a finite, NaN-free range.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return Int(r.Int63n(2000) - 1000)
	case 1:
		return Float(float64(r.Intn(2000)-1000) / 4)
	default:
		letters := "abcdefgh"
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Property: identical keys imply Equal values, and == values imply
	// identical keys.
	f := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomValue(ra), randomValue(rb)
		ka := string(a.AppendKey(nil))
		kb := string(b.AppendKey(nil))
		if a == b && ka != kb {
			return false
		}
		if ka == kb && !(a.Kind() == b.Kind() && a.Equal(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloatBitsNegZero(t *testing.T) {
	if floatBits(0.0) != floatBits(math.Copysign(0, -1)) {
		t.Error("-0 and +0 must share a key")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive on random triples.
	f := func(s1, s2, s3 int64) bool {
		r1, r2, r3 := rand.New(rand.NewSource(s1)), rand.New(rand.NewSource(s2)), rand.New(rand.NewSource(s3))
		a, b, c := randomValue(r1), randomValue(r2), randomValue(r3)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// transitivity: a<=b && b<=c => a<=c
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
