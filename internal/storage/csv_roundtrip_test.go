package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripTypeStable is the regression for the type-unstable CSV
// round-trip: the writer used to render Str("123") bare, so it re-imported
// as Int(123); Str("NULL") likewise came back as a string only by accident
// of NULL not being parsed. Literal-based export must bring every value
// back with its semantics intact.
func TestCSVRoundTripTypeStable(t *testing.T) {
	rel := NewRelation("r", "A", "B")
	rows := []Tuple{
		{Str("123"), Int(123)},
		{Str("1.5"), Float(1.5)},
		{Str("NULL"), Null()},
		{Str(""), Str(" padded ")},
		{Str(`say "hi"`), Str("a,b")},
		{Str("line\nbreak"), Str(`"a"b`)},
		{Int(-9223372036854775808), Int(9223372036854775807)},
		{Float(0.25), Str("0.25")},
	}
	for _, r := range rows {
		rel.Insert(r)
	}

	var buf bytes.Buffer
	if err := WriteCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("r", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("round-trip changed cardinality: %d -> %d", rel.Len(), back.Len())
	}
	for _, r := range rows {
		got, found := findByKey(back, r)
		if !found {
			t.Errorf("tuple %v lost in round-trip", r)
			continue
		}
		for i := range r {
			if got[i].Kind() != r[i].Kind() {
				t.Errorf("tuple %v column %d: kind %v came back as %v", r, i, r[i].Kind(), got[i].Kind())
			}
		}
	}
}

// findByKey locates the relation's tuple with t's key.
func findByKey(rel *Relation, t Tuple) (Tuple, bool) {
	want := t.Key()
	for _, u := range rel.Tuples() {
		if u.Key() == want {
			return u, true
		}
	}
	return nil, false
}

// TestCSVRoundTripProperty exports random relations and re-imports them:
// the result must be the same set of tuples, with each value in the same
// semantic equality class (Equal keys). Kinds may legally shift only
// within a class — Float(3) exports as "3" and re-imports as the Equal
// Int(3) — never across classes.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewRelation("r", "A", "B", "C")
		for i := 0; i < 30; i++ {
			rel.Insert(Tuple{randomValue(r), randomValue(r), randomValue(r)})
		}
		var buf bytes.Buffer
		if err := WriteCSV(rel, &buf); err != nil {
			return false
		}
		back, err := ReadCSV("r", &buf)
		if err != nil {
			return false
		}
		if back.Len() != rel.Len() {
			return false
		}
		for _, u := range rel.Tuples() {
			if !back.ContainsKey([]byte(u.Key())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseValueEdgeCases pins the tightened field grammar.
func TestParseValueEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"NULL", Null()},
		{`"NULL"`, Str("NULL")},
		{"42", Int(42)},
		{`"42"`, Str("42")},
		{"1.25", Float(1.25)},
		{`"1.25"`, Str("1.25")},
		{"", Str("")},
		{`""`, Str("")},
		{"abc", Str("abc")},
		{`"abc"`, Str("abc")},
		// Malformed quoted fields stay strings: the outer quotes are
		// stripped, the interior survives verbatim, and the content never
		// re-enters numeric parsing.
		{`"a"b`, Str(`a"b`)},
		{`"a`, Str("a")},
		{`"`, Str("")},
		{`"12"3`, Str(`12"3`)},
		// Escapes in well-formed quotes unquote fully.
		{`"say \"hi\""`, Str(`say "hi"`)},
		{"null", Str("null")}, // only the exact literal NULL is null
	}
	for _, c := range cases {
		got := ParseValue(c.in)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
	if !strings.Contains(Str("x").Literal(), `"`) {
		t.Error("string Literal must be quoted")
	}
	if Null().Literal() != "NULL" {
		t.Error("NULL Literal")
	}
}
