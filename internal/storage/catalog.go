package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a named collection of relation sources — the catalog
// against which flock queries are evaluated. Lookup is by relation
// (predicate) name. Every entry is a RelationSource; resident in-memory
// relations additionally appear in rels so legacy consumers can reach
// the concrete *Relation without a Pin.
type Database struct {
	rels  map[string]*Relation      // resident subset of srcs
	srcs  map[string]RelationSource // every registered source
	order []string                  // registration order, for deterministic listings
	dict  *dictBox                  // shared value dictionary (see Dict)
	io    *IOStats                  // disk-engine I/O counters; nil for pure in-memory catalogs

	// version is the data-mutation counter (see Version). It is part of
	// every serving-layer cache key, so bumping it invalidates cached
	// plans and memoized candidate-subquery results without touching them.
	version uint64
}

// dictBox holds a database's lazily built dictionary. The box (not just
// the *Dict) is shared by Clone, so a clone made before the first
// columnar run still ends up with the same dictionary as its parent —
// parallel executors clone scratch catalogs freely and must all intern
// against one ID space.
type dictBox struct {
	once sync.Once
	d    *Dict
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{
		rels: make(map[string]*Relation),
		srcs: make(map[string]RelationSource),
		dict: &dictBox{},
	}
}

// Dict returns the database's value dictionary, building it on first use
// with order-preserving IDs over every value currently stored (see
// BuildDict). The dictionary is shared with all Clones of the database,
// before or after this call. Safe for concurrent use.
func (db *Database) Dict() *Dict {
	db.dict.once.Do(func() { db.dict.d = BuildDict(db) })
	return db.dict.d
}

// Add registers a resident relation under its own name, replacing any
// previous source with that name.
func (db *Database) Add(r *Relation) {
	if _, exists := db.srcs[r.Name()]; !exists {
		db.order = append(db.order, r.Name())
	}
	db.rels[r.Name()] = r
	db.srcs[r.Name()] = r
}

// AddSource registers any relation source, replacing a previous source
// with the same name. A resident source also lands in the fast *Relation
// table.
func (db *Database) AddSource(s RelationSource) {
	if r, ok := s.Resident(); ok {
		db.Add(r)
		return
	}
	if _, exists := db.srcs[s.Name()]; !exists {
		db.order = append(db.order, s.Name())
	}
	delete(db.rels, s.Name())
	db.srcs[s.Name()] = s
}

// Remove drops the named relation, if present.
func (db *Database) Remove(name string) {
	if _, ok := db.srcs[name]; !ok {
		return
	}
	delete(db.rels, name)
	delete(db.srcs, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
}

// Source returns the named relation source, or an error naming it if
// absent. This is the engine-agnostic lookup every streaming consumer
// uses; Relation is the materializing variant.
func (db *Database) Source(name string) (RelationSource, error) {
	s, ok := db.srcs[name]
	if !ok {
		return nil, fmt.Errorf("storage: no relation %q in database", name)
	}
	return s, nil
}

// MustSource is Source but panics on a missing name.
func (db *Database) MustSource(name string) RelationSource {
	s, err := db.Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the named relation, materializing a non-resident
// source on first use (the source caches its pin), or an error naming it
// if absent.
func (db *Database) Relation(name string) (*Relation, error) {
	if r, ok := db.rels[name]; ok {
		return r, nil
	}
	s, ok := db.srcs[name]
	if !ok {
		return nil, fmt.Errorf("storage: no relation %q in database", name)
	}
	return s.Pin()
}

// Resident reports whether every registered source is fully in memory.
// The columnar executor requires a resident catalog (its interned caches
// live on the concrete relations); non-resident databases run the
// row-streaming path.
func (db *Database) Resident() bool {
	for _, n := range db.order {
		if _, ok := db.rels[n]; !ok {
			return false
		}
	}
	return true
}

// IO returns the catalog's disk I/O counters (nil for pure in-memory
// databases).
func (db *Database) IO() *IOStats { return db.io }

// SetIO attaches I/O counters; shared by all Clones.
func (db *Database) SetIO(s *IOStats) { db.io = s }

// seedDict installs a pre-built dictionary (loaded from a data dir),
// consuming the lazy-build slot.
func (db *Database) seedDict(d *Dict) {
	box := &dictBox{d: d}
	box.once.Do(func() {})
	db.dict = box
}

// MustRelation is Relation but panics on a missing name; for use where the
// name was already validated.
func (db *Database) MustRelation(name string) *Relation {
	r, err := db.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Has reports whether the database holds a relation with the given name.
func (db *Database) Has(name string) bool {
	_, ok := db.srcs[name]
	return ok
}

// Names returns the relation names in registration order.
func (db *Database) Names() []string { return db.order }

// Version returns the database's data-mutation counter. Serving-layer
// caches (plan cache, candidate-subquery memo) key their entries on this
// value, so results computed against one version can never answer a
// request against another. The counter is not synchronized: callers that
// mutate shared databases concurrently must publish a bumped copy (see
// Clone + BumpVersion) rather than mutate in place.
func (db *Database) Version() uint64 { return db.version }

// SetVersion overwrites the data-mutation counter (used when loading a
// snapshot that carries its own version).
func (db *Database) SetVersion(v uint64) { db.version = v }

// BumpVersion increments the data-mutation counter and returns the new
// value. Call it after any change to stored tuples; every cache entry
// keyed on the previous version becomes unreachable.
func (db *Database) BumpVersion() uint64 {
	db.version++
	return db.version
}

// Clone returns a database sharing the relation objects but with an
// independent name table, so plan executors can register temporary
// relations without mutating the caller's database.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	out.dict = db.dict       // share the dictionary box (see dictBox)
	out.io = db.io           // share the I/O counters
	out.version = db.version // a clone answers for the same data version
	for _, n := range db.order {
		out.AddSource(db.srcs[n])
	}
	return out
}

// String lists the relations and their sizes.
func (db *Database) String() string {
	var b strings.Builder
	for i, n := range db.order {
		if i > 0 {
			b.WriteString("; ")
		}
		s := db.srcs[n]
		fmt.Fprintf(&b, "%s(%s)[%d tuples]", s.Name(), strings.Join(s.Columns(), ", "), s.Len())
	}
	return b.String()
}

// Stats exposes the statistics the cost-based planner consumes: relation
// cardinalities, per-column distinct counts, and group-size quantiles used
// to estimate how many parameter values survive a support threshold
// (§4.3's "estimate for the expected sizes of relations and joins").
// Results are computed on demand and cached; the cache is keyed by relation
// identity and remains valid while relations are not mutated.
type Stats struct {
	db        *Database
	survivors map[string]float64
}

// NewStats creates a statistics view over db.
func NewStats(db *Database) *Stats {
	return &Stats{db: db, survivors: make(map[string]float64)}
}

// Rows returns the cardinality of the named relation (0 if absent).
func (s *Stats) Rows(name string) int {
	src, err := s.db.Source(name)
	if err != nil {
		return 0
	}
	return src.Len()
}

// Distinct returns the number of distinct values in rel.col (0 if absent).
func (s *Stats) Distinct(name, col string) int {
	src, err := s.db.Source(name)
	if err != nil {
		return 0
	}
	if src.ColumnIndex(col) < 0 {
		return 0
	}
	return src.DistinctCount(col)
}

// SurvivorFraction returns the fraction of distinct values of rel.groupCol
// whose group (set of tuples sharing that value) has size >= threshold.
// This is the exact selectivity of a single-subgoal a-priori filter such as
// "okS($s) := symptoms appearing in >= 20 patients" and is the anchor of
// the planner's filter-benefit estimates.
func (s *Stats) SurvivorFraction(name, groupCol string, threshold int) float64 {
	key := fmt.Sprintf("%s\x00%s\x00%d", name, groupCol, threshold)
	if v, ok := s.survivors[key]; ok {
		return v
	}
	src, err := s.db.Source(name)
	if err != nil {
		return 0
	}
	if src.ColumnIndex(groupCol) < 0 || src.Len() == 0 {
		return 0
	}
	total, pass := 0, 0
	for _, sz := range src.GroupSizes(groupCol) {
		total++
		if sz >= threshold {
			pass++
		}
	}
	v := float64(pass) / float64(total)
	s.survivors[key] = v
	return v
}

// TupleSurvivorFraction returns the fraction of *tuples* of rel that lie in
// a group (by groupCol) of size >= threshold — i.e. how much of the
// relation remains after semi-joining with the survivor set. This is the
// quantity Example 4.4 reasons about when deciding whether filtering
// "reduces the size of the relation by half".
func (s *Stats) TupleSurvivorFraction(name, groupCol string, threshold int) float64 {
	src, err := s.db.Source(name)
	if err != nil {
		return 0
	}
	if src.ColumnIndex(groupCol) < 0 || src.Len() == 0 {
		return 0
	}
	kept := 0
	for _, sz := range src.GroupSizes(groupCol) {
		if sz >= threshold {
			kept += sz
		}
	}
	return float64(kept) / float64(src.Len())
}

// GroupSizeQuantiles returns the q-quantiles (q >= 1) of group sizes of
// rel grouped by groupCol, e.g. q=4 returns the quartile boundaries. Used
// in EXPERIMENTS reporting and by ablation benches of the cost model.
func (s *Stats) GroupSizeQuantiles(name, groupCol string, q int) []int {
	src, err := s.db.Source(name)
	if err != nil || q < 1 {
		return nil
	}
	if src.ColumnIndex(groupCol) < 0 || src.Len() == 0 {
		return nil
	}
	sizes := append([]int(nil), src.GroupSizes(groupCol)...)
	sort.Ints(sizes)
	out := make([]int, q+1)
	for i := 0; i <= q; i++ {
		pos := i * (len(sizes) - 1) / q
		out[i] = sizes[pos]
	}
	return out
}
