package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"queryflocks/internal/par"
)

// Relation is a named, set-semantics collection of tuples over a fixed list
// of columns. Duplicate inserts are ignored, preserving the set semantics
// the paper's optimization claims depend on (§2.3).
//
// Thread-safety contract: a Relation is single-writer. Insert,
// InsertValues, and AbsorbBuilder mutate tuples, seen, and an internal key
// buffer without locking, so no mutation may run concurrently with any
// other access (the internal mutex guards only the lazy index cache, not
// the data). Once mutation stops, any number of goroutines may read
// concurrently — Tuples, Contains, ContainsKey, Len, and Index/IndexParallel
// (which build lazily under the internal lock) are all read-safe. Parallel
// operators therefore never share an output Relation across workers: each
// worker accumulates into its own lock-free Builder and one thread merges
// them with AbsorbBuilder afterwards.
type Relation struct {
	name string
	cols []string

	tuples []Tuple
	seen   map[string]struct{} // tuple Key -> present
	keyBuf []byte              // reusable Insert key buffer (single-writer)

	mu            sync.Mutex        // guards indexes and internedCache
	indexes       map[string]*Index // key: joined column positions
	internedCache *internedState    // lazy ID-space caches (see interned.go)
}

// NewRelation creates an empty relation with the given name and columns.
// Column names must be non-empty and unique.
func NewRelation(name string, cols ...string) *Relation {
	unique := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		if c == "" {
			panic(fmt.Sprintf("storage: relation %q has an empty column name", name))
		}
		if _, dup := unique[c]; dup {
			panic(fmt.Sprintf("storage: relation %q has duplicate column %q", name, c))
		}
		unique[c] = struct{}{}
	}
	return &Relation{
		name:    name,
		cols:    append([]string(nil), cols...),
		seen:    make(map[string]struct{}),
		indexes: make(map[string]*Index),
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Columns returns the column names. The returned slice must not be mutated.
func (r *Relation) Columns() []string { return r.cols }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.cols) }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(col string) int {
	for i, c := range r.cols {
		if c == col {
			return i
		}
	}
	return -1
}

// Insert adds a tuple if not already present and reports whether it was
// added. The tuple is stored as-is; callers must not mutate it afterwards.
// Inserting invalidates any indexes built so far.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("storage: arity mismatch inserting %d-tuple into %q(%d cols)",
			len(t), r.name, len(r.cols)))
	}
	// The reusable buffer means duplicate inserts allocate nothing; the key
	// string materializes only when the tuple is actually added.
	r.keyBuf = t.AppendKey(r.keyBuf[:0])
	if _, dup := r.seen[string(r.keyBuf)]; dup {
		return false
	}
	r.seen[string(r.keyBuf)] = struct{}{}
	r.tuples = append(r.tuples, t)
	r.dropIndexes()
	return true
}

// dropIndexes discards the lazy index and interned-ID caches after a
// mutation.
func (r *Relation) dropIndexes() {
	r.mu.Lock()
	if len(r.indexes) > 0 {
		r.indexes = make(map[string]*Index)
	}
	r.internedCache = nil
	r.mu.Unlock()
}

// InsertValues is Insert with variadic values, for convenience in tests and
// generators.
func (r *Relation) InsertValues(vs ...Value) bool { return r.Insert(Tuple(vs)) }

// Contains reports whether the relation holds the given tuple.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.seen[t.Key()]
	return ok
}

// ContainsKey reports membership for a tuple key encoding built with
// Tuple.AppendKey. It performs no allocation, so probe loops can reuse one
// buffer per worker. Safe for concurrent readers.
func (r *Relation) ContainsKey(key []byte) bool {
	_, ok := r.seen[string(key)]
	return ok
}

// Tuples returns the stored tuples in insertion order. The slice and its
// tuples must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Index returns (building on first use) a hash index on the given column
// positions. The index is dropped automatically on the next Insert.
// Index is safe to call from concurrent readers.
func (r *Relation) Index(cols []int) *Index {
	return r.IndexParallel(cols, 1)
}

// IndexParallel is Index with a hash-partitioned parallel build: the
// bucket map is split into up to `workers` shards and each shard is filled
// by its own goroutine (see par.Resolve for the knob convention). The
// resulting index answers lookups identically to a sequential build, and
// either form is cached and served for later requests on the same columns
// regardless of the worker count asked for.
func (r *Relation) IndexParallel(cols []int, workers int) *Index {
	key := indexKey(cols)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix, ok := r.indexes[key]; ok {
		return ix
	}
	var ix *Index
	if w := par.Resolve(workers); w > 1 {
		ix = buildIndexParallel(r, cols, w)
	} else {
		ix = buildIndex(r, cols)
	}
	r.indexes[key] = ix
	return ix
}

// IndexOn is Index keyed by column names.
func (r *Relation) IndexOn(cols ...string) *Index {
	pos := make([]int, len(cols))
	for i, c := range cols {
		p := r.ColumnIndex(c)
		if p < 0 {
			panic(fmt.Sprintf("storage: relation %q has no column %q", r.name, c))
		}
		pos[i] = p
	}
	return r.Index(pos)
}

// DistinctCount returns the number of distinct values in the named column.
func (r *Relation) DistinctCount(col string) int {
	p := r.ColumnIndex(col)
	if p < 0 {
		panic(fmt.Sprintf("storage: relation %q has no column %q", r.name, col))
	}
	return r.Index([]int{p}).GroupCount()
}

// Clone returns a deep-enough copy: tuples are shared (they are immutable by
// convention) but the container and membership set are independent.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.name, r.cols...)
	out.tuples = append([]Tuple(nil), r.tuples...)
	for k := range r.seen {
		out.seen[k] = struct{}{}
	}
	return out
}

// Rename returns a shallow view of the relation with a different name and,
// optionally, different column names (pass nil to keep the originals).
func (r *Relation) Rename(name string, cols []string) *Relation {
	if cols == nil {
		cols = r.cols
	}
	if len(cols) != len(r.cols) {
		panic(fmt.Sprintf("storage: Rename of %q with %d columns (want %d)", r.name, len(cols), len(r.cols)))
	}
	out := NewRelation(name, cols...)
	out.tuples = r.tuples
	out.seen = r.seen
	return out
}

// Sorted returns the tuples in lexicographic order (a fresh slice; the
// relation itself keeps insertion order). Useful for deterministic output.
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Equal reports whether two relations hold exactly the same set of tuples
// (names and column names are ignored; arity must match).
func (r *Relation) Equal(s *Relation) bool {
	if r.Arity() != s.Arity() || r.Len() != s.Len() {
		return false
	}
	for k := range r.seen {
		if _, ok := s.seen[k]; !ok {
			return false
		}
	}
	return true
}

// String renders a short human-readable summary.
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%s)[%d tuples]", r.name, strings.Join(r.cols, ", "), len(r.tuples))
}

// Dump renders the full relation, sorted, one tuple per line. Intended for
// small relations in examples and tests.
func (r *Relation) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s):\n", r.name, strings.Join(r.cols, ", "))
	for _, t := range r.Sorted() {
		b.WriteString("  ")
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func indexKey(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}
