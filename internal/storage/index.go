package storage

// Index is a hash index mapping the key of a column-subset projection to
// the tuples holding that projection. Indexes are built lazily by
// Relation.Index and discarded when the relation changes.
type Index struct {
	cols    []int
	buckets map[string][]Tuple
}

func buildIndex(r *Relation, cols []int) *Index {
	ix := &Index{
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]Tuple, len(r.tuples)),
	}
	for _, t := range r.tuples {
		k := t.KeyOn(cols)
		ix.buckets[k] = append(ix.buckets[k], t)
	}
	return ix
}

// Columns returns the indexed column positions.
func (ix *Index) Columns() []int { return ix.cols }

// Lookup returns the tuples whose indexed columns equal the given key
// values (in index-column order). The returned slice must not be mutated.
func (ix *Index) Lookup(key Tuple) []Tuple {
	return ix.buckets[key.Key()]
}

// LookupKey returns the tuples for a precomputed key string (see
// Tuple.KeyOn). This avoids re-encoding in tight join loops.
func (ix *Index) LookupKey(key string) []Tuple {
	return ix.buckets[key]
}

// GroupCount returns the number of distinct key groups in the index.
func (ix *Index) GroupCount() int { return len(ix.buckets) }

// GroupSizes returns the size of each key group, in unspecified order.
// The planner uses this to build group-size histograms for support-
// selectivity estimation.
func (ix *Index) GroupSizes() []int {
	out := make([]int, 0, len(ix.buckets))
	for _, ts := range ix.buckets {
		out = append(out, len(ts))
	}
	return out
}
