package storage

import (
	"sort"

	"queryflocks/internal/par"
)

// Index is a hash index mapping the key of a column-subset projection to
// the tuples holding that projection. Indexes are built lazily by
// Relation.Index and discarded when the relation changes.
//
// The bucket map is split into one or more shards by key hash. A
// single-shard index is the sequential layout; multi-shard indexes exist so
// the build can proceed with one worker per shard, each writing only its
// own map. Lookups are identical either way: within a bucket, tuples keep
// relation insertion order, so results do not depend on the shard count.
type Index struct {
	cols   []int
	shards []map[string][]Tuple
}

// FNV-1a, the hash that routes a key to its shard. Keys are already
// injective encodings (Tuple.Key), so a simple byte hash suffices.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a hashes a byte sequence with 64-bit FNV-1a. It is generic over
// []byte and string so the two entry points can never drift: fnv1a(b) ==
// fnv1a(string(b)) by construction.
func fnv1a[T ~[]byte | ~string](s T) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func hashKey(b []byte) uint64 { return fnv1a(b) }

// hashIDs hashes a dictionary-ID tuple byte-compatibly with fnv1a over
// its packIDs encoding, without materializing the bytes. Used by the
// columnar probe path wherever the row path hashes AppendKey bytes.
func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(byte(id))
		h *= fnvPrime64
		h ^= uint64(byte(id >> 8))
		h *= fnvPrime64
		h ^= uint64(byte(id >> 16))
		h *= fnvPrime64
		h ^= uint64(byte(id >> 24))
		h *= fnvPrime64
	}
	return h
}

// HashIDs is hashIDs for callers outside the package (the columnar
// executor partitions probe work by this hash).
func HashIDs(ids []uint32) uint64 { return hashIDs(ids) }

// buildIndex builds a single-shard index sequentially.
func buildIndex(r *Relation, cols []int) *Index {
	ix := &Index{
		cols:   append([]int(nil), cols...),
		shards: []map[string][]Tuple{make(map[string][]Tuple, len(r.tuples))},
	}
	for _, t := range r.tuples {
		k := t.KeyOn(cols)
		ix.shards[0][k] = append(ix.shards[0][k], t)
	}
	return ix
}

// buildIndexParallel builds a hash-partitioned index with one shard per
// worker. Phase one computes every tuple's key and shard hash in parallel
// over disjoint ranges; phase two gives each worker one shard to fill, so
// no map is ever written by two goroutines. Within each bucket, tuples
// appear in relation order (phase two scans tuples in order), matching the
// sequential build exactly.
func buildIndexParallel(r *Relation, cols []int, workers int) *Index {
	n := len(r.tuples)
	shardCount := par.Chunks(n, workers)
	if shardCount <= 1 {
		return buildIndex(r, cols)
	}
	keys := make([]string, n)
	hashes := make([]uint64, n)
	par.Run(n, workers, func(_, lo, hi int) {
		buf := make([]byte, 0, 16*len(cols))
		for i := lo; i < hi; i++ {
			buf = r.tuples[i].AppendKeyOn(buf[:0], cols)
			keys[i] = string(buf)
			hashes[i] = hashKey(buf)
		}
	})
	ix := &Index{
		cols:   append([]int(nil), cols...),
		shards: make([]map[string][]Tuple, shardCount),
	}
	// One worker per shard; each scans the (cheap) hash array and claims
	// its own keys. Work is duplicated S times on the scan but the heavy
	// part — key encoding — happened once above.
	par.Run(shardCount, shardCount, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			shard := make(map[string][]Tuple, n/shardCount+1)
			for i := 0; i < n; i++ {
				if hashes[i]%uint64(shardCount) == uint64(s) {
					shard[keys[i]] = append(shard[keys[i]], r.tuples[i])
				}
			}
			ix.shards[s] = shard
		}
	})
	return ix
}

// Columns returns the indexed column positions.
func (ix *Index) Columns() []int { return ix.cols }

// lookupIn is the single keyed-lookup core behind Lookup, LookupBytes,
// and LookupKey: pick the shard (hashing only when there is more than
// one), then one map access. It is generic over []byte and string for
// the same reason fnv1a is — the two entry points cannot drift — and the
// compiler's map-access-by-converted-[]byte optimization keeps the byte
// path allocation-free (pinned by BenchmarkIndexLookup's 0 allocs/op
// assertion).
func lookupIn[T ~[]byte | ~string](shards []map[string][]Tuple, key T) []Tuple {
	if len(shards) == 1 {
		return shards[0][string(key)]
	}
	return shards[fnv1a(key)%uint64(len(shards))][string(key)]
}

// Lookup returns the tuples whose indexed columns equal the given key
// values (in index-column order), plus the (possibly grown) key buffer
// for reuse: like LookupBytes, it allocates nothing once the caller's
// buffer has warmed up. Pass nil on the first call. The returned tuple
// slice must not be mutated.
func (ix *Index) Lookup(key Tuple, buf []byte) ([]Tuple, []byte) {
	buf = key.AppendKey(buf[:0])
	return lookupIn(ix.shards, buf), buf
}

// LookupBytes returns the tuples for a key encoding built with
// Tuple.AppendKey/AppendKeyOn. It performs no allocation, so probe loops
// can reuse one buffer per worker. Safe for concurrent readers.
func (ix *Index) LookupBytes(key []byte) []Tuple { return lookupIn(ix.shards, key) }

// LookupKey returns the tuples for a precomputed key string (see
// Tuple.KeyOn). This avoids re-encoding in tight join loops.
func (ix *Index) LookupKey(key string) []Tuple { return lookupIn(ix.shards, key) }

// GroupCount returns the number of distinct key groups in the index.
func (ix *Index) GroupCount() int {
	n := 0
	for _, shard := range ix.shards {
		n += len(shard)
	}
	return n
}

// GroupSizes returns the size of each key group, sorted ascending so the
// multiset has one canonical form regardless of shard/map layout. The
// planner uses this to build group-size histograms for support-
// selectivity estimation.
func (ix *Index) GroupSizes() []int {
	out := make([]int, 0, ix.GroupCount())
	for _, shard := range ix.shards {
		for _, ts := range shard {
			out = append(out, len(ts))
		}
	}
	sort.Ints(out)
	return out
}
