package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Segment file format (one file per relation, extension ".seg"):
//
//	magic "QFSEG1\n"
//	uvarint header length, header JSON {"name", "columns", "rows"}
//	rows, in ascending sort-key order:
//	    uvarint key length,     sort key   (Tuple.AppendSortKey)
//	    uvarint payload length, payload    (Tuple.AppendPayload, exact)
//	sparse index:
//	    uvarint entry count
//	    per entry: uvarint absolute row offset, uvarint key length, key
//	trailer: 8-byte little-endian offset of the sparse index, "QFSEGIX\n"
//
// The sparse index holds the first sort key of every block of
// segIndexEvery rows; a keyed lookup binary-searches it in memory, seeks
// to the block, and streams forward. Because the key encoding is
// order-preserving and prefix-free per value, any bound-column prefix is
// a contiguous key range, so one positioning read serves every
// LookupPrefix regardless of which columns are bound.
const (
	segMagic     = "QFSEG1\n"
	segTail      = "QFSEGIX\n"
	segIndexEvery = 256
)

type segHeader struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    int      `json:"rows"`
}

type segIndexEntry struct {
	off int64
	key []byte
}

// writeSegment writes a sorted segment file. Tuples must already be in
// ascending sort-key order (see sortedBySortKey).
func writeSegment(path, name string, cols []string, tuples []Tuple) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	off := int64(0)
	put := func(b []byte) error {
		n, err := w.Write(b)
		off += int64(n)
		return err
	}

	if err := put([]byte(segMagic)); err != nil {
		return err
	}
	hdr, err := json.Marshal(segHeader{Name: name, Columns: cols, Rows: len(tuples)})
	if err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(len(hdr)))]); err != nil {
		return err
	}
	if err := put(hdr); err != nil {
		return err
	}

	var index []segIndexEntry
	var key, payload []byte
	for i, t := range tuples {
		key = t.AppendSortKey(key[:0])
		payload = t.AppendPayload(payload[:0])
		if i%segIndexEvery == 0 {
			index = append(index, segIndexEntry{off: off, key: append([]byte(nil), key...)})
		}
		if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(len(key)))]); err != nil {
			return err
		}
		if err := put(key); err != nil {
			return err
		}
		if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(len(payload)))]); err != nil {
			return err
		}
		if err := put(payload); err != nil {
			return err
		}
	}

	indexOff := off
	if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(len(index)))]); err != nil {
		return err
	}
	for _, e := range index {
		if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(e.off))]); err != nil {
			return err
		}
		if err := put(scratch[:binary.PutUvarint(scratch[:], uint64(len(e.key)))]); err != nil {
			return err
		}
		if err := put(e.key); err != nil {
			return err
		}
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(indexOff))
	if err := put(trailer[:]); err != nil {
		return err
	}
	if err := put([]byte(segTail)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The catalog that is written after the segments references them by
	// name; a segment must be on disk before that publish happens.
	return f.Sync()
}

// segmentReader serves one open segment file. The sparse index stays in
// memory; row data is streamed on demand through positioned section
// readers, so concurrent iterators never share a file offset.
type segmentReader struct {
	f         *os.File
	path      string
	name      string
	cols      []string
	rows      int
	dataStart int64
	dataEnd   int64 // == sparse-index offset
	index     []segIndexEntry
	io        *IOStats
}

// openSegment opens and validates a segment file, loading its sparse
// index.
func openSegment(path string, stats *IOStats) (*segmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr := &segmentReader{f: f, path: path, io: stats}
	if err := sr.load(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: segment %s: %w", path, err)
	}
	stats.addSegmentOpened()
	return sr, nil
}

func (sr *segmentReader) load() error {
	fi, err := sr.f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	tail := int64(8 + len(segTail))
	if size < int64(len(segMagic))+tail {
		return fmt.Errorf("too short (%d bytes)", size)
	}
	trailer := make([]byte, tail)
	if _, err := sr.f.ReadAt(trailer, size-tail); err != nil {
		return err
	}
	if string(trailer[8:]) != segTail {
		return fmt.Errorf("bad trailer magic %q", trailer[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if indexOff <= 0 || indexOff > size-tail {
		return fmt.Errorf("index offset %d out of range", indexOff)
	}

	head := bufio.NewReader(io.NewSectionReader(sr.f, 0, indexOff))
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(head, magic); err != nil {
		return err
	}
	if string(magic) != segMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	hdrLen, err := binary.ReadUvarint(head)
	if err != nil {
		return err
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(head, hdrBytes); err != nil {
		return err
	}
	var hdr segHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return fmt.Errorf("bad header: %w", err)
	}
	sr.name, sr.cols, sr.rows = hdr.Name, hdr.Columns, hdr.Rows
	sr.dataStart = int64(len(segMagic)) + int64(uvarintLen(hdrLen)) + int64(hdrLen)
	sr.dataEnd = indexOff

	ir := bufio.NewReader(io.NewSectionReader(sr.f, indexOff, size-tail-indexOff))
	count, err := binary.ReadUvarint(ir)
	if err != nil {
		return err
	}
	sr.index = make([]segIndexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		off, err := binary.ReadUvarint(ir)
		if err != nil {
			return err
		}
		klen, err := binary.ReadUvarint(ir)
		if err != nil {
			return err
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(ir, key); err != nil {
			return err
		}
		sr.index = append(sr.index, segIndexEntry{off: int64(off), key: key})
	}
	return nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (sr *segmentReader) close() error { return sr.f.Close() }

// seekBlock returns the data offset of the last index block whose first
// key is <= key — the block a forward scan for key must start in.
func (sr *segmentReader) seekBlock(key []byte) int64 {
	i := sort.Search(len(sr.index), func(i int) bool {
		return bytes.Compare(sr.index[i].key, key) > 0
	})
	if i == 0 {
		return sr.dataStart
	}
	sr.io.addIndexBlockRead()
	return sr.index[i-1].off
}

// segIterator streams rows of one segment from a start offset, optionally
// bounded by key predicates. accept/stop see the row's sort key:
// rows are skipped while accept is false and iteration halts when stop
// reports true (sortedness makes early termination exact).
type segIterator struct {
	sr     *segmentReader
	r      *bufio.Reader
	arity  int
	accept func(key []byte) bool
	stop   func(key []byte) bool
	key    []byte
	buf    []byte
	out    []Tuple
	done   bool
}

func (sr *segmentReader) iterate(start int64, accept, stop func(key []byte) bool) *segIterator {
	return &segIterator{
		sr:     sr,
		r:      bufio.NewReaderSize(io.NewSectionReader(sr.f, start, sr.dataEnd-start), 64<<10),
		arity:  len(sr.cols),
		accept: accept,
		stop:   stop,
	}
}

// scan streams every row in sort order.
func (sr *segmentReader) scan() *segIterator { return sr.iterate(sr.dataStart, nil, nil) }

// lookupPrefix streams the rows whose sort key begins with prefix.
func (sr *segmentReader) lookupPrefix(prefix []byte) *segIterator {
	return sr.iterate(sr.seekBlock(prefix),
		func(key []byte) bool { return bytes.HasPrefix(key, prefix) },
		func(key []byte) bool { return !bytes.HasPrefix(key, prefix) && bytes.Compare(key, prefix) > 0 })
}

// scanRange streams the rows whose sort key lies in [lo, hi).
func (sr *segmentReader) scanRange(lo, hi []byte) *segIterator {
	start := sr.dataStart
	if lo != nil {
		start = sr.seekBlock(lo)
	}
	var accept, stop func(key []byte) bool
	if lo != nil {
		accept = func(key []byte) bool { return bytes.Compare(key, lo) >= 0 }
	}
	if hi != nil {
		stop = func(key []byte) bool { return bytes.Compare(key, hi) >= 0 }
	}
	return sr.iterate(start, accept, stop)
}

func (it *segIterator) Next(max int) ([]Tuple, error) {
	if it.done {
		return nil, nil
	}
	if max <= 0 {
		max = 1024
	}
	it.out = it.out[:0]
	for len(it.out) < max {
		klen, err := binary.ReadUvarint(it.r)
		if err == io.EOF {
			it.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", it.sr.path, err)
		}
		it.key = readInto(it.key, int(klen))
		if _, err := io.ReadFull(it.r, it.key); err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", it.sr.path, err)
		}
		plen, err := binary.ReadUvarint(it.r)
		if err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", it.sr.path, err)
		}
		it.buf = readInto(it.buf, int(plen))
		if _, err := io.ReadFull(it.r, it.buf); err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", it.sr.path, err)
		}
		it.sr.io.addBytesRead(uvarintLen(klen) + int(klen) + uvarintLen(plen) + int(plen))
		if it.stop != nil && it.stop(it.key) {
			it.done = true
			break
		}
		if it.accept != nil && !it.accept(it.key) {
			continue
		}
		t, err := DecodePayloadTuple(it.buf, it.arity)
		if err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", it.sr.path, err)
		}
		it.out = append(it.out, t)
	}
	if len(it.out) == 0 {
		return nil, nil
	}
	return it.out, nil
}

func (it *segIterator) Close() error { return nil }

// readInto resizes buf to n bytes, reusing capacity.
func readInto(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// contains reports whether the segment holds a row whose full sort key
// equals key (one positioned read; rows have fixed arity so a full-key
// prefix match is exact equality).
func (sr *segmentReader) contains(key []byte) (bool, error) {
	it := sr.lookupPrefix(key)
	defer it.Close()
	batch, err := it.Next(1)
	if err != nil {
		return false, err
	}
	return len(batch) > 0, nil
}
