package storage

import (
	"sync"
	"testing"
)

func dictDB() *Database {
	db := NewDatabase()
	r := NewRelation("r", "A", "B")
	r.Insert(Tuple{Int(3), Str("b")})
	r.Insert(Tuple{Int(1), Str("a")})
	r.Insert(Tuple{Int(2), Str("c")})
	db.Add(r)
	return db
}

func TestBuildDictOrderPreserving(t *testing.T) {
	d := BuildDict(dictDB())
	// 6 distinct classes + null.
	if d.Len() != 7 {
		t.Fatalf("Len = %d, want 7", d.Len())
	}
	vals := []Value{Int(1), Int(2), Int(3), Str("a"), Str("b"), Str("c")}
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		id, ok := d.Lookup(v)
		if !ok {
			t.Fatalf("Lookup(%v) missed", v)
		}
		ids[i] = id
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not in Compare order: %v -> %v", vals, ids)
		}
		if !d.OrderPreserved(ids[i-1], ids[i]) {
			t.Fatalf("built IDs %d,%d should be order-preserved", ids[i-1], ids[i])
		}
	}
	if id, _ := d.Lookup(Null()); id != NullID {
		t.Fatalf("null ID = %d", id)
	}
}

func TestDictCrossKindEquality(t *testing.T) {
	d := BuildDict(dictDB())
	// Int(1) and Float(1) are Equal, so they share one equality class.
	iid, ok := d.Lookup(Int(1))
	if !ok {
		t.Fatal("Int(1) missing")
	}
	fid, ok := d.Lookup(Float(1))
	if !ok {
		t.Fatal("Float(1) should hit Int(1)'s class")
	}
	if iid != fid {
		t.Fatalf("Int(1) id %d != Float(1) id %d", iid, fid)
	}
	if got := d.Intern(Float(1.0)); got != iid {
		t.Fatalf("Intern(Float(1)) = %d, want %d", got, iid)
	}
	// The representative is the stored value, so decode is exact for
	// base data.
	if v := d.Value(iid); !v.Equal(Int(1)) {
		t.Fatalf("Value(%d) = %v", iid, v)
	}
}

func TestDictInternAppends(t *testing.T) {
	d := BuildDict(dictDB())
	n := d.Len()
	id := d.Intern(Str("zzz"))
	if int(id) != n {
		t.Fatalf("appended id = %d, want %d", id, n)
	}
	if d.Len() != n+1 {
		t.Fatalf("Len after append = %d", d.Len())
	}
	if d.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", d.Misses())
	}
	if again := d.Intern(Str("zzz")); again != id {
		t.Fatalf("re-intern = %d, want %d", again, id)
	}
	if d.Hits() == 0 {
		t.Fatal("re-intern should count a hit")
	}
	if _, ok := d.Lookup(Str("never")); ok {
		t.Fatal("Lookup of unseen value should miss")
	}
	// Appended IDs keep only the equality guarantee.
	if d.OrderPreserved(1, id) {
		t.Fatal("appended ID should not claim order preservation")
	}
}

func TestDictRoundTrip(t *testing.T) {
	db := dictDB()
	d := BuildDict(db)
	for _, tp := range db.MustRelation("r").Tuples() {
		ids := d.InternTuple(tp, nil)
		for i, id := range ids {
			if got := d.Value(id); got != tp[i] {
				t.Fatalf("round-trip %v -> %d -> %v", tp[i], id, got)
			}
		}
	}
	if d.Misses() != 0 {
		t.Fatalf("round-trip of built values missed %d times", d.Misses())
	}
}

func TestDictViewRefresh(t *testing.T) {
	d := NewDict()
	view := d.View()
	if view.Len() != 1 {
		t.Fatalf("fresh view len = %d", view.Len())
	}
	id := d.Intern(Int(42))
	if int(id) < view.Len() {
		t.Fatal("new ID should be past the stale view")
	}
	view = d.View()
	if !view.Value(id).Equal(Int(42)) {
		t.Fatalf("refreshed view decodes %v", view.Value(id))
	}
	if view.Kind(id) != KindInt {
		t.Fatalf("kind sidecar = %v", view.Kind(id))
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const goroutines, vals = 8, 200
	ids := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, vals)
			for i := 0; i < vals; i++ {
				ids[g][i] = d.Intern(Int(int64(i)))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < vals; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned Int(%d) as %d, goroutine 0 as %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	if d.Len() != vals+1 {
		t.Fatalf("Len = %d, want %d", d.Len(), vals+1)
	}
}

func TestDatabaseDictSharedByClone(t *testing.T) {
	db := dictDB()
	clone := db.Clone()
	if db.Dict() != clone.Dict() {
		t.Fatal("clone should share the database's dictionary")
	}
}

// TestHashEquivalence pins the three FNV-1a entry points together: the
// byte and string forms must agree (shard routing builds keys as bytes
// but can look them up as strings), and hashIDs must equal hashing the
// packed-ID encoding (the row and columnar paths partition identically).
func TestHashEquivalence(t *testing.T) {
	keys := [][]byte{nil, {}, {0}, {0xff, 0x00, 0x7f}, []byte("query flocks")}
	for _, k := range keys {
		if hashKey(k) != fnv1a(string(k)) {
			t.Fatalf("hashKey(%x) != fnv1a of the same bytes as a string", k)
		}
	}
	idTuples := [][]uint32{{}, {0}, {1, 2, 3}, {0xdeadbeef, 0, 0xffffffff}}
	for _, ids := range idTuples {
		if hashIDs(ids) != hashKey(packIDs(nil, ids)) {
			t.Fatalf("hashIDs(%v) != fnv1a(packIDs(%v))", ids, ids)
		}
		if HashIDs(ids) != hashIDs(ids) {
			t.Fatal("exported HashIDs drifted from hashIDs")
		}
	}
}

// FuzzDictCrossKind checks that Int/Float cross-kind equality through
// the dictionary matches Value.Equal for arbitrary numbers: interning
// both forms of any integer-valued float must yield one ID, and
// distinct numbers distinct IDs.
func FuzzDictCrossKind(f *testing.F) {
	f.Add(int64(1), 1.0)
	f.Add(int64(0), 0.0)
	f.Add(int64(-5), 2.5)
	f.Add(int64(1<<53), float64(1<<53))
	f.Fuzz(func(t *testing.T, n int64, x float64) {
		d := NewDict()
		in, fl := Int(n), Float(x)
		iid, fid := d.Intern(in), d.Intern(fl)
		if (iid == fid) != in.Equal(fl) {
			t.Fatalf("Int(%d) id %d, Float(%v) id %d, Equal=%v", n, iid, x, fid, in.Equal(fl))
		}
		if !d.Value(iid).Equal(in) || !d.Value(fid).Equal(fl) {
			t.Fatalf("round-trip broke: %v / %v", d.Value(iid), d.Value(fid))
		}
	})
}
