package storage

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Dict is the per-database value dictionary: an intern table mapping each
// semantic equality class of Values (see Value.Equal — Int(1) and
// Float(1) share a class) to a dense uint32 ID. The columnar executor
// probes, deduplicates, and groups on these IDs, so two IDs are equal
// exactly when the values they stand for are Equal; the boxed Value is
// recovered only at pipeline sinks.
//
// ID 0 is always the null value. IDs assigned by BuildDict (the bulk of
// the domain, built at CSV load/ingest) are order-preserving: for values
// known at build time, id(v) < id(w) iff v.Compare(w) < 0, so ID order
// can stand in for Value order as well as equality. Values first seen
// after the build (query constants, hook-produced tuples) are appended
// and keep only the equality guarantee.
//
// A Dict is safe for concurrent use: lookups take a read lock, misses
// append under the write lock, and decode-heavy operators snapshot an
// immutable View once per batch instead of locking per value.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]uint32 // normalized AppendKey -> ID
	vals  []Value           // ID -> first-interned representative
	kinds []Kind            // ID -> representative's kind (cache-friendly sidecar)

	// sortedLen is the number of IDs assigned by the order-preserving
	// build; IDs below it compare like their values.
	sortedLen uint32

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NullID is the reserved dictionary ID of the null value.
const NullID uint32 = 0

// NewDict returns an empty dictionary holding only the null value.
func NewDict() *Dict {
	d := &Dict{
		ids:   make(map[string]uint32),
		vals:  []Value{Null()},
		kinds: []Kind{KindNull},
	}
	d.ids[string(Null().AppendKey(nil))] = NullID
	d.sortedLen = 1
	return d
}

// BuildDict scans every relation of db and interns each distinct value
// class with order-preserving IDs: null is 0 and the remaining classes
// are numbered in Value.Compare order. This is the load-time bulk build;
// later values append via Intern. Relations are read through their
// source iterators, so the build streams even over the disk engine.
func BuildDict(db *Database) *Dict {
	classes := make(map[string]Value)
	var buf []byte
	for _, name := range db.Names() {
		src := db.MustSource(name)
		it := src.Scan()
		for {
			batch, err := it.Next(1024)
			if err != nil {
				it.Close()
				panic(err)
			}
			if batch == nil {
				break
			}
			for _, t := range batch {
				for _, v := range t {
					buf = v.AppendKey(buf[:0])
					if _, ok := classes[string(buf)]; !ok {
						classes[string(buf)] = v
					}
				}
			}
		}
		it.Close()
	}
	delete(classes, string(Null().AppendKey(nil)))
	ordered := make([]Value, 0, len(classes))
	for _, v := range classes {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Compare(ordered[j]) < 0 })
	d := NewDict()
	d.vals = append(d.vals, ordered...)
	d.kinds = d.kinds[:1]
	for _, v := range ordered {
		d.kinds = append(d.kinds, v.Kind())
	}
	for i, v := range ordered {
		d.ids[string(v.AppendKey(nil))] = uint32(i + 1)
	}
	d.sortedLen = uint32(len(d.vals))
	return d
}

// newDictFromValues reconstructs a dictionary from a persisted snapshot:
// vals holds every class representative in ID order (index 0 must be the
// null value) and sortedLen is the order-preserved prefix length.
func newDictFromValues(vals []Value, sortedLen uint32) *Dict {
	d := &Dict{
		ids:   make(map[string]uint32, len(vals)),
		vals:  vals,
		kinds: make([]Kind, len(vals)),
	}
	for i, v := range vals {
		d.kinds[i] = v.Kind()
		d.ids[string(v.AppendKey(nil))] = uint32(i)
	}
	if sortedLen > uint32(len(vals)) {
		sortedLen = uint32(len(vals))
	}
	d.sortedLen = sortedLen
	return d
}

// snapshotValues returns a copy of the representative values in ID order
// plus the order-preserved prefix length, for persistence.
func (d *Dict) snapshotValues() ([]Value, uint32) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Value(nil), d.vals...), d.sortedLen
}

// Len returns the number of interned value classes (including null).
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// Hits and Misses report the cumulative Intern outcomes: a hit found the
// value already interned, a miss appended a fresh ID.
func (d *Dict) Hits() uint64   { return d.hits.Load() }
func (d *Dict) Misses() uint64 { return d.misses.Load() }

// Intern returns the ID of v's equality class, appending a fresh ID if
// the class is new. The key buffer is reused across the fast path; only
// a genuinely new class allocates.
func (d *Dict) Intern(v Value) uint32 {
	var arr [24]byte
	key := v.AppendKey(arr[:0])
	d.mu.RLock()
	id, ok := d.ids[string(key)]
	d.mu.RUnlock()
	if ok {
		d.hits.Add(1)
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[string(key)]; ok { // raced with another writer
		d.hits.Add(1)
		return id
	}
	d.misses.Add(1)
	id = uint32(len(d.vals))
	d.vals = append(d.vals, v)
	d.kinds = append(d.kinds, v.Kind())
	d.ids[string(key)] = id
	return id
}

// Lookup returns the ID of v's class without interning; ok is false when
// the class has never been seen.
func (d *Dict) Lookup(v Value) (uint32, bool) {
	var arr [24]byte
	key := v.AppendKey(arr[:0])
	d.mu.RLock()
	id, ok := d.ids[string(key)]
	d.mu.RUnlock()
	return id, ok
}

// Value returns the representative value of an ID: the first value of
// the class the dictionary saw (so a class populated from base data
// round-trips to the stored value; only cross-relation Int/Float aliases
// can decode to the Equal sibling kind).
func (d *Dict) Value(id uint32) Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[id]
}

// OrderPreserved reports whether both IDs were assigned by the
// order-preserving bulk build, in which case integer ID order equals
// Value.Compare order.
func (d *Dict) OrderPreserved(a, b uint32) bool {
	s := d.sorted()
	return a < s && b < s
}

func (d *Dict) sorted() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.sortedLen
}

// View returns a decode snapshot. The dictionary only ever appends, so a
// view taken after an ID was assigned can decode that ID lock-free;
// operators refresh their view when they meet an ID past the snapshot.
func (d *Dict) View() DictView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return DictView{vals: d.vals, kinds: d.kinds}
}

// DictView is an immutable decode snapshot of a Dict: plain slice reads,
// no locking. Valid forever (the dict never mutates assigned IDs), but
// only covers IDs below Len at snapshot time.
type DictView struct {
	vals  []Value
	kinds []Kind
}

// Len returns the number of IDs the view covers.
func (v DictView) Len() int { return len(v.vals) }

// Value decodes an ID covered by the view.
func (v DictView) Value(id uint32) Value { return v.vals[id] }

// Kind returns the representative kind of an ID covered by the view.
func (v DictView) Kind(id uint32) Kind { return v.kinds[id] }

// InternTuple interns every value of t, appending the IDs to dst.
func (d *Dict) InternTuple(t Tuple, dst []uint32) []uint32 {
	for _, v := range t {
		dst = append(dst, d.Intern(v))
	}
	return dst
}
