// Package storage implements the relational substrate for the query-flock
// system: typed values, tuples, set-semantics relations with hash indexes,
// a statistics catalog used by the cost-based planner, and CSV import/export.
//
// The paper assumes "the data is stored in a conventional relational system"
// (§1.4); this package is that system. Relations follow set semantics
// throughout because the paper's containment-based claims do not hold for
// bag semantics (§2.3).
package storage

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. Null is the zero Kind so that a zero Value is
// a well-defined null.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar stored in relations. Value is a
// comparable struct so it can be used directly as a map key; two Values are
// identical under == exactly when they have the same kind and content.
//
// Numeric comparisons across Int and Float are supported by Compare;
// equality under == is intentionally kind-sensitive (Int(1) != Float(1)),
// matching the behaviour of a typed column store.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value. (Constructor; see Value.String for display.)
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Null returns the null value.
func Null() Value { return Value{} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer content. It panics if the value is not an int;
// use Kind to check first.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("storage: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric content widened to float64. It accepts both
// int and float values.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("storage: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string content. It panics if the value is not a
// string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("storage: AsString on %s value", v.kind))
	}
	return v.s
}

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display. Strings are rendered bare; use
// Literal for a parseable form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.kind))
	}
}

// Literal renders the value as a parseable literal: strings are quoted,
// numbers and NULL are bare.
func (v Value) Literal() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// Compare orders two values. The total order is: NULL < numerics < strings;
// numerics compare by numeric value regardless of int/float kind; strings
// compare lexicographically. It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		if vr < wr {
			return -1
		}
		return 1
	}
	switch vr {
	case 0: // both null
		return 0
	case 1: // both numeric
		a, b := v.AsFloat(), w.AsFloat()
		// Exact path for int-int comparisons to avoid float rounding on
		// large int64s.
		if v.kind == KindInt && w.kind == KindInt {
			switch {
			case v.i < w.i:
				return -1
			case v.i > w.i:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	default: // both strings
		return strings.Compare(v.s, w.s)
	}
}

// rank buckets kinds for cross-kind ordering.
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports semantic equality: same as Compare(w) == 0, so Int(1) and
// Float(1) are Equal even though they differ under ==.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// minInt64Float and maxInt64Float bound the float64s whose truncation is
// exactly representable as int64. The upper bound is 2^63, which float64
// represents exactly; a float must be strictly below it (int64 tops out at
// 2^63-1, which float64 cannot represent). The lower bound -2^63 is itself
// representable and included.
const (
	minInt64Float = -9223372036854775808.0
	maxInt64Float = 9223372036854775808.0
)

// Normalize returns the canonical representative of the value's semantic
// equality class: a float that is integral and within int64 range becomes
// the Equal int (Float(1) -> Int(1)); everything else is returned
// unchanged. Normalized values of Equal numerics are identical under ==,
// so Normalize is the right key for Go maps that must respect Equal (see
// the COUNT-distinct accumulator).
func (v Value) Normalize() Value {
	if v.kind == KindFloat {
		f := v.f
		if f == math.Trunc(f) && f >= minInt64Float && f < maxInt64Float {
			return Int(int64(f))
		}
	}
	return v
}

// ParseValue converts a text field into a Value using the cheapest type
// that round-trips: NULL, then int, then float, then string. A field
// starting with a double quote is always a string: well-formed quotes are
// unquoted, and a malformed quoted field (e.g. `"a"b`) keeps its interior
// verbatim with the outer quotes stripped — it never re-enters numeric
// parsing.
func ParseValue(s string) Value {
	if s == "" {
		return Str("")
	}
	if s == "NULL" {
		return Null()
	}
	if s[0] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return Str(u)
		}
		t := s[1:]
		if n := len(t); n > 0 && t[n-1] == '"' {
			t = t[:n-1]
		}
		return Str(t)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return Str(s)
}

// AppendKey appends a self-delimiting binary encoding of v to dst. Two
// values produce the same key exactly when they are Equal: distinct values
// never collide (kind byte + length-prefixed payload), and the Equal
// cross-kind numerics share one encoding — an integral in-range float is
// keyed as its Equal int (see Normalize), so Int(1) and Float(1) hash and
// join together just as Compare says they should. Hot paths reuse one
// destination buffer per worker and look keys up without materializing a
// string (see Index.LookupBytes, Relation.ContainsKey).
func (v Value) AppendKey(dst []byte) []byte {
	if v.kind == KindFloat {
		v = v.Normalize()
	}
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
		return dst
	case KindInt:
		u := uint64(v.i)
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(u>>shift))
		}
		return dst
	case KindFloat:
		u := floatBits(v.f)
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(u>>shift))
		}
		return dst
	default:
		n := len(v.s)
		dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		return append(dst, v.s...)
	}
}
