package storage

import (
	"math"
	"strings"
)

// Tuple is an ordered list of values; the i-th value belongs to the i-th
// column of the owning relation's schema.
type Tuple []Value

// floatBits returns an equality-preserving bit pattern for f, normalizing
// -0 to +0 so that two Equal floats always produce the same key.
func floatBits(f float64) uint64 {
	if f == 0 {
		f = 0 // collapse -0 and +0
	}
	return math.Float64bits(f)
}

// Key returns an injective string encoding of the tuple, suitable for use
// as a map key. Distinct tuples always produce distinct keys because each
// value encoding is self-delimiting.
func (t Tuple) Key() string {
	return string(t.AppendKey(make([]byte, 0, 16*len(t))))
}

// AppendKey appends the tuple's key encoding (see Key) to dst and returns
// the extended buffer. Probe loops reuse one buffer per worker to avoid a
// string allocation per tuple.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return dst
}

// KeyOn returns the key of the projection of t onto the given column
// positions, without materializing the projected tuple.
func (t Tuple) KeyOn(cols []int) string {
	return string(t.AppendKeyOn(make([]byte, 0, 16*len(cols)), cols))
}

// AppendKeyOn appends the key of the projection of t onto cols to dst,
// without materializing the projected tuple or a key string.
func (t Tuple) AppendKeyOn(dst []byte, cols []int) []byte {
	for _, c := range cols {
		dst = t[c].AppendKey(dst)
	}
	return dst
}

// Project returns a new tuple holding the values at the given positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Equal reports positional semantic equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare; shorter tuples
// order before longer ones with an equal prefix.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
