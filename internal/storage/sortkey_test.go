package storage

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sortKeyConsistent reports whether both values lie in the domain where
// Value.Compare is itself a consistent total order: everything except
// NaNs and numerics of magnitude > 2^53 (where Compare's float images
// alias distinct ints and transitivity already fails).
func sortKeyConsistent(v Value) bool {
	// Strict bounds: float64(2^53 + 1) rounds to exactly 2^53, so the
	// boundary itself already aliases a neighboring int.
	switch v.Kind() {
	case KindInt:
		f := v.AsFloat()
		return f > -(1<<53) && f < 1<<53
	case KindFloat:
		f := v.AsFloat()
		return !math.IsNaN(f) && f > -(1<<53) && f < 1<<53
	default:
		return true
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

func checkSortKeyPair(t *testing.T, v, w Value) {
	t.Helper()
	vk, wk := v.AppendSortKey(nil), w.AppendSortKey(nil)
	veq, weq := v.AppendKey(nil), w.AppendKey(nil)
	// Equality classes must be exactly AppendKey's.
	if bytes.Equal(vk, wk) != bytes.Equal(veq, weq) {
		t.Fatalf("sort-key equality disagrees with AppendKey classes: %v vs %v (sort %x/%x, eq %x/%x)",
			v, w, vk, wk, veq, weq)
	}
	// Byte order must agree with Compare on the consistent domain.
	if sortKeyConsistent(v) && sortKeyConsistent(w) {
		if got, want := sign(bytes.Compare(vk, wk)), sign(v.Compare(w)); got != want {
			t.Fatalf("bytes.Compare(sortKey(%v), sortKey(%v)) = %d, Value.Compare = %d", v, w, got, want)
		}
	}
	// Prefix-freeness: one value's key is never a proper prefix of
	// another's (required for bound-column-prefix matching on tuples).
	if !bytes.Equal(vk, wk) && (bytes.HasPrefix(vk, wk) || bytes.HasPrefix(wk, vk)) {
		t.Fatalf("sort keys not prefix-free: %v -> %x, %v -> %x", v, vk, w, wk)
	}
}

func checkPayloadRoundTrip(t *testing.T, v Value) {
	t.Helper()
	got, rest, err := DecodePayloadValue(v.AppendPayload(nil))
	if err != nil {
		t.Fatalf("payload round trip of %v: %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("payload of %v left %d bytes", v, len(rest))
	}
	if got != v && !(v.Kind() == KindFloat && got.Kind() == KindFloat &&
		math.Float64bits(got.AsFloat()) == math.Float64bits(v.AsFloat())) {
		t.Fatalf("payload round trip of %#v gave %#v", v, got)
	}
}

func TestSortKeyProperties(t *testing.T) {
	values := []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(42), Int(-42),
		Int(math.MaxInt64), Int(math.MinInt64),
		Int(1 << 53), Int(1<<53 + 1), Int(-(1 << 53)),
		Float(0), Float(math.Copysign(0, -1)), Float(1), Float(1.5), Float(-1.5),
		Float(math.Pi), Float(-math.Pi), Float(1e300), Float(-1e300),
		Float(math.Inf(1)), Float(math.Inf(-1)), Float(math.NaN()),
		Float(1 << 53), Float(9.3e18), // out of int64 range
		Str(""), Str("a"), Str("ab"), Str("b"),
		Str("a\x00"), Str("a\x00x"), Str("a\x01"), Str("a\x01\x02"),
		Str("\x00"), Str("\x01"), Str("\x02"), Str("\x00\xff"), Str("\xff"),
		Str("NULL"), Str("query flocks"),
	}
	for _, v := range values {
		checkPayloadRoundTrip(t, v)
		for _, w := range values {
			checkSortKeyPair(t, v, w)
		}
	}
}

// TestTuplePrefixMatching pins the bound-column-prefix contract: a row's
// sort key starts with a k-column prefix key exactly when the leading k
// columns are class-equal.
func TestTuplePrefixMatching(t *testing.T) {
	rows := []Tuple{
		{Str("a"), Int(1)},
		{Str("a"), Int(2)},
		{Str("a\x00x"), Int(1)},
		{Str("ab"), Int(1)},
		{Int(1), Str("a")},
		{Float(1), Str("b")}, // class-equal first column with the row above
		{Null(), Null()},
	}
	for _, probe := range rows {
		prefix := probe[:1].AppendSortKey(nil)
		for _, row := range rows {
			got := bytes.HasPrefix(row.AppendSortKey(nil), prefix)
			want := row[0].Equal(probe[0])
			if got != want {
				t.Fatalf("prefix match of %v against row %v: got %v, want %v", probe[0], row, got, want)
			}
		}
	}
}

// FuzzSortKey is the satellite fuzz target: round-trip exactness of the
// payload codec plus sort-key order/equality agreement with
// Value.Compare/AppendKey across mixed kinds. Seeds include every token
// of the examples corpus so the fuzzer starts from realistic values.
func FuzzSortKey(f *testing.F) {
	seed := func(s string) { f.Add(s, s, int64(len(s)), float64(len(s)), uint8(3), uint8(3)) }
	seed("")
	seed("beer")
	seed("a\x00b\x01c")
	f.Add("x", "y", int64(1<<53), 1.5, uint8(1), uint8(2))
	f.Add("", "", int64(-1), math.Copysign(0, -1), uint8(2), uint8(1))
	f.Add("NULL", "0", int64(0), 0.0, uint8(0), uint8(3))
	dir := filepath.Join("..", "..", "examples", "flocks")
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				continue
			}
			for _, tok := range strings.Fields(string(raw)) {
				seed(tok)
			}
		}
	}
	mk := func(kind uint8, s string, i int64, fl float64) Value {
		switch kind % 4 {
		case 0:
			return Null()
		case 1:
			return Int(i)
		case 2:
			return Float(fl)
		default:
			return Str(s)
		}
	}
	f.Fuzz(func(t *testing.T, s1, s2 string, i int64, fl float64, k1, k2 uint8) {
		v := mk(k1, s1, i, fl)
		w := mk(k2, s2, i+1, fl/3)
		checkPayloadRoundTrip(t, v)
		checkPayloadRoundTrip(t, w)
		checkSortKeyPair(t, v, w)

		// Tuple-level: payload codec round-trips the pair exactly, and
		// the concatenated sort key preserves the prefix property.
		tup := Tuple{v, w}
		back, err := DecodePayloadTuple(tup.AppendPayload(nil), 2)
		if err != nil {
			t.Fatalf("tuple payload round trip: %v", err)
		}
		for i := range tup {
			if math.Float64bits(floatOf(back[i])) != math.Float64bits(floatOf(tup[i])) || back[i].Kind() != tup[i].Kind() {
				t.Fatalf("tuple payload round trip of %#v gave %#v", tup, back)
			}
		}
		prefix := tup[:1].AppendSortKey(nil)
		if !bytes.HasPrefix(tup.AppendSortKey(nil), prefix) {
			t.Fatalf("tuple sort key does not extend its own prefix: %#v", tup)
		}
	})
}

// floatOf maps a value onto a comparable float image for the round-trip
// check (strings hash by content instead).
func floatOf(v Value) float64 {
	switch v.Kind() {
	case KindInt:
		return float64(v.AsInt())
	case KindFloat:
		return v.AsFloat()
	case KindString:
		return float64(fnv1a(v.AsString()))
	default:
		return 0
	}
}
