package storage

import (
	"fmt"
	"strings"
	"testing"
)

func benchRelation(rows int) *Relation {
	r := NewRelation("bench", "A", "B", "C")
	for i := 0; i < rows; i++ {
		r.Insert(Tuple{Int(int64(i % 997)), Str(fmt.Sprintf("v%d", i%313)), Float(float64(i % 101))})
	}
	return r
}

func BenchmarkRelationInsert(b *testing.B) {
	b.ReportAllocs()
	r := NewRelation("bench", "A", "B")
	for i := 0; i < b.N; i++ {
		r.Insert(Tuple{Int(int64(i)), Str("x")})
	}
}

func BenchmarkRelationInsertDuplicates(b *testing.B) {
	b.ReportAllocs()
	r := NewRelation("bench", "A", "B")
	t := Tuple{Int(1), Str("x")}
	r.Insert(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Insert(t)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	r := benchRelation(50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildIndex(r, []int{0})
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	r := benchRelation(50_000)
	ix := r.Index([]int{0})
	key := Tuple{Int(42)}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got []Tuple
		got, buf = ix.Lookup(key, buf)
		if len(got) == 0 {
			b.Fatal("no match")
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	t := Tuple{Int(123456), Str("some item name"), Float(2.5)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	r := benchRelation(5_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf strings.Builder
		if err := WriteCSV(r, &buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadCSV("bench", strings.NewReader(buf.String())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSurvivorFraction(b *testing.B) {
	r := benchRelation(50_000)
	db := NewDatabase()
	db.Add(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStats(db) // fresh stats: measure the uncached path
		if f := st.SurvivorFraction("bench", "A", 10); f <= 0 {
			b.Fatal("no survivors")
		}
	}
}
