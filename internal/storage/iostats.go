package storage

import "sync/atomic"

// IOStats counts the disk engine's I/O activity for one opened data
// directory. The counters are cumulative and monotone (like the
// dictionary's intern counters); the observability layer max-merges
// samples into RunReport. All fields are safe for concurrent use, and a
// nil *IOStats is a no-op sink so the in-memory engine pays nothing.
type IOStats struct {
	segmentsOpened  atomic.Int64
	indexBlocksRead atomic.Int64
	deltaRows       atomic.Int64
	bytesRead       atomic.Int64
}

func (s *IOStats) addSegmentOpened() {
	if s != nil {
		s.segmentsOpened.Add(1)
	}
}

func (s *IOStats) addIndexBlockRead() {
	if s != nil {
		s.indexBlocksRead.Add(1)
	}
}

func (s *IOStats) addDeltaRows(n int) {
	if s != nil && n > 0 {
		s.deltaRows.Add(int64(n))
	}
}

func (s *IOStats) addBytesRead(n int) {
	if s != nil && n > 0 {
		s.bytesRead.Add(int64(n))
	}
}

// SegmentsOpened returns the number of segment files opened.
func (s *IOStats) SegmentsOpened() int64 {
	if s == nil {
		return 0
	}
	return s.segmentsOpened.Load()
}

// IndexBlocksRead returns the number of sparse-index positioning reads
// (one per keyed lookup or range seek that consulted a segment index).
func (s *IOStats) IndexBlocksRead() int64 {
	if s == nil {
		return 0
	}
	return s.indexBlocksRead.Load()
}

// DeltaRows returns the number of delta-layer rows merged into iterator
// output.
func (s *IOStats) DeltaRows() int64 {
	if s == nil {
		return 0
	}
	return s.deltaRows.Load()
}

// BytesRead returns the number of segment bytes decoded.
func (s *IOStats) BytesRead() int64 {
	if s == nil {
		return 0
	}
	return s.bytesRead.Load()
}
