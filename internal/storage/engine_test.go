package storage

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// testDB builds a small mixed-kind database for engine round trips.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	baskets := NewRelation("baskets", "basket", "item")
	for b := 1; b <= 40; b++ {
		for i := 0; i < 1+(b%4); i++ {
			baskets.InsertValues(Int(int64(b)), Str([]string{"chips", "beer", "diapers", "salsa", "mustard"}[(b+i)%5]))
		}
	}
	db.Add(baskets)
	weights := NewRelation("weights", "item", "weight")
	weights.InsertValues(Str("beer"), Float(1.5))
	weights.InsertValues(Str("chips"), Float(0.5))
	weights.InsertValues(Str("diapers"), Int(2))
	weights.InsertValues(Str("odd\x00name"), Float(math.Pi))
	db.Add(weights)
	return db
}

func drain(t *testing.T, it Iterator) []Tuple {
	t.Helper()
	var out []Tuple
	for {
		batch, err := it.Next(7) // odd batch size to exercise refills
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		for _, tup := range batch {
			out = append(out, tup.Clone())
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func openBoth(t *testing.T, dir string) (*Database, *Database) {
	t.Helper()
	mem, _, err := OpenDir(dir, EngineMemory)
	if err != nil {
		t.Fatal(err)
	}
	disk, _, err := OpenDir(dir, EngineDisk)
	if err != nil {
		t.Fatal(err)
	}
	return mem, disk
}

func TestDirRoundTripBothEngines(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	mem, disk, err := func() (*Database, *Database, error) {
		m, _, err := OpenDir(dir, EngineMemory)
		if err != nil {
			return nil, nil, err
		}
		d, _, err := OpenDir(dir, EngineDisk)
		return m, d, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !mem.Resident() {
		t.Fatal("memory engine database should be resident")
	}
	if disk.Resident() {
		t.Fatal("disk engine database should not be resident")
	}
	for _, name := range db.Names() {
		orig := db.MustRelation(name)
		msrc, dsrc := mem.MustSource(name), disk.MustSource(name)
		if msrc.Len() != orig.Len() || dsrc.Len() != orig.Len() {
			t.Fatalf("%s: lens %d/%d, want %d", name, msrc.Len(), dsrc.Len(), orig.Len())
		}
		mrows, drows := drain(t, msrc.Scan()), drain(t, dsrc.Scan())
		if !reflect.DeepEqual(mrows, drows) {
			t.Fatalf("%s: scan order differs between engines\nmem:  %v\ndisk: %v", name, mrows, drows)
		}
		// Scan must be sorted (segment order) and equal the original set.
		for i := 1; i < len(drows); i++ {
			if drows[i-1].Compare(drows[i]) >= 0 {
				t.Fatalf("%s: disk scan not in sorted order at %d: %v >= %v", name, i, drows[i-1], drows[i])
			}
		}
		prel, err := dsrc.Pin()
		if err != nil {
			t.Fatal(err)
		}
		if !prel.Equal(orig) {
			t.Fatalf("%s: pinned disk relation differs from original", name)
		}
		// Exact statistics parity across original, memory, and disk.
		for _, col := range orig.Columns() {
			if m, d := msrc.DistinctCount(col), dsrc.DistinctCount(col); m != orig.DistinctCount(col) || d != m {
				t.Fatalf("%s.%s: distinct %d/%d, want %d", name, col, m, d, orig.DistinctCount(col))
			}
			ms, ds := append([]int(nil), msrc.GroupSizes(col)...), append([]int(nil), dsrc.GroupSizes(col)...)
			sort.Ints(ms)
			sort.Ints(ds)
			if !reflect.DeepEqual(ms, ds) {
				t.Fatalf("%s.%s: group sizes differ: %v vs %v", name, col, ms, ds)
			}
		}
	}
}

func TestLookupPrefixBothEngines(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	mem, disk := openBoth(t, dir)
	for _, probe := range []Value{Int(3), Int(12), Int(9999), Float(3)} {
		prefix := Tuple{probe}.AppendSortKey(nil)
		m := drain(t, mem.MustSource("baskets").LookupPrefix(1, prefix))
		d := drain(t, disk.MustSource("baskets").LookupPrefix(1, prefix))
		if !reflect.DeepEqual(m, d) {
			t.Fatalf("probe %v: prefix results differ\nmem:  %v\ndisk: %v", probe, m, d)
		}
		for _, row := range m {
			if !row[0].Equal(probe) {
				t.Fatalf("probe %v: got row %v", probe, row)
			}
		}
		// Cross-check against a full-scan filter.
		want := 0
		for _, row := range drain(t, mem.MustSource("baskets").Scan()) {
			if row[0].Equal(probe) {
				want++
			}
		}
		if len(m) != want {
			t.Fatalf("probe %v: %d rows, want %d", probe, len(m), want)
		}
	}
	// Range scan parity over a middle slice of the key space.
	lo := Tuple{Int(10)}.AppendSortKey(nil)
	hi := Tuple{Int(20)}.AppendSortKey(nil)
	m := drain(t, mem.MustSource("baskets").ScanRange(lo, hi))
	d := drain(t, disk.MustSource("baskets").ScanRange(lo, hi))
	if !reflect.DeepEqual(m, d) {
		t.Fatalf("range results differ\nmem:  %v\ndisk: %v", m, d)
	}
	if len(m) == 0 {
		t.Fatal("range scan returned nothing")
	}
}

func TestDeltaAppendAndReopen(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	_, handle, err := OpenDir(dir, EngineDisk)
	if err != nil {
		t.Fatal(err)
	}
	added := []Tuple{
		{Int(900), Str("beer")},
		{Int(900), Str("anchovies")},
	}
	if err := handle.AppendDelta("baskets", added, 7); err != nil {
		t.Fatal(err)
	}

	mem, disk := openBoth(t, dir)
	if mem.Version() != 7 || disk.Version() != 7 {
		t.Fatalf("versions %d/%d, want 7", mem.Version(), disk.Version())
	}
	base := db.MustRelation("baskets").Len()
	for _, d := range []*Database{mem, disk} {
		src := d.MustSource("baskets")
		if src.Len() != base+2 {
			t.Fatalf("len %d, want %d", src.Len(), base+2)
		}
		if !src.Keys().ContainsKey(Tuple{Int(900), Str("anchovies")}.AppendKey(nil)) {
			t.Fatal("delta row not visible through Keys()")
		}
		// Delta rows participate in lookups and statistics.
		rows := drain(t, src.LookupPrefix(1, Tuple{Int(900)}.AppendSortKey(nil)))
		if len(rows) != 2 {
			t.Fatalf("prefix lookup over delta: %d rows, want 2", len(rows))
		}
		if got, want := src.DistinctCount("basket"), db.MustRelation("baskets").DistinctCount("basket")+1; got != want {
			t.Fatalf("distinct baskets %d, want %d", got, want)
		}
	}
	mrows := drain(t, mem.MustSource("baskets").Scan())
	drows := drain(t, disk.MustSource("baskets").Scan())
	if !reflect.DeepEqual(mrows, drows) {
		t.Fatal("scan order differs between engines after delta")
	}
	if got := disk.IO().DeltaRows(); got == 0 {
		t.Fatal("delta-merge rows not counted")
	}
}

func TestWithDeltaCopyOnWrite(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	disk, _, err := OpenDir(dir, EngineDisk)
	if err != nil {
		t.Fatal(err)
	}
	src := disk.MustSource("baskets").(*DiskRelation)
	next, added, err := src.WithDelta([]Tuple{
		{Int(1), Str("beer")}, // duplicate of a base row: must be dropped
		{Int(777), Str("beer")},
		{Int(777), Str("beer")}, // duplicate within the batch
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || !added[0].Equal(Tuple{Int(777), Str("beer")}) {
		t.Fatalf("added %v, want just (777, beer)", added)
	}
	if src.Len()+1 != next.Len() {
		t.Fatalf("lens %d -> %d", src.Len(), next.Len())
	}
	if src.Keys().ContainsKey(Tuple{Int(777), Str("beer")}.AppendKey(nil)) {
		t.Fatal("old view sees the new row")
	}
	if !next.Keys().ContainsKey(Tuple{Int(777), Str("beer")}.AppendKey(nil)) {
		t.Fatal("new view misses the new row")
	}
}

func TestSegmentIOCounters(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	disk, handle, err := OpenDir(dir, EngineDisk)
	if err != nil {
		t.Fatal(err)
	}
	stats := handle.IO()
	if stats != disk.IO() {
		t.Fatal("database and dir handle disagree on IOStats")
	}
	if stats.SegmentsOpened() != int64(len(db.Names())) {
		t.Fatalf("segments opened %d, want %d", stats.SegmentsOpened(), len(db.Names()))
	}
	before := stats.BytesRead()
	drain(t, disk.MustSource("baskets").Scan())
	if stats.BytesRead() <= before {
		t.Fatal("scan did not count bytes read")
	}
	blocksBefore := stats.IndexBlocksRead()
	drain(t, disk.MustSource("baskets").LookupPrefix(1, Tuple{Int(30)}.AppendSortKey(nil)))
	if stats.IndexBlocksRead() <= blocksBefore {
		t.Fatal("positioned lookup did not count an index block read")
	}
}

func TestHashIndexParityAcrossEngines(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	mem, disk := openBoth(t, dir)
	mix := mem.MustSource("baskets").HashIndex([]int{1}, 1)
	dix := disk.MustSource("baskets").HashIndex([]int{1}, 4)
	var buf []byte
	for _, item := range []Value{Str("beer"), Str("chips"), Str("nope")} {
		var mrows, drows []Tuple
		mrows, buf = mix.Lookup(Tuple{item}, buf)
		drows, _ = dix.Lookup(Tuple{item}, nil)
		if len(mrows) != len(drows) {
			t.Fatalf("%v: %d vs %d rows", item, len(mrows), len(drows))
		}
		for i := range mrows {
			if !mrows[i].Equal(drows[i]) {
				t.Fatalf("%v: bucket order differs at %d: %v vs %v", item, i, mrows[i], drows[i])
			}
		}
	}
}

func TestDictPersistence(t *testing.T) {
	db := testDB(t)
	want := db.Dict()
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	mem, _, err := OpenDir(dir, EngineMemory)
	if err != nil {
		t.Fatal(err)
	}
	got := mem.Dict()
	if got.Len() != want.Len() {
		t.Fatalf("dict len %d, want %d", got.Len(), want.Len())
	}
	for id := 0; id < want.Len(); id++ {
		gv, wv := got.Value(uint32(id)), want.Value(uint32(id))
		if gv.Kind() != wv.Kind() || !gv.Equal(wv) {
			t.Fatalf("dict id %d: %#v vs %#v", id, gv, wv)
		}
	}
	if !got.OrderPreserved(1, uint32(want.Len()-1)) {
		t.Fatal("persisted dictionary lost its order-preserved range")
	}
}

// TestIndexLookupAllocs pins the satellite-3 consolidation: the shared
// keyed-lookup core must keep the byte-key probe at 0 allocs/op on both
// single- and multi-shard indexes.
func TestIndexLookupAllocs(t *testing.T) {
	rel := NewRelation("r", "a", "b")
	for i := 0; i < 4096; i++ {
		rel.InsertValues(Int(int64(i%97)), Int(int64(i)))
	}
	for _, workers := range []int{1, 4} {
		ix := rel.IndexParallel([]int{0}, workers)
		buf := Tuple{Int(13)}.AppendKey(nil)
		key := Tuple{Int(13)}.KeyOn([]int{0})
		if n := testing.AllocsPerRun(200, func() {
			if len(ix.LookupBytes(buf)) == 0 {
				t.Fatal("probe missed")
			}
		}); n != 0 {
			t.Fatalf("LookupBytes(workers=%d): %v allocs/op, want 0", workers, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			if len(ix.LookupKey(key)) == 0 {
				t.Fatal("probe missed")
			}
		}); n != 0 {
			t.Fatalf("LookupKey(workers=%d): %v allocs/op, want 0", workers, n)
		}
	}
}
