package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Sortable key encoding for the on-disk engine.
//
// AppendKey (value.go) is the engine's *equality* encoding: injective per
// semantic class, but its byte order has nothing to do with Value.Compare.
// Segment files need keys whose byte order IS value order, so that sorted
// runs, binary search, and bound-column-prefix lookups all work directly
// on bytes. AppendSortKey is that encoding. Its contract:
//
//   - Equality classes are exactly AppendKey's: sortKey(v) == sortKey(w)
//     iff appendKey(v) == appendKey(w) (integral in-range floats collapse
//     onto their Equal int, as in the dictionary).
//   - bytes.Compare(sortKey(v), sortKey(w)) agrees with v.Compare(w)
//     wherever Compare itself is consistent — i.e. for all strings and
//     nulls, and for numerics of magnitude <= 2^53 (beyond that, Compare's
//     float images already alias distinct ints, and the sort key is the
//     *stricter* order: ints break float-image ties exactly).
//   - Each value's encoding is prefix-free against any continuation that
//     is itself a value encoding, so the concatenated tuple key supports
//     bound-column-prefix matching: a row key starts with the k-column
//     prefix key iff its first k columns are class-equal to the prefix.
//
// Layout per value (first byte is the rank tag, mirroring Value.rank):
//
//	null    0x01
//	numeric 0x02 . 8-byte big-endian float sort image . 8-byte residue
//	string  0x03 . body with 0x00->0x01 0x01, 0x01->0x01 0x02 . 0x00
//
// The numeric residue is the offset-binary int64 for values in the int
// class and a fixed sentinel for floats that stay floats after Normalize
// (non-integral, out of int64 range, or NaN); it makes huge ints that
// share one float image order exactly, and keeps the int/float classes of
// one image distinct without breaking the primary byte order.
const (
	sortTagNull   = 0x01
	sortTagNum    = 0x02
	sortTagString = 0x03

	stringEsc        = 0x01
	stringTerminator = 0x00

	// floatResidueSentinel is the residue of a value that stays a float
	// after Normalize. It equals the offset-binary encoding of int64 0,
	// which cannot collide: the only numeric with the same float image as
	// Int(0) is 0.0 itself, and that normalizes to the int class.
	floatResidueSentinel = uint64(1) << 63
)

// floatSortBits maps a float64 onto a uint64 whose unsigned order is the
// float order: positive floats get the sign bit set (ordering after all
// negatives), negative floats are bit-complemented (so more-negative
// orders lower). The classic IEEE-754 total-order trick.
func floatSortBits(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// AppendSortKey appends the order-preserving encoding of v to dst. See the
// package comment above for the contract.
func (v Value) AppendSortKey(dst []byte) []byte {
	if v.kind == KindFloat {
		v = v.Normalize()
	}
	switch v.kind {
	case KindNull:
		return append(dst, sortTagNull)
	case KindInt, KindFloat:
		dst = append(dst, sortTagNum)
		dst = binary.BigEndian.AppendUint64(dst, floatSortBits(v.AsFloat()))
		residue := floatResidueSentinel
		if v.kind == KindInt {
			residue = uint64(v.i) ^ (1 << 63) // offset binary: order = unsigned order
		}
		return binary.BigEndian.AppendUint64(dst, residue)
	default:
		dst = append(dst, sortTagString)
		for i := 0; i < len(v.s); i++ {
			switch b := v.s[i]; b {
			case 0x00:
				dst = append(dst, stringEsc, 0x01)
			case 0x01:
				dst = append(dst, stringEsc, 0x02)
			default:
				dst = append(dst, b)
			}
		}
		return append(dst, stringTerminator)
	}
}

// AppendSortKey appends the concatenated sort keys of the tuple's values.
// Because each value encoding is prefix-free, the result of a k-value
// prefix is a byte prefix of the full key exactly when the classes match.
func (t Tuple) AppendSortKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendSortKey(dst)
	}
	return dst
}

// AppendSortKeyOn appends the sort key of the projection of t onto cols.
func (t Tuple) AppendSortKeyOn(dst []byte, cols []int) []byte {
	for _, c := range cols {
		dst = t[c].AppendSortKey(dst)
	}
	return dst
}

// Exact payload codec: the row representation stored beside the sort key
// in segments and delta files. Unlike both key encodings it preserves the
// stored value bit-exactly — kind included — so a relation read back from
// disk is == -identical to the one written (dup checks and the columnar
// representative rule are kind-sensitive).

// AppendPayload appends the exact binary form of v to dst.
func (v Value) AppendPayload(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
		return dst
	case KindInt:
		return binary.LittleEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		// Raw bits, no -0 collapsing: the payload must round-trip the
		// stored representative exactly.
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	default:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	}
}

// DecodePayloadValue decodes one value written by AppendPayload and
// returns it with the remaining bytes.
func DecodePayloadValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("storage: truncated value payload")
	}
	kind, b := Kind(b[0]), b[1:]
	switch kind {
	case KindNull:
		return Null(), b, nil
	case KindInt:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("storage: truncated int payload")
		}
		return Int(int64(binary.LittleEndian.Uint64(b))), b[8:], nil
	case KindFloat:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("storage: truncated float payload")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case KindString:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return Value{}, nil, fmt.Errorf("storage: truncated string payload")
		}
		b = b[sz:]
		return Str(string(b[:n])), b[n:], nil
	default:
		return Value{}, nil, fmt.Errorf("storage: unknown payload kind %d", kind)
	}
}

// AppendPayload appends the exact binary form of every value of t.
func (t Tuple) AppendPayload(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendPayload(dst)
	}
	return dst
}

// DecodePayloadTuple decodes an arity-value tuple written by
// Tuple.AppendPayload; the payload must be exactly consumed.
func DecodePayloadTuple(b []byte, arity int) (Tuple, error) {
	t := make(Tuple, arity)
	var err error
	for i := 0; i < arity; i++ {
		if t[i], b, err = DecodePayloadValue(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after %d-value payload", len(b), arity)
	}
	return t, nil
}
