package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSV loads a relation from CSV. The first record is the header giving
// column names; every field is converted with ParseValue (NULL, then ints,
// then floats, then strings; a quoted field is always a string). Duplicate
// rows collapse under set semantics.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate arity ourselves for a better message
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header for %q: %w", name, err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	rel := NewRelation(name, header...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: reading CSV for %q: %w", name, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("storage: %q line %d: %d fields, want %d", name, line, len(rec), len(header))
		}
		t := make(Tuple, len(rec))
		for i, f := range rec {
			t[i] = ParseValue(strings.TrimSpace(f))
		}
		rel.Insert(t)
	}
	return rel, nil
}

// ReadCSVFile loads a relation from a CSV file; the relation name is the
// file's base name without extension.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f)
}

// WriteCSV writes the relation (header + sorted tuples) as CSV. Fields are
// rendered with Value.Literal so the export re-imports type-stably: string
// values are quoted (Str("123") comes back a string, not an int, and
// Str("NULL") comes back a string, not a null), numbers and NULL are bare.
func WriteCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Columns()); err != nil {
		return fmt.Errorf("storage: writing CSV header for %q: %w", rel.Name(), err)
	}
	rec := make([]string, rel.Arity())
	for _, t := range rel.Sorted() {
		for i, v := range t {
			rec[i] = v.Literal()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: writing CSV for %q: %w", rel.Name(), err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the relation to the named file.
func WriteCSVFile(rel *Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := WriteCSV(rel, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDir loads every *.csv file in dir into a fresh database.
func LoadDir(dir string) (*Database, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	db := NewDatabase()
	for _, p := range paths {
		rel, err := ReadCSVFile(p)
		if err != nil {
			return nil, err
		}
		db.Add(rel)
	}
	return db, nil
}
