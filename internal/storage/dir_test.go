package storage

import (
	"testing"
)

// TestCreateDirSyncsCatalogPublish is the regression test for the
// ingest-durability bug: CreateDir wrote segments, dictionary, and
// catalog without a single fsync, so a crash after it returned could
// lose the whole acknowledged ingest — or worse, leave a catalog whose
// bytes reached disk referencing segments whose bytes did not. The
// catalog publish must sync the file and then the directory, which also
// persists the segment and dictionary entries created before it.
func TestCreateDirSyncsCatalogPublish(t *testing.T) {
	db := NewDatabase()
	rel := NewRelation("r", "A", "B")
	rel.Insert(Tuple{Int(1), Int(2)})
	db.Add(rel)
	dir := t.TempDir()

	calls := 0
	orig := fsyncDir
	fsyncDir = func(path string) error {
		if path != dir {
			t.Errorf("fsyncDir(%q), want the data directory %q", path, dir)
		}
		calls++
		return orig(path)
	}
	defer func() { fsyncDir = orig }()

	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("CreateDir returned without syncing the data directory: a crash would lose the acknowledged ingest")
	}
}

// TestAppendDeltaSyncsDirectoryEntry is the regression test for the
// mutate-durability bug: AppendDelta fsynced the delta file's bytes but
// never the directory, so a crash after the acknowledgement could lose a
// freshly created delta file's *name* — and with it the whole batch.
// The fix must sync the directory exactly when the file is new; appends
// to an existing delta file (whose entry already survived a sync) must
// not pay for it again.
func TestAppendDeltaSyncsDirectoryEntry(t *testing.T) {
	db := NewDatabase()
	rel := NewRelation("r", "A", "B")
	rel.Insert(Tuple{Int(1), Int(2)})
	db.Add(rel)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	_, handle, err := OpenDir(dir, EngineMemory)
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	orig := fsyncDir
	fsyncDir = func(path string) error {
		if path != dir {
			t.Errorf("fsyncDir(%q), want the data directory %q", path, dir)
		}
		calls++
		return orig(path)
	}
	defer func() { fsyncDir = orig }()

	if err := handle.AppendDelta("r", []Tuple{{Int(3), Int(4)}}, 2); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fresh delta file: directory synced %d times, want 1 (a crash would lose the new entry)", calls)
	}
	if err := handle.AppendDelta("r", []Tuple{{Int(5), Int(6)}}, 3); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("existing delta file: directory synced %d times total, want still 1", calls)
	}

	// Restart durability: a fresh open (either engine) must serve both
	// acknowledged batches at the bumped version.
	for _, engine := range []Engine{EngineMemory, EngineDisk} {
		re, _, err := OpenDir(dir, engine)
		if err != nil {
			t.Fatal(err)
		}
		if re.Version() != 3 {
			t.Fatalf("%v: reopened version %d, want 3", engine, re.Version())
		}
		got, err := re.Relation("r")
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 3 {
			t.Fatalf("%v: reopened with %d rows, want 3", engine, got.Len())
		}
		for _, tp := range []Tuple{{Int(3), Int(4)}, {Int(5), Int(6)}} {
			if !got.Contains(tp) {
				t.Fatalf("%v: acknowledged row %v missing after restart", engine, tp)
			}
		}
	}
}

// TestAppendDeltaFsyncDirFailure: a directory-sync failure must fail the
// append (the caller then refuses to publish the bumped version) rather
// than acknowledge a batch that may not survive.
func TestAppendDeltaFsyncDirFailure(t *testing.T) {
	db := NewDatabase()
	rel := NewRelation("r", "A")
	rel.Insert(Tuple{Int(1)})
	db.Add(rel)
	dir := t.TempDir()
	if err := CreateDir(dir, db); err != nil {
		t.Fatal(err)
	}
	_, handle, err := OpenDir(dir, EngineMemory)
	if err != nil {
		t.Fatal(err)
	}
	orig := fsyncDir
	fsyncDir = func(string) error { return errSyncFailed }
	defer func() { fsyncDir = orig }()
	if err := handle.AppendDelta("r", []Tuple{{Int(2)}}, 2); err != errSyncFailed {
		t.Fatalf("AppendDelta with failing directory sync: err = %v, want %v", err, errSyncFailed)
	}
}

var errSyncFailed = errTest("directory sync failed")

type errTest string

func (e errTest) Error() string { return string(e) }
