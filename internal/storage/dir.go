package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Data-directory layout — the canonical persistent format both engines
// open:
//
//	CATALOG.json   relation schemas, row counts, per-column group-size
//	               histograms, and the data version at ingest
//	DICT           the interned value dictionary, in ID order
//	<name>.seg     one sorted segment per relation (see segment.go)
//	<name>.delta   append-only post-ingest batches (see below), optional
//
// The memory engine materializes segments + deltas into *Relation at open
// (in segment order, then delta order); the disk engine serves them via
// DiskRelation. Because both read the same files in the same order, the
// two engines present identical iteration order — the property the
// bit-identical evaluation oracle rests on.
const (
	catalogFile = "CATALOG.json"
	dictFile    = "DICT"
	segExt      = ".seg"
	deltaExt    = ".delta"

	dictMagic  = "QFDICT1\n"
	deltaMagic = "QFDELTA\n"
)

type histBucket struct {
	Size  int `json:"size"`
	Count int `json:"count"`
}

type dirRelation struct {
	Name       string                  `json:"name"`
	Columns    []string                `json:"columns"`
	Rows       int                     `json:"rows"`
	Histograms map[string][]histBucket `json:"histograms,omitempty"`
}

type dirCatalog struct {
	Format    int           `json:"format"`
	Version   uint64        `json:"version"`
	Relations []dirRelation `json:"relations"`
}

// Dir is the handle to an opened (or created) data directory: the mutate
// path appends delta batches through it, and the serving layer stores
// sidecar state (prepared flocks) under Path.
type Dir struct {
	path   string
	engine Engine
	io     *IOStats
	arity  map[string]int
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Engine returns the engine the directory was opened with.
func (d *Dir) Engine() Engine { return d.engine }

// IO returns the directory's I/O counters (never nil).
func (d *Dir) IO() *IOStats { return d.io }

// CreateDir ingests db into a fresh data directory: one sorted segment
// per relation, exact per-column group-size histograms in the catalog,
// and the interned dictionary. Existing segment/catalog files are
// overwritten; delta files are removed (the ingested state is the new
// base).
func CreateDir(dir string, db *Database) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cat := dirCatalog{Format: 1, Version: db.Version()}
	for _, name := range db.Names() {
		rel, err := db.Relation(name)
		if err != nil {
			return err
		}
		sorted := sortedBySortKey(rel.Tuples())
		if err := writeSegment(filepath.Join(dir, name+segExt), name, rel.Columns(), sorted); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(dir, name + deltaExt)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		hists := make(map[string][]histBucket, rel.Arity())
		for _, col := range rel.Columns() {
			hists[col] = bucketize(rel.GroupSizes(col))
		}
		cat.Relations = append(cat.Relations, dirRelation{
			Name:       name,
			Columns:    rel.Columns(),
			Rows:       rel.Len(),
			Histograms: hists,
		})
	}
	if err := writeDict(filepath.Join(dir, dictFile), db.Dict()); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	// The catalog is the publish point of the whole ingest: it, the
	// segments and dictionary it references (synced by their writers),
	// and all the fresh directory entries must be durable before
	// CreateDir acknowledges. WriteFileSync fsyncs the file and then the
	// directory, which persists every entry created above.
	return WriteFileSync(filepath.Join(dir, catalogFile), append(raw, '\n'), 0o644)
}

// bucketize compresses a group-size multiset into sorted (size, count)
// buckets — lossless for statistics (the sizes themselves, not which
// group has which size, are what the planner consumes).
func bucketize(sizes []int) []histBucket {
	counts := make(map[int]int)
	for _, s := range sizes {
		counts[s]++
	}
	out := make([]histBucket, 0, len(counts))
	for s, c := range counts {
		out = append(out, histBucket{Size: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

func unbucketize(buckets []histBucket) []int {
	n := 0
	for _, b := range buckets {
		n += b.Count
	}
	out := make([]int, 0, n)
	for _, b := range buckets {
		for i := 0; i < b.Count; i++ {
			out = append(out, b.Size)
		}
	}
	return out
}

// OpenDir opens a data directory with the given engine and returns the
// database plus the directory handle for subsequent delta appends.
func OpenDir(dir string, engine Engine) (*Database, *Dir, error) {
	raw, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return nil, nil, fmt.Errorf("storage: opening data dir %s: %w", dir, err)
	}
	var cat dirCatalog
	if err := json.Unmarshal(raw, &cat); err != nil {
		return nil, nil, fmt.Errorf("storage: bad catalog in %s: %w", dir, err)
	}
	stats := &IOStats{}
	db := NewDatabase()
	db.SetIO(stats)
	version := cat.Version
	anyDelta := false
	handle := &Dir{path: dir, engine: engine, io: stats, arity: make(map[string]int)}

	for _, rc := range cat.Relations {
		handle.arity[rc.Name] = len(rc.Columns)
		deltaRows, deltaVersion, err := readDelta(filepath.Join(dir, rc.Name+deltaExt), len(rc.Columns))
		if err != nil {
			return nil, nil, err
		}
		if deltaVersion > version {
			version = deltaVersion
		}
		if len(deltaRows) > 0 {
			anyDelta = true
		}
		switch engine {
		case EngineDisk:
			sr, err := openSegment(filepath.Join(dir, rc.Name+segExt), stats)
			if err != nil {
				return nil, nil, err
			}
			drel := &DiskRelation{
				seg:       sr,
				name:      rc.Name,
				cols:      rc.Columns,
				io:        stats,
				delta:     deltaRows,
				deltaSeen: make(map[string]struct{}, len(deltaRows)),
				hist:      make(map[string][]int, len(rc.Histograms)),
			}
			var buf []byte
			for _, t := range deltaRows {
				buf = t.AppendKey(buf[:0])
				drel.deltaSeen[string(buf)] = struct{}{}
			}
			for col, buckets := range rc.Histograms {
				drel.hist[col] = unbucketize(buckets)
			}
			db.AddSource(drel)
		default:
			rel := NewRelation(rc.Name, rc.Columns...)
			sr, err := openSegment(filepath.Join(dir, rc.Name+segExt), stats)
			if err != nil {
				return nil, nil, err
			}
			it := sr.scan()
			for {
				batch, err := it.Next(1024)
				if err != nil {
					sr.close()
					return nil, nil, err
				}
				if batch == nil {
					break
				}
				for _, t := range batch {
					rel.Insert(t)
				}
			}
			if err := sr.close(); err != nil {
				return nil, nil, err
			}
			for _, t := range deltaRows {
				rel.Insert(t)
			}
			db.Add(rel)
		}
	}
	db.SetVersion(version)

	// The persisted dictionary matches the base segments exactly; with a
	// delta present the memory engine rebuilds lazily instead so delta
	// values intern order-preserved. The disk engine runs the row path
	// (no dictionary) and skips the load either way.
	if engine == EngineMemory && !anyDelta {
		if d, err := readDictFile(filepath.Join(dir, dictFile)); err == nil && d != nil {
			db.seedDict(d)
		} else if err != nil {
			return nil, nil, err
		}
	}
	return db, handle, nil
}

// AppendDelta durably appends one mutation batch for the named relation:
// the rows land in <name>.delta stamped with the post-mutation data
// version, and are merged back at the next OpenDir (either engine) or by
// the DiskRelation views already holding them.
func (d *Dir) AppendDelta(rel string, rows []Tuple, version uint64) error {
	if len(rows) == 0 {
		return nil
	}
	if arity, ok := d.arity[rel]; ok {
		for _, t := range rows {
			if len(t) != arity {
				return fmt.Errorf("storage: arity mismatch appending %d-tuple to %q(%d cols)", len(t), rel, arity)
			}
		}
	}
	path := filepath.Join(d.path, rel+deltaExt)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if fi.Size() == 0 {
		if _, err := w.WriteString(deltaMagic); err != nil {
			return err
		}
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(rows)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	var payload []byte
	for _, t := range rows {
		payload = t.AppendPayload(payload[:0])
		if _, err := w.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(payload)))]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// A freshly created delta file is only durable once its directory
	// entry is: fsync(file) persists the bytes, but a crash before the
	// directory itself reaches disk loses the *name*, and with it the
	// whole acknowledged batch. Existing files skip this — their entry
	// already survived an earlier sync.
	if fi.Size() == 0 {
		return fsyncDir(d.path)
	}
	return nil
}

// fsyncDir syncs a directory so a newly created entry in it survives a
// crash. It is a seam (package variable) so the durability tests can
// observe the call without pulling the power for real.
var fsyncDir = func(path string) error {
	dir, err := os.Open(path)
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// SyncDir fsyncs a directory so a freshly created or renamed entry in it
// survives a crash. Sidecar writers outside this package (the serving
// layer's prepared-flock snapshot) use it after an atomic rename.
func SyncDir(path string) error { return fsyncDir(path) }

// WriteFileSync is os.WriteFile with durability: the bytes are fsynced
// before close and the parent directory after, so neither the content
// nor the entry can be lost to a crash once the call returns. Publish
// points (the ingest catalog, serving-layer sidecars) go through this.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsyncDir(filepath.Dir(path))
}

// readDelta loads every batch of a delta file; a missing file is an empty
// delta. Returns the rows in append order and the highest batch version.
func readDelta(path string, arity int) ([]Tuple, uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, fmt.Errorf("storage: delta %s: %w", path, err)
	}
	if string(magic) != deltaMagic {
		return nil, 0, fmt.Errorf("storage: delta %s: bad magic %q", path, magic)
	}
	var rows []Tuple
	var version uint64
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err == io.EOF {
			return rows, version, nil
		} else if err != nil {
			return nil, 0, fmt.Errorf("storage: delta %s: %w", path, err)
		}
		if v := binary.LittleEndian.Uint64(hdr[:8]); v > version {
			version = v
		}
		count := binary.LittleEndian.Uint32(hdr[8:])
		var payload []byte
		for i := uint32(0); i < count; i++ {
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, fmt.Errorf("storage: delta %s: %w", path, err)
			}
			payload = readInto(payload, int(n))
			if _, err := io.ReadFull(r, payload); err != nil {
				return nil, 0, fmt.Errorf("storage: delta %s: %w", path, err)
			}
			t, err := DecodePayloadTuple(payload, arity)
			if err != nil {
				return nil, 0, fmt.Errorf("storage: delta %s: %w", path, err)
			}
			rows = append(rows, t)
		}
	}
}

// writeDict persists the dictionary: values in ID order (null implied at
// 0) plus the order-preserved length.
func writeDict(path string, d *Dict) error {
	vals, sortedLen := d.snapshotValues()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(dictMagic); err != nil {
		f.Close()
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	if _, err := w.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(vals)))]); err != nil {
		f.Close()
		return err
	}
	if _, err := w.Write(scratch[:binary.PutUvarint(scratch[:], uint64(sortedLen))]); err != nil {
		f.Close()
		return err
	}
	var payload []byte
	for _, v := range vals[1:] { // skip the implied null at ID 0
		payload = v.AppendPayload(payload[:0])
		if _, err := w.Write(payload); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readDictFile loads a persisted dictionary; a missing file yields
// (nil, nil) so callers fall back to the lazy build.
func readDictFile(path string) (*Dict, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(dictMagic) || string(raw[:len(dictMagic)]) != dictMagic {
		return nil, fmt.Errorf("storage: dict %s: bad magic", path)
	}
	b := raw[len(dictMagic):]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("storage: dict %s: truncated", path)
	}
	b = b[n:]
	sortedLen, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("storage: dict %s: truncated", path)
	}
	b = b[n:]
	vals := make([]Value, 1, count)
	vals[0] = Null()
	for uint64(len(vals)) < count {
		var v Value
		if v, b, err = DecodePayloadValue(b); err != nil {
			return nil, fmt.Errorf("storage: dict %s: %w", path, err)
		}
		vals = append(vals, v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("storage: dict %s: %d trailing bytes", path, len(b))
	}
	return newDictFromValues(vals, uint32(sortedLen)), nil
}
