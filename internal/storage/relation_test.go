package storage

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleKeyInjective(t *testing.T) {
	// Tuples that differ in content or boundary placement must key apart.
	a := Tuple{Str("ab"), Str("c")}
	b := Tuple{Str("a"), Str("bc")}
	if a.Key() == b.Key() {
		t.Error("boundary-shifted tuples collided")
	}
	c := Tuple{Int(1), Int(2)}
	d := Tuple{Int(1), Int(2)}
	if c.Key() != d.Key() {
		t.Error("equal tuples keyed differently")
	}
}

func TestTupleKeyInjectiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Tuple {
			n := r.Intn(4)
			tp := make(Tuple, n)
			for i := range tp {
				tp[i] = randomValue(r)
			}
			return tp
		}
		a, b := mk(), mk()
		// Key equality must coincide with semantic (Equal) equality: the
		// encoding is kind-insensitive for Equal numerics, so Tuple{Int(1)}
		// and Tuple{Float(1)} share a key.
		if (a.Key() == b.Key()) != a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestTupleProjectAndKeyOn(t *testing.T) {
	tp := Tuple{Int(1), Str("x"), Float(2.5)}
	p := tp.Project([]int{2, 0})
	want := Tuple{Float(2.5), Int(1)}
	if !p.Equal(want) {
		t.Errorf("Project = %v, want %v", p, want)
	}
	if tp.KeyOn([]int{2, 0}) != want.Key() {
		t.Error("KeyOn disagrees with Project().Key()")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{Int(1)}, Tuple{Int(2)}, -1},
		{Tuple{Int(1)}, Tuple{Int(1), Int(0)}, -1},
		{Tuple{Str("b")}, Tuple{Str("a"), Int(9)}, 1},
		{Tuple{}, Tuple{}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation("baskets", "BID", "Item")
	if !r.InsertValues(Int(1), Str("beer")) {
		t.Error("first insert reported duplicate")
	}
	if r.InsertValues(Int(1), Str("beer")) {
		t.Error("duplicate insert reported added")
	}
	r.InsertValues(Int(1), Str("diapers"))
	r.InsertValues(Int(2), Str("beer"))
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if !r.Contains(Tuple{Int(1), Str("beer")}) {
		t.Error("Contains missed an inserted tuple")
	}
	if r.Contains(Tuple{Int(9), Str("beer")}) {
		t.Error("Contains found a missing tuple")
	}
}

func TestRelationArityPanics(t *testing.T) {
	r := NewRelation("r", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	r.Insert(Tuple{Int(1)})
}

func TestNewRelationValidation(t *testing.T) {
	for _, cols := range [][]string{{"A", "A"}, {""}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRelation(%v): expected panic", cols)
				}
			}()
			NewRelation("bad", cols...)
		}()
	}
}

func TestRelationIndex(t *testing.T) {
	r := NewRelation("baskets", "BID", "Item")
	r.InsertValues(Int(1), Str("beer"))
	r.InsertValues(Int(1), Str("diapers"))
	r.InsertValues(Int(2), Str("beer"))

	ix := r.IndexOn("BID")
	got, _ := ix.Lookup(Tuple{Int(1)}, nil)
	if len(got) != 2 {
		t.Errorf("Lookup(BID=1) returned %d tuples, want 2", len(got))
	}
	if n := ix.GroupCount(); n != 2 {
		t.Errorf("GroupCount = %d, want 2", n)
	}
	if r.DistinctCount("Item") != 2 {
		t.Errorf("DistinctCount(Item) = %d, want 2", r.DistinctCount("Item"))
	}

	// Index invalidation on insert.
	r.InsertValues(Int(3), Str("relish"))
	ix2 := r.IndexOn("BID")
	if ix2.GroupCount() != 3 {
		t.Errorf("post-insert GroupCount = %d, want 3", ix2.GroupCount())
	}
}

func TestRelationSortedAndEqual(t *testing.T) {
	a := NewRelation("a", "X")
	b := NewRelation("b", "X")
	for _, v := range []int64{3, 1, 2} {
		a.InsertValues(Int(v))
	}
	for _, v := range []int64{2, 3, 1} {
		b.InsertValues(Int(v))
	}
	if !a.Equal(b) {
		t.Error("same-set relations not Equal")
	}
	sorted := a.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Compare(sorted[i]) >= 0 {
			t.Error("Sorted not in order")
		}
	}
	b.InsertValues(Int(99))
	if a.Equal(b) {
		t.Error("different-size relations Equal")
	}
}

func TestRelationRenameSharesData(t *testing.T) {
	r := NewRelation("r", "A")
	r.InsertValues(Int(1))
	v := r.Rename("view", []string{"Z"})
	if v.Name() != "view" || v.Columns()[0] != "Z" || v.Len() != 1 {
		t.Errorf("Rename view wrong: %v", v)
	}
}

func TestRelationCloneIndependent(t *testing.T) {
	r := NewRelation("r", "A")
	r.InsertValues(Int(1))
	c := r.Clone()
	c.InsertValues(Int(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("Clone not independent: r=%d c=%d", r.Len(), c.Len())
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("baskets", "BID", "Item")
	db.Add(r)
	got, err := db.Relation("baskets")
	if err != nil || got != r {
		t.Fatalf("Relation lookup failed: %v", err)
	}
	if _, err := db.Relation("nope"); err == nil {
		t.Error("missing relation should error")
	}
	if !db.Has("baskets") || db.Has("nope") {
		t.Error("Has wrong")
	}

	clone := db.Clone()
	clone.Add(NewRelation("tmp", "X"))
	if db.Has("tmp") {
		t.Error("Clone leaked a relation into the original")
	}
	clone.Remove("tmp")
	if clone.Has("tmp") {
		t.Error("Remove failed")
	}
	if len(db.Names()) != 1 || db.Names()[0] != "baskets" {
		t.Errorf("Names = %v", db.Names())
	}
}

func TestStats(t *testing.T) {
	r := NewRelation("exhibits", "P", "S")
	// symptom s1 -> 3 patients, s2 -> 1 patient
	r.InsertValues(Int(1), Str("s1"))
	r.InsertValues(Int(2), Str("s1"))
	r.InsertValues(Int(3), Str("s1"))
	r.InsertValues(Int(4), Str("s2"))
	db := NewDatabase()
	db.Add(r)
	st := NewStats(db)

	if st.Rows("exhibits") != 4 {
		t.Errorf("Rows = %d", st.Rows("exhibits"))
	}
	if st.Distinct("exhibits", "S") != 2 {
		t.Errorf("Distinct = %d", st.Distinct("exhibits", "S"))
	}
	if got := st.SurvivorFraction("exhibits", "S", 2); got != 0.5 {
		t.Errorf("SurvivorFraction = %g, want 0.5", got)
	}
	if got := st.TupleSurvivorFraction("exhibits", "S", 2); got != 0.75 {
		t.Errorf("TupleSurvivorFraction = %g, want 0.75", got)
	}
	// cached path returns the same
	if got := st.SurvivorFraction("exhibits", "S", 2); got != 0.5 {
		t.Errorf("cached SurvivorFraction = %g", got)
	}
	if st.Rows("absent") != 0 || st.Distinct("absent", "X") != 0 {
		t.Error("absent relation stats should be 0")
	}
	q := st.GroupSizeQuantiles("exhibits", "S", 2)
	if len(q) != 3 || q[0] != 1 || q[2] != 3 {
		t.Errorf("quantiles = %v", q)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation("t", "A", "B")
	r.InsertValues(Int(1), Str("x"))
	r.InsertValues(Int(2), Str("hello, world"))
	r.InsertValues(Float(2.5), Str(""))

	var buf strings.Builder
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got.Dump(), r.Dump())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("short row should error")
	}
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
}
