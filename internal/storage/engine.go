package storage

import (
	"bytes"
	"fmt"
	"sort"
)

// Engine selects a storage backend for a data directory (see OpenDir).
type Engine int

const (
	// EngineMemory materializes every relation into the in-memory
	// *Relation structures at open time — the default, and the only
	// engine for plain CSV loading.
	EngineMemory Engine = iota
	// EngineDisk serves relations from sorted segment files on demand:
	// scans, prefix lookups, and range scans stream from disk and only
	// the delta layer and caches are resident.
	EngineDisk
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineMemory:
		return "memory"
	case EngineDisk:
		return "disk"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine converts a flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "memory":
		return EngineMemory, nil
	case "disk":
		return EngineDisk, nil
	default:
		return 0, fmt.Errorf("storage: unknown engine %q (have memory, disk)", s)
	}
}

// Iterator is a pull cursor over tuples. Next returns up to max tuples and
// nil at end of stream; the returned batch is only valid until the next
// call (in-memory sources hand out windows of their backing array, disk
// sources reuse decode state). Close releases any underlying resources and
// is required even after an error.
type Iterator interface {
	Next(max int) ([]Tuple, error)
	Close() error
}

// KeyProber answers tuple-membership probes against a source using the
// equality key encoding (Tuple.AppendKey). The zero-allocation contract of
// Relation.ContainsKey carries over.
type KeyProber interface {
	ContainsKey(key []byte) bool
}

// RelationSource is the pluggable access-path interface every storage
// engine provides per relation. The physical executor and the planner
// consume only this interface for base relations; *Relation (memory) and
// *DiskRelation (segment files + delta) are the two implementations.
//
// Iteration order is part of the contract: Scan yields a fixed order (the
// relation's insertion order; for disk sources, segment order followed by
// delta-append order), and LookupPrefix/ScanRange yield subsequences of an
// order consistent with the sort-key encoding. Bit-identical evaluation
// across engines relies on both engines of one data directory agreeing on
// Scan order.
type RelationSource interface {
	Name() string
	Columns() []string
	Arity() int
	Len() int
	ColumnIndex(col string) int

	// Scan streams every tuple.
	Scan() Iterator
	// LookupPrefix streams the tuples whose first ncols columns encode
	// (via Tuple.AppendSortKey) to exactly prefix, in sort order.
	LookupPrefix(ncols int, prefix []byte) Iterator
	// ScanRange streams the tuples whose full sort key k satisfies
	// lo <= k < hi (nil lo = from start, nil hi = to end), in sort order.
	ScanRange(lo, hi []byte) Iterator

	// HashIndex returns a hash index on the given column positions,
	// building (and caching) it on first use. For non-resident sources
	// this pins the index — callers that must stay out-of-core should
	// stream via LookupPrefix instead.
	HashIndex(cols []int, workers int) *Index
	// Keys returns a membership prober over full-tuple equality keys.
	Keys() KeyProber

	// Statistics, exact by contract: the planner's decisions must not
	// depend on which engine serves the data.
	DistinctCount(col string) int
	GroupSizes(col string) []int

	// Resident returns the in-memory relation and true when the source
	// is fully resident; Pin materializes a non-resident source (for
	// legacy consumers: the materializing oracle, sampling).
	Resident() (*Relation, bool)
	Pin() (*Relation, error)
}

// sliceIterator streams windows of an in-memory tuple slice: no copying,
// no allocation beyond the iterator itself.
type sliceIterator struct {
	tuples []Tuple
	pos    int
}

func (it *sliceIterator) Next(max int) ([]Tuple, error) {
	if it.pos >= len(it.tuples) {
		return nil, nil
	}
	end := it.pos + max
	if max <= 0 || end > len(it.tuples) {
		end = len(it.tuples)
	}
	batch := it.tuples[it.pos:end]
	it.pos = end
	return batch, nil
}

func (it *sliceIterator) Close() error { return nil }

// NewSliceIterator returns an Iterator over an in-memory tuple slice (used
// by tests and by the delta layer).
func NewSliceIterator(tuples []Tuple) Iterator { return &sliceIterator{tuples: tuples} }

// ForEach drains the iterator, calling fn for every tuple, and closes it.
// The tuple is only valid for the duration of the call (see Iterator).
func ForEach(it Iterator, fn func(Tuple) error) error {
	defer it.Close()
	for {
		batch, err := it.Next(0)
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		for _, t := range batch {
			if err := fn(t); err != nil {
				return err
			}
		}
	}
}

// --- *Relation as a RelationSource ---

// Scan streams the relation's tuples in insertion order.
func (r *Relation) Scan() Iterator { return &sliceIterator{tuples: r.tuples} }

// LookupPrefix streams the tuples whose leading ncols columns sort-encode
// to prefix. The in-memory relation has no sort order to exploit, so this
// filters a full scan; it exists to satisfy the access-path interface with
// identical results to the disk engine (order: insertion order, which for
// dir-opened databases is sort order).
func (r *Relation) LookupPrefix(ncols int, prefix []byte) Iterator {
	return &filterIterator{it: r.Scan(), keep: func(t Tuple, buf []byte) ([]byte, bool) {
		buf = t.AppendSortKeyOn(buf[:0], prefixCols(ncols))
		return buf, bytes.Equal(buf, prefix)
	}}
}

// ScanRange streams the tuples whose full sort key lies in [lo, hi). Like
// LookupPrefix this filters a scan; dir-opened relations are already in
// sort order so the result order matches the disk engine's.
func (r *Relation) ScanRange(lo, hi []byte) Iterator {
	return &filterIterator{it: r.Scan(), keep: func(t Tuple, buf []byte) ([]byte, bool) {
		buf = t.AppendSortKey(buf[:0])
		if lo != nil && bytes.Compare(buf, lo) < 0 {
			return buf, false
		}
		if hi != nil && bytes.Compare(buf, hi) >= 0 {
			return buf, false
		}
		return buf, true
	}}
}

// HashIndex implements RelationSource via the cached lazy index build.
func (r *Relation) HashIndex(cols []int, workers int) *Index {
	return r.IndexParallel(cols, workers)
}

// Keys returns the relation itself: ContainsKey is already the prober.
func (r *Relation) Keys() KeyProber { return r }

// GroupSizes returns the group sizes of the named column, sorted
// ascending (callers treat the result as a multiset; the order is
// canonical so both engines present the same slice).
func (r *Relation) GroupSizes(col string) []int {
	p := r.ColumnIndex(col)
	if p < 0 {
		panic(fmt.Sprintf("storage: relation %q has no column %q", r.name, col))
	}
	return r.Index([]int{p}).GroupSizes()
}

// Resident reports that an in-memory relation is, indeed, resident.
func (r *Relation) Resident() (*Relation, bool) { return r, true }

// Pin returns the relation itself; it is already materialized.
func (r *Relation) Pin() (*Relation, error) { return r, nil }

// filterIterator applies a predicate over an underlying iterator, reusing
// one key buffer across rows.
type filterIterator struct {
	it   Iterator
	keep func(t Tuple, buf []byte) ([]byte, bool)
	buf  []byte
	out  []Tuple
}

func (f *filterIterator) Next(max int) ([]Tuple, error) {
	if max <= 0 {
		max = 1024
	}
	f.out = f.out[:0]
	for len(f.out) < max {
		batch, err := f.it.Next(max)
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		for _, t := range batch {
			var ok bool
			if f.buf, ok = f.keep(t, f.buf); ok {
				f.out = append(f.out, t)
			}
		}
	}
	if len(f.out) == 0 {
		return nil, nil
	}
	return f.out, nil
}

func (f *filterIterator) Close() error { return f.it.Close() }

// prefixCols returns [0, 1, ..., n-1]; small n dominates, so a tiny cache
// of shared slices avoids per-call allocation.
var leadingCols = func() [][]int {
	out := make([][]int, 9)
	for n := range out {
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		out[n] = cols
	}
	return out
}()

func prefixCols(n int) []int {
	if n < len(leadingCols) {
		return leadingCols[n]
	}
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// SortedBySortKey returns the relation's tuples ordered by their sort-key
// encoding (ties impossible: set semantics means distinct classes). This
// is the segment write order.
func sortedBySortKey(tuples []Tuple) []Tuple {
	type keyed struct {
		key []byte
		t   Tuple
	}
	ks := make([]keyed, len(tuples))
	for i, t := range tuples {
		ks[i] = keyed{key: t.AppendSortKey(nil), t: t}
	}
	sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i].key, ks[j].key) < 0 })
	out := make([]Tuple, len(ks))
	for i, k := range ks {
		out[i] = k.t
	}
	return out
}
