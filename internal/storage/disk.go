package storage

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// DiskRelation is the on-disk RelationSource: a sorted base segment plus
// an in-memory view of the append-only delta layer. Scans stream the base
// from disk and append the delta rows; keyed lookups position through the
// segment's sparse index. Like *Relation, a DiskRelation is immutable
// once published — WithDelta returns a new view instead of mutating, so
// the serving layer's copy-on-write snapshot discipline carries over
// unchanged.
type DiskRelation struct {
	seg  *segmentReader
	name string
	cols []string
	io   *IOStats

	// delta holds the rows appended after the segment was written, in
	// append order; deltaSeen is their equality-key membership set.
	delta     []Tuple
	deltaSeen map[string]struct{}

	// hist is the persisted per-column group-size multiset (base rows
	// only), valid while the delta is empty.
	hist map[string][]int

	mu      sync.Mutex
	indexes map[string]*Index
	groups  map[string][]int // col -> exact group sizes incl. delta
	keys    map[string]struct{}

	pinOnce sync.Once
	pinned  *Relation
	pinErr  error
}

// Name returns the relation name.
func (d *DiskRelation) Name() string { return d.name }

// Columns returns the column names.
func (d *DiskRelation) Columns() []string { return d.cols }

// Arity returns the column count.
func (d *DiskRelation) Arity() int { return len(d.cols) }

// Len returns the total row count (base segment plus delta).
func (d *DiskRelation) Len() int { return d.seg.rows + len(d.delta) }

// ColumnIndex returns the position of the named column, or -1.
func (d *DiskRelation) ColumnIndex(col string) int {
	for i, c := range d.cols {
		if c == col {
			return i
		}
	}
	return -1
}

// concatIterator streams its inputs in order. countDelta marks the tail
// iterator's rows as delta-merge rows for the I/O counters.
type concatIterator struct {
	its        []Iterator
	countDelta []bool
	io         *IOStats
	pos        int
}

func (c *concatIterator) Next(max int) ([]Tuple, error) {
	for c.pos < len(c.its) {
		batch, err := c.its[c.pos].Next(max)
		if err != nil {
			return nil, err
		}
		if batch != nil {
			if c.countDelta[c.pos] {
				c.io.addDeltaRows(len(batch))
			}
			return batch, nil
		}
		c.pos++
	}
	return nil, nil
}

func (c *concatIterator) Close() error {
	var err error
	for _, it := range c.its {
		if cerr := it.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (d *DiskRelation) withDeltaTail(base Iterator, deltaRows []Tuple) Iterator {
	if len(deltaRows) == 0 {
		return base
	}
	return &concatIterator{
		its:        []Iterator{base, NewSliceIterator(deltaRows)},
		countDelta: []bool{false, true},
		io:         d.io,
	}
}

// Scan streams base rows in segment (sort) order, then delta rows in
// append order — the same total order the memory engine materializes from
// this data directory.
func (d *DiskRelation) Scan() Iterator {
	return d.withDeltaTail(d.seg.scan(), d.delta)
}

// LookupPrefix streams the rows whose leading ncols columns sort-encode to
// prefix: one positioned segment read plus a filter over the delta.
func (d *DiskRelation) LookupPrefix(ncols int, prefix []byte) Iterator {
	var tail []Tuple
	if len(d.delta) > 0 {
		var buf []byte
		for _, t := range d.delta {
			buf = t.AppendSortKeyOn(buf[:0], prefixCols(ncols))
			if bytes.Equal(buf, prefix) {
				tail = append(tail, t)
			}
		}
	}
	return d.withDeltaTail(d.seg.lookupPrefix(prefix), tail)
}

// ScanRange streams the rows whose full sort key lies in [lo, hi).
func (d *DiskRelation) ScanRange(lo, hi []byte) Iterator {
	var tail []Tuple
	if len(d.delta) > 0 {
		var buf []byte
		for _, t := range d.delta {
			buf = t.AppendSortKey(buf[:0])
			if lo != nil && bytes.Compare(buf, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(buf, hi) >= 0 {
				continue
			}
			tail = append(tail, t)
		}
	}
	return d.withDeltaTail(d.seg.scanRange(lo, hi), tail)
}

// HashIndex builds (and caches) a hash index over the given columns by
// streaming the source once. The build pins the index in memory — the
// price of hash-join probes against a disk relation; bucket contents keep
// scan order, matching the memory engine's insertion-order buckets.
func (d *DiskRelation) HashIndex(cols []int, workers int) *Index {
	key := indexKey(cols)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.indexes == nil {
		d.indexes = make(map[string]*Index)
	}
	if ix, ok := d.indexes[key]; ok {
		return ix
	}
	ix := &Index{
		cols:   append([]int(nil), cols...),
		shards: []map[string][]Tuple{make(map[string][]Tuple, d.Len())},
	}
	if err := d.forEach(func(t Tuple) {
		k := t.KeyOn(cols)
		ix.shards[0][k] = append(ix.shards[0][k], t)
	}); err != nil {
		panic(err) // corrupted segment mid-build; surfaced like an arity bug
	}
	d.indexes[key] = ix
	return ix
}

// forEach streams every row through fn.
func (d *DiskRelation) forEach(fn func(Tuple)) error {
	it := d.Scan()
	defer it.Close()
	for {
		batch, err := it.Next(1024)
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		for _, t := range batch {
			fn(t)
		}
	}
}

// Keys returns a membership prober over full-tuple equality keys. The key
// set is built lazily with one streaming scan and then pinned (keys only,
// not tuples); anti-joins and plan Checks probe it allocation-free.
func (d *DiskRelation) Keys() KeyProber {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.keys == nil {
		keys := make(map[string]struct{}, d.Len())
		var buf []byte
		if err := d.forEach(func(t Tuple) {
			buf = t.AppendKey(buf[:0])
			keys[string(buf)] = struct{}{}
		}); err != nil {
			panic(err)
		}
		d.keys = keys
	}
	return keySet(d.keys)
}

type keySet map[string]struct{}

func (s keySet) ContainsKey(key []byte) bool {
	_, ok := s[string(key)]
	return ok
}

// DistinctCount returns the exact number of distinct value classes in the
// named column.
func (d *DiskRelation) DistinctCount(col string) int { return len(d.GroupSizes(col)) }

// GroupSizes returns the exact group-size multiset of the named column,
// sorted ascending. With an empty delta it is served from the persisted
// catalog histogram (stored sorted); otherwise it is recomputed with one
// streaming scan and cached. Exactness and order are a contract: the
// planner's decisions must be engine-independent, and a map-ordered
// multiset would leak nondeterminism into anything that indexes it.
func (d *DiskRelation) GroupSizes(col string) []int {
	p := d.ColumnIndex(col)
	if p < 0 {
		panic(fmt.Sprintf("storage: relation %q has no column %q", d.name, col))
	}
	if len(d.delta) == 0 {
		if sizes, ok := d.hist[col]; ok {
			return sizes
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.groups == nil {
		d.groups = make(map[string][]int)
	}
	if sizes, ok := d.groups[col]; ok {
		return sizes
	}
	counts := make(map[string]int)
	var buf []byte
	if err := d.forEach(func(t Tuple) {
		buf = t[p].AppendKey(buf[:0])
		counts[string(buf)]++
	}); err != nil {
		panic(err)
	}
	sizes := make([]int, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	d.groups[col] = sizes
	return sizes
}

// Resident reports that a disk relation is not resident.
func (d *DiskRelation) Resident() (*Relation, bool) { return nil, false }

// Pin materializes the source into an in-memory Relation (cached). Legacy
// consumers — the materializing oracle, the planner's sampling pass — use
// this; the streaming executor never does.
func (d *DiskRelation) Pin() (*Relation, error) {
	d.pinOnce.Do(func() {
		rel := NewRelation(d.name, d.cols...)
		d.pinErr = d.forEach(func(t Tuple) { rel.Insert(t) })
		if d.pinErr == nil {
			d.pinned = rel
		}
	})
	return d.pinned, d.pinErr
}

// contains reports whether the source already holds the tuple.
func (d *DiskRelation) contains(t Tuple) (bool, error) {
	var arr [64]byte
	eq := t.AppendKey(arr[:0])
	if _, ok := d.deltaSeen[string(eq)]; ok {
		return true, nil
	}
	return d.seg.contains(t.AppendSortKey(arr[:0]))
}

// WithDelta returns a new view with the given tuples appended to the
// delta layer (duplicates of existing rows are dropped, preserving set
// semantics) plus the list of rows actually added, in append order. The
// base segment and its reader are shared; caches start fresh.
func (d *DiskRelation) WithDelta(tuples []Tuple) (*DiskRelation, []Tuple, error) {
	out := &DiskRelation{
		seg:       d.seg,
		name:      d.name,
		cols:      d.cols,
		io:        d.io,
		delta:     d.delta,
		deltaSeen: make(map[string]struct{}, len(d.deltaSeen)+len(tuples)),
		hist:      d.hist,
	}
	for k := range d.deltaSeen {
		out.deltaSeen[k] = struct{}{}
	}
	var added []Tuple
	for _, t := range tuples {
		if len(t) != len(d.cols) {
			return nil, nil, fmt.Errorf("storage: arity mismatch appending %d-tuple to %q(%d cols)",
				len(t), d.name, len(d.cols))
		}
		dup, err := out.contains(t)
		if err != nil {
			return nil, nil, err
		}
		if dup {
			continue
		}
		out.deltaSeen[string(t.AppendKey(nil))] = struct{}{}
		added = append(added, t)
	}
	// Copy-on-append: the shared prefix must not be mutated under views
	// still serving the previous snapshot.
	out.delta = append(d.delta[:len(d.delta):len(d.delta)], added...)
	return out, added, nil
}
