package storage

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVFileRoundTripAndLoadDir(t *testing.T) {
	dir := t.TempDir()
	a := NewRelation("alpha", "X", "Y")
	a.InsertValues(Int(1), Str("one"))
	a.InsertValues(Int(2), Str("two, with comma"))
	b := NewRelation("beta", "Z")
	b.InsertValues(Float(2.5))
	for _, rel := range []*Relation{a, b} {
		if err := WriteCSVFile(rel, filepath.Join(dir, rel.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}

	loadedA, err := ReadCSVFile(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if loadedA.Name() != "alpha" || !loadedA.Equal(a) {
		t.Errorf("ReadCSVFile mismatch:\n%s", loadedA.Dump())
	}

	db, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Has("alpha") || !db.Has("beta") {
		t.Fatalf("LoadDir relations: %v", db.Names())
	}
	if !db.MustRelation("beta").Equal(b) {
		t.Error("beta content mismatch")
	}
	if s := db.String(); !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Errorf("Database.String = %q", s)
	}

	// Error paths.
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
	if err := WriteCSVFile(a, filepath.Join(dir, "nodir", "x", "a.csv")); err == nil {
		t.Error("unwritable path should error")
	}
	if _, err := LoadDir(filepath.Join(dir, "empty-nonexistent")); err != nil {
		// Glob on a nonexistent dir returns no matches, not an error.
		t.Errorf("LoadDir on missing dir: %v", err)
	}
}

func TestMustRelationPanics(t *testing.T) {
	db := NewDatabase()
	defer func() {
		if recover() == nil {
			t.Error("MustRelation on missing name should panic")
		}
	}()
	db.MustRelation("ghost")
}

func TestAccessorsSmoke(t *testing.T) {
	r := NewRelation("r", "A", "B")
	r.InsertValues(Int(1), Str("x"))
	if len(r.Tuples()) != 1 {
		t.Error("Tuples")
	}
	ix := r.IndexOn("A")
	if len(ix.Columns()) != 1 || ix.Columns()[0] != 0 {
		t.Errorf("Index.Columns = %v", ix.Columns())
	}
	key := Tuple{Int(1)}.Key()
	if len(ix.LookupKey(key)) != 1 {
		t.Error("LookupKey")
	}
	if r.String() == "" || r.Dump() == "" {
		t.Error("String/Dump empty")
	}
	tp := r.Tuples()[0]
	c := tp.Clone()
	c[0] = Int(99)
	if tp[0] != Int(1) {
		t.Error("Clone not independent")
	}
	if tp.String() != "(1, x)" {
		t.Errorf("Tuple.String = %q", tp.String())
	}
	if !tp.Equal(Tuple{Int(1), Str("x")}) || tp.Equal(Tuple{Int(1)}) {
		t.Error("Tuple.Equal")
	}
	if Value(Int(3)).String() != "3" || Null().String() != "NULL" {
		t.Error("Value.String")
	}
}

func TestIndexOnMissingColumnPanics(t *testing.T) {
	r := NewRelation("r", "A")
	defer func() {
		if recover() == nil {
			t.Error("IndexOn missing column should panic")
		}
	}()
	r.IndexOn("Nope")
}

func TestDistinctCountMissingColumnPanics(t *testing.T) {
	r := NewRelation("r", "A")
	defer func() {
		if recover() == nil {
			t.Error("DistinctCount missing column should panic")
		}
	}()
	r.DistinctCount("Nope")
}

func TestRenameArityPanics(t *testing.T) {
	r := NewRelation("r", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("Rename with wrong column count should panic")
		}
	}()
	r.Rename("v", []string{"OnlyOne"})
}
