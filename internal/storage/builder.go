package storage

import "fmt"

// Builder accumulates a set of distinct tuples with no locking. It is the
// write side of the parallel execution contract (see the Relation doc
// comment): a Relation must never be Inserted into concurrently, so each
// worker of a partitioned operator fills its own Builder and a single
// thread merges them afterwards with Relation.AbsorbBuilder. The key
// computed for each tuple during Add is kept alongside it, so the merge
// re-checks membership without re-encoding any tuple.
type Builder struct {
	tuples []Tuple
	keys   []string
	seen   map[string]struct{}
	buf    []byte
}

// NewBuilder returns an empty builder. sizeHint, when positive, pre-sizes
// the internal containers for roughly that many tuples.
func NewBuilder(sizeHint int) *Builder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Builder{
		tuples: make([]Tuple, 0, sizeHint),
		keys:   make([]string, 0, sizeHint),
		seen:   make(map[string]struct{}, sizeHint),
	}
}

// Add appends t if the builder does not already hold it and reports
// whether it was added. The tuple is stored as-is; callers must not mutate
// it afterwards.
func (b *Builder) Add(t Tuple) bool {
	b.buf = t.AppendKey(b.buf[:0])
	if _, dup := b.seen[string(b.buf)]; dup {
		return false
	}
	k := string(b.buf)
	b.seen[k] = struct{}{}
	b.keys = append(b.keys, k)
	b.tuples = append(b.tuples, t)
	return true
}

// Len returns the number of distinct tuples added so far.
func (b *Builder) Len() int { return len(b.tuples) }

// AbsorbBuilder inserts every tuple of b into r, in b's insertion order,
// skipping tuples r already holds. It reuses the keys b computed during
// Add, so no tuple is re-encoded. Like Insert, this is a mutation: it must
// not run concurrently with any other access to r.
//
// Merging per-worker builders in worker order reproduces the insertion
// order a sequential scan would have produced, because workers process
// contiguous chunks of the input: set semantics makes the answer
// independent of merge order, and order-stability on top keeps downstream
// scans (and traces) deterministic for any worker count.
func (r *Relation) AbsorbBuilder(b *Builder) {
	for i, t := range b.tuples {
		if len(t) != len(r.cols) {
			panic(fmt.Sprintf("storage: arity mismatch absorbing %d-tuple into %q(%d cols)",
				len(t), r.name, len(r.cols)))
		}
		k := b.keys[i]
		if _, dup := r.seen[k]; dup {
			continue
		}
		r.seen[k] = struct{}{}
		r.tuples = append(r.tuples, t)
	}
	if len(b.tuples) > 0 {
		r.dropIndexes()
	}
}
