package storage

// This file holds the relation-side caches of the columnar interned
// executor: the column-major ID image of a relation, an ID-keyed
// membership set (the columnar ContainsKey), and ID-keyed hash indexes
// (the columnar Index). All three are lazy, cached per relation under
// the same mutex as the byte-keyed indexes, and dropped together on any
// mutation. Keys are the dictionary IDs of internal/storage.Dict, so key
// equality is exactly Value.Equal — the same classes the byte AppendKey
// encoding produces.

// internedState caches ID-space derivatives of one relation for one
// dictionary. A relation normally meets exactly one dictionary (its
// database's); a different dictionary invalidates the cache.
type internedState struct {
	dict *Dict
	cols [][]uint32          // column-major IDs; nil until built
	set  *IDSet              // full-tuple membership; nil until built
	idx  map[string]*IDIndex // indexKey(cols) -> index
}

// interned returns the relation's cache for d, resetting it when the
// cached dictionary differs. Callers hold r.mu.
func (r *Relation) interned(d *Dict) *internedState {
	if r.internedCache == nil || r.internedCache.dict != d {
		r.internedCache = &internedState{dict: d, idx: make(map[string]*IDIndex)}
	}
	return r.internedCache
}

// InternedColumns returns the relation's tuples as one []uint32 per
// column (row i of column j is the dictionary ID of tuple i's j-th
// value), interning values not yet in d. The result is cached until the
// relation mutates; the returned slices must not be modified.
func (r *Relation) InternedColumns(d *Dict) [][]uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.interned(d)
	if st.cols == nil {
		n := len(r.tuples)
		st.cols = make([][]uint32, len(r.cols))
		for j := range st.cols {
			col := make([]uint32, n)
			for i, t := range r.tuples {
				col[i] = d.Intern(t[j])
			}
			st.cols[j] = col
		}
	}
	return st.cols
}

// IDSet returns (building and caching on first use) the membership set
// of the relation's tuples in ID space — the columnar twin of
// ContainsKey. Safe for concurrent readers once built.
func (r *Relation) IDSet(d *Dict) *IDSet {
	cols := r.InternedColumns(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.interned(d)
	if st.set == nil {
		st.set = newIDSet(cols, len(r.tuples))
	}
	return st.set
}

// IDIndex returns (building and caching on first use) a hash index from
// the IDs of the given column positions to the matching row numbers, in
// insertion order — the columnar twin of Index. Safe for concurrent
// readers once built.
func (r *Relation) IDIndex(d *Dict, cols []int) *IDIndex {
	idCols := r.InternedColumns(d)
	key := indexKey(cols)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.interned(d)
	if ix, ok := st.idx[key]; ok {
		return ix
	}
	ix := buildIDIndex(idCols, cols, len(r.tuples))
	st.idx[key] = ix
	return ix
}

// packIDs appends the little-endian 4-byte encoding of each ID to dst —
// the generic map key of the >2-column ID paths.
func packIDs(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst
}

// IDSet is a membership set over ID tuples. One and two column sets key
// on the IDs directly (no bytes, no hashing beyond the map's); wider
// tuples key on the packed 4-byte-per-ID encoding.
type IDSet struct {
	arity int
	m1    map[uint32]struct{}
	m2    map[uint64]struct{}
	mn    map[string]struct{}
}

func newIDSet(cols [][]uint32, n int) *IDSet {
	s := &IDSet{arity: len(cols)}
	switch len(cols) {
	case 1:
		s.m1 = make(map[uint32]struct{}, n)
		for _, id := range cols[0] {
			s.m1[id] = struct{}{}
		}
	case 2:
		s.m2 = make(map[uint64]struct{}, n)
		for i := 0; i < n; i++ {
			s.m2[key2(cols[0][i], cols[1][i])] = struct{}{}
		}
	default:
		s.mn = make(map[string]struct{}, n)
		buf := make([]byte, 0, 4*len(cols))
		row := make([]uint32, len(cols))
		for i := 0; i < n; i++ {
			for j := range cols {
				row[j] = cols[j][i]
			}
			buf = packIDs(buf[:0], row)
			if _, ok := s.mn[string(buf)]; !ok {
				s.mn[string(buf)] = struct{}{}
			}
		}
	}
	return s
}

// key2 packs two IDs into one uint64 map key.
func key2(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// Contains reports membership of the ID tuple (len(ids) must equal the
// set's arity). Allocation-free for any arity up to 16 columns.
func (s *IDSet) Contains(ids []uint32) bool {
	switch s.arity {
	case 1:
		_, ok := s.m1[ids[0]]
		return ok
	case 2:
		_, ok := s.m2[key2(ids[0], ids[1])]
		return ok
	default:
		var arr [64]byte
		key := packIDs(arr[:0], ids)
		_, ok := s.mn[string(key)]
		return ok
	}
}

// IDIndex maps the IDs of a column subset to the row numbers holding
// them, rows in insertion order — lookups therefore enumerate matches
// exactly like the byte-keyed Index's buckets.
type IDIndex struct {
	nkeys int
	m1    map[uint32][]int32
	m2    map[uint64][]int32
	mn    map[string][]int32
}

func buildIDIndex(idCols [][]uint32, cols []int, n int) *IDIndex {
	ix := &IDIndex{nkeys: len(cols)}
	switch len(cols) {
	case 1:
		ix.m1 = make(map[uint32][]int32, n)
		c := idCols[cols[0]]
		for i := 0; i < n; i++ {
			ix.m1[c[i]] = append(ix.m1[c[i]], int32(i))
		}
	case 2:
		ix.m2 = make(map[uint64][]int32, n)
		a, b := idCols[cols[0]], idCols[cols[1]]
		for i := 0; i < n; i++ {
			k := key2(a[i], b[i])
			ix.m2[k] = append(ix.m2[k], int32(i))
		}
	default:
		ix.mn = make(map[string][]int32, n)
		buf := make([]byte, 0, 4*len(cols))
		row := make([]uint32, len(cols))
		for i := 0; i < n; i++ {
			for j, c := range cols {
				row[j] = idCols[c][i]
			}
			buf = packIDs(buf[:0], row)
			ix.mn[string(buf)] = append(ix.mn[string(buf)], int32(i))
		}
	}
	return ix
}

// Lookup returns the row numbers whose indexed columns equal the given
// key IDs (in index-column order). The returned slice must not be
// mutated. Allocation-free for keys up to 16 columns.
func (ix *IDIndex) Lookup(ids []uint32) []int32 {
	switch ix.nkeys {
	case 1:
		return ix.m1[ids[0]]
	case 2:
		return ix.m2[key2(ids[0], ids[1])]
	default:
		var arr [64]byte
		key := packIDs(arr[:0], ids)
		return ix.mn[string(key)]
	}
}

// GroupCount returns the number of distinct keys in the index.
func (ix *IDIndex) GroupCount() int {
	switch ix.nkeys {
	case 1:
		return len(ix.m1)
	case 2:
		return len(ix.m2)
	default:
		return len(ix.mn)
	}
}
