// Package par holds the tiny worker-pool primitives the parallel execution
// layer is built from. Operators (hash join, anti-join, group-by, index
// build) are coarse-grained — one call processes thousands of tuples — so
// the pool spawns fresh goroutines per operation rather than keeping
// long-lived workers; at the row counts where parallelism is engaged the
// spawn cost is noise.
//
// The Workers knob convention, shared by every layer that exposes one
// (eval.Options, core.EvalOptions, planner.DynamicOptions, the -workers
// command flags): 0 means one worker per available CPU (GOMAXPROCS), 1
// forces the sequential code path, and any larger value is used as given.
package par

import (
	"runtime"
	"sync"
)

// Resolve normalizes a Workers knob: 0 (unset) becomes one worker per
// available CPU; values below 1 clamp to 1 (sequential).
func Resolve(n int) int {
	switch {
	case n == 0:
		return runtime.GOMAXPROCS(0)
	case n < 1:
		return 1
	default:
		return n
	}
}

// Chunks reports how many contiguous chunks Run will split n items into
// for the given worker count: min(workers, n), at least 1.
func Chunks(n, workers int) int {
	if workers < 1 {
		return 1
	}
	if n < workers {
		if n < 1 {
			return 1
		}
		return n
	}
	return workers
}

// Run partitions [0, n) into Chunks(n, workers) contiguous ranges and calls
// body(w, lo, hi) for each, concurrently when more than one chunk exists.
// w is the chunk index (dense, 0-based); ranges are balanced to within one
// item and cover [0, n) exactly, so per-chunk results merged in chunk order
// reproduce the sequential processing order. Run returns when every body
// call has returned. body must not touch shared mutable state.
func Run(n, workers int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := Chunks(n, workers)
	if chunks == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for w := 0; w < chunks; w++ {
		lo, hi := w*n/chunks, (w+1)*n/chunks
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
