package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(Event{Op: OpJoin, Desc: "x"})
	if c.Len() != 0 || c.Events() != nil {
		t.Error("nil collector should record nothing")
	}
	if c.Report("direct", 0, 1) != nil {
		t.Error("nil collector should report nil")
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Record(Event{Op: OpJoin, Desc: fmt.Sprintf("g%d", i), RowsOut: j})
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("events = %d, want 800", c.Len())
	}
}

func TestReportAggregates(t *testing.T) {
	c := NewCollector()
	c.Record(Event{Op: OpJoin, Desc: "r(A,$x)", RowsIn: 1, RowsOut: 100, Workers: 4, Wall: time.Millisecond})
	c.Record(Event{Op: OpSelect, Desc: "$x < $y", RowsIn: 100, RowsOut: 40})
	c.Record(Event{Op: OpGroup, Desc: "flock [COUNT(answer.B) >= 20]", RowsIn: 40, RowsOut: 7, Groups: 12})
	r := c.Report("direct", 4, 7)
	if r.Strategy != "direct" || r.Workers != 4 || r.AnswerRows != 7 {
		t.Errorf("header fields wrong: %+v", r)
	}
	if r.MaxRows != 100 {
		t.Errorf("MaxRows = %d, want 100", r.MaxRows)
	}
	if r.TotalRows != 147 {
		t.Errorf("TotalRows = %d, want 147", r.TotalRows)
	}
	if r.WallNs <= 0 {
		t.Error("WallNs should be positive for a started collector")
	}
	if len(r.Steps) != 3 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
}

func TestReportJSONSchema(t *testing.T) {
	c := NewCollector()
	c.Record(Event{Op: OpJoin, Desc: "r(A,$x)", RowsOut: 5, Workers: 2})
	b, err := json.Marshal(c.Report("dynamic", 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"strategy", "answer_rows", "max_rows", "total_rows", "steps"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, b)
		}
	}
	steps := m["steps"].([]any)
	step := steps[0].(map[string]any)
	if step["op"] != "join" || step["desc"] != "r(A,$x)" {
		t.Errorf("step JSON = %v", step)
	}
}

func TestTreeRendering(t *testing.T) {
	c := NewCollector()
	c.Record(Event{Op: OpJoin, Desc: "baskets(B,$1)", RowsIn: 1, RowsOut: 999, Workers: 8, Wall: 2 * time.Millisecond})
	c.Record(Event{Op: OpJoin, Desc: "baskets(B,$2)", RowsIn: 999, RowsOut: 1234, Absorbed: 1})
	c.Record(Event{Op: OpDecision, Desc: "after baskets(B,$2) on [$1 $2]", RowsIn: 1234, RowsOut: 900, Groups: 80, Filtered: true})
	c.Record(Event{Op: OpGroup, Desc: "flock [COUNT(answer.B) >= 20]", RowsIn: 900, RowsOut: 42, Groups: 80})
	c.Record(Event{Op: OpNote, Desc: "post-run note", RowsOut: 42})
	tree := c.Report("direct", 8, 42).Tree()
	for _, want := range []string{
		"direct: 42 answers",
		"join baskets(B,$1)",
		"└─ join baskets(B,$2) (+1 absorbed)",
		"FILTER",
		"filter flock [COUNT(answer.B) >= 20]",
		"80 groups",
		"w=8",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// The second join is nested one level under the first.
	if !strings.Contains(tree, "\n└─ join baskets(B,$2)") {
		t.Errorf("second join should indent:\n%s", tree)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Op: OpJoin, Desc: "r(A)", RowsIn: 2, RowsOut: 4}, "join r(A)"},
		{Event{Op: OpAntiJoin, Desc: "s(A)", RowsOut: 3}, "antijoin s(A)"},
		{Event{Op: OpSelect, Desc: "$1 < $2", RowsOut: 3}, "select $1 < $2"},
		{Event{Op: OpStep, Desc: "okS", RowsOut: 3}, "step okS"},
		{Event{Op: OpView, Desc: "v(A)", RowsOut: 3}, "view v(A)"},
		{Event{Op: OpDecision, Desc: "after r(A)", RowsOut: 3}, "skip"},
		{Event{Op: OpNote, Desc: "free text", RowsOut: 3}, "free text"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("Event.String() = %q, want substring %q", got, c.want)
		}
	}
}

func TestByteSize(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512B"},
		{4 << 10, "4.0KiB"},
		{3 << 20, "3.0MiB"},
		{2 << 30, "2.0GiB"},
	}
	for _, c := range cases {
		if got := byteSize(c.n); got != c.want {
			t.Errorf("byteSize(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestDebugServerServesVarsAndPprof(t *testing.T) {
	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	PublishReport(&RunReport{Strategy: "direct", AnswerRows: 3})
	PublishReport(nil) // counter-only publish must not clear the report

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
	for _, want := range []string{"flock_runs", "flock_last_report", `"strategy"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/debug/vars missing %q", want)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}
