package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"sync"
)

// StartDebugServer starts an HTTP server on addr (e.g. "localhost:6060";
// port 0 picks a free port) serving the standard net/http/pprof profiling
// endpoints under /debug/pprof/ and the expvar metric dump under
// /debug/vars, so long mining runs can be profiled live. It returns the
// bound address. The server runs until the process exits.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, http.DefaultServeMux) //nolint:errcheck // serves for process lifetime
	return ln.Addr().String(), nil
}

var (
	publishOnce sync.Once
	publishMu   sync.Mutex
	lastReport  *RunReport
	runCount    *expvar.Int
)

// PublishReport exposes r as the expvar variable "flock_last_report" and
// increments the "flock_runs" counter, making the most recent run's
// metrics visible on /debug/vars. Nil reports only bump the counter.
func PublishReport(r *RunReport) {
	publishOnce.Do(func() {
		runCount = expvar.NewInt("flock_runs")
		expvar.Publish("flock_last_report", expvar.Func(func() any {
			publishMu.Lock()
			defer publishMu.Unlock()
			if lastReport == nil {
				return nil
			}
			// Re-marshal so expvar renders the JSON object, not a string.
			var v any
			b, err := json.Marshal(lastReport)
			if err != nil {
				return nil
			}
			if err := json.Unmarshal(b, &v); err != nil {
				return nil
			}
			return v
		}))
	})
	runCount.Add(1)
	if r != nil {
		publishMu.Lock()
		lastReport = r
		publishMu.Unlock()
	}
}
