// Package obs is the execution observability layer: typed per-operator
// events collected during flock evaluation, aggregated into a
// machine-readable RunReport that the CLIs render as an EXPLAIN ANALYZE
// tree or emit as JSON (flockql -metrics, flockbench -json).
//
// The paper's dynamic strategy (§4.4) is defined entirely in terms of
// observed intermediate-result sizes, and its empirical claims are
// measurements; this package makes those observations first-class instead
// of ad-hoc strings. Collection is strictly opt-in: every producer guards
// on a nil *Collector, so a run without one pays nothing.
package obs

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Op identifies the operator an Event describes. The values are the
// machine-readable "op" strings of the metrics JSON schema.
type Op string

// The operator kinds emitted by the engine.
const (
	// OpScan is a streaming base-relation scan — the source of a
	// physical pipeline.
	OpScan Op = "scan"
	// OpBuild is the hash-index build on a join's base relation.
	OpBuild Op = "build"
	// OpJoin is one hash-join of a positive atom into the bindings.
	OpJoin Op = "join"
	// OpAntiJoin removes bindings matching a negated atom.
	OpAntiJoin Op = "antijoin"
	// OpSelect applies a fully bound arithmetic comparison.
	OpSelect Op = "select"
	// OpGroup is a group-by-parameters + filter evaluation (one FILTER
	// computation, §4.1).
	OpGroup Op = "group"
	// OpProject is a projection onto output columns (optionally
	// deduplicating).
	OpProject Op = "project"
	// OpUnion concatenates the branch pipelines of a union query.
	OpUnion Op = "union"
	// OpMaterialize collects a stream into a relation: the plan sink, a
	// FILTER-step result, or a dynamic decision barrier.
	OpMaterialize Op = "materialize"
	// OpSymJoin is a symmetric hash join of two streaming inputs (no
	// Build barrier; both sides insert-then-probe).
	OpSymJoin Op = "symjoin"
	// OpStep is one completed FILTER step of a query plan (§4.2).
	OpStep Op = "step"
	// OpDecision is one §4.4 dynamic filter/don't-filter decision.
	OpDecision Op = "decision"
	// OpView is one materialized view.
	OpView Op = "view"
	// OpNote is an untyped annotation (the legacy Trace.Add surface).
	OpNote Op = "note"
	// OpShard is one worker shard's contribution to a scattered FILTER
	// computation: RowsOut is the number of partial group states the shard
	// returned, Wall the shard's round-trip time.
	OpShard Op = "shard"
)

// Event is one recorded operator application. Desc carries only the
// operand (the atom, comparison, or step name); renderers add the
// op-specific prefix.
type Event struct {
	Op   Op     `json:"op"`
	Desc string `json:"desc"`
	// ID is the emitting physical-plan node's preorder ID (1-based);
	// zero for events not produced by a compiled plan.
	ID int `json:"id,omitempty"`
	// RowsIn is the input (binding-relation) cardinality, when meaningful.
	RowsIn int `json:"rows_in,omitempty"`
	// RowsOut is the observed output cardinality.
	RowsOut int `json:"rows_out"`
	// Groups is the number of distinct parameter groups seen (group/
	// decision events).
	Groups int `json:"groups,omitempty"`
	// Absorbed counts pending subgoals folded into this operator's scan.
	Absorbed int `json:"absorbed,omitempty"`
	// Workers is the worker count the operator actually ran with.
	Workers int `json:"workers,omitempty"`
	// Wall is the operator's wall-clock time in nanoseconds.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// Filtered reports, for decision events, that the FILTER fired.
	Filtered bool `json:"filtered,omitempty"`
	// IDBatches counts batches the operator processed in columnar
	// interned-ID form; BoxedBatches counts row-at-a-time batches of
	// boxed Values. Together they show how much of a run stayed on the
	// integer hot path.
	IDBatches    int `json:"id_batches,omitempty"`
	BoxedBatches int `json:"boxed_batches,omitempty"`
	// Cached reports that the operator's input (or its entire result) was
	// served from the cross-request candidate-subquery memo instead of
	// being recomputed.
	Cached bool `json:"cached,omitempty"`
}

// String renders the event one-line, prefix included.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Label())
	fmt.Fprintf(&b, "  %s", e.cardinalities())
	return b.String()
}

// Label returns the operator rendering with its op-specific prefix but
// without the observed cardinalities (see String for the full line).
func (e Event) Label() string {
	switch e.Op {
	case OpScan:
		if e.Absorbed > 0 {
			return fmt.Sprintf("scan %s (+%d absorbed)", e.Desc, e.Absorbed)
		}
		return "scan " + e.Desc
	case OpBuild:
		return "build " + e.Desc
	case OpProject:
		return "project " + e.Desc
	case OpUnion:
		return "union " + e.Desc
	case OpMaterialize:
		return "materialize " + e.Desc
	case OpJoin:
		if e.Absorbed > 0 {
			return fmt.Sprintf("join %s (+%d absorbed)", e.Desc, e.Absorbed)
		}
		return "join " + e.Desc
	case OpSymJoin:
		return "symjoin " + e.Desc
	case OpAntiJoin:
		return "antijoin " + e.Desc
	case OpSelect:
		return "select " + e.Desc
	case OpGroup:
		return "filter " + e.Desc
	case OpStep:
		return "step " + e.Desc
	case OpDecision:
		verdict := "skip"
		if e.Filtered {
			verdict = "FILTER"
		}
		return fmt.Sprintf("decide %s: %s", e.Desc, verdict)
	case OpView:
		return "view " + e.Desc
	case OpShard:
		return "shard " + e.Desc
	default:
		return e.Desc
	}
}

// cardinalities renders the observed sizes and timing.
func (e Event) cardinalities() string {
	var parts []string
	if e.RowsIn > 0 || e.Op == OpJoin || e.Op == OpAntiJoin || e.Op == OpSelect {
		parts = append(parts, fmt.Sprintf("%d -> %d rows", e.RowsIn, e.RowsOut))
	} else {
		parts = append(parts, fmt.Sprintf("%d rows", e.RowsOut))
	}
	if e.Groups > 0 {
		parts = append(parts, fmt.Sprintf("%d groups", e.Groups))
	}
	if e.Workers > 1 {
		parts = append(parts, fmt.Sprintf("w=%d", e.Workers))
	}
	if e.Cached {
		parts = append(parts, "memo")
	}
	if e.Wall > 0 {
		parts = append(parts, e.Wall.Round(time.Microsecond).String())
	}
	return strings.Join(parts, "  ")
}

// Collector accumulates events. Recording is safe from concurrent
// branches (parallel union evaluation); event order across branches is
// then nondeterministic. All methods are nil-safe so producers can hold a
// possibly-nil *Collector and call it unconditionally on cold paths; hot
// paths still guard with a nil check to skip argument construction.
type Collector struct {
	mu     sync.Mutex
	events []Event
	peak   int

	dictSize     int
	internHits   uint64
	internMisses uint64

	segmentsOpened  uint64
	indexBlocksRead uint64
	deltaRows       uint64
	storageBytes    uint64

	start       time.Time
	startAllocs uint64
	startBytes  uint64
}

// NewCollector returns a collector with the wall clock and allocation
// baseline started. The zero value also works; its report then omits wall
// time and allocation deltas.
func NewCollector() *Collector {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Collector{start: time.Now(), startAllocs: ms.Mallocs, startBytes: ms.TotalAlloc}
}

// Record appends one event. Nil-safe.
func (c *Collector) Record(e Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// ObservePeak records the high-water count of tuples buffered in
// pipeline-breaker state during a plan execution (max-merged across
// executions, e.g. one per FILTER step). Nil-safe.
func (c *Collector) ObservePeak(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if n > c.peak {
		c.peak = n
	}
	c.mu.Unlock()
}

// ObserveDict records the value-dictionary state after a columnar run:
// the dictionary size and the cumulative intern hit/miss counters (the
// hit rate shows how much interning amortizes across re-evaluations).
// Size and counters take the max across observations, matching the
// monotone counters they mirror. Nil-safe.
func (c *Collector) ObserveDict(size int, hits, misses uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if size > c.dictSize {
		c.dictSize = size
	}
	if hits > c.internHits {
		c.internHits = hits
	}
	if misses > c.internMisses {
		c.internMisses = misses
	}
	c.mu.Unlock()
}

// ObserveStorage records the disk engine's cumulative I/O counters after
// a run: segments opened, sparse-index blocks consulted, delta-layer rows
// merged, and bytes read from segment files. Like ObserveDict, the
// counters are monotone process-wide, so observations max-merge. Nil-safe
// (and a no-op for in-memory runs, which pass all zeros).
func (c *Collector) ObserveStorage(segments, blocks, deltaRows, bytes uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if segments > c.segmentsOpened {
		c.segmentsOpened = segments
	}
	if blocks > c.indexBlocksRead {
		c.indexBlocksRead = blocks
	}
	if deltaRows > c.deltaRows {
		c.deltaRows = deltaRows
	}
	if bytes > c.storageBytes {
		c.storageBytes = bytes
	}
	c.mu.Unlock()
}

// Events returns a snapshot of the recorded events.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Report aggregates the collected events into a RunReport. AnswerRows is
// the final answer cardinality; strategy and workers describe the run
// configuration. Nil-safe: a nil collector yields nil.
func (c *Collector) Report(strategy string, workers, answerRows int) *RunReport {
	if c == nil {
		return nil
	}
	r := &RunReport{
		Strategy:   strategy,
		Workers:    workers,
		AnswerRows: answerRows,
		Steps:      c.Events(),
	}
	c.mu.Lock()
	r.PeakTuples = c.peak
	r.DictSize = c.dictSize
	r.InternHits = c.internHits
	r.InternMisses = c.internMisses
	r.SegmentsOpened = c.segmentsOpened
	r.IndexBlocksRead = c.indexBlocksRead
	r.DeltaRows = c.deltaRows
	r.StorageBytesRead = c.storageBytes
	c.mu.Unlock()
	if !c.start.IsZero() {
		r.WallNs = time.Since(c.start).Nanoseconds()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Allocs = ms.Mallocs - c.startAllocs
		r.AllocBytes = ms.TotalAlloc - c.startBytes
	}
	for _, e := range r.Steps {
		r.TotalRows += e.RowsOut
		if e.RowsOut > r.MaxRows {
			r.MaxRows = e.RowsOut
		}
	}
	return r
}

// RunReport is the machine-readable outcome of one instrumented
// evaluation: run-level aggregates plus the per-operator event list. It
// marshals directly to the metrics JSON schema documented in
// docs/LANGUAGE.md.
type RunReport struct {
	// Strategy names the evaluation strategy ("direct", "dynamic", ...).
	Strategy string `json:"strategy,omitempty"`
	// Workers is the configured worker knob (0 = one per CPU).
	Workers int `json:"workers,omitempty"`
	// AnswerRows is the answer cardinality.
	AnswerRows int `json:"answer_rows"`
	// WallNs is the run's wall-clock time in nanoseconds.
	WallNs int64 `json:"wall_ns,omitempty"`
	// Allocs and AllocBytes are the heap allocation deltas over the run
	// (process-wide; approximate under concurrency).
	Allocs     uint64 `json:"allocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// MaxRows is the largest intermediate size observed — the memory
	// high-water proxy of a join pipeline.
	MaxRows int `json:"max_rows"`
	// PeakTuples is the streaming executor's high-water count of tuples
	// buffered in pipeline-breaker state (group maps, barriers, the
	// sink); zero when the run did not execute a compiled physical plan.
	PeakTuples int `json:"peak_tuples,omitempty"`
	// TotalRows sums all intermediate sizes — the cost proxy the planner's
	// estimates are calibrated against.
	TotalRows int `json:"total_rows"`
	// DictSize is the value-dictionary cardinality after a columnar run
	// (distinct interned value classes, null included); zero when the run
	// never touched the dictionary.
	DictSize int `json:"dict_size,omitempty"`
	// InternHits and InternMisses are the dictionary's cumulative intern
	// counters: hits found the value already interned, misses appended a
	// fresh ID.
	InternHits   uint64 `json:"intern_hits,omitempty"`
	InternMisses uint64 `json:"intern_misses,omitempty"`
	// SegmentsOpened, IndexBlocksRead, DeltaRows, and StorageBytesRead are
	// the disk engine's cumulative I/O counters sampled after the run:
	// segment files opened, sparse-index blocks consulted to position
	// prefix/range reads, delta-layer rows merged over base segments, and
	// bytes read from segment files. All zero for in-memory runs.
	SegmentsOpened   uint64 `json:"segments_opened,omitempty"`
	IndexBlocksRead  uint64 `json:"index_blocks_read,omitempty"`
	DeltaRows        uint64 `json:"delta_rows,omitempty"`
	StorageBytesRead uint64 `json:"storage_bytes_read,omitempty"`
	// Caches is the serving layer's cache counter block, attached by
	// flockd to every evaluated response; nil for non-served runs.
	Caches *CacheStats `json:"caches,omitempty"`
	// Cluster is the coordinator's scatter/gather block, attached when the
	// request was served by a sharded flockd cluster; nil otherwise.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Steps is the per-operator event list, in execution order.
	Steps []Event `json:"steps"`
}

// ClusterStats describes how a sharded flockd cluster served one request:
// the topology, how many FILTER computations were scattered to the worker
// shards versus evaluated coordinator-locally (computations the shard map
// cannot legally partition fall back), and the degraded-answer flag when a
// shard failed and the client opted into partial results.
type ClusterStats struct {
	// Shards is the number of worker shards in the map.
	Shards int `json:"shards"`
	// ShardRel and ShardCol name the range-partitioned relation and the
	// column its contiguous value ranges split on.
	ShardRel string `json:"shard_rel"`
	ShardCol int    `json:"shard_col"`
	// Scattered counts FILTER computations pushed to the shards; Fallbacks
	// counts those evaluated locally because partitioning them would
	// change answers (the legality rules in internal/cluster).
	Scattered int `json:"scattered"`
	Fallbacks int `json:"fallbacks"`
	// MergedGroups is the total number of distinct parameter groups merged
	// across all scattered computations.
	MergedGroups int `json:"merged_groups,omitempty"`
	// Partial reports a degraded answer: at least one shard failed and the
	// request allowed serving without it. Failed names the dead shards.
	Partial bool     `json:"partial,omitempty"`
	Failed  []string `json:"failed_shards,omitempty"`
}

// CacheStats is the serving layer's cache counter block: the LRU plan
// cache, the byte-bounded candidate-subquery memo, and the prepared-flock
// registry, plus the database version the counters were sampled against.
// All hit/miss/eviction counters are cumulative since process start,
// mirroring the dictionary's intern_hits/intern_misses convention —
// per-request deltas are the difference between two samples.
type CacheStats struct {
	// PlanEntries/PlanCapacity describe the plan cache's occupancy; the
	// hit/miss/eviction counters its cumulative traffic.
	PlanEntries   int    `json:"plan_entries"`
	PlanCapacity  int    `json:"plan_capacity,omitempty"`
	PlanHits      uint64 `json:"plan_hits"`
	PlanMisses    uint64 `json:"plan_misses"`
	PlanEvictions uint64 `json:"plan_evictions,omitempty"`

	// MemoEntries/MemoBytes/MemoMaxBytes describe the candidate-subquery
	// memo's occupancy against its byte bound. Extended-answer lookups
	// (filter-free: shared across threshold variants) and survivor-set
	// lookups (query+filter) are counted separately — a threshold-
	// tightened re-run shows as an ext hit plus a surv miss.
	MemoEntries    int    `json:"memo_entries"`
	MemoBytes      int64  `json:"memo_bytes"`
	MemoMaxBytes   int64  `json:"memo_max_bytes,omitempty"`
	MemoExtHits    uint64 `json:"memo_ext_hits"`
	MemoExtMisses  uint64 `json:"memo_ext_misses"`
	MemoSurvHits   uint64 `json:"memo_surv_hits"`
	MemoSurvMisses uint64 `json:"memo_surv_misses"`
	MemoEvictions  uint64 `json:"memo_evictions,omitempty"`

	// PreparedFlocks is the prepared-flock registry size.
	PreparedFlocks int `json:"prepared_flocks"`
	// DBVersion is the served database's data-mutation counter; every
	// plan-cache and memo key embeds it, so a bump strands all prior
	// entries (invalidation without scanning).
	DBVersion uint64 `json:"db_version"`
}

// Tree renders the report as an execution tree: pipeline operators (join,
// antijoin, select) indent one level per stage — the shape of the
// left-deep join tree — and boundary operators (group, step, view, note)
// close the pipeline. Decisions print at the current pipeline depth.
func (r *RunReport) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d answers", headline(r.Strategy), r.AnswerRows)
	if r.WallNs > 0 {
		fmt.Fprintf(&b, " in %s", time.Duration(r.WallNs).Round(time.Microsecond))
	}
	if r.Workers != 1 {
		fmt.Fprintf(&b, " (workers=%s)", workersLabel(r.Workers))
	}
	if r.PeakTuples > 0 {
		fmt.Fprintf(&b, "  peak=%d tuples", r.PeakTuples)
	}
	if r.Allocs > 0 {
		fmt.Fprintf(&b, "  [%d allocs, %s]", r.Allocs, byteSize(r.AllocBytes))
	}
	if r.DictSize > 0 {
		fmt.Fprintf(&b, "  dict=%d", r.DictSize)
		if total := r.InternHits + r.InternMisses; total > 0 {
			fmt.Fprintf(&b, " (%.0f%% intern hits)", 100*float64(r.InternHits)/float64(total))
		}
	}
	if r.SegmentsOpened > 0 || r.StorageBytesRead > 0 {
		fmt.Fprintf(&b, "  io=%s/%d segs", byteSize(r.StorageBytesRead), r.SegmentsOpened)
		if r.IndexBlocksRead > 0 {
			fmt.Fprintf(&b, " (%d index blocks)", r.IndexBlocksRead)
		}
		if r.DeltaRows > 0 {
			fmt.Fprintf(&b, " (+%d delta rows)", r.DeltaRows)
		}
	}
	b.WriteByte('\n')
	depth := 0
	for _, e := range r.Steps {
		switch e.Op {
		case OpScan:
			// A scan starts a fresh pipeline (streaming events arrive in
			// leaf-to-root order).
			depth = 0
			writeTreeLine(&b, depth, e)
			depth++
		case OpBuild:
			writeTreeLine(&b, depth, e)
		case OpJoin, OpSymJoin, OpAntiJoin, OpSelect, OpProject:
			writeTreeLine(&b, depth, e)
			depth++
		case OpDecision:
			writeTreeLine(&b, depth, e)
		default: // group, union, materialize, step, view, note: boundary
			writeTreeLine(&b, depth, e)
			depth = 0
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

func headline(strategy string) string {
	if strategy == "" {
		return "run"
	}
	return strategy
}

func workersLabel(w int) string {
	if w == 0 {
		return "per-CPU"
	}
	return fmt.Sprintf("%d", w)
}

func writeTreeLine(b *strings.Builder, depth int, e Event) {
	if depth == 0 {
		fmt.Fprintf(b, "%s\n", e)
		return
	}
	b.WriteString(strings.Repeat("   ", depth-1))
	fmt.Fprintf(b, "└─ %s\n", e)
}

// byteSize renders a byte count with a binary unit.
func byteSize(n uint64) string {
	const kib, mib, gib = 1 << 10, 1 << 20, 1 << 30
	switch {
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
