package mining_test

import (
	"fmt"

	"queryflocks/internal/mining"
	"queryflocks/internal/storage"
)

// Frequent itemsets of every cardinality, mined as footnote 2's sequence
// of flocks.
func ExampleFrequentItemsets() {
	rel := storage.NewRelation("baskets", "BID", "Item")
	for bid, items := range map[int64][]string{
		1: {"beer", "chips", "diapers"},
		2: {"beer", "chips", "diapers"},
		3: {"beer", "diapers"},
		4: {"chips"},
	} {
		for _, it := range items {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	db := storage.NewDatabase()
	db.Add(rel)

	res, err := mining.FrequentItemsets(db, 2, nil)
	if err != nil {
		panic(err)
	}
	for k, level := range res.Levels {
		fmt.Printf("L%d: %d sets\n", k+1, level.Len())
	}
	fmt.Println("maximal:", len(res.MaximalItemsets()))
	// Output:
	// L1: 3 sets
	// L2: 3 sets
	// L3: 1 sets
	// maximal: 1
}
