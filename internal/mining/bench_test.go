package mining

import (
	"testing"

	"queryflocks/internal/apriori"
	"queryflocks/internal/workload"
)

func BenchmarkFrequentItemsetsFlockSequence(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 3_000, Items: 300, MeanSize: 8, Skew: 1.1, Seed: 10,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemsets(db, 30, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrequentItemsetsClassic(b *testing.B) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 3_000, Items: 300, MeanSize: 8, Skew: 1.1, Seed: 10,
	})
	ds, err := apriori.FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.Frequent(ds, 30, 0)
	}
}
