// Package mining builds mining applications out of sequences of query
// flocks. It implements footnote 2 of the paper: finding the frequent item
// sets of every cardinality "would be expressed as a sequence of query
// flocks for increasing cardinalities, with each flock depending on the
// result of the previous flock".
//
// The k-th flock asks for k-item sets in at least `support` baskets; its
// query is extended with one subgoal per (k-1)-subset of its parameters,
// each referencing the previous flock's answer relation. By the a-priori
// property those subgoals are implied for every qualifying assignment, so
// the extension preserves the answer while letting the engine semi-join
// against the (small) previous level — the level-wise algorithm of [AS94],
// reconstructed inside the flock framework.
package mining

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Result holds the frequent itemsets found by the flock sequence.
type Result struct {
	// Levels[k-1] is the frequent k-itemset relation, with columns
	// $1..$k holding the items of each set in increasing order.
	Levels []*storage.Relation
	// Flocks[k-1] is the flock that produced level k (after extension
	// with the previous level's relation), for inspection.
	Flocks []*core.Flock
}

// Options configures the mining sequence.
type Options struct {
	// MaxK bounds the itemset cardinality (0 = mine until a level is
	// empty).
	MaxK int
	// Relation names the baskets relation; default "baskets". It must
	// have two columns (basket ID, item).
	Relation string
	// Eval configures the underlying flock evaluations.
	Eval *core.EvalOptions
}

func (o *Options) orDefault() Options {
	out := Options{Relation: "baskets"}
	if o == nil {
		return out
	}
	out.MaxK = o.MaxK
	if o.Relation != "" {
		out.Relation = o.Relation
	}
	out.Eval = o.Eval
	return out
}

// levelRelName names the k-th level's relation in the working database.
func levelRelName(k int) string { return fmt.Sprintf("freq%d", k) }

// FrequentItemsets runs the flock sequence and returns every level.
func FrequentItemsets(db *storage.Database, support int, opts *Options) (*Result, error) {
	o := opts.orDefault()
	if support < 1 {
		return nil, fmt.Errorf("mining: support must be >= 1, got %d", support)
	}
	base, err := db.Relation(o.Relation)
	if err != nil {
		return nil, fmt.Errorf("mining: %w", err)
	}
	if base.Arity() != 2 {
		return nil, fmt.Errorf("mining: relation %q has arity %d, want 2 (basket, item)", o.Relation, base.Arity())
	}

	scratch := db.Clone()
	res := &Result{}
	for k := 1; o.MaxK == 0 || k <= o.MaxK; k++ {
		if scratch.Has(levelRelName(k)) {
			return nil, fmt.Errorf("mining: database already has a relation named %q", levelRelName(k))
		}
		flock, err := levelFlock(o.Relation, support, k)
		if err != nil {
			return nil, err
		}
		res.Flocks = append(res.Flocks, flock)
		level, err := flock.Eval(scratch, o.Eval)
		if err != nil {
			return nil, fmt.Errorf("mining: level %d: %w", k, err)
		}
		if level.Len() == 0 {
			break
		}
		res.Levels = append(res.Levels, level.Rename(levelRelName(k), nil))
		scratch.Add(res.Levels[k-1])
		// A level with fewer sets than k+1 singletons cannot extend.
		if k >= 2 && level.Len() < k+1 {
			break
		}
	}
	return res, nil
}

// levelFlock builds the k-th flock of the sequence. For k >= 2 the query
// includes one subgoal per (k-1)-subset of the parameters, referencing the
// previous level's relation.
func levelFlock(relation string, support, k int) (*core.Flock, error) {
	params := make([]datalog.Param, k)
	for i := range params {
		params[i] = datalog.Param(fmt.Sprintf("%d", i+1))
	}
	body := make([]datalog.Subgoal, 0, 2*k+k)
	for _, p := range params {
		body = append(body, datalog.NewAtom(relation, datalog.Var("B"), p))
	}
	for i := 0; i+1 < k; i++ {
		body = append(body, &datalog.Comparison{Op: datalog.Lt, Left: params[i], Right: params[i+1]})
	}
	if k >= 2 {
		prev := levelRelName(k - 1)
		for skip := k - 1; skip >= 0; skip-- {
			args := make([]datalog.Term, 0, k-1)
			for i, p := range params {
				if i != skip {
					args = append(args, p)
				}
			}
			if len(args) > 0 {
				body = append(body, datalog.NewAtom(prev, args...))
			}
		}
	}
	rule := datalog.NewRule(datalog.NewAtom("answer", datalog.Var("B")), body...)
	spec := datalog.FilterSpec{
		Agg:       datalog.AggCount,
		Target:    "B",
		Op:        datalog.Ge,
		Threshold: storage.Int(int64(support)),
	}
	return core.New(datalog.Union{rule}, spec)
}

// MaximalItemsets filters the result down to the maximal frequent sets
// (those with no frequent superset) — the quantity footnote 2 describes.
func (r *Result) MaximalItemsets() []storage.Tuple {
	var out []storage.Tuple
	for k := 0; k < len(r.Levels); k++ {
		level := r.Levels[k]
	tuples:
		for _, t := range level.Tuples() {
			if k+1 < len(r.Levels) {
				// t is maximal unless some (k+2)-set extends it.
				for _, super := range r.Levels[k+1].Tuples() {
					if isSubsetSorted(t, super) {
						continue tuples
					}
				}
			}
			out = append(out, t)
		}
	}
	return out
}

// isSubsetSorted reports whether sorted tuple a is a subsequence of sorted
// tuple b.
func isSubsetSorted(a, b storage.Tuple) bool {
	i := 0
	for j := 0; j < len(b) && i < len(a); j++ {
		if a[i].Equal(b[j]) {
			i++
		}
	}
	return i == len(a)
}

// Count returns the total number of frequent itemsets across levels.
func (r *Result) Count() int {
	total := 0
	for _, l := range r.Levels {
		total += l.Len()
	}
	return total
}
