package mining

import (
	"math/rand"
	"sort"
	"testing"

	"queryflocks/internal/apriori"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// aprioriLevels converts the classic algorithm's output into the same
// shape as Result.Levels for comparison.
func aprioriLevels(t *testing.T, rel *storage.Relation, support, maxK int) []*storage.Relation {
	t.Helper()
	ds, err := apriori.FromBaskets(rel)
	if err != nil {
		t.Fatal(err)
	}
	var out []*storage.Relation
	for k, level := range apriori.Frequent(ds, support, maxK) {
		if len(level) == 0 {
			break
		}
		cols := make([]string, k+1)
		for i := range cols {
			cols[i] = "$" + string(rune('1'+i))
		}
		lr := storage.NewRelation(levelRelName(k+1), cols...)
		for _, c := range level {
			tuple := make(storage.Tuple, len(c.Items))
			for i, it := range c.Items {
				tuple[i] = ds.Value(it)
			}
			// Item IDs sort by first appearance, not by value; re-sort by
			// value to match the flock's $1 < $2 < ... ordering.
			sort.Slice(tuple, func(a, b int) bool { return tuple[a].Compare(tuple[b]) < 0 })
			lr.Insert(tuple)
		}
		out = append(out, lr)
	}
	return out
}

func TestFrequentItemsetsMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		db := workload.Baskets(workload.BasketConfig{
			Baskets:  100 + rng.Intn(300),
			Items:    6 + rng.Intn(12),
			MeanSize: 3 + rng.Intn(3),
			Skew:     rng.Float64(),
			Seed:     rng.Int63(),
		})
		support := 3 + rng.Intn(6)
		res, err := FrequentItemsets(db, support, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := aprioriLevels(t, db.MustRelation("baskets"), support, 0)
		if len(res.Levels) != len(want) {
			t.Fatalf("trial %d support %d: %d levels, apriori has %d",
				trial, support, len(res.Levels), len(want))
		}
		for k := range want {
			if !res.Levels[k].Equal(want[k]) {
				t.Fatalf("trial %d support %d level %d differs:\nflocks:\n%s\napriori:\n%s",
					trial, support, k+1, res.Levels[k].Dump(), want[k].Dump())
			}
		}
	}
}

func TestFrequentItemsetsMaxK(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 200, Items: 10, MeanSize: 5, Skew: 0.5, Seed: 9,
	})
	res, err := FrequentItemsets(db, 5, &Options{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) > 2 {
		t.Errorf("MaxK=2 produced %d levels", len(res.Levels))
	}
	full, err := FrequentItemsets(db, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Levels {
		if !res.Levels[k].Equal(full.Levels[k]) {
			t.Errorf("level %d differs between MaxK and unbounded runs", k+1)
		}
	}
}

func TestFrequentItemsetsFlockShape(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 100, Items: 8, MeanSize: 4, Skew: 0.5, Seed: 2,
	})
	res, err := FrequentItemsets(db, 3, &Options{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flocks) < 2 {
		t.Fatal("expected at least two flocks in the sequence")
	}
	// The k=2 flock must reference freq1 for both parameters (footnote 2:
	// "each flock depending on the result of the previous flock").
	rule := res.Flocks[1].Query[0]
	refs := 0
	for _, p := range rule.Predicates() {
		if p == "freq1" {
			refs = 1
		}
	}
	if refs == 0 {
		t.Errorf("k=2 flock does not reference freq1: %s", rule)
	}
	// Level columns are $1..$k.
	if got := res.Levels[1].Columns(); len(got) != 2 || got[0] != "$1" || got[1] != "$2" {
		t.Errorf("level-2 columns = %v", got)
	}
}

func TestMaximalItemsets(t *testing.T) {
	// Baskets: 5x {a,b,c}, 5x {d,e}; support 4 => maximal sets {a,b,c}
	// and {d,e}.
	rel := storage.NewRelation("baskets", "BID", "Item")
	bid := int64(0)
	for i := 0; i < 5; i++ {
		bid++
		for _, it := range []string{"a", "b", "c"} {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	for i := 0; i < 5; i++ {
		bid++
		for _, it := range []string{"d", "e"} {
			rel.InsertValues(storage.Int(bid), storage.Str(it))
		}
	}
	db := storage.NewDatabase()
	db.Add(rel)
	res, err := FrequentItemsets(db, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 5+4+1 { // 5 singletons, 4 pairs ({a,b},{a,c},{b,c},{d,e}), 1 triple
		t.Fatalf("total itemsets = %d; levels: %v", res.Count(), res.Levels)
	}
	max := res.MaximalItemsets()
	if len(max) != 2 {
		for _, m := range max {
			t.Logf("  maximal: %v", m)
		}
		t.Fatalf("maximal sets = %d, want 2", len(max))
	}
}

func TestFrequentItemsetsErrors(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := FrequentItemsets(db, 2, nil); err == nil {
		t.Error("missing relation should error")
	}
	bad := storage.NewRelation("baskets", "A", "B", "C")
	db.Add(bad)
	if _, err := FrequentItemsets(db, 2, nil); err == nil {
		t.Error("arity 3 should error")
	}
	db2 := storage.NewDatabase()
	db2.Add(storage.NewRelation("baskets", "BID", "Item"))
	if _, err := FrequentItemsets(db2, 0, nil); err == nil {
		t.Error("support 0 should error")
	}
	db2.Add(storage.NewRelation("freq1", "X"))
	if _, err := FrequentItemsets(db2, 2, nil); err == nil {
		t.Error("freq1 name collision should error")
	}
}

func TestIsSubsetSorted(t *testing.T) {
	a := storage.Tuple{storage.Int(1), storage.Int(3)}
	b := storage.Tuple{storage.Int(1), storage.Int(2), storage.Int(3)}
	if !isSubsetSorted(a, b) {
		t.Error("{1,3} should be subset of {1,2,3}")
	}
	if isSubsetSorted(b, a) {
		t.Error("{1,2,3} is not a subset of {1,3}")
	}
}
