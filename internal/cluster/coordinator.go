package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// Coordinator owns a shard map and a scatter client and turns FILTER
// computations into scatter/gather rounds. It is mounted into a request's
// core.EvalOptions via Session().FilterEval; computations the shard map
// cannot legally partition (see legal) are declined back to the local
// evaluator — the coordinator holds the full database, so falling back is
// always correct, just not distributed.
type Coordinator struct {
	Map    *Map
	Client *Client
	// AllowPartial serves degraded answers when some (not all) shards
	// fail: the dead shards' partitions are simply missing from the
	// merge, and the report carries partial=true plus the failed shards.
	AllowPartial bool

	base map[string]bool // base relation names the workers hold locally
}

// New builds a coordinator. baseRels names the relations the workers were
// started with; anything else a query references (materialized views,
// earlier FILTER-step results) is shipped inline with each request.
func New(m *Map, c *Client, baseRels []string) *Coordinator {
	base := make(map[string]bool, len(baseRels))
	for _, n := range baseRels {
		base[n] = true
	}
	return &Coordinator{Map: m, Client: c, base: base}
}

// Session returns the per-request state: a FilterEval hook plus the
// cluster stats it accumulates. One session serves one evaluation.
func (co *Coordinator) Session() *Session {
	return &Session{co: co, stats: obs.ClusterStats{
		Shards:   co.Map.Shards,
		ShardRel: co.Map.Rel,
		ShardCol: co.Map.Col,
	}}
}

// Session accumulates one request's scatter/gather statistics. FilterEval
// may be called from concurrent union branches; the stats are mutex-kept.
type Session struct {
	co    *Coordinator
	mu    sync.Mutex
	stats obs.ClusterStats
}

// Stats returns a snapshot of the session's cluster block for the merged
// RunReport.
func (s *Session) Stats() *obs.ClusterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.stats
	c.Failed = append([]string(nil), s.stats.Failed...)
	return &c
}

// FilterEval is the core.FilterEvalFn the coordinator mounts: scatter the
// computation to the shards, gather the serialized partial group states,
// and merge them in shard order. Computations the map cannot legally
// partition return handled=false and run locally.
func (s *Session) FilterEval(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter core.Filter, name string, opts *core.EvalOptions) (*storage.Relation, bool, error) {

	if !legal(s.co.Map, params, query, filter) {
		s.mu.Lock()
		s.stats.Fallbacks++
		s.mu.Unlock()
		return nil, false, nil
	}
	req, err := s.co.buildRequest(db, params, query, filter, name)
	if err != nil {
		// Can't describe the computation on the wire: evaluate locally.
		s.mu.Lock()
		s.stats.Fallbacks++
		s.mu.Unlock()
		return nil, false, nil
	}

	ctx := context.Background()
	if opts != nil && opts.Ctx != nil {
		ctx = opts.Ctx
	}
	results := s.co.Client.Scatter(ctx, req)

	var failed []string
	for _, res := range results {
		if res.Err != nil {
			failed = append(failed, res.Addr)
		}
	}
	if len(failed) > 0 {
		if !s.co.AllowPartial || len(failed) == len(results) {
			for _, res := range results {
				if res.Err != nil {
					return nil, true, res.Err
				}
			}
		}
	}

	parts := make([][]core.GroupState, 0, len(results))
	for _, res := range results {
		if res.Err != nil {
			continue // degraded: the dead shard's partition is absent
		}
		parts = append(parts, res.Resp.Groups)
	}
	paramCols := make([]string, len(params))
	for i, p := range params {
		paramCols[i] = "$" + string(p)
	}
	rel, merged, err := core.MergeGroupStates(filter, name, paramCols, parts)
	if err != nil {
		return nil, true, err
	}

	// The coordinator holds the merged group map and answer live at once;
	// apply the same budget/row-cap checkpoints as the local group-by.
	if opts != nil {
		opts.Gate.NoteLive(merged + rel.Len())
		if err := opts.Gate.CheckOutput(rel.Len()); err != nil {
			return nil, true, err
		}
		if err := opts.Gate.Check(); err != nil {
			return nil, true, err
		}
	}

	if opts != nil && opts.Trace != nil {
		col := opts.Trace.Collector()
		groupsIn := 0
		for _, res := range results {
			if res.Err != nil {
				col.Record(obs.Event{Op: obs.OpShard, Desc: res.Addr + " FAILED", Wall: res.Wall})
				continue
			}
			col.Record(obs.Event{Op: obs.OpShard, Desc: res.Addr, RowsOut: len(res.Resp.Groups), Wall: res.Wall})
			groupsIn += len(res.Resp.Groups)
			if rep := res.Resp.Report; rep != nil {
				col.ObserveStorage(rep.SegmentsOpened, rep.IndexBlocksRead, rep.DeltaRows, rep.StorageBytesRead)
			}
		}
		col.Record(obs.Event{
			Op:      obs.OpGroup,
			Desc:    fmt.Sprintf("%s [%s] (merged %d shards)", name, filter, len(parts)),
			RowsIn:  groupsIn,
			RowsOut: rel.Len(),
			Groups:  merged,
			Workers: len(parts),
		})
	}

	s.mu.Lock()
	s.stats.Scattered++
	s.stats.MergedGroups += merged
	if len(failed) > 0 {
		s.stats.Partial = true
		for _, f := range failed {
			if !containsStr(s.stats.Failed, f) {
				s.stats.Failed = append(s.stats.Failed, f)
			}
		}
	}
	s.mu.Unlock()
	return rel, true, nil
}

func containsStr(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// buildRequest serializes one FILTER computation for the wire, shipping
// every referenced relation the workers do not hold (views, earlier step
// results) as literal rows.
func (co *Coordinator) buildRequest(db *storage.Database, params []datalog.Param, query datalog.Union,
	filter core.Filter, name string) (*PartialRequest, error) {

	req := &PartialRequest{
		Query:   query.String(),
		Filter:  filter.String(),
		Name:    name,
		Version: db.Version(),
	}
	req.Params = make([]string, len(params))
	for i, p := range params {
		req.Params[i] = string(p)
	}

	shipped := make(map[string]bool)
	var aux []string
	for _, r := range query {
		for _, pred := range r.Predicates() {
			if co.base[pred] || shipped[pred] {
				continue
			}
			shipped[pred] = true
			aux = append(aux, pred)
		}
	}
	sort.Strings(aux)
	for _, pred := range aux {
		rel, err := db.Relation(pred)
		if err != nil {
			return nil, err
		}
		a := AuxRel{Name: pred, Columns: rel.Columns()}
		for _, t := range rel.Tuples() {
			row := make([]string, len(t))
			for j, v := range t {
				row[j] = v.Literal()
			}
			a.Rows = append(a.Rows, row)
		}
		req.Aux = append(req.Aux, a)
	}
	return req, nil
}

// legal decides whether sharding the query on m partitions the extended
// answer exactly — the condition for the scattered merge to reproduce the
// single-node answer bit for bit:
//
//  1. Every rule has at least one positive atom of the sharded relation
//     (a rule without one would be recomputed whole on every shard,
//     duplicating its tuples in the merge).
//  2. No rule negates the sharded relation (a restricted worker would see
//     a smaller complement and admit tuples the full data rejects).
//  3. Within each rule, all positive atoms of the sharded relation bind
//     the same term at the shard column, so one joined tuple carries one
//     shard-key value and lives on exactly one shard.
//  4. That term reaches the extended output — it is one of the
//     computation's parameters or a head argument — so distinct extended
//     tuples from different shards stay distinct after projection. (A
//     constant term is sound without this: only the owning shard can
//     produce matches at all.)
//
// Additionally the filter must resolve to the same head position against
// this query's head as the coordinator resolved it, so both sides
// aggregate the same column.
func legal(m *Map, params []datalog.Param, query datalog.Union, filter core.Filter) bool {
	ok, _ := Shardable(m, params, query, filter)
	return ok
}

// Shardable is the reason-returning form of the shardability decision:
// when the map cannot legally partition the computation it returns false
// and a one-line explanation of which rule (1–4 above) failed. The
// coordinator consults it per computation; the serving layer's QF024
// lint pass surfaces the same reason at admission time so authors learn
// about a coordinator-local fallback before paying for it.
func Shardable(m *Map, params []datalog.Param, query datalog.Union, filter core.Filter) (bool, string) {
	if len(query) == 0 {
		return false, "the query is empty"
	}
	refilter, err := core.NewFilter(filter.Spec(), query[0].Head)
	if err != nil || refilter.HeadPos() != filter.HeadPos() {
		return false, "the filter does not resolve to the same head column on the workers as on the coordinator"
	}
	paramSet := make(map[datalog.Param]bool, len(params))
	for _, p := range params {
		paramSet[p] = true
	}
	for _, r := range query {
		for _, a := range r.NegatedAtoms() {
			if a.Pred == m.Rel {
				// rule 2
				return false, fmt.Sprintf("rule %s negates the sharded relation %s, and a worker's smaller complement would admit tuples the full data rejects", r.Head, m.Rel)
			}
		}
		var sharded []*datalog.Atom
		for _, a := range r.PositiveAtoms() {
			if a.Pred == m.Rel {
				sharded = append(sharded, a)
			}
		}
		if len(sharded) == 0 {
			// rule 1
			return false, fmt.Sprintf("rule %s has no positive subgoal of the sharded relation %s, so every shard would recompute it whole and duplicate its tuples in the merge", r.Head, m.Rel)
		}
		if m.Col >= len(sharded[0].Args) {
			return false, fmt.Sprintf("shard column %d is out of range for %s/%d", m.Col, m.Rel, len(sharded[0].Args))
		}
		t := sharded[0].Args[m.Col]
		for _, a := range sharded[1:] {
			if m.Col >= len(a.Args) || a.Args[m.Col] != t {
				// rule 3
				return false, fmt.Sprintf("rule %s binds different terms at the shard column (%s column %d), so one joined tuple could live on two shards", r.Head, m.Rel, m.Col)
			}
		}
		switch term := t.(type) {
		case datalog.Const:
			// Sound without reaching the output (rule 4's parenthetical).
		case datalog.Param:
			if !paramSet[term] {
				// rule 4
				return false, fmt.Sprintf("rule %s: the shard-column parameter %s is not one of the computation's parameters, so shard-distinct tuples could collide after projection", r.Head, term)
			}
		case datalog.Var:
			inHead := false
			for _, h := range r.Head.Args {
				if h == t {
					inHead = true
					break
				}
			}
			if !inHead {
				// rule 4
				return false, fmt.Sprintf("rule %s: the shard-column variable %s does not reach the head, so shard-distinct tuples could collide after projection", r.Head, term)
			}
		default:
			return false, fmt.Sprintf("rule %s: unsupported term %v at the shard column", r.Head, t)
		}
	}
	return true, ""
}
