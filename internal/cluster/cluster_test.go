package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

const pairFlock = "QUERY:\n" +
	"answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n" +
	"FILTER:\nCOUNT(answer.B) >= 5\n"

func basketsDB(t *testing.T) *storage.Database {
	t.Helper()
	return workload.Baskets(workload.BasketConfig{Baskets: 120, Items: 15, MeanSize: 4, Skew: 0.8, Seed: 7})
}

// spawnWorkers serves each shard's restriction of db over httptest and
// returns the shard addresses in index order.
func spawnWorkers(t *testing.T, db *storage.Database, m *Map) []string {
	t.Helper()
	addrs := make([]string, m.Shards)
	for i := 0; i < m.Shards; i++ {
		restricted, err := m.Restrict(db, i)
		if err != nil {
			t.Fatalf("Restrict(%d): %v", i, err)
		}
		srv := httptest.NewServer(PartialHandler(func() *storage.Database { return restricted }, 1, 10*time.Second))
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

func newTestCoordinator(t *testing.T, db *storage.Database, shards int) (*Coordinator, []string) {
	t.Helper()
	m, err := BuildMap(db, "", 0, shards)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	addrs := spawnWorkers(t, db, m)
	client := &Client{Shards: addrs, Timeout: 10 * time.Second, Retries: 1, Backoff: 10 * time.Millisecond}
	return New(m, client, db.Names()), addrs
}

func TestParseShardBy(t *testing.T) {
	cases := []struct {
		in   string
		rel  string
		col  int
		fail bool
	}{
		{"", "", 0, false},
		{"baskets", "baskets", 0, false},
		{"baskets:1", "baskets", 1, false},
		{"a:b:2", "a:b", 2, false},
		{":1", "", 0, true},
		{"baskets:-1", "", 0, true},
		{"baskets:x", "", 0, true},
	}
	for _, c := range cases {
		rel, col, err := ParseShardBy(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("ParseShardBy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil || rel != c.rel || col != c.col {
			t.Errorf("ParseShardBy(%q) = %q,%d,%v; want %q,%d", c.in, rel, col, err, c.rel, c.col)
		}
	}
}

func TestShardMapRestrictPartitions(t *testing.T) {
	db := basketsDB(t)
	small := storage.NewRelation("kinds", "K")
	small.InsertValues(storage.Str("food"))
	db.Add(small)
	full := db.MustRelation("baskets")

	for _, shards := range []int{1, 2, 3, 4} {
		m, err := BuildMap(db, "baskets", 0, shards)
		if err != nil {
			t.Fatalf("BuildMap(%d): %v", shards, err)
		}
		total := 0
		union := storage.NewRelation("baskets", full.Columns()...)
		for i := 0; i < shards; i++ {
			r, err := m.Restrict(db, i)
			if err != nil {
				t.Fatalf("Restrict(%d/%d): %v", i, shards, err)
			}
			cut := r.MustRelation("baskets")
			total += cut.Len()
			for _, tp := range cut.Tuples() {
				if !union.Insert(tp) {
					t.Fatalf("shards %d: tuple %v assigned to more than one shard", shards, tp)
				}
				if got := m.ShardOf(tp[0]); got != i {
					t.Fatalf("shards %d: ShardOf(%v) = %d, on shard %d", shards, tp[0], got, i)
				}
			}
			if r.MustRelation("kinds").Len() != 1 {
				t.Errorf("shards %d: small relation not replicated to shard %d", shards, i)
			}
			if r.Version() != db.Version() {
				t.Errorf("shards %d: version %d != %d", shards, r.Version(), db.Version())
			}
		}
		if total != full.Len() || !union.Equal(full) {
			t.Errorf("shards %d: restrictions do not partition the relation (%d vs %d tuples)", shards, total, full.Len())
		}
	}
}

func TestShardMapDeterministic(t *testing.T) {
	db := basketsDB(t)
	a, _ := BuildMap(db, "baskets", 0, 3)
	b, _ := BuildMap(db, "baskets", 0, 3)
	for v := int64(-5); v < 200; v++ {
		if a.ShardOf(storage.Int(v)) != b.ShardOf(storage.Int(v)) {
			t.Fatalf("ShardOf(%d) differs between identically built maps", v)
		}
	}
	// Default relation selection picks the largest.
	m, err := BuildMap(db, "", 0, 2)
	if err != nil || m.Rel != "baskets" {
		t.Errorf("default shard relation = %q (%v), want baskets", m.Rel, err)
	}
}

// TestClusterOracleShardCounts is the tentpole oracle: the scattered
// answer must equal the single-node answer bit for bit at every shard
// count, for the direct strategy and for executed §4.2 plans.
func TestClusterOracleShardCounts(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("local Eval: %v", err)
	}
	if want.Len() == 0 {
		t.Fatal("degenerate oracle: empty local answer")
	}

	for _, shards := range []int{1, 2, 4} {
		co, _ := newTestCoordinator(t, db, shards)

		sess := co.Session()
		got, err := fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
		if err != nil {
			t.Fatalf("shards %d direct: %v", shards, err)
		}
		if !got.Equal(want) {
			t.Errorf("shards %d direct: answer differs (%d vs %d rows)", shards, got.Len(), want.Len())
		}
		st := sess.Stats()
		if st.Scattered != 1 || st.Fallbacks != 0 || st.Partial {
			t.Errorf("shards %d direct: stats %+v, want 1 scattered, 0 fallbacks", shards, st)
		}

		plan, err := planner.PlanStatic(fl, planner.NewEstimator(db), nil)
		if err != nil {
			t.Fatalf("PlanStatic: %v", err)
		}
		sess = co.Session()
		res, err := plan.Execute(db, &core.EvalOptions{FilterEval: sess.FilterEval})
		if err != nil {
			t.Fatalf("shards %d static: %v", shards, err)
		}
		got = res.Answer
		if !got.Equal(want) {
			t.Errorf("shards %d static: answer differs (%d vs %d rows)", shards, got.Len(), want.Len())
		}
		if st := sess.Stats(); st.Scattered+st.Fallbacks == 0 {
			t.Errorf("shards %d static: hook never consulted", shards)
		}
	}
}

// TestEmptyShardsMerge: more shards than distinct shard-key values leaves
// some workers with no tuples; their empty partials must merge as
// identities (the S2 surface) and the answer must be unchanged.
func TestEmptyShardsMerge(t *testing.T) {
	db := storage.NewDatabase()
	rel := storage.NewRelation("baskets", "BID", "Item")
	for b := int64(0); b < 2; b++ {
		for i := int64(0); i < 6; i++ {
			rel.InsertValues(storage.Int(b), storage.Int(i))
		}
	}
	db.Add(rel)
	fl := core.MustParse(pairFlock)
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("local Eval: %v", err)
	}
	co, _ := newTestCoordinator(t, db, 4) // only 2 distinct BIDs
	sess := co.Session()
	got, err := fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	if err != nil {
		t.Fatalf("scattered Eval: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("answer differs with empty shards (%d vs %d rows)", got.Len(), want.Len())
	}
}

// TestIllegalShardingFallsBack: sharding baskets on the item column makes
// the pair flock unpartitionable (the two atoms bind different params at
// the shard column); the hook must decline and the local path must serve
// the exact answer.
func TestIllegalShardingFallsBack(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("local Eval: %v", err)
	}
	m, err := BuildMap(db, "baskets", 1, 2)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	addrs := spawnWorkers(t, db, m)
	co := New(m, &Client{Shards: addrs, Timeout: 5 * time.Second}, db.Names())
	sess := co.Session()
	got, err := fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("fallback answer differs (%d vs %d rows)", got.Len(), want.Len())
	}
	st := sess.Stats()
	if st.Scattered != 0 || st.Fallbacks == 0 {
		t.Errorf("stats %+v, want 0 scattered and >0 fallbacks", st)
	}
}

// TestShardableReasons pins the reason-returning form of the legality
// decision: each of the four partition rules (plus the filter check)
// must fail with a reason naming what blocked the scatter — the text the
// QF024 lint warning surfaces to flock authors.
func TestShardableReasons(t *testing.T) {
	db := basketsDB(t)
	sales := storage.NewRelation("sales", "B", "X")
	sales.InsertValues(storage.Int(1), storage.Int(2))
	db.Add(sales)

	cases := []struct {
		name   string
		flock  string
		rel    string
		col    int
		ok     bool
		reason string // substring of the expected reason
	}{
		{
			name:  "shardable",
			flock: pairFlock,
			rel:   "baskets", col: 0,
			ok: true,
		},
		{
			name:  "rule1-no-sharded-subgoal",
			flock: pairFlock,
			rel:   "sales", col: 0,
			ok: false, reason: "no positive subgoal of the sharded relation sales",
		},
		{
			name: "rule2-negated",
			flock: "QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND NOT sales(B,B)\n" +
				"FILTER:\nCOUNT(answer.B) >= 5\n",
			rel: "sales", col: 0,
			ok: false, reason: "negates the sharded relation sales",
		},
		{
			name:  "rule3-different-terms",
			flock: pairFlock,
			rel:   "baskets", col: 1,
			ok: false, reason: "binds different terms at the shard column",
		},
		{
			name: "rule4-var-not-in-head",
			flock: "QUERY:\nanswer(B) :- baskets(B,$1) AND sales(B,X)\n" +
				"FILTER:\nCOUNT(answer.B) >= 5\n",
			rel: "sales", col: 1,
			ok: false, reason: "does not reach the head",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := core.MustParse(tc.flock)
			m, err := BuildMap(db, tc.rel, tc.col, 2)
			if err != nil {
				t.Fatalf("BuildMap: %v", err)
			}
			ok, reason := Shardable(m, fl.Params, fl.Query, fl.Filter)
			if ok != tc.ok {
				t.Fatalf("Shardable = %v (%q), want %v", ok, reason, tc.ok)
			}
			if tc.ok && reason != "" {
				t.Errorf("shardable computation carries reason %q, want none", reason)
			}
			if !tc.ok && !strings.Contains(reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", reason, tc.reason)
			}
		})
	}
}

// TestDeadShardStructuredError: a dead worker must surface as a typed
// ShardError naming the shard — never a hang or a silent wrong answer.
func TestDeadShardStructuredError(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	m, err := BuildMap(db, "baskets", 0, 2)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	addrs := spawnWorkers(t, db, m)
	dead := httptest.NewServer(nil)
	deadAddr := dead.URL
	dead.Close() // now refuses connections
	addrs[1] = deadAddr

	co := New(m, &Client{Shards: addrs, Timeout: time.Second, Retries: 1, Backoff: time.Millisecond}, db.Names())
	sess := co.Session()
	_, err = fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if se.Shard != deadAddr {
		t.Errorf("ShardError.Shard = %q, want %q", se.Shard, deadAddr)
	}
}

// TestAllowPartialDegraded: with AllowPartial the dead shard's partition
// is simply missing — the request succeeds, the answer is a subset of the
// full one (COUNT thresholds only lose support), and the report says so.
func TestAllowPartialDegraded(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("local Eval: %v", err)
	}
	m, err := BuildMap(db, "baskets", 0, 2)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	addrs := spawnWorkers(t, db, m)
	dead := httptest.NewServer(nil)
	deadAddr := dead.URL
	dead.Close()
	addrs[1] = deadAddr

	co := New(m, &Client{Shards: addrs, Timeout: time.Second, Retries: 0}, db.Names())
	co.AllowPartial = true
	sess := co.Session()
	got, err := fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	if err != nil {
		t.Fatalf("degraded Eval: %v", err)
	}
	for _, tp := range got.Tuples() {
		if !want.Contains(tp) {
			t.Errorf("degraded answer invented tuple %v", tp)
		}
	}
	st := sess.Stats()
	if !st.Partial || len(st.Failed) != 1 || st.Failed[0] != deadAddr {
		t.Errorf("stats %+v, want partial=true failed=[%s]", st, deadAddr)
	}
}

// TestAllShardsDeadFailsEvenWhenPartialAllowed: degraded service still
// requires at least one live shard.
func TestAllShardsDeadFailsEvenWhenPartialAllowed(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	m, err := BuildMap(db, "baskets", 0, 2)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	dead := httptest.NewServer(nil)
	deadAddr := dead.URL
	dead.Close()
	co := New(m, &Client{Shards: []string{deadAddr, deadAddr}, Timeout: time.Second}, db.Names())
	co.AllowPartial = true
	sess := co.Session()
	_, err = fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
}

// TestRetryThenSucceed: transient 5xx responses are retried; the scatter
// succeeds once the shard recovers.
func TestRetryThenSucceed(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	want, err := fl.Eval(db, nil)
	if err != nil {
		t.Fatalf("local Eval: %v", err)
	}
	m, err := BuildMap(db, "baskets", 0, 1)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	restricted, err := m.Restrict(db, 0)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	inner := PartialHandler(func() *storage.Database { return restricted }, 1, 10*time.Second)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		inner(w, r)
	}))
	defer srv.Close()

	co := New(m, &Client{Shards: []string{srv.URL}, Timeout: 5 * time.Second, Retries: 2, Backoff: time.Millisecond}, db.Names())
	sess := co.Session()
	got, err := fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	if err != nil {
		t.Fatalf("Eval after retry: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("retried answer differs")
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (one failure, one success)", calls.Load())
	}
}

// TestVersionMismatchFailsFast: a worker at another data version answers
// 409, which must not be retried (repeating it cannot succeed).
func TestVersionMismatchFailsFast(t *testing.T) {
	db := basketsDB(t)
	fl := core.MustParse(pairFlock)
	m, err := BuildMap(db, "baskets", 0, 1)
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	restricted, err := m.Restrict(db, 0)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	stale := restricted.Clone()
	stale.SetVersion(99)
	var calls atomic.Int64
	inner := PartialHandler(func() *storage.Database { return stale }, 1, 10*time.Second)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		inner(w, r)
	}))
	defer srv.Close()

	co := New(m, &Client{Shards: []string{srv.URL}, Timeout: 5 * time.Second, Retries: 3, Backoff: time.Millisecond}, db.Names())
	sess := co.Session()
	_, err = fl.Eval(db, &core.EvalOptions{FilterEval: sess.FilterEval})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if se.Status != http.StatusConflict {
		t.Errorf("status = %d, want 409", se.Status)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (4xx must not retry)", calls.Load())
	}
}
