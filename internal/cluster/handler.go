package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// maxPartialBody bounds a /partial request body (the program plus shipped
// auxiliary relations).
const maxPartialBody = 64 << 20

// PartialRequest is one scattered FILTER computation, described exactly as
// core.EvalPartialGroups receives it: the parametrized query (one rule per
// line), the parameter list (names without the $ sigil, in column order),
// the filter condition, and the relations the worker does not hold locally
// — materialized views and earlier FILTER-step results — shipped inline as
// literal rows. Version pins the coordinator's data version; a worker at a
// different version refuses with 409 rather than silently answering over
// other data.
type PartialRequest struct {
	Query   string   `json:"query"`
	Params  []string `json:"params"`
	Filter  string   `json:"filter"`
	Name    string   `json:"name"`
	Version uint64   `json:"version"`
	Aux     []AuxRel `json:"aux,omitempty"`
}

// AuxRel is one shipped auxiliary relation; rows carry storage literals
// (see storage.Value's Literal/ParseValue round-trip).
type AuxRel struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// PartialResponse carries a shard's partial group states, sorted by
// parameter literals (deterministic across runs), plus the shard's own
// instrumented run report for the coordinator to merge.
type PartialResponse struct {
	Groups  []core.GroupState `json:"groups"`
	Version uint64            `json:"version"`
	Report  *obs.RunReport    `json:"report,omitempty"`
}

// partialError is the structured error body of a failed /partial call.
type partialError struct {
	Error string `json:"error"`
}

// PartialHandler serves POST /partial on a worker: evaluate one FILTER
// computation's partial group states over the worker's (restricted)
// database snapshot. The handler is read-only — retries are always safe.
func PartialHandler(snapshot func() *storage.Database, workers int, timeout time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writePartialError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req PartialRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPartialBody))
		if err := dec.Decode(&req); err != nil {
			writePartialError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		db := snapshot()
		if req.Version != db.Version() {
			writePartialError(w, http.StatusConflict,
				fmt.Sprintf("version mismatch: coordinator at v%d, shard at v%d", req.Version, db.Version()))
			return
		}
		query, err := datalog.ParseUnion(req.Query)
		if err != nil {
			writePartialError(w, http.StatusBadRequest, fmt.Sprintf("bad query: %v", err))
			return
		}
		if err := query.Validate(); err != nil {
			writePartialError(w, http.StatusBadRequest, fmt.Sprintf("bad query: %v", err))
			return
		}
		spec, err := datalog.ParseFilter(req.Filter)
		if err != nil {
			writePartialError(w, http.StatusBadRequest, fmt.Sprintf("bad filter: %v", err))
			return
		}
		filter, err := core.NewFilter(spec, query[0].Head)
		if err != nil {
			writePartialError(w, http.StatusBadRequest, fmt.Sprintf("bad filter: %v", err))
			return
		}
		params := make([]datalog.Param, len(req.Params))
		for i, p := range req.Params {
			params[i] = datalog.Param(p)
		}
		if len(req.Aux) > 0 {
			db = db.Clone()
			for _, aux := range req.Aux {
				rel := storage.NewRelation(aux.Name, aux.Columns...)
				for _, row := range aux.Rows {
					if len(row) != len(aux.Columns) {
						writePartialError(w, http.StatusBadRequest,
							fmt.Sprintf("aux relation %s: row arity %d != %d columns", aux.Name, len(row), len(aux.Columns)))
						return
					}
					t := make(storage.Tuple, len(row))
					for j, lit := range row {
						t[j] = storage.ParseValue(lit)
					}
					rel.Insert(t)
				}
				db.Add(rel)
			}
		}

		tr := &eval.Trace{}
		opts := &core.EvalOptions{
			Workers: workers,
			Trace:   tr,
			Ctx:     r.Context(),
			Limits:  eval.Limits{Wall: timeout},
		}
		states, err := core.EvalPartialGroups(db, params, query, filter, opts)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, eval.ErrCanceled) {
				status = http.StatusGatewayTimeout
			}
			writePartialError(w, status, err.Error())
			return
		}
		resp := PartialResponse{Groups: states, Version: db.Version(), Report: tr.Report("partial", workers, len(states))}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The status line is gone; nothing more to do.
			_ = err
		}
	}
}

func writePartialError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(partialError{Error: msg})
}
