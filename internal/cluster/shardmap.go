// Package cluster implements flockd's multi-process scale-out: a
// contiguous range-sharding map over one base relation, an HTTP
// scatter/gather client with per-shard timeout/retry, the worker-side
// /partial handler, and a coordinator that takes over FILTER computations
// (§4.1) via core.EvalOptions.FilterEval — evaluating each shard's
// partition of the extended answer remotely and merging the serialized
// partial group states with core.MergeGroupStates.
//
// The design inherits the engine's parallel-correctness contract: the
// shard map partitions on sorted distinct values of one column (the same
// contiguous range partitioning the in-process join and group-by use), the
// per-shard states merge in shard order, and a computation the map cannot
// legally partition falls back to coordinator-local evaluation — so
// answers are bit-identical at every shard count.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"queryflocks/internal/storage"
)

// Map is a contiguous range-sharding of one relation's tuples across
// Shards workers, keyed on column Col. The cut points are positions in
// the sorted distinct (normalized) value list of that column, so the map
// is a deterministic function of the data: every process that builds a
// map over the same relation gets the same assignment, which lets workers
// restrict themselves without coordinator round-trips.
type Map struct {
	Rel    string
	Col    int
	Shards int

	vals []storage.Value // sorted distinct normalized shard-column values
	cuts []int           // len Shards+1; shard i owns vals[cuts[i]:cuts[i+1]]
}

// ParseShardBy parses the -shard-by flag: "rel" or "rel:col". An empty
// string selects the default relation (the largest) and column 0.
func ParseShardBy(s string) (rel string, col int, err error) {
	if s == "" {
		return "", 0, nil
	}
	rel = s
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		rel = s[:i]
		col, err = strconv.Atoi(s[i+1:])
		if err != nil || col < 0 {
			return "", 0, fmt.Errorf("cluster: bad -shard-by column in %q (want rel or rel:col)", s)
		}
	}
	if rel == "" {
		return "", 0, fmt.Errorf("cluster: bad -shard-by %q (want rel or rel:col)", s)
	}
	return rel, col, nil
}

// BuildMap constructs the shard map for db. With rel == "" the largest
// relation is sharded (ties break to the lexicographically smallest name),
// on column col. The map depends only on the relation's contents, not on
// tuple order.
func BuildMap(db *storage.Database, rel string, col, shards int) (*Map, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", shards)
	}
	if rel == "" {
		names := append([]string(nil), db.Names()...)
		sort.Strings(names)
		best, bestLen := "", -1
		for _, n := range names {
			if l := db.MustSource(n).Len(); l > bestLen {
				best, bestLen = n, l
			}
		}
		if best == "" {
			return nil, fmt.Errorf("cluster: empty database, nothing to shard")
		}
		rel = best
	}
	r, err := db.Relation(rel)
	if err != nil {
		return nil, err
	}
	if col < 0 || col >= r.Arity() {
		return nil, fmt.Errorf("cluster: shard column %d out of range for %s/%d", col, rel, r.Arity())
	}
	//lint:ignore DL005 keys are Normalize()d at the insertion below
	seen := make(map[storage.Value]struct{})
	for _, t := range r.Tuples() {
		seen[t[col].Normalize()] = struct{}{}
	}
	vals := make([]storage.Value, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })

	cuts := make([]int, shards+1)
	base, extra := len(vals)/shards, len(vals)%shards
	for i := 0; i < shards; i++ {
		cuts[i+1] = cuts[i] + base
		if i < extra {
			cuts[i+1]++
		}
	}
	return &Map{Rel: rel, Col: col, Shards: shards, vals: vals, cuts: cuts}, nil
}

// ShardOf returns the shard owning value v. Values absent from the map
// (mutations after it was built) route deterministically by sort position.
func (m *Map) ShardOf(v storage.Value) int {
	v = v.Normalize()
	// Position of v in the sorted distinct list (insertion point for
	// unseen values).
	pos := sort.Search(len(m.vals), func(i int) bool { return m.vals[i].Compare(v) >= 0 })
	// The owning shard is the one whose range contains pos.
	s := sort.Search(m.Shards, func(i int) bool { return m.cuts[i+1] > pos })
	if s >= m.Shards {
		return m.Shards - 1 // v sorts past every cut: last shard
	}
	return s
}

// Restrict returns shard idx's view of db: the sharded relation cut down
// to the tuples this shard owns (in original tuple order), every other
// relation passed through whole (small relations are replicated), and the
// data version preserved so coordinator and workers agree on cache scope.
func (m *Map) Restrict(db *storage.Database, idx int) (*storage.Database, error) {
	if idx < 0 || idx >= m.Shards {
		return nil, fmt.Errorf("cluster: shard index %d out of range [0,%d)", idx, m.Shards)
	}
	out := storage.NewDatabase()
	for _, name := range db.Names() {
		if name != m.Rel {
			out.AddSource(db.MustSource(name))
			continue
		}
		r, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		cut := storage.NewRelation(name, r.Columns()...)
		for _, t := range r.Tuples() {
			if m.ShardOf(t[m.Col]) == idx {
				cut.Insert(t)
			}
		}
		out.Add(cut)
	}
	out.SetVersion(db.Version())
	if db.IO() != nil {
		out.SetIO(db.IO())
	}
	return out, nil
}

// String describes the map for logs and reports.
func (m *Map) String() string {
	return fmt.Sprintf("%s:%d over %d values -> %d shards", m.Rel, m.Col, len(m.vals), m.Shards)
}
