package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ShardError is a structured failure of one worker shard: the shard's
// address, the HTTP status (0 for transport errors), and the underlying
// cause. flockd surfaces it as a 502 naming the dead shard.
type ShardError struct {
	Shard  string
	Status int
	Err    error
}

func (e *ShardError) Error() string {
	if e.Status > 0 {
		return fmt.Sprintf("shard %s: status %d: %v", e.Shard, e.Status, e.Err)
	}
	return fmt.Sprintf("shard %s: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ShardResult is one shard's outcome of a scatter: the decoded response or
// a ShardError, plus the round-trip wall time for the merged report.
type ShardResult struct {
	Addr string
	Resp *PartialResponse
	Wall time.Duration
	Err  *ShardError
}

// Client scatters partial-evaluation requests to the worker shards.
// /partial is read-only on the workers, so failed attempts retry safely:
// transport errors and 5xx responses are retried up to Retries times with
// linear backoff; 4xx responses (including the 409 version mismatch) fail
// fast — repeating them cannot succeed.
type Client struct {
	// Shards lists the worker addresses in shard-index order ("host:port"
	// or a full URL). The order is part of the answer contract: partial
	// states merge in this order.
	Shards []string
	// Timeout bounds each attempt to one shard (not the whole scatter).
	Timeout time.Duration
	// Retries is the number of additional attempts after a retryable
	// failure; Backoff is the wait before attempt n+1 (linear: n*Backoff).
	Retries int
	Backoff time.Duration
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// url returns the /partial endpoint for a shard address.
func shardURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/") + "/partial"
}

// Scatter sends req to every shard concurrently and gathers the results
// in shard order. It never fails as a whole: per-shard failures land in
// the corresponding ShardResult.Err, and the caller applies the
// partial-failure policy.
func (c *Client) Scatter(ctx context.Context, req *PartialRequest) []ShardResult {
	body, err := json.Marshal(req)
	results := make([]ShardResult, len(c.Shards))
	if err != nil {
		for i, addr := range c.Shards {
			results[i] = ShardResult{Addr: addr, Err: &ShardError{Shard: addr, Err: err}}
		}
		return results
	}
	var wg sync.WaitGroup
	for i, addr := range c.Shards {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			start := time.Now()
			resp, serr := c.callShard(ctx, addr, body)
			results[i] = ShardResult{Addr: addr, Resp: resp, Wall: time.Since(start), Err: serr}
		}(i, addr)
	}
	wg.Wait()
	return results
}

// callShard runs the per-shard attempt loop.
func (c *Client) callShard(ctx context.Context, addr string, body []byte) (*PartialResponse, *ShardError) {
	client := c.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	var last *ShardError
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, &ShardError{Shard: addr, Err: ctx.Err()}
			case <-time.After(time.Duration(attempt) * c.Backoff):
			}
		}
		resp, serr, retryable := c.attempt(ctx, client, addr, body)
		if serr == nil {
			return resp, nil
		}
		last = serr
		if !retryable {
			return nil, last
		}
	}
	return nil, last
}

// attempt performs one HTTP round-trip to a shard.
func (c *Client) attempt(ctx context.Context, client *http.Client, addr string, body []byte) (*PartialResponse, *ShardError, bool) {
	actx := ctx
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, shardURL(addr), bytes.NewReader(body))
	if err != nil {
		return nil, &ShardError{Shard: addr, Err: err}, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := client.Do(hreq)
	if err != nil {
		// Transport failure (refused, reset, attempt timeout): retryable
		// unless the scatter itself was canceled.
		return nil, &ShardError{Shard: addr, Err: err}, ctx.Err() == nil
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg := readShardError(hresp.Body)
		serr := &ShardError{Shard: addr, Status: hresp.StatusCode, Err: fmt.Errorf("%s", msg)}
		return nil, serr, hresp.StatusCode >= 500 && ctx.Err() == nil
	}
	var out PartialResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, maxPartialBody)).Decode(&out); err != nil {
		return nil, &ShardError{Shard: addr, Status: hresp.StatusCode, Err: fmt.Errorf("bad response body: %v", err)}, ctx.Err() == nil
	}
	return &out, nil, false
}

// readShardError extracts the structured error message from a failed
// shard response, falling back to the raw body.
func readShardError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var pe partialError
	if err := json.Unmarshal(raw, &pe); err == nil && pe.Error != "" {
		return pe.Error
	}
	return strings.TrimSpace(string(raw))
}
