package physical

import (
	"bytes"
	"fmt"
	"time"

	"queryflocks/internal/obs"
	"queryflocks/internal/par"
	"queryflocks/internal/storage"
)

// record sends one event if collection is on.
func record(ctx *Ctx, e obs.Event) {
	if ctx.Col != nil {
		ctx.Col.Record(e)
	}
}

// --- scan ---

func (n *ScanNode) newOp(p *Plan) operator { return &scanOp{n: n, id: p.ids[n]} }

type scanOp struct {
	n  *ScanNode
	id int

	it        storage.Iterator
	cur       []storage.Tuple
	pos       int
	eof       bool
	checks    []func(ct, bt storage.Tuple) bool
	constKeys [][]byte
	keyBuf    []byte

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

var unitCt = storage.Tuple{}

// leadingConstPrefix returns the sort-key prefix covering the atom's
// constant arguments when they occupy the leading column positions
// 0..m-1 — the shape the disk engine's per-prefix index blocks can
// serve without a full scan. Non-leading constants yield m == 0.
func leadingConstPrefix(consts []constPos) (int, []byte) {
	if len(consts) == 0 {
		return 0, nil
	}
	vals := make(map[int]storage.Value, len(consts))
	for _, c := range consts {
		vals[c.pos] = c.val
	}
	var prefix []byte
	m := 0
	for {
		v, ok := vals[m]
		if !ok {
			break
		}
		prefix = v.AppendSortKey(prefix)
		m++
	}
	if m == 0 {
		return 0, nil
	}
	return m, prefix
}

func (o *scanOp) open(ctx *Ctx) error {
	src, err := ctx.DB.Source(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if src.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, src.Arity())
	}
	for _, c := range o.n.checks {
		if err := c.bind(ctx.DB); err != nil {
			return err
		}
	}
	o.checks = instantiateAll(o.n.checks)
	o.constKeys = make([][]byte, len(o.n.consts))
	for i, c := range o.n.consts {
		o.constKeys[i] = c.val.AppendKey(nil)
	}
	// Non-resident sources get the bound-column-prefix access path when
	// the constants form a leading prefix: the segment index skips to the
	// matching run instead of streaming the whole relation. Resident
	// sources keep the plain scan (prefix filtering would read the same
	// rows and only change the RowsIn accounting). The constant filters
	// below still run either way — LookupPrefix matches exactly the rows
	// they accept, so results are identical on both paths.
	if _, resident := src.Resident(); !resident {
		if m, prefix := leadingConstPrefix(o.n.consts); m > 0 {
			o.it = src.LookupPrefix(m, prefix)
		}
	}
	if o.it == nil {
		o.it = src.Scan()
	}
	return nil
}

func (o *scanOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	if err := ctx.Gate.Check(); err != nil {
		return nil, false, err
	}
	if o.eof && o.pos >= len(o.cur) {
		return nil, false, nil
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	var out []storage.Tuple
	for len(out) < batchSize {
		if o.pos >= len(o.cur) {
			if o.eof {
				break
			}
			batch, err := o.it.Next(batchSize)
			if err != nil {
				return nil, false, fmt.Errorf("physical: scan %s: %w", o.n.Pred, err)
			}
			if batch == nil {
				o.eof = true
				break
			}
			o.rowsIn += len(batch)
			o.cur, o.pos = batch, 0
			continue
		}
		bt := o.cur[o.pos]
		o.pos++
		if !o.accept(bt) {
			continue
		}
		row := make(storage.Tuple, 0, len(o.n.newPos))
		for _, p := range o.n.newPos {
			row = append(row, bt[p])
		}
		out = append(out, row)
	}
	o.rowsOut += len(out)
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

// accept applies the absorbed per-row filters: constant arguments,
// repeated-variable equalities, and absorbed checks.
func (o *scanOp) accept(bt storage.Tuple) bool {
	for i, c := range o.n.consts {
		o.keyBuf = bt[c.pos].AppendKey(o.keyBuf[:0])
		if !bytes.Equal(o.keyBuf, o.constKeys[i]) {
			return false
		}
	}
	for _, d := range o.n.dup {
		if !bt[d[0]].Equal(bt[d[1]]) {
			return false
		}
	}
	for _, check := range o.checks {
		if !check(unitCt, bt) {
			return false
		}
	}
	return true
}

func (o *scanOp) close(ctx *Ctx) {
	if o.it != nil {
		o.it.Close()
	}
	record(ctx, obs.Event{
		Op: obs.OpScan, ID: o.id, Desc: o.n.atom,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut,
		Absorbed: len(o.n.checks), Workers: 1, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- unit ---

func (n *UnitNode) newOp(p *Plan) operator { return &unitOp{id: p.ids[n]} }

type unitOp struct {
	id   int
	done bool
}

func (o *unitOp) open(*Ctx) error { return nil }

func (o *unitOp) next(*Ctx) ([]storage.Tuple, bool, error) {
	if o.done {
		return nil, false, nil
	}
	o.done = true
	return []storage.Tuple{{}}, true, nil
}

func (o *unitOp) close(ctx *Ctx) {
	record(ctx, obs.Event{Op: obs.OpScan, ID: o.id, Desc: "unit", RowsIn: 1, RowsOut: 1, Workers: 1, BoxedBatches: 1})
}

// --- hash join (with its build side) ---

func (n *JoinNode) newOp(p *Plan) operator {
	return &joinOp{n: n, id: p.ids[n], buildID: p.ids[n.Input], input: n.Probe.newOp(p)}
}

type joinOp struct {
	n       *JoinNode
	id      int
	buildID int
	input   operator

	src       storage.RelationSource
	idx       *storage.Index
	prefix    []byte
	seqChecks []func(ct, bt storage.Tuple) bool
	seqBuf    []byte
	pending   []storage.Tuple // probe output not yet emitted (chunked)

	buildWall    time.Duration
	buildWorkers int
	rowsIn       int
	rowsOut      int
	used         int
	batches      int
	wall         time.Duration
}

func (o *joinOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	src, err := ctx.DB.Source(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if src.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, src.Arity())
	}
	for _, c := range o.n.checks {
		if err := c.bind(ctx.DB); err != nil {
			return err
		}
	}
	o.src = src
	o.seqChecks = instantiateAll(o.n.checks)
	o.used = 1
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	o.buildWorkers = par.Resolve(ctx.Workers)
	o.idx = src.HashIndex(o.n.Input.idxCols, o.buildWorkers)
	if ctx.Col != nil {
		o.buildWall = time.Since(start)
	}
	for _, c := range o.n.consts {
		o.prefix = c.val.AppendKey(o.prefix)
	}
	return nil
}

// probe scans the binding tuples in [lo, hi) against the hash index,
// appending surviving joined rows to out. Callers supply private checks
// and a private key buffer, so concurrent probes share only read-only
// state; the possibly grown buffer is returned for reuse.
func (o *joinOp) probe(batch []storage.Tuple, lo, hi int, cks []func(ct, bt storage.Tuple) bool, buf []byte, out []storage.Tuple) ([]storage.Tuple, []byte) {
	n := o.n
	for i := lo; i < hi; i++ {
		ct := batch[i]
		buf = append(buf[:0], o.prefix...)
		for _, p := range n.probeCur {
			buf = ct[p].AppendKey(buf)
		}
		matches := o.idx.LookupBytes(buf)
	match:
		for _, bt := range matches {
			for _, d := range n.dup {
				if !bt[d[0]].Equal(bt[d[1]]) {
					continue match
				}
			}
			for _, check := range cks {
				if !check(ct, bt) {
					continue match
				}
			}
			row := make(storage.Tuple, 0, len(n.cols))
			row = append(row, ct...)
			for _, p := range n.newPos {
				row = append(row, bt[p])
			}
			out = append(out, row)
		}
	}
	return out, buf
}

func (o *joinOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	// A join's fan-out can multiply one input batch far past batchSize;
	// emit the probe output in batch-size chunks so downstream operators
	// (and the cancellation checkpoints at every batch boundary) keep
	// their per-call work bounded.
	if len(o.pending) > 0 {
		return o.emitChunk(), true, nil
	}
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	if err := ctx.Gate.Check(); err != nil {
		return nil, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	w := par.Resolve(ctx.Workers)
	if len(batch) < minParallelRows {
		w = 1
	}
	var out []storage.Tuple
	if w <= 1 {
		out, o.seqBuf = o.probe(batch, 0, len(batch), o.seqChecks, o.seqBuf, nil)
	} else {
		// Range-partitioned probe: per-worker output slices concatenated
		// in worker order reproduce the sequential emission order exactly
		// (each output row embeds its binding tuple, so partitions cannot
		// collide).
		outs := make([][]storage.Tuple, par.Chunks(len(batch), w))
		par.Run(len(batch), w, func(wi, lo, hi int) {
			outs[wi], _ = o.probe(batch, lo, hi, instantiateAll(o.n.checks), nil, nil)
		})
		total := 0
		for _, part := range outs {
			total += len(part)
		}
		out = make([]storage.Tuple, 0, total)
		for _, part := range outs {
			out = append(out, part...)
		}
		if w > o.used {
			o.used = w
		}
	}
	o.rowsIn += len(batch)
	o.rowsOut += len(out)
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	o.pending = out
	return o.emitChunk(), true, nil
}

// emitChunk pops the next batch-size chunk of pending probe output,
// preserving emission order exactly.
func (o *joinOp) emitChunk() []storage.Tuple {
	n := len(o.pending)
	if n > batchSize {
		n = batchSize
	}
	chunk := o.pending[:n]
	o.pending = o.pending[n:]
	return chunk
}

func (o *joinOp) close(ctx *Ctx) {
	o.input.close(ctx)
	buildRows := 0
	if o.src != nil {
		buildRows = o.src.Len()
	}
	record(ctx, obs.Event{
		Op: obs.OpBuild, ID: o.buildID, Desc: o.n.Input.Desc(),
		RowsIn: buildRows, RowsOut: buildRows, Workers: o.buildWorkers, Wall: o.buildWall,
	})
	record(ctx, obs.Event{
		Op: obs.OpJoin, ID: o.id, Desc: o.n.atom,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut,
		Absorbed: len(o.n.checks), Workers: o.used, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- anti-join ---

func (n *AntiJoinNode) newOp(p *Plan) operator {
	return &antiJoinOp{n: n, id: p.ids[n], input: n.Probe.newOp(p)}
}

type antiJoinOp struct {
	n     *AntiJoinNode
	id    int
	input operator

	keys   storage.KeyProber
	seqBuf []byte

	rowsIn  int
	rowsOut int
	used    int
	batches int
	wall    time.Duration
}

func (o *antiJoinOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	src, err := ctx.DB.Source(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if src.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, src.Arity())
	}
	o.keys = src.Keys()
	o.used = 1
	return nil
}

// filter keeps the binding tuples of [lo, hi) that do NOT match the
// negated atom, probing with a private key buffer.
func (o *antiJoinOp) filter(batch []storage.Tuple, lo, hi int, buf []byte, out []storage.Tuple) ([]storage.Tuple, []byte) {
	n := o.n
	for i := lo; i < hi; i++ {
		ct := batch[i]
		buf = buf[:0]
		for j, p := range n.srcPos {
			if p < 0 {
				buf = n.constVal[j].AppendKey(buf)
			} else {
				buf = ct[p].AppendKey(buf)
			}
		}
		if !o.keys.ContainsKey(buf) {
			out = append(out, ct)
		}
	}
	return out, buf
}

func (o *antiJoinOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	if err := ctx.Gate.Check(); err != nil {
		return nil, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	w := par.Resolve(ctx.Workers)
	if len(batch) < minParallelRows {
		w = 1
	}
	var out []storage.Tuple
	if w <= 1 {
		out, o.seqBuf = o.filter(batch, 0, len(batch), o.seqBuf, nil)
	} else {
		outs := make([][]storage.Tuple, par.Chunks(len(batch), w))
		par.Run(len(batch), w, func(wi, lo, hi int) {
			outs[wi], _ = o.filter(batch, lo, hi, nil, nil)
		})
		for _, part := range outs {
			out = append(out, part...)
		}
		if w > o.used {
			o.used = w
		}
	}
	o.rowsIn += len(batch)
	o.rowsOut += len(out)
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *antiJoinOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpAntiJoin, ID: o.id, Desc: o.n.atom,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Workers: o.used, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- select ---

func (n *SelectNode) newOp(p *Plan) operator {
	return &selectOp{n: n, id: p.ids[n], input: n.Probe.newOp(p)}
}

type selectOp struct {
	n     *SelectNode
	id    int
	input operator

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *selectOp) open(ctx *Ctx) error { return o.input.open(ctx) }

func (o *selectOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	n := o.n
	var out []storage.Tuple
	for _, ct := range batch {
		if n.op.Eval(n.left.value(ct, nil), n.right.value(ct, nil)) {
			out = append(out, ct)
		}
	}
	o.rowsIn += len(batch)
	o.rowsOut += len(out)
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *selectOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpSelect, ID: o.id, Desc: o.n.desc,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- project ---

func (n *ProjectNode) newOp(p *Plan) operator {
	op := &projectOp{n: n, id: p.ids[n], input: n.Probe.newOp(p)}
	if n.Dedup {
		op.seen = make(map[string]struct{})
	}
	return op
}

type projectOp struct {
	n     *ProjectNode
	id    int
	input operator

	seen     map[string]struct{}
	keyBuf   []byte
	released bool

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *projectOp) open(ctx *Ctx) error { return o.input.open(ctx) }

func (o *projectOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		// The dedup seen-set dies with the stream; release it from the
		// buffered-tuples gauge.
		if o.seen != nil && !o.released {
			ctx.track(-len(o.seen))
			o.released = true
		}
		return nil, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	var out []storage.Tuple
	for _, ct := range batch {
		row := ct.Project(o.n.pos)
		if o.seen != nil {
			o.keyBuf = row.AppendKey(o.keyBuf[:0])
			if _, dup := o.seen[string(o.keyBuf)]; dup {
				continue
			}
			o.seen[string(o.keyBuf)] = struct{}{}
			ctx.track(1)
		}
		out = append(out, row)
	}
	o.rowsIn += len(batch)
	o.rowsOut += len(out)
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *projectOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpProject, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- union ---

func (n *UnionNode) newOp(p *Plan) operator {
	ops := make([]operator, len(n.Branches))
	for i, br := range n.Branches {
		ops[i] = br.newOp(p)
	}
	return &unionOp{n: n, id: p.ids[n], branches: ops}
}

type unionOp struct {
	n        *UnionNode
	id       int
	branches []operator
	cur      int

	rowsOut int
	batches int
}

func (o *unionOp) open(ctx *Ctx) error {
	for _, br := range o.branches {
		if err := br.open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (o *unionOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	for o.cur < len(o.branches) {
		batch, ok, err := o.branches[o.cur].next(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			o.rowsOut += len(batch)
			o.batches++
			return batch, true, nil
		}
		o.cur++
	}
	return nil, false, nil
}

func (o *unionOp) close(ctx *Ctx) {
	for _, br := range o.branches {
		br.close(ctx)
	}
	record(ctx, obs.Event{
		Op: obs.OpUnion, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsOut, RowsOut: o.rowsOut, BoxedBatches: o.batches,
	})
}

// --- group-filter ---

func (n *GroupNode) newOp(p *Plan) operator {
	return &groupOp{n: n, id: p.ids[n], input: n.Probe.newOp(p)}
}

type grp struct {
	params storage.Tuple
	acc    GroupAcc
	done   bool
}

type groupOp struct {
	n     *GroupNode
	id    int
	input operator

	paramPos []int
	headPos  []int

	built   bool
	passing []storage.Tuple
	emitPos int

	groupsN int
	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *groupOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	arity := len(o.n.Probe.Columns())
	o.paramPos = make([]int, o.n.NParams)
	for i := range o.paramPos {
		o.paramPos[i] = i
	}
	o.headPos = make([]int, arity-o.n.NParams)
	for i := range o.headPos {
		o.headPos[i] = o.n.NParams + i
	}
	return nil
}

// build drains the input, aggregating incrementally: one accumulator per
// parameter group, fed the group's distinct head tuples in arrival order
// (duplicates from the un-deduplicated upstream are dropped by full-key,
// exactly reproducing the materializing path's distinct extended
// tuples). Once a monotone accumulator reports Done, its group stops
// retaining keys — this is where streaming beats materializing: large
// passing groups hold threshold-many entries instead of all their rows.
func (o *groupOp) build(ctx *Ctx) error {
	groups := make(map[string]*grp)
	var order []*grp
	seen := make(map[string]struct{})
	var buf []byte
	retained := 0
	for {
		batch, ok, err := o.input.next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		for _, t := range batch {
			buf = t.AppendKeyOn(buf[:0], o.paramPos)
			glen := len(buf)
			buf = t.AppendKeyOn(buf, o.headPos)
			g, ok := groups[string(buf[:glen])]
			if !ok {
				g = &grp{params: t.Project(o.paramPos), acc: o.n.Grouper.NewGroup()}
				groups[string(buf[:glen])] = g
				order = append(order, g)
				ctx.track(1)
			}
			if g.done {
				continue
			}
			if _, dup := seen[string(buf)]; dup {
				continue
			}
			seen[string(buf)] = struct{}{}
			ctx.track(1)
			retained++
			g.acc.Add(t.Project(o.headPos))
			if g.acc.Done() {
				g.done = true
			}
		}
		o.rowsIn += len(batch)
		o.batches++
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	for _, g := range order {
		if g.done || g.acc.Passes() {
			o.passing = append(o.passing, g.params)
		}
	}
	o.groupsN = len(order)
	o.rowsOut = len(o.passing)
	// The group state is released here; only the passing parameter
	// tuples stream on.
	ctx.track(-(len(order) + retained))
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	o.built = true
	return nil
}

func (o *groupOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	if !o.built {
		if err := o.build(ctx); err != nil {
			return nil, false, err
		}
	}
	if o.emitPos >= len(o.passing) {
		return nil, false, nil
	}
	end := o.emitPos + batchSize
	if end > len(o.passing) {
		end = len(o.passing)
	}
	batch := o.passing[o.emitPos:end]
	o.emitPos = end
	return batch, true, nil
}

func (o *groupOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpGroup, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut,
		Groups: o.groupsN, Workers: 1, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- materialize ---

func (n *MaterializeNode) newOp(p *Plan) operator {
	return &materializeOp{n: n, id: p.ids[n], input: n.Probe.newOp(p)}
}

type materializeOp struct {
	n     *MaterializeNode
	id    int
	input operator

	rel      *storage.Relation
	sink     bool // plan root: the answer relation, where MaxRows applies
	done     bool
	emitPos  int
	released bool

	rowsIn  int
	batches int
	wall    time.Duration
}

func (o *materializeOp) open(ctx *Ctx) error { return o.input.open(ctx) }

// materialize drains the input into a fresh relation (set semantics,
// arrival order — identical to the materializing evaluator's insertion
// order), then runs the Hook (§4.4 decision) and Register callbacks.
func (o *materializeOp) materialize(ctx *Ctx) error {
	rel := storage.NewRelation(o.n.Name, o.n.cols...)
	for {
		batch, ok, err := o.input.next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		for _, t := range batch {
			if rel.Insert(t) {
				ctx.track(1)
			}
		}
		o.rowsIn += len(batch)
		o.batches++
		if o.sink {
			if err := ctx.Gate.CheckOutput(rel.Len()); err != nil {
				return err
			}
		}
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
	}
	if o.n.Hook != nil {
		// A decision barrier is a boundary between pipeline phases; observe
		// cancellation before running the (possibly expensive) hook.
		if err := ctx.Gate.Check(); err != nil {
			return err
		}
		reduced, err := o.n.Hook(rel)
		if err != nil {
			return err
		}
		if reduced != rel {
			ctx.track(reduced.Len() - rel.Len())
			rel = reduced
		}
	}
	if o.n.Register != nil {
		if err := o.n.Register(rel); err != nil {
			return err
		}
	}
	o.rel = rel
	o.done = true
	return nil
}

func (o *materializeOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	if !o.done {
		if err := o.materialize(ctx); err != nil {
			return nil, false, err
		}
	}
	tuples := o.rel.Tuples()
	if o.emitPos >= len(tuples) {
		// Mid-pipeline barrier: the buffered relation is no longer
		// referenced once fully re-streamed.
		if !o.released {
			ctx.track(-len(tuples))
			o.released = true
		}
		return nil, false, nil
	}
	end := o.emitPos + batchSize
	if end > len(tuples) {
		end = len(tuples)
	}
	batch := tuples[o.emitPos:end]
	o.emitPos = end
	return batch, true, nil
}

func (o *materializeOp) close(ctx *Ctx) {
	o.input.close(ctx)
	rows := 0
	if o.rel != nil {
		rows = o.rel.Len()
	}
	record(ctx, obs.Event{
		Op: obs.OpMaterialize, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: rows, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}
