package physical

import (
	"strings"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// testDB builds a small database: edges e(1..n source, target), node
// labels l(node, label), and a blocked(node) set for negation tests.
func testDB() *storage.Database {
	db := storage.NewDatabase()
	e := storage.NewRelation("e", "src", "dst")
	for _, p := range [][2]int64{{1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 1}, {2, 4}} {
		e.InsertValues(storage.Int(p[0]), storage.Int(p[1]))
	}
	db.Add(e)
	l := storage.NewRelation("l", "node", "label")
	for _, p := range []struct {
		n int64
		s string
	}{{1, "a"}, {2, "b"}, {3, "a"}, {4, "b"}} {
		l.InsertValues(storage.Int(p.n), storage.Str(p.s))
	}
	db.Add(l)
	blocked := storage.NewRelation("blocked", "node")
	blocked.InsertValues(storage.Int(4))
	db.Add(blocked)
	return db
}

func mustRule(t *testing.T, src string) *datalog.Rule {
	t.Helper()
	r, err := datalog.ParseRule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

// compileRun compiles the rule over the given join order and runs the
// plan to a materialized answer.
func compileRun(t *testing.T, db *storage.Database, r *datalog.Rule, order []int, workers int) *storage.Relation {
	t.Helper()
	node, err := CompileRule(db, r, RuleOpts{Order: order, Out: r.Head.Args, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	rel, err := plan.Run(&Ctx{DB: db, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestCompileRuleJoinChain(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z)")
	got := compileRun(t, db, r, []int{0, 1}, 1)
	want := storage.NewRelation("answer", "X", "Z")
	// Two-step paths over the edge set above.
	for _, p := range [][2]int64{{1, 3}, {1, 4}, {2, 4}, {2, 1}, {3, 1}, {4, 2}, {4, 3}} {
		want.InsertValues(storage.Int(p[0]), storage.Int(p[1]))
	}
	if !got.Equal(want) {
		t.Fatalf("answer:\n%s\nwant:\n%s", got.Dump(), want.Dump())
	}
}

func TestCompileRuleNegationAndComparison(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Y) :- e(X,Y) AND NOT blocked(Y) AND X < Y")
	got := compileRun(t, db, r, []int{0}, 1)
	want := storage.NewRelation("answer", "X", "Y")
	for _, p := range [][2]int64{{1, 2}, {1, 3}, {2, 3}} {
		want.InsertValues(storage.Int(p[0]), storage.Int(p[1]))
	}
	if !got.Equal(want) {
		t.Fatalf("answer:\n%s\nwant:\n%s", got.Dump(), want.Dump())
	}
}

// TestWorkerCountInvariance checks the core parallelism contract: the
// materialized answer is identical — including tuple order — at every
// worker count.
func TestWorkerCountInvariance(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z) AND l(Z,L) AND NOT blocked(Z)")
	base := compileRun(t, db, r, []int{0, 1, 2}, 1)
	for _, w := range []int{2, 3, 8} {
		got := compileRun(t, db, r, []int{0, 1, 2}, w)
		if got.Dump() != base.Dump() {
			t.Fatalf("workers=%d answer order differs\ngot:\n%s\nwant:\n%s", w, got.Dump(), base.Dump())
		}
	}
}

func TestUnionArityMismatch(t *testing.T) {
	db := testDB()
	r1 := mustRule(t, "a(X,Y) :- e(X,Y)")
	r2 := mustRule(t, "a(X) :- l(X,L)")
	n1, err := CompileRule(db, r1, RuleOpts{Order: []int{0}, Out: r1.Head.Args})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := CompileRule(db, r2, RuleOpts{Order: []int{0}, Out: r2.Head.Args})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUnion([]Node{n1, n2}); err == nil {
		t.Fatal("union of 2-column and 1-column branches should fail")
	}
}

func TestCompileRuleErrors(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z)")
	if _, err := CompileRule(db, r, RuleOpts{Order: []int{0, 7}, Out: r.Head.Args}); err == nil {
		t.Error("out-of-range order index should fail")
	}
	if _, err := CompileRule(db, r, RuleOpts{Order: []int{0}, Out: r.Head.Args}); err == nil {
		t.Error("incomplete join order should fail")
	}
	unsafe := mustRule(t, "answer(X,W) :- e(X,Y)")
	if _, err := CompileRule(db, unsafe, RuleOpts{Order: []int{0}, Out: unsafe.Head.Args}); err == nil {
		t.Error("unsafe rule should fail")
	}
	if _, err := CompileRule(db, r, RuleOpts{Order: []int{0, 1}, Out: []datalog.Term{datalog.Var("Q")}}); err == nil {
		t.Error("projecting an unbound term should fail")
	}
}

// TestBarrierHook checks the dynamic-strategy surface: a Materialize
// barrier sees the exact intermediate relation and its replacement flows
// into downstream operators.
func TestBarrierHook(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z)")
	var sawRows int
	barrier := func(atomIdx int, atom string, cols []string) (Hook, string) {
		if atomIdx != 0 {
			return nil, ""
		}
		hook := func(rel *storage.Relation) (*storage.Relation, error) {
			sawRows = rel.Len()
			// Keep only edges out of node 1.
			out := storage.NewRelation(rel.Name(), rel.Columns()...)
			for _, t := range rel.Tuples() {
				if t[0].Equal(storage.Int(1)) {
					out.Insert(t)
				}
			}
			return out, nil
		}
		return hook, "keep src=1"
	}
	node, err := CompileRule(db, r, RuleOpts{Order: []int{0, 1}, Out: r.Head.Args, Dedup: true, Barrier: barrier})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	if !strings.Contains(plan.Explain(), "keep src=1") {
		t.Errorf("explain missing barrier desc:\n%s", plan.Explain())
	}
	got, err := plan.Run(&Ctx{DB: db, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sawRows != 6 {
		t.Errorf("barrier saw %d rows, want all 6 edges", sawRows)
	}
	want := storage.NewRelation("answer", "X", "Z")
	for _, p := range [][2]int64{{1, 3}, {1, 4}} {
		want.InsertValues(storage.Int(p[0]), storage.Int(p[1]))
	}
	if !got.Equal(want) {
		t.Fatalf("answer after barrier:\n%s\nwant:\n%s", got.Dump(), want.Dump())
	}
}

// countAcc counts distinct head tuples (the group operator dedups);
// pass when count >= 2, short-circuiting as soon as the bound is hit.
type countAcc struct{ n int }

func (a *countAcc) Add(storage.Tuple) { a.n++ }
func (a *countAcc) Passes() bool      { return a.n >= 2 }
func (a *countAcc) Done() bool        { return a.n >= 2 }

type countGrouper struct{}

func (countGrouper) NewGroup() GroupAcc { return &countAcc{} }

func TestGroupOperator(t *testing.T) {
	db := testDB()
	// Group edges by source; sources with >= 2 distinct targets pass.
	r := mustRule(t, "answer(X,Y) :- e(X,Y)")
	node, err := CompileRule(db, r, RuleOpts{Order: []int{0}, Out: r.Head.Args})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := NewGroup("grp", 1, countGrouper{}, "count >= 2", node)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("grp", grp, nil, "", nil))
	col := obs.NewCollector()
	got, err := plan.Run(&Ctx{DB: db, Workers: 1, Col: col})
	if err != nil {
		t.Fatal(err)
	}
	want := storage.NewRelation("grp", "X")
	want.InsertValues(storage.Int(1))
	want.InsertValues(storage.Int(2))
	if !got.Equal(want) {
		t.Fatalf("groups:\n%s\nwant:\n%s", got.Dump(), want.Dump())
	}
	rep := col.Report("test", 1, got.Len())
	if rep.PeakTuples <= 0 {
		t.Errorf("peak_tuples = %d, want > 0", rep.PeakTuples)
	}
}

// TestSelectAndAntiJoinOperators drives the standalone Select and
// AntiJoin operators (normally preempted by scan-time absorption) with a
// hand-built pipeline: scan e, keep X < Y, drop blocked targets.
func TestSelectAndAntiJoinOperators(t *testing.T) {
	db := testDB()
	scan := &ScanNode{Pred: "e", atom: "e(X,Y)", arity: 2, newPos: []int{0, 1}, cols: []string{"X", "Y"}}
	sel := &SelectNode{Probe: scan, desc: "X < Y", op: datalog.Lt,
		left: argRef{src: srcCur, pos: 0}, right: argRef{src: srcCur, pos: 1}, cols: scan.cols}
	anti := &AntiJoinNode{Probe: sel, Pred: "blocked", atom: "NOT blocked(Y)", arity: 1,
		srcPos: []int{1}, constVal: make([]storage.Value, 1), cols: sel.cols}
	for _, w := range []int{1, 4} {
		plan := NewPlan(NewMaterialize("answer", anti, nil, "", nil))
		got, err := plan.Run(&Ctx{DB: db, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		want := storage.NewRelation("answer", "X", "Y")
		for _, p := range [][2]int64{{1, 2}, {1, 3}, {2, 3}} {
			want.InsertValues(storage.Int(p[0]), storage.Int(p[1]))
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d:\n%s\nwant:\n%s", w, got.Dump(), want.Dump())
		}
	}
}

func TestExplainTreeShape(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z) AND NOT blocked(Z) AND X < Z")
	node, err := CompileRule(db, r, RuleOpts{Order: []int{0, 1}, Out: r.Head.Args, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	out := plan.Explain()
	for _, want := range []string{"materialize#1 answer", "project#", "join#", "build#", "scan#", "absorbed"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// IDs are preorder and unique.
	seen := map[int]bool{}
	for _, n := range plan.Nodes() {
		id := plan.NodeID(n)
		if id <= 0 || seen[id] {
			t.Fatalf("bad or duplicate node id %d", id)
		}
		seen[id] = true
	}
}

// TestOperatorEventsOrder checks operators report themselves leaf-first
// with their plan-node ids attached.
func TestOperatorEventsOrder(t *testing.T) {
	db := testDB()
	r := mustRule(t, "answer(X,Z) :- e(X,Y) AND e(Y,Z)")
	node, err := CompileRule(db, r, RuleOpts{Order: []int{0, 1}, Out: r.Head.Args, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	col := obs.NewCollector()
	if _, err := plan.Run(&Ctx{DB: db, Workers: 1, Col: col}); err != nil {
		t.Fatal(err)
	}
	rep := col.Report("test", 1, 0)
	var ops []string
	for _, s := range rep.Steps {
		ops = append(ops, string(s.Op))
		if s.ID <= 0 {
			t.Errorf("%s event missing plan-node id", s.Op)
		}
	}
	want := []string{"scan", "build", "join", "project", "materialize"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Errorf("event order %v, want %v", ops, want)
	}
}
