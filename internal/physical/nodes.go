package physical

import (
	"fmt"
	"strings"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// argSrc says where a check argument's value comes from when a
// (binding, candidate) row pair is scanned.
type argSrc int8

const (
	srcConst argSrc = iota // a constant term
	srcCur                 // column of the streamed binding tuple
	srcBase                // column of the base-relation candidate tuple
)

// argRef resolves one check argument against a row pair.
type argRef struct {
	src argSrc
	pos int
	val storage.Value
}

func (a argRef) value(ct, bt storage.Tuple) storage.Value {
	switch a.src {
	case srcConst:
		return a.val
	case srcCur:
		return ct[a.pos]
	default:
		return bt[a.pos]
	}
}

// checkKind classifies an absorbed per-row check.
type checkKind int8

const (
	checkCmp        checkKind = iota // arithmetic comparison
	checkMember                      // positive atom absorbed as a semi-join
	checkAntiMember                  // negated atom absorbed into the scan
)

// Check is one subgoal absorbed into a scan or join: decided per scanned
// row pair, before the joined row is emitted (the Fig. 9 reducer shape).
type Check struct {
	kind checkKind
	desc string

	// Comparison checks.
	op          datalog.CmpOp
	left, right argRef

	// Membership checks: probe (args...) against the pred relation.
	pred string
	args []argRef
	keys storage.KeyProber // resolved at open
	rel  *storage.Relation // set when the source is resident (columnar path)
}

func (c *Check) bind(db *storage.Database) error {
	if c.kind == checkCmp {
		return nil
	}
	src, err := db.Source(c.pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if src.Arity() != len(c.args) {
		return fmt.Errorf("physical: check %s arity %d vs relation arity %d", c.desc, len(c.args), src.Arity())
	}
	c.keys = src.Keys()
	c.rel, _ = src.Resident()
	return nil
}

// instantiate returns one worker's private row check. Membership checks
// own a probe tuple and key buffer, so concurrent workers never share
// mutable state; comparison checks are stateless.
func (c *Check) instantiate() func(ct, bt storage.Tuple) bool {
	if c.kind == checkCmp {
		op, l, r := c.op, c.left, c.right
		return func(ct, bt storage.Tuple) bool {
			return op.Eval(l.value(ct, bt), r.value(ct, bt))
		}
	}
	want := c.kind == checkMember
	keys, args := c.keys, c.args
	probe := make(storage.Tuple, len(args))
	var buf []byte
	return func(ct, bt storage.Tuple) bool {
		for i, a := range args {
			probe[i] = a.value(ct, bt)
		}
		buf = probe.AppendKey(buf[:0])
		return keys.ContainsKey(buf) == want
	}
}

func instantiateAll(checks []*Check) []func(ct, bt storage.Tuple) bool {
	if len(checks) == 0 {
		return nil
	}
	out := make([]func(ct, bt storage.Tuple) bool, len(checks))
	for i, c := range checks {
		out[i] = c.instantiate()
	}
	return out
}

// constPos is one constant argument position of a joined atom.
type constPos struct {
	pos int
	val storage.Value
}

// ScanNode is the pipeline source: it reads the first atom's base
// relation in insertion order, keeping tuples that match the constant
// arguments, the repeated-variable equalities, and the absorbed checks,
// and emits the newly bound columns.
type ScanNode struct {
	Pred   string
	atom   string
	arity  int
	consts []constPos
	dup    [][2]int
	checks []*Check
	newPos []int
	cols   []string
}

func (n *ScanNode) Kind() Kind        { return KindScan }
func (n *ScanNode) Columns() []string { return n.cols }
func (n *ScanNode) Inputs() []Node    { return nil }
func (n *ScanNode) Desc() string {
	if len(n.checks) > 0 {
		return fmt.Sprintf("%s (+%d absorbed)", n.atom, len(n.checks))
	}
	return n.atom
}

// UnitNode emits the single empty tuple — the join identity, used when a
// (ground) rule has no positive atoms so its pending subgoals still have
// a stream to filter.
type UnitNode struct{}

func (n *UnitNode) Kind() Kind        { return KindScan }
func (n *UnitNode) Desc() string      { return "unit" }
func (n *UnitNode) Columns() []string { return nil }
func (n *UnitNode) Inputs() []Node    { return nil }

// BuildNode is the hash-index build on a join's base relation (the only
// build-side pipeline breaker). Key columns list constants first (fixed
// key prefix) then the probed positions.
type BuildNode struct {
	Pred    string
	idxCols []int
}

func (n *BuildNode) Kind() Kind        { return KindBuild }
func (n *BuildNode) Columns() []string { return nil }
func (n *BuildNode) Inputs() []Node    { return nil }

// newOp is never called: the join operator performs the index build
// itself (the node exists for the plan tree and per-operator events).
func (n *BuildNode) newOp(p *Plan) operator { return nil }
func (n *BuildNode) Desc() string {
	keys := make([]string, len(n.idxCols))
	for i, c := range n.idxCols {
		keys[i] = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("%s key(%s)", n.Pred, strings.Join(keys, ","))
}

// JoinNode hash-joins the streamed bindings against a base relation,
// with absorbed checks applied before joined rows are emitted. Probe
// batches are range-partitioned across workers; per-worker outputs are
// concatenated in worker order, so the output order is identical at
// every worker count.
type JoinNode struct {
	Input *BuildNode // build side, listed first in Inputs
	Probe Node       // streamed binding side

	Pred     string
	atom     string
	arity    int
	consts   []constPos
	probeCur []int
	probeRel []int
	dup      [][2]int
	checks   []*Check
	newPos   []int
	cols     []string
}

func (n *JoinNode) Kind() Kind        { return KindJoin }
func (n *JoinNode) Columns() []string { return n.cols }
func (n *JoinNode) Inputs() []Node    { return []Node{n.Input, n.Probe} }
func (n *JoinNode) Desc() string {
	if len(n.checks) > 0 {
		return fmt.Sprintf("%s (+%d absorbed)", n.atom, len(n.checks))
	}
	return n.atom
}

// AntiJoinNode drops bindings for which the fully bound negated atom
// holds, via key probes into the base relation.
type AntiJoinNode struct {
	Probe Node

	Pred     string
	atom     string
	arity    int
	srcPos   []int           // cur column per atom position; <0 means constVal
	constVal []storage.Value // constants per atom position
	cols     []string
}

func (n *AntiJoinNode) Kind() Kind        { return KindAntiJoin }
func (n *AntiJoinNode) Desc() string      { return n.atom }
func (n *AntiJoinNode) Columns() []string { return n.cols }
func (n *AntiJoinNode) Inputs() []Node    { return []Node{n.Probe} }

// SelectNode applies a fully bound arithmetic comparison.
type SelectNode struct {
	Probe Node

	desc        string
	op          datalog.CmpOp
	left, right argRef // srcConst or srcCur only
	cols        []string
}

func (n *SelectNode) Kind() Kind        { return KindSelect }
func (n *SelectNode) Desc() string      { return n.desc }
func (n *SelectNode) Columns() []string { return n.cols }
func (n *SelectNode) Inputs() []Node    { return []Node{n.Probe} }

// ProjectNode projects the stream onto output columns; with Dedup it
// keeps the first occurrence of each distinct projected tuple (the only
// state it holds is the seen-key set).
type ProjectNode struct {
	Probe Node

	pos   []int
	cols  []string
	Dedup bool
}

func (n *ProjectNode) Kind() Kind        { return KindProject }
func (n *ProjectNode) Columns() []string { return n.cols }
func (n *ProjectNode) Inputs() []Node    { return []Node{n.Probe} }
func (n *ProjectNode) Desc() string {
	d := strings.Join(n.cols, ",")
	if n.Dedup {
		d += " dedup"
	}
	return d
}

// UnionNode concatenates branch streams in branch order. Branch columns
// may differ in name across rules of a union; the output takes the first
// branch's names (arities must match).
type UnionNode struct {
	Branches []Node
}

// NewUnion builds a union node over the branch pipelines.
func NewUnion(branches []Node) (*UnionNode, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("physical: empty union")
	}
	arity := len(branches[0].Columns())
	for _, br := range branches[1:] {
		if len(br.Columns()) != arity {
			return nil, fmt.Errorf("physical: union branches project %d vs %d columns", arity, len(br.Columns()))
		}
	}
	return &UnionNode{Branches: branches}, nil
}

func (n *UnionNode) Kind() Kind        { return KindUnion }
func (n *UnionNode) Desc() string      { return fmt.Sprintf("(%d branches)", len(n.Branches)) }
func (n *UnionNode) Columns() []string { return n.Branches[0].Columns() }
func (n *UnionNode) Inputs() []Node    { return n.Branches }

// GroupNode groups the extended-answer stream by its first NParams
// columns, feeds each group's distinct head tuples to a fresh
// accumulator (honoring the monotone Done short-circuit), and emits the
// passing parameter tuples in first-seen group order. A pipeline
// breaker, but it holds one accumulator per group — not the extended
// result itself.
type GroupNode struct {
	Probe Node

	Name       string
	NParams    int
	Grouper    Grouper
	filterDesc string
	cols       []string
}

// NewGroup builds the group-filter operator; filterDesc is the FILTER
// condition rendering used in EXPLAIN output and events.
func NewGroup(name string, nParams int, g Grouper, filterDesc string, in Node) (*GroupNode, error) {
	cols := in.Columns()
	if nParams < 0 || nParams > len(cols) {
		return nil, fmt.Errorf("physical: group by %d of %d columns", nParams, len(cols))
	}
	return &GroupNode{
		Probe: in, Name: name, NParams: nParams, Grouper: g,
		filterDesc: filterDesc, cols: append([]string(nil), cols[:nParams]...),
	}, nil
}

func (n *GroupNode) Kind() Kind        { return KindGroup }
func (n *GroupNode) Desc() string      { return fmt.Sprintf("%s [%s]", n.Name, n.filterDesc) }
func (n *GroupNode) Columns() []string { return n.cols }
func (n *GroupNode) Inputs() []Node    { return []Node{n.Probe} }

// MaterializeNode collects the stream into a storage.Relation (set
// semantics, arrival order). As the plan root it is the sink whose
// relation Plan.Run returns; mid-pipeline it is a barrier that runs its
// Hook on the materialized relation (the §4.4 decision site) and
// re-streams the — possibly reduced — result. Register, when set,
// publishes the relation (FILTER-step plans add it to the scratch
// database under the step's name).
type MaterializeNode struct {
	Probe Node

	Name     string
	Hook     Hook
	HookDesc string
	Register func(*storage.Relation) error
	cols     []string
}

// NewMaterialize builds a materialize sink/barrier over in. hookDesc
// annotates the barrier in EXPLAIN output when hook is non-nil.
func NewMaterialize(name string, in Node, hook Hook, hookDesc string, register func(*storage.Relation) error) *MaterializeNode {
	return &MaterializeNode{
		Probe: in, Name: name, Hook: hook, HookDesc: hookDesc,
		Register: register, cols: in.Columns(),
	}
}

func (n *MaterializeNode) Kind() Kind        { return KindMaterialize }
func (n *MaterializeNode) Columns() []string { return n.cols }
func (n *MaterializeNode) Inputs() []Node    { return []Node{n.Probe} }
func (n *MaterializeNode) Desc() string {
	if n.Hook != nil && n.HookDesc != "" {
		return fmt.Sprintf("%s [%s]", n.Name, n.HookDesc)
	}
	return n.Name
}
