package physical

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the cooperative cancellation and resource-budget layer
// shared by both executors. A query carries a context.Context plus a
// Limits value; the pair resolves (once per query, so multi-step plans
// share one clock) into a Gate, the checkpoint that streaming operators
// consult at batch boundaries and the legacy materializing executor at
// relation boundaries. Nothing here preempts a running scan: the engine
// stays single-purpose between checkpoints and aborts at the next one,
// which bounds the reaction latency to one batch (streaming) or one
// relation operation (materializing).

// ErrCanceled reports that an evaluation stopped before completion
// because its context was canceled or its wall-clock limit expired.
// Typed: errors.Is(err, ErrCanceled) holds on every abort path.
var ErrCanceled = errors.New("evaluation canceled")

// ErrBudgetExceeded reports that an evaluation exceeded a resource
// budget (buffered-tuple or answer-row limit) and was aborted. Typed:
// errors.Is(err, ErrBudgetExceeded) holds on every budget abort path.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// Limits bounds one evaluation. The zero value means unlimited; budgets
// never change answers when not hit — they only convert runaway work
// into a prompt typed error.
type Limits struct {
	// Wall is the wall-clock budget for the whole evaluation (all steps
	// of a plan share it); 0 means no limit. The clock starts when the
	// limits resolve into a Gate (see NewGate).
	Wall time.Duration
	// MaxTuples caps the live intermediate tuples an evaluation may hold
	// at once — the same quantity the peak gauge tracks (streaming:
	// pipeline-breaker state; materializing: simultaneously-live
	// relations); 0 means no limit.
	MaxTuples int
	// MaxRows caps the answer cardinality; 0 means no limit.
	MaxRows int
}

// Zero reports whether no limit is set.
func (l Limits) Zero() bool { return l.Wall == 0 && l.MaxTuples == 0 && l.MaxRows == 0 }

// Gate is one evaluation's cancellation checkpoint: it owns the
// context, the resolved wall deadline, and the sticky first budget
// violation. Create one per query (NewGate) and share it across every
// step, rule, and operator of that query. All methods are nil-safe —
// a nil *Gate is a free, always-open checkpoint — and safe for
// concurrent use (a parallel union shares one gate across branch
// goroutines). A Gate value is a view: WithoutOutputCap derives views
// with different enforcement scope over the same shared clock and
// budget state.
type Gate struct {
	state  *gateState
	limits Limits
}

// gateState is the part of a Gate shared by every derived view.
type gateState struct {
	ctx      context.Context
	deadline time.Time

	// budgetErr latches the first tuple-budget violation (atomically:
	// concurrent branches may breach simultaneously).
	budgetErr atomic.Pointer[error]
}

// NewGate resolves a context plus limits into a checkpoint, starting
// the wall clock. A nil context with zero limits yields a nil Gate, so
// the unconfigured path stays allocation- and check-free.
func NewGate(ctx context.Context, l Limits) *Gate {
	if ctx == nil && l.Zero() {
		return nil
	}
	g := &Gate{state: &gateState{ctx: ctx}, limits: l}
	if l.Wall > 0 {
		// The stored deadline bounds resource use, never answer data:
		// hitting it aborts with ErrCanceled, and unhit limits never
		// change answers (the package contract).
		//lint:ignore DL006 wall-clock deadline gates resources, not answers
		g.state.deadline = time.Now().Add(l.Wall)
	}
	return g
}

// Limits returns the gate's resource limits (zero for a nil gate).
func (g *Gate) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.limits
}

// WithoutOutputCap returns a view of the gate that enforces the same
// cancellation, wall clock, and tuple budget but no answer-row cap.
// Subqueries whose result is not the user-facing answer — views,
// extended answers, intermediate plan steps — run under this view, so
// MaxRows constrains only the final answer's cardinality. Nil-safe.
func (g *Gate) WithoutOutputCap() *Gate {
	if g == nil || g.limits.MaxRows == 0 {
		return g
	}
	c := &Gate{state: g.state, limits: g.limits}
	c.limits.MaxRows = 0
	return c
}

// Check reports the first cancellation or budget violation: a noted
// tuple-budget breach, context cancellation, or wall-deadline expiry,
// in that order. The returned error wraps ErrCanceled or
// ErrBudgetExceeded. Nil-safe; cheap enough for per-batch use.
func (g *Gate) Check() error {
	if g == nil {
		return nil
	}
	s := g.state
	if p := s.budgetErr.Load(); p != nil {
		return *p
	}
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			return fmt.Errorf("%w: %v", ErrCanceled, s.ctx.Err())
		default:
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return fmt.Errorf("%w: wall limit %v exceeded", ErrCanceled, g.limits.Wall)
	}
	return nil
}

// NoteLive feeds the current live intermediate tuple count into the
// tuple budget; a breach latches as the sticky error the next Check
// returns. Nil-safe and safe for concurrent callers (first breach wins).
func (g *Gate) NoteLive(n int) {
	if g == nil || g.limits.MaxTuples <= 0 || n <= g.limits.MaxTuples {
		return
	}
	err := fmt.Errorf("%w: %d live intermediate tuples exceed the limit of %d",
		ErrBudgetExceeded, n, g.limits.MaxTuples)
	g.state.budgetErr.CompareAndSwap(nil, &err)
}

// CheckOutput enforces the answer-row budget against an observed answer
// cardinality. Nil-safe; a no-op on WithoutOutputCap views.
func (g *Gate) CheckOutput(rows int) error {
	if g == nil || g.limits.MaxRows <= 0 || rows <= g.limits.MaxRows {
		return nil
	}
	return fmt.Errorf("%w: answer exceeds the limit of %d rows", ErrBudgetExceeded, g.limits.MaxRows)
}
