// Package physical is the unified physical-plan layer of the flock
// system: a small operator IR (scan, hash build/join, anti-join, select,
// project, union, group-filter, materialize) plus a batch-at-a-time pull
// executor. Every evaluation strategy — direct, FILTER-step plans, and
// the §4.4 dynamic strategy — *compiles* to this IR and runs on the one
// executor, so joins stream probe-side through the pipeline instead of
// materializing each intermediate relation. Pipeline breakers exist only
// at hash builds, dedup points, group-by, and explicit Materialize
// barriers (which is where the dynamic strategy's "filter now?" hooks
// observe cardinalities).
//
// The compiled plans reproduce the eval.Executor semantics exactly:
// identical answers (including tuple order at the materialization
// points) at every worker count.
package physical

import (
	"fmt"
	"strings"

	"queryflocks/internal/storage"
)

// Kind names a physical operator. The values double as the obs.Op
// strings of the metrics JSON schema.
type Kind string

// The physical operator kinds.
const (
	// KindScan reads a base relation as the pipeline source, applying
	// constant selections, repeated-variable checks, and absorbed
	// semi-join/negation/comparison checks in one pass.
	KindScan Kind = "scan"
	// KindBuild is the hash-index build on a join's base relation — a
	// pipeline breaker on the build side only.
	KindBuild Kind = "build"
	// KindJoin hash-joins the streamed bindings with a base relation.
	KindJoin Kind = "join"
	// KindSymJoin is a symmetric hash join of two streams: both sides
	// insert into their own table and probe the other's as rows arrive,
	// so neither needs a build barrier. Used for fused step pipelines.
	KindSymJoin Kind = "symjoin"
	// KindAntiJoin drops bindings matching a negated atom.
	KindAntiJoin Kind = "antijoin"
	// KindSelect applies a fully bound arithmetic comparison.
	KindSelect Kind = "select"
	// KindProject projects bindings onto output columns, optionally
	// deduplicating (a pipeline breaker for the seen-set only).
	KindProject Kind = "project"
	// KindUnion concatenates branch pipelines in order.
	KindUnion Kind = "union"
	// KindGroup groups by the parameter prefix and applies the FILTER
	// condition per group (§4.1) — a pipeline breaker.
	KindGroup Kind = "group"
	// KindMaterialize collects the stream into a storage.Relation — the
	// plan sink, a FILTER-step result, or a dynamic decision barrier.
	KindMaterialize Kind = "materialize"
)

// Node is one operator of a compiled physical plan. Nodes are immutable
// after compilation; executing a Plan instantiates fresh operator state,
// so one compiled plan can run many times.
type Node interface {
	// Kind identifies the operator.
	Kind() Kind
	// Desc carries the operand rendering (atom, comparison, column list).
	Desc() string
	// Columns names the operator's output columns.
	Columns() []string
	// Inputs returns the child nodes (build side first for joins).
	Inputs() []Node

	// newOp instantiates the operator's runtime state.
	newOp(p *Plan) operator
}

// Plan is a compiled physical plan: a root node plus stable preorder
// node IDs (starting at 1) used by EXPLAIN and the metrics schema.
type Plan struct {
	Root  Node
	ids   map[Node]int
	order []Node
}

// NewPlan wraps a compiled node tree, assigning preorder IDs.
func NewPlan(root Node) *Plan {
	p := &Plan{Root: root, ids: make(map[Node]int)}
	p.number(root)
	return p
}

func (p *Plan) number(n Node) {
	if n == nil {
		return
	}
	if _, ok := p.ids[n]; ok {
		return
	}
	p.ids[n] = len(p.order) + 1
	p.order = append(p.order, n)
	for _, in := range n.Inputs() {
		p.number(in)
	}
}

// NodeID returns the node's preorder ID (1-based), or 0 if the node is
// not part of the plan.
func (p *Plan) NodeID(n Node) int { return p.ids[n] }

// Nodes returns the plan's nodes in preorder.
func (p *Plan) Nodes() []Node { return p.order }

// Explain renders the plan as an operator tree, one line per node in the
// form "kind#id desc", with the build side of a join listed first.
func (p *Plan) Explain() string {
	var b strings.Builder
	p.explainNode(&b, p.Root, "", "")
	return strings.TrimRight(b.String(), "\n")
}

func (p *Plan) explainNode(b *strings.Builder, n Node, prefix, childPrefix string) {
	b.WriteString(prefix)
	fmt.Fprintf(b, "%s#%d", n.Kind(), p.ids[n])
	if d := n.Desc(); d != "" {
		b.WriteByte(' ')
		b.WriteString(d)
	}
	b.WriteByte('\n')
	ins := n.Inputs()
	for i, in := range ins {
		if i == len(ins)-1 {
			p.explainNode(b, in, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			p.explainNode(b, in, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// Hook is a dynamic-strategy callback run on a Materialize barrier's
// relation; it may return a reduced replacement with the same columns
// (the §4.4 FILTER reduction) or the input unchanged.
type Hook func(*storage.Relation) (*storage.Relation, error)

// GroupAcc accumulates one group's head tuples for a FILTER condition.
// It is the streaming subset of core.GroupAcc (no Merge): the group
// operator feeds each group's distinct head tuples in arrival order,
// honoring the monotone short-circuit via Done.
type GroupAcc interface {
	Add(head storage.Tuple)
	Passes() bool
	Done() bool
}

// Grouper mints one accumulator per parameter group; core.Filter is
// adapted to this by the core package.
type Grouper interface {
	NewGroup() GroupAcc
}
