package physical

import (
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// compileRunMode runs the compiled rule on the row path (dict == nil)
// or the columnar path (dict != nil) with identical plans.
func compileRunMode(t *testing.T, db *storage.Database, r *datalog.Rule, order []int, workers int, columnar bool) *storage.Relation {
	t.Helper()
	node, err := CompileRule(db, r, RuleOpts{Order: order, Out: r.Head.Args, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	ctx := &Ctx{DB: db, Workers: workers}
	if columnar {
		ctx.Dict = db.Dict()
	}
	rel, err := plan.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestColumnarMatchesRows is the operator-level differential oracle:
// for each rule shape (joins, negation, comparison, constants, repeated
// variables) the columnar ID pipeline must produce the row pipeline's
// answer tuple-for-tuple, in order, at every worker count.
func TestColumnarMatchesRows(t *testing.T) {
	db := testDB()
	cases := []struct {
		name  string
		rule  string
		order []int
	}{
		{"chain", "answer(X,Z) :- e(X,Y) AND e(Y,Z)", []int{0, 1}},
		{"triangle", "answer(X,Y,Z) :- e(X,Y) AND e(Y,Z) AND e(Z,X)", []int{0, 1, 2}},
		{"neg-cmp", "answer(X,Y) :- e(X,Y) AND NOT blocked(Y) AND X < Y", []int{0}},
		{"const", "answer(Y) :- e(1,Y)", []int{0}},
		{"label-join", "answer(X,L) :- e(X,Y) AND l(Y,L)", []int{0, 1}},
		{"self-loop", "answer(X) :- e(X,X)", []int{0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := mustRule(t, c.rule)
			row := compileRunMode(t, db, r, c.order, 1, false)
			for _, w := range []int{1, 2, 8} {
				col := compileRunMode(t, db, r, c.order, w, true)
				if col.Dump() != row.Dump() {
					t.Fatalf("workers=%d columnar answer differs\ncolumnar:\n%s\nrows:\n%s", w, col.Dump(), row.Dump())
				}
			}
		})
	}
}

// TestColumnarMissingConstant covers the dictionary-miss path: a query
// constant absent from every stored relation matches nothing, without
// interning the constant into the dictionary.
func TestColumnarMissingConstant(t *testing.T) {
	db := testDB()
	dictLen := db.Dict().Len()
	for _, src := range []string{
		"answer(Y) :- e(99,Y)",                             // dead scan constant
		"answer(X,Y) :- l(X,L) AND e(X,Y) AND L = \"zzz\"", // dead comparison constant
		"answer(X,Y) :- e(X,Y) AND NOT blocked(99)",        // negated const: never a member, keep all
	} {
		r := mustRule(t, src)
		order := make([]int, len(r.PositiveAtoms()))
		for i := range order {
			order[i] = i
		}
		row := compileRunMode(t, db, r, order, 1, false)
		col := compileRunMode(t, db, r, order, 1, true)
		if col.Dump() != row.Dump() {
			t.Fatalf("%s: columnar differs\ncolumnar:\n%s\nrows:\n%s", src, col.Dump(), row.Dump())
		}
	}
	if db.Dict().Len() != dictLen {
		t.Fatalf("query constants grew the dictionary: %d -> %d", dictLen, db.Dict().Len())
	}
}

// TestColumnarCrossKindDup pins repeated-variable semantics: dup checks
// use Equal, the same equality class AppendKey gives the joins, so a
// tuple pairing Int(1) with Float(1) satisfies e(X,X) in both paths
// (the two values share a dictionary ID and a join key). This replaced
// an earlier deliberate kind-sensitive == — which made e(X,X) disagree
// with the equivalent self-join — see TestCrossKindRepeatedVariable in
// internal/eval.
func TestColumnarCrossKindDup(t *testing.T) {
	db := storage.NewDatabase()
	e := storage.NewRelation("e", "a", "b")
	e.InsertValues(storage.Int(1), storage.Float(1))
	e.InsertValues(storage.Int(2), storage.Int(2))
	e.InsertValues(storage.Int(3), storage.Int(4))
	db.Add(e)
	r := mustRule(t, "answer(X) :- e(X,X)")
	row := compileRunMode(t, db, r, []int{0}, 1, false)
	col := compileRunMode(t, db, r, []int{0}, 1, true)
	if col.Dump() != row.Dump() {
		t.Fatalf("columnar dup check differs\ncolumnar:\n%s\nrows:\n%s", col.Dump(), row.Dump())
	}
	if row.Len() != 2 {
		t.Fatalf("want the Int(1)/Float(1) and Int(2) rows, got:\n%s", row.Dump())
	}
}

// streamRun compiles a rule with one atom streamed from a producer
// pipeline and runs it in the requested mode.
func streamRun(t *testing.T, db *storage.Database, rule string, order []int, streams map[string]Node, workers int, columnar bool) *storage.Relation {
	t.Helper()
	r := mustRule(t, rule)
	node, err := CompileRule(db, r, RuleOpts{Order: order, Out: r.Head.Args, Dedup: true, Streams: streams})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	ctx := &Ctx{DB: db, Workers: workers}
	if columnar {
		ctx.Dict = db.Dict()
	}
	rel, err := plan.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// producerNode compiles "hop(X,Z) :- e(X,Y) AND e(Y,Z)" as a stream
// pipeline (deduplicated two-step paths).
func producerNode(t *testing.T, db *storage.Database) Node {
	t.Helper()
	r := mustRule(t, "hop(X,Z) :- e(X,Y) AND e(Y,Z)")
	node, err := CompileRule(db, r, RuleOpts{Order: []int{0, 1}, Out: r.Head.Args, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// TestSymJoinMatchesStoredJoin checks the symmetric hash join against
// the oracle of materializing the streamed predicate first: same
// answer set in both executors at every worker count, and the row and
// columnar fused pipelines agree tuple-for-tuple.
func TestSymJoinMatchesStoredJoin(t *testing.T) {
	db := testDB()
	// Oracle: materialize hop, then join as a stored relation.
	hopAnswer := compileRunMode(t, db, mustRule(t, "hop(X,Z) :- e(X,Y) AND e(Y,Z)"), []int{0, 1}, 1, false)
	hop := storage.NewRelation("hop", "X", "Z")
	for _, tp := range hopAnswer.Tuples() {
		hop.Insert(tp)
	}
	oracleDB := db.Clone()
	oracleDB.Add(hop)
	oracle := compileRun(t, oracleDB, mustRule(t, "answer(A,B,L) :- hop(A,B) AND l(B,L)"), []int{0, 1}, 1)

	// The rule consumes hop as a stream. Order {1, 0} binds l first, so
	// the streamed atom joins symmetrically (not as pipeline source).
	const rule = "answer(A,B,L) :- hop(A,B) AND l(B,L)"
	db.Add(storage.NewRelation("hop", "A", "B")) // stand-in for order resolution
	var rowBase string
	for _, order := range [][]int{{1, 0}, {0, 1}} {
		for _, w := range []int{1, 2, 8} {
			row := streamRun(t, db, rule, order, map[string]Node{"hop": producerNode(t, db)}, w, false)
			col := streamRun(t, db, rule, order, map[string]Node{"hop": producerNode(t, db)}, w, true)
			if !row.Equal(oracle) {
				t.Fatalf("order=%v workers=%d fused row answer differs from stored-join oracle\ngot:\n%s\nwant:\n%s",
					order, w, row.Dump(), oracle.Dump())
			}
			if col.Dump() != row.Dump() {
				t.Fatalf("order=%v workers=%d columnar symjoin differs from row symjoin\ncolumnar:\n%s\nrows:\n%s",
					order, w, col.Dump(), row.Dump())
			}
			if order[0] == 1 {
				if rowBase == "" {
					rowBase = row.Dump()
				} else if row.Dump() != rowBase {
					t.Fatalf("workers=%d symjoin emission order changed", w)
				}
			}
		}
	}
}

// TestSymJoinExplain checks the fused plan renders the symjoin node.
func TestSymJoinExplain(t *testing.T) {
	db := testDB()
	db.Add(storage.NewRelation("hop", "A", "B"))
	r := mustRule(t, "answer(A,B,L) :- hop(A,B) AND l(B,L)")
	node, err := CompileRule(db, r, RuleOpts{Order: []int{1, 0}, Out: r.Head.Args, Dedup: true,
		Streams: map[string]Node{"hop": producerNode(t, db)}})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(NewMaterialize("answer", node, nil, "", nil))
	if explain := plan.Explain(); !containsLine(explain, "symjoin") {
		t.Fatalf("EXPLAIN missing symjoin node:\n%s", explain)
	}
}

func containsLine(s, substr string) bool {
	for i := 0; i+len(substr) <= len(s); i++ {
		if s[i:i+len(substr)] == substr {
			return true
		}
	}
	return false
}

// TestStreamedAtomRejectsConstants pins joinStream's argument rules.
func TestStreamedAtomRejectsConstants(t *testing.T) {
	db := testDB()
	db.Add(storage.NewRelation("hop", "A", "B"))
	for _, bad := range []string{
		"answer(B) :- hop(1,B)", // constant argument
		"answer(A) :- hop(A,A)", // repeated variable
	} {
		r := mustRule(t, bad)
		_, err := CompileRule(db, r, RuleOpts{Order: []int{0}, Out: r.Head.Args,
			Streams: map[string]Node{"hop": producerNode(t, db)}})
		if err == nil {
			t.Fatalf("%s: streamed atom should be rejected", bad)
		}
	}
}
