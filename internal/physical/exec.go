package physical

import (
	"fmt"

	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// batchSize is the number of binding tuples pulled per Next call. Large
// enough to amortize per-batch overhead and give the partitioned join
// workers useful chunks, small enough that in-flight batches stay cheap.
const batchSize = 1024

// minParallelRows mirrors the eval package's knob: probe batches below
// this size stay sequential, where goroutine startup dominates.
const minParallelRows = 256

// Ctx carries one execution's environment and its high-water gauge of
// tuples buffered in pipeline-breaker state (group maps, materialized
// barriers, the sink) — the streaming analogue of the materializing
// path's largest-intermediate measure.
type Ctx struct {
	// DB resolves base relations at operator open.
	DB *storage.Database
	// Workers is the partitioned-operator worker knob (0 = one per CPU,
	// 1 = sequential). Answers are identical at every worker count.
	Workers int
	// Col, when non-nil, receives one typed event per operator.
	Col *obs.Collector
	// Gate, when non-nil, is the evaluation's cancellation and budget
	// checkpoint: operators consult it at batch boundaries, and the
	// buffered-tuple gauge feeds its tuple budget. Nil means unlimited.
	Gate *Gate
	// Dict, when non-nil, selects columnar execution: operators stream
	// batches of interned uint32 IDs from this dictionary instead of
	// boxed tuple rows. Results are bit-identical to the row path.
	Dict *storage.Dict

	buffered int
	peak     int
}

// track adjusts the buffered-tuple gauge; the high-water reading doubles
// as the tuple-budget enforcement point.
func (c *Ctx) track(delta int) {
	c.buffered += delta
	if c.buffered > c.peak {
		c.peak = c.buffered
		c.Gate.NoteLive(c.buffered)
	}
}

// Peak returns the high-water count of buffered tuples observed so far.
func (c *Ctx) Peak() int { return c.peak }

// operator is one node's runtime state: a pull iterator over tuple
// batches. next returns ok=false at end-of-stream; a returned batch may
// be empty while the stream is still live. close releases state and
// records the operator's event (children first, so events arrive in
// leaf-to-root pipeline order).
type operator interface {
	open(ctx *Ctx) error
	next(ctx *Ctx) (batch []storage.Tuple, ok bool, err error)
	close(ctx *Ctx)
}

// Run executes the plan against ctx. The root must be a Materialize
// sink; its relation is returned. Each Run instantiates fresh operator
// state, so a compiled plan may run repeatedly (even concurrently, with
// separate Ctx values).
func (p *Plan) Run(ctx *Ctx) (*storage.Relation, error) {
	root, ok := p.Root.(*MaterializeNode)
	if !ok {
		return nil, fmt.Errorf("physical: plan root is %s, want materialize", p.Root.Kind())
	}
	if ctx.Dict != nil {
		return p.runColumnar(ctx, root)
	}
	op := root.newOp(p).(*materializeOp)
	op.sink = true // the answer relation: where the MaxRows budget applies
	err := op.open(ctx)
	if err == nil {
		err = op.materialize(ctx)
	}
	op.close(ctx)
	if ctx.Col != nil {
		ctx.Col.ObservePeak(ctx.peak)
		observeStorage(ctx)
	}
	if err != nil {
		return nil, err
	}
	return op.rel, nil
}

// observeStorage samples the catalog's disk I/O counters (cumulative, so
// the collector max-merges them) after a plan execution.
func observeStorage(ctx *Ctx) {
	if io := ctx.DB.IO(); io != nil {
		ctx.Col.ObserveStorage(uint64(io.SegmentsOpened()), uint64(io.IndexBlocksRead()),
			uint64(io.DeltaRows()), uint64(io.BytesRead()))
	}
}

// runColumnar is Run's interned-ID twin: the same plan, instantiated as
// columnar operators keyed on ctx.Dict.
func (p *Plan) runColumnar(ctx *Ctx, root *MaterializeNode) (*storage.Relation, error) {
	op := newColOp(p, root).(*colMaterializeOp)
	op.sink = true
	err := op.open(ctx)
	if err == nil {
		err = op.materialize(ctx)
	}
	op.close(ctx)
	if ctx.Col != nil {
		ctx.Col.ObservePeak(ctx.peak)
		ctx.Col.ObserveDict(ctx.Dict.Len(), ctx.Dict.Hits(), ctx.Dict.Misses())
		observeStorage(ctx)
	}
	if err != nil {
		return nil, err
	}
	return op.rel, nil
}
