package physical

import (
	"fmt"
	"time"

	"queryflocks/internal/obs"
	"queryflocks/internal/par"
	"queryflocks/internal/storage"
)

// This file is the columnar twin of operators.go: the same operator
// tree, executed over batches of interned uint32 value IDs instead of
// rows of boxed Values. Every probe, dedup, and group key works on IDs
// (dictionary IDs are equal exactly when the values are Equal, so ID
// comparisons decide what AppendKey byte comparisons decide in the row
// path); boxed Values appear only at the materialize sink and inside
// comparison/aggregate arithmetic. The two paths are bit-identical —
// same tuples, same order, same batch boundaries, same buffered-tuple
// gauge — so either can serve as the other's differential oracle.
//
// One deliberate asymmetry: the row path's repeated-variable checks use
// Go == on Values (kind-sensitive: Int(1) != Float(1)) while IDs are
// semantic (Int(1) and Float(1) share an ID). Columnar scan and join
// therefore run dup checks against the original base tuples, never IDs.

// colBatch is one batch of bindings in columnar interned form: cols[j][i]
// is the dictionary ID of row i's j-th column. n is explicit because a
// batch can have zero columns (unit streams, all-constant scans) while
// still carrying rows.
type colBatch struct {
	n    int
	cols [][]uint32
}

// newColBatch returns an empty batch with the given column count.
func newColBatch(width int) colBatch {
	return colBatch{cols: make([][]uint32, width)}
}

// appendRow copies row i of src onto the end of b (same width).
func (b *colBatch) appendRow(src colBatch, i int) {
	for c := range src.cols {
		b.cols[c] = append(b.cols[c], src.cols[c][i])
	}
	b.n++
}

// gatherRow writes row i's IDs into dst.
func (b colBatch) gatherRow(i int, dst []uint32) {
	for c := range b.cols {
		dst[c] = b.cols[c][i]
	}
}

// packRowOn appends the packed 4-byte-LE encoding of row i's IDs at the
// given column positions to dst — the columnar analogue of AppendKeyOn.
func (b colBatch) packRowOn(dst []byte, cols []int, i int) []byte {
	for _, c := range cols {
		id := b.cols[c][i]
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst
}

// decoder decodes IDs through a lock-free DictView snapshot, refreshing
// the snapshot only when it meets an ID interned after it was taken
// (mid-run interning happens only at materialize barriers).
type decoder struct {
	d    *storage.Dict
	view storage.DictView
}

func newDecoder(d *storage.Dict) *decoder {
	return &decoder{d: d, view: d.View()}
}

func (dc *decoder) value(id uint32) storage.Value {
	if int(id) >= dc.view.Len() {
		dc.view = dc.d.View()
	}
	return dc.view.Value(id)
}

// colValue resolves a check argument in columnar context: constants stay
// boxed, binding columns decode their ID, base columns read the original
// base tuple (exact, no decode).
func (a argRef) colValue(dec *decoder, cur []uint32, base []storage.Tuple, bt int) storage.Value {
	switch a.src {
	case srcConst:
		return a.val
	case srcCur:
		return dec.value(cur[a.pos])
	default:
		return base[bt][a.pos]
	}
}

// colCheck is one absorbed check in columnar form: cur is the current
// binding row's IDs (nil at a scan, whose checks never reference binding
// columns) and bt the base-relation row index.
type colCheck func(cur []uint32, bt int) bool

// instantiateCol returns one worker's private columnar check. Membership
// checks probe the check relation's IDSet — ID equality is semantic, so
// the verdicts match the row path's normalized-key ContainsKey probes; a
// constant argument missing from the dictionary can never be a member.
func (c *Check) instantiateCol(dict *storage.Dict, baseTuples []storage.Tuple, baseCols [][]uint32) colCheck {
	if c.kind == checkCmp {
		op, l, r := c.op, c.left, c.right
		dec := newDecoder(dict)
		return func(cur []uint32, bt int) bool {
			return op.Eval(l.colValue(dec, cur, baseTuples, bt), r.colValue(dec, cur, baseTuples, bt))
		}
	}
	want := c.kind == checkMember
	args := c.args
	constIDs := make([]uint32, len(args))
	for i, a := range args {
		if a.src == srcConst {
			id, ok := dict.Lookup(a.val)
			if !ok {
				verdict := !want
				return func([]uint32, int) bool { return verdict }
			}
			constIDs[i] = id
		}
	}
	set := c.rel.IDSet(dict)
	probe := make([]uint32, len(args))
	return func(cur []uint32, bt int) bool {
		for i, a := range args {
			switch a.src {
			case srcConst:
				probe[i] = constIDs[i]
			case srcCur:
				probe[i] = cur[a.pos]
			default:
				probe[i] = baseCols[a.pos][bt]
			}
		}
		return set.Contains(probe) == want
	}
}

func instantiateAllCol(checks []*Check, dict *storage.Dict, baseTuples []storage.Tuple, baseCols [][]uint32) []colCheck {
	if len(checks) == 0 {
		return nil
	}
	out := make([]colCheck, len(checks))
	for i, c := range checks {
		out[i] = c.instantiateCol(dict, baseTuples, baseCols)
	}
	return out
}

// colOperator mirrors operator for columnar batches.
type colOperator interface {
	open(ctx *Ctx) error
	next(ctx *Ctx) (batch colBatch, ok bool, err error)
	close(ctx *Ctx)
}

// newColOp instantiates the columnar runtime state of a node.
func newColOp(p *Plan, n Node) colOperator {
	switch x := n.(type) {
	case *ScanNode:
		return &colScanOp{n: x, id: p.ids[x]}
	case *UnitNode:
		return &colUnitOp{id: p.ids[x]}
	case *JoinNode:
		return &colJoinOp{n: x, id: p.ids[x], buildID: p.ids[x.Input], input: newColOp(p, x.Probe)}
	case *AntiJoinNode:
		return &colAntiJoinOp{n: x, id: p.ids[x], input: newColOp(p, x.Probe)}
	case *SelectNode:
		return &colSelectOp{n: x, id: p.ids[x], input: newColOp(p, x.Probe)}
	case *ProjectNode:
		return &colProjectOp{n: x, id: p.ids[x], input: newColOp(p, x.Probe)}
	case *UnionNode:
		ops := make([]colOperator, len(x.Branches))
		for i, br := range x.Branches {
			ops[i] = newColOp(p, br)
		}
		return &colUnionOp{n: x, id: p.ids[x], branches: ops}
	case *GroupNode:
		return &colGroupOp{n: x, id: p.ids[x], input: newColOp(p, x.Probe)}
	case *MaterializeNode:
		return &colMaterializeOp{n: x, id: p.ids[x], input: newColOp(p, x.Probe)}
	case *SymJoinNode:
		return &colSymJoinOp{n: x, id: p.ids[x], left: newColOp(p, x.Left), right: newColOp(p, x.Right)}
	default:
		panic(fmt.Sprintf("physical: no columnar operator for %T", n))
	}
}

// --- scan ---

type colScanOp struct {
	n  *ScanNode
	id int

	tuples   []storage.Tuple
	baseCols [][]uint32
	pos      int
	checks   []colCheck
	constIDs []uint32
	live     bool // false when a constant is absent from the dictionary

	rowsOut int
	batches int
	wall    time.Duration
}

func (o *colScanOp) open(ctx *Ctx) error {
	rel, err := ctx.DB.Relation(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if rel.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, rel.Arity())
	}
	for _, c := range o.n.checks {
		if err := c.bind(ctx.DB); err != nil {
			return err
		}
	}
	o.tuples = rel.Tuples()
	o.baseCols = rel.InternedColumns(ctx.Dict)
	o.checks = instantiateAllCol(o.n.checks, ctx.Dict, o.tuples, o.baseCols)
	o.live = true
	o.constIDs = make([]uint32, len(o.n.consts))
	for i, c := range o.n.consts {
		id, ok := ctx.Dict.Lookup(c.val)
		if !ok {
			o.live = false // the constant matches no stored value
		}
		o.constIDs[i] = id
	}
	return nil
}

func (o *colScanOp) next(ctx *Ctx) (colBatch, bool, error) {
	if err := ctx.Gate.Check(); err != nil {
		return colBatch{}, false, err
	}
	if !o.live || o.pos >= len(o.tuples) {
		return colBatch{}, false, nil
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	out := newColBatch(len(o.n.newPos))
scan:
	for o.pos < len(o.tuples) && out.n < batchSize {
		i := o.pos
		o.pos++
		for k, c := range o.n.consts {
			if o.baseCols[c.pos][i] != o.constIDs[k] {
				continue scan
			}
		}
		// Repeated variables bind one equality class, so dup checks use
		// Equal on the original tuple, matching the joins' AppendKey
		// semantics (Int(1) and Float(1) are the same value).
		bt := o.tuples[i]
		for _, d := range o.n.dup {
			if !bt[d[0]].Equal(bt[d[1]]) {
				continue scan
			}
		}
		for _, check := range o.checks {
			if !check(nil, i) {
				continue scan
			}
		}
		for j, p := range o.n.newPos {
			out.cols[j] = append(out.cols[j], o.baseCols[p][i])
		}
		out.n++
	}
	o.rowsOut += out.n
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *colScanOp) close(ctx *Ctx) {
	record(ctx, obs.Event{
		Op: obs.OpScan, ID: o.id, Desc: o.n.atom,
		RowsIn: len(o.tuples), RowsOut: o.rowsOut,
		Absorbed: len(o.n.checks), Workers: 1, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- unit ---

type colUnitOp struct {
	id   int
	done bool
}

func (o *colUnitOp) open(*Ctx) error { return nil }

func (o *colUnitOp) next(*Ctx) (colBatch, bool, error) {
	if o.done {
		return colBatch{}, false, nil
	}
	o.done = true
	return colBatch{n: 1}, true, nil
}

func (o *colUnitOp) close(ctx *Ctx) {
	record(ctx, obs.Event{Op: obs.OpScan, ID: o.id, Desc: "unit", RowsIn: 1, RowsOut: 1, Workers: 1, IDBatches: 1})
}

// --- hash join (with its build side) ---

type colJoinOp struct {
	n       *JoinNode
	id      int
	buildID int
	input   colOperator

	rel      *storage.Relation
	tuples   []storage.Tuple
	baseCols [][]uint32
	idx      *storage.IDIndex
	constIDs []uint32
	live     bool
	checks   []colCheck
	pending  colBatch

	buildWall time.Duration
	rowsIn    int
	rowsOut   int
	used      int
	batches   int
	wall      time.Duration
}

func (o *colJoinOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	rel, err := ctx.DB.Relation(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if rel.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, rel.Arity())
	}
	for _, c := range o.n.checks {
		if err := c.bind(ctx.DB); err != nil {
			return err
		}
	}
	o.rel = rel
	o.used = 1
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	o.tuples = rel.Tuples()
	o.baseCols = rel.InternedColumns(ctx.Dict)
	o.idx = rel.IDIndex(ctx.Dict, o.n.Input.idxCols)
	if ctx.Col != nil {
		o.buildWall = time.Since(start)
	}
	o.checks = instantiateAllCol(o.n.checks, ctx.Dict, o.tuples, o.baseCols)
	o.live = true
	o.constIDs = make([]uint32, len(o.n.consts))
	for i, c := range o.n.consts {
		id, ok := ctx.Dict.Lookup(c.val)
		if !ok {
			o.live = false // the constant matches no stored value
		}
		o.constIDs[i] = id
	}
	return nil
}

// probe is the columnar twin of joinOp.probe: it scans binding rows
// [lo, hi) against the ID index and emits surviving joined rows. Callers
// supply private checks; all other state is read-only, so concurrent
// probes never share mutable state. Output order matches the row path:
// binding rows in order, matches in base insertion order.
func (o *colJoinOp) probe(batch colBatch, lo, hi int, cks []colCheck) colBatch {
	n := o.n
	ids := make([]uint32, len(o.constIDs)+len(n.probeCur))
	copy(ids, o.constIDs)
	var cur []uint32
	if len(cks) > 0 {
		cur = make([]uint32, len(batch.cols))
	}
	out := newColBatch(len(n.cols))
	width := len(batch.cols)
	for i := lo; i < hi; i++ {
		for k, p := range n.probeCur {
			ids[len(o.constIDs)+k] = batch.cols[p][i]
		}
		matches := o.idx.Lookup(ids)
		if len(matches) == 0 {
			continue
		}
		if cur != nil {
			batch.gatherRow(i, cur)
		}
	match:
		for _, r := range matches {
			bt := o.tuples[r]
			for _, d := range n.dup {
				if !bt[d[0]].Equal(bt[d[1]]) {
					continue match
				}
			}
			for _, check := range cks {
				if !check(cur, int(r)) {
					continue match
				}
			}
			for c := 0; c < width; c++ {
				out.cols[c] = append(out.cols[c], batch.cols[c][i])
			}
			for j, p := range n.newPos {
				out.cols[width+j] = append(out.cols[width+j], o.baseCols[p][r])
			}
			out.n++
		}
	}
	return out
}

func (o *colJoinOp) next(ctx *Ctx) (colBatch, bool, error) {
	// Mirror joinOp: emit probe output in batch-size chunks.
	if o.pending.n > 0 {
		return o.emitChunk(), true, nil
	}
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return colBatch{}, false, err
	}
	if err := ctx.Gate.Check(); err != nil {
		return colBatch{}, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	var out colBatch
	if !o.live {
		out = newColBatch(len(o.n.cols))
	} else {
		w := par.Resolve(ctx.Workers)
		if batch.n < minParallelRows {
			w = 1
		}
		if w <= 1 {
			out = o.probe(batch, 0, batch.n, o.checks)
		} else {
			// Range-partitioned probe concatenated in worker order: the
			// same split as the row path, hence the same output order.
			outs := make([]colBatch, par.Chunks(batch.n, w))
			par.Run(batch.n, w, func(wi, lo, hi int) {
				outs[wi] = o.probe(batch, lo, hi, instantiateAllCol(o.n.checks, ctx.Dict, o.tuples, o.baseCols))
			})
			total := 0
			for _, part := range outs {
				total += part.n
			}
			out = newColBatch(len(o.n.cols))
			for c := range out.cols {
				out.cols[c] = make([]uint32, 0, total)
			}
			for _, part := range outs {
				for c := range part.cols {
					out.cols[c] = append(out.cols[c], part.cols[c]...)
				}
				out.n += part.n
			}
			if w > o.used {
				o.used = w
			}
		}
	}
	o.rowsIn += batch.n
	o.rowsOut += out.n
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	o.pending = out
	return o.emitChunk(), true, nil
}

// emitChunk pops the next batch-size chunk of pending probe output,
// preserving emission order exactly.
func (o *colJoinOp) emitChunk() colBatch {
	k := o.pending.n
	if k > batchSize {
		k = batchSize
	}
	chunk := colBatch{n: k, cols: make([][]uint32, len(o.pending.cols))}
	for c := range o.pending.cols {
		chunk.cols[c] = o.pending.cols[c][:k:k]
		o.pending.cols[c] = o.pending.cols[c][k:]
	}
	o.pending.n -= k
	return chunk
}

func (o *colJoinOp) close(ctx *Ctx) {
	o.input.close(ctx)
	buildRows := 0
	if o.rel != nil {
		buildRows = o.rel.Len()
	}
	record(ctx, obs.Event{
		Op: obs.OpBuild, ID: o.buildID, Desc: o.n.Input.Desc(),
		RowsIn: buildRows, RowsOut: buildRows, Workers: 1, Wall: o.buildWall,
	})
	record(ctx, obs.Event{
		Op: obs.OpJoin, ID: o.id, Desc: o.n.atom,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut,
		Absorbed: len(o.n.checks), Workers: o.used, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- anti-join ---

type colAntiJoinOp struct {
	n     *AntiJoinNode
	id    int
	input colOperator

	set      *storage.IDSet
	constIDs []uint32
	live     bool // false when a constant is absent: nothing ever matches

	rowsIn  int
	rowsOut int
	used    int
	batches int
	wall    time.Duration
}

func (o *colAntiJoinOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	rel, err := ctx.DB.Relation(o.n.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if rel.Arity() != o.n.arity {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", o.n.atom, o.n.arity, rel.Arity())
	}
	o.set = rel.IDSet(ctx.Dict)
	o.used = 1
	o.live = true
	o.constIDs = make([]uint32, len(o.n.srcPos))
	for j, p := range o.n.srcPos {
		if p >= 0 {
			continue
		}
		id, ok := ctx.Dict.Lookup(o.n.constVal[j])
		if !ok {
			o.live = false
		}
		o.constIDs[j] = id
	}
	return nil
}

// filter keeps the binding rows of [lo, hi) whose negated-atom key is
// NOT in the base relation's ID set.
func (o *colAntiJoinOp) filter(batch colBatch, lo, hi int, ids []uint32) colBatch {
	n := o.n
	out := newColBatch(len(batch.cols))
	for i := lo; i < hi; i++ {
		if o.live {
			for j, p := range n.srcPos {
				if p < 0 {
					ids[j] = o.constIDs[j]
				} else {
					ids[j] = batch.cols[p][i]
				}
			}
			if o.set.Contains(ids) {
				continue
			}
		}
		out.appendRow(batch, i)
	}
	return out
}

func (o *colAntiJoinOp) next(ctx *Ctx) (colBatch, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return colBatch{}, false, err
	}
	if err := ctx.Gate.Check(); err != nil {
		return colBatch{}, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	w := par.Resolve(ctx.Workers)
	if batch.n < minParallelRows {
		w = 1
	}
	var out colBatch
	if w <= 1 {
		out = o.filter(batch, 0, batch.n, make([]uint32, o.n.arity))
	} else {
		outs := make([]colBatch, par.Chunks(batch.n, w))
		par.Run(batch.n, w, func(wi, lo, hi int) {
			outs[wi] = o.filter(batch, lo, hi, make([]uint32, o.n.arity))
		})
		out = newColBatch(len(batch.cols))
		for _, part := range outs {
			for c := range part.cols {
				out.cols[c] = append(out.cols[c], part.cols[c]...)
			}
			out.n += part.n
		}
		if w > o.used {
			o.used = w
		}
	}
	o.rowsIn += batch.n
	o.rowsOut += out.n
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *colAntiJoinOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpAntiJoin, ID: o.id, Desc: o.n.atom,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Workers: o.used, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- select ---

type colSelectOp struct {
	n     *SelectNode
	id    int
	input colOperator

	dec *decoder

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *colSelectOp) open(ctx *Ctx) error {
	o.dec = newDecoder(ctx.Dict)
	return o.input.open(ctx)
}

// argValue resolves a select argument: constants stay boxed, binding
// columns decode (representatives are Equal to the originals, so the
// Compare-based verdict is identical to the row path's).
func (o *colSelectOp) argValue(a argRef, batch colBatch, i int) storage.Value {
	if a.src == srcConst {
		return a.val
	}
	return o.dec.value(batch.cols[a.pos][i])
}

func (o *colSelectOp) next(ctx *Ctx) (colBatch, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		return colBatch{}, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	n := o.n
	out := newColBatch(len(batch.cols))
	for i := 0; i < batch.n; i++ {
		if n.op.Eval(o.argValue(n.left, batch, i), o.argValue(n.right, batch, i)) {
			out.appendRow(batch, i)
		}
	}
	o.rowsIn += batch.n
	o.rowsOut += out.n
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *colSelectOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpSelect, ID: o.id, Desc: o.n.desc,
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- project ---

// idSeen is an incremental ID-tuple seen-set: the columnar dedup state.
// One and two columns key on the IDs directly; wider tuples on the
// packed encoding.
type idSeen struct {
	arity int
	m1    map[uint32]struct{}
	m2    map[uint64]struct{}
	mn    map[string]struct{}
	buf   []byte
}

func newIDSeen(arity int) *idSeen {
	s := &idSeen{arity: arity}
	switch arity {
	case 1:
		s.m1 = make(map[uint32]struct{})
	case 2:
		s.m2 = make(map[uint64]struct{})
	default:
		s.mn = make(map[string]struct{})
	}
	return s
}

// add records the projection of batch row i onto pos, reporting whether
// it was new.
func (s *idSeen) add(batch colBatch, pos []int, i int) bool {
	switch s.arity {
	case 1:
		k := batch.cols[pos[0]][i]
		if _, dup := s.m1[k]; dup {
			return false
		}
		s.m1[k] = struct{}{}
	case 2:
		k := uint64(batch.cols[pos[0]][i])<<32 | uint64(batch.cols[pos[1]][i])
		if _, dup := s.m2[k]; dup {
			return false
		}
		s.m2[k] = struct{}{}
	default:
		s.buf = batch.packRowOn(s.buf[:0], pos, i)
		if _, dup := s.mn[string(s.buf)]; dup {
			return false
		}
		s.mn[string(s.buf)] = struct{}{}
	}
	return true
}

func (s *idSeen) len() int {
	switch s.arity {
	case 1:
		return len(s.m1)
	case 2:
		return len(s.m2)
	default:
		return len(s.mn)
	}
}

type colProjectOp struct {
	n     *ProjectNode
	id    int
	input colOperator

	seen     *idSeen
	released bool

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *colProjectOp) open(ctx *Ctx) error {
	if o.n.Dedup {
		o.seen = newIDSeen(len(o.n.pos))
	}
	return o.input.open(ctx)
}

func (o *colProjectOp) next(ctx *Ctx) (colBatch, bool, error) {
	batch, ok, err := o.input.next(ctx)
	if err != nil || !ok {
		if o.seen != nil && !o.released {
			ctx.track(-o.seen.len())
			o.released = true
		}
		return colBatch{}, false, err
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	var out colBatch
	if o.seen == nil {
		// Pure projection: share the input's column slices.
		out = colBatch{n: batch.n, cols: make([][]uint32, len(o.n.pos))}
		for j, p := range o.n.pos {
			out.cols[j] = batch.cols[p]
		}
	} else {
		out = newColBatch(len(o.n.pos))
		for i := 0; i < batch.n; i++ {
			if !o.seen.add(batch, o.n.pos, i) {
				continue
			}
			ctx.track(1)
			for j, p := range o.n.pos {
				out.cols[j] = append(out.cols[j], batch.cols[p][i])
			}
			out.n++
		}
	}
	o.rowsIn += batch.n
	o.rowsOut += out.n
	o.batches++
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	return out, true, nil
}

func (o *colProjectOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpProject, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- union ---

type colUnionOp struct {
	n        *UnionNode
	id       int
	branches []colOperator
	cur      int

	rowsOut int
	batches int
}

func (o *colUnionOp) open(ctx *Ctx) error {
	for _, br := range o.branches {
		if err := br.open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (o *colUnionOp) next(ctx *Ctx) (colBatch, bool, error) {
	for o.cur < len(o.branches) {
		batch, ok, err := o.branches[o.cur].next(ctx)
		if err != nil {
			return colBatch{}, false, err
		}
		if ok {
			o.rowsOut += batch.n
			o.batches++
			return batch, true, nil
		}
		o.cur++
	}
	return colBatch{}, false, nil
}

func (o *colUnionOp) close(ctx *Ctx) {
	for _, br := range o.branches {
		br.close(ctx)
	}
	record(ctx, obs.Event{
		Op: obs.OpUnion, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsOut, RowsOut: o.rowsOut, IDBatches: o.batches,
	})
}

// --- group-filter ---

type colGrp struct {
	paramIDs []uint32
	acc      GroupAcc
	done     bool
}

type colGroupOp struct {
	n     *GroupNode
	id    int
	input colOperator

	paramPos []int
	headPos  []int

	built   bool
	passing []*colGrp
	emitPos int

	groupsN int
	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *colGroupOp) open(ctx *Ctx) error {
	if err := o.input.open(ctx); err != nil {
		return err
	}
	arity := len(o.n.Probe.Columns())
	o.paramPos = make([]int, o.n.NParams)
	for i := range o.paramPos {
		o.paramPos[i] = i
	}
	o.headPos = make([]int, arity-o.n.NParams)
	for i := range o.headPos {
		o.headPos[i] = o.n.NParams + i
	}
	return nil
}

// build mirrors groupOp.build over IDs: group keys and the full-row
// dedup keys are packed IDs instead of AppendKey bytes, and only the
// distinct head tuples an accumulator actually consumes are decoded to
// boxed Values. Arrival order, the Done short-circuit, and the gauge
// accounting are identical to the row path.
func (o *colGroupOp) build(ctx *Ctx) error {
	groups := make(map[string]*colGrp)
	var order []*colGrp
	seen := make(map[string]struct{})
	var buf []byte
	dec := newDecoder(ctx.Dict)
	retained := 0
	for {
		batch, ok, err := o.input.next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		for i := 0; i < batch.n; i++ {
			buf = batch.packRowOn(buf[:0], o.paramPos, i)
			glen := len(buf)
			buf = batch.packRowOn(buf, o.headPos, i)
			g, ok := groups[string(buf[:glen])]
			if !ok {
				params := make([]uint32, len(o.paramPos))
				for j, p := range o.paramPos {
					params[j] = batch.cols[p][i]
				}
				g = &colGrp{paramIDs: params, acc: o.n.Grouper.NewGroup()}
				groups[string(buf[:glen])] = g
				order = append(order, g)
				ctx.track(1)
			}
			if g.done {
				continue
			}
			if _, dup := seen[string(buf)]; dup {
				continue
			}
			seen[string(buf)] = struct{}{}
			ctx.track(1)
			retained++
			head := make(storage.Tuple, len(o.headPos))
			for j, p := range o.headPos {
				head[j] = dec.value(batch.cols[p][i])
			}
			g.acc.Add(head)
			if g.acc.Done() {
				g.done = true
			}
		}
		o.rowsIn += batch.n
		o.batches++
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
	}
	var start time.Time
	if ctx.Col != nil {
		start = time.Now()
	}
	for _, g := range order {
		if g.done || g.acc.Passes() {
			o.passing = append(o.passing, g)
		}
	}
	o.groupsN = len(order)
	o.rowsOut = len(o.passing)
	ctx.track(-(len(order) + retained))
	if ctx.Col != nil {
		o.wall += time.Since(start)
	}
	o.built = true
	return nil
}

func (o *colGroupOp) next(ctx *Ctx) (colBatch, bool, error) {
	if !o.built {
		if err := o.build(ctx); err != nil {
			return colBatch{}, false, err
		}
	}
	if o.emitPos >= len(o.passing) {
		return colBatch{}, false, nil
	}
	end := o.emitPos + batchSize
	if end > len(o.passing) {
		end = len(o.passing)
	}
	out := newColBatch(len(o.paramPos))
	for _, g := range o.passing[o.emitPos:end] {
		for j, id := range g.paramIDs {
			out.cols[j] = append(out.cols[j], id)
		}
		out.n++
	}
	o.emitPos = end
	return out, true, nil
}

func (o *colGroupOp) close(ctx *Ctx) {
	o.input.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpGroup, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut,
		Groups: o.groupsN, Workers: 1, Wall: o.wall,
		IDBatches: o.batches,
	})
}

// --- materialize ---

type colMaterializeOp struct {
	n     *MaterializeNode
	id    int
	input colOperator

	rel      *storage.Relation
	sink     bool
	done     bool
	emitPos  int
	released bool

	rowsIn  int
	batches int
	wall    time.Duration
}

func (o *colMaterializeOp) open(ctx *Ctx) error { return o.input.open(ctx) }

// materialize drains the input, decoding each row back to boxed Values —
// the one place the columnar pipeline re-boxes — and inserting in
// arrival order, so the relation is identical to the row path's (same
// tuples, same insertion order, same normalized dedup keys). Duplicates
// are detected on a scratch tuple before anything is allocated.
func (o *colMaterializeOp) materialize(ctx *Ctx) error {
	rel := storage.NewRelation(o.n.Name, o.n.cols...)
	dec := newDecoder(ctx.Dict)
	width := len(o.n.cols)
	scratch := make(storage.Tuple, width)
	var keyBuf []byte
	for {
		batch, ok, err := o.input.next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		for i := 0; i < batch.n; i++ {
			for c := 0; c < width; c++ {
				scratch[c] = dec.value(batch.cols[c][i])
			}
			keyBuf = scratch.AppendKey(keyBuf[:0])
			if rel.ContainsKey(keyBuf) {
				continue
			}
			if rel.Insert(scratch.Clone()) {
				ctx.track(1)
			}
		}
		o.rowsIn += batch.n
		o.batches++
		if o.sink {
			if err := ctx.Gate.CheckOutput(rel.Len()); err != nil {
				return err
			}
		}
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
	}
	if o.n.Hook != nil {
		if err := ctx.Gate.Check(); err != nil {
			return err
		}
		reduced, err := o.n.Hook(rel)
		if err != nil {
			return err
		}
		if reduced != rel {
			ctx.track(reduced.Len() - rel.Len())
			rel = reduced
		}
	}
	if o.n.Register != nil {
		if err := o.n.Register(rel); err != nil {
			return err
		}
	}
	o.rel = rel
	o.done = true
	return nil
}

func (o *colMaterializeOp) next(ctx *Ctx) (colBatch, bool, error) {
	if !o.done {
		if err := o.materialize(ctx); err != nil {
			return colBatch{}, false, err
		}
	}
	tuples := o.rel.Tuples()
	if o.emitPos >= len(tuples) {
		if !o.released {
			ctx.track(-len(tuples))
			o.released = true
		}
		return colBatch{}, false, nil
	}
	end := o.emitPos + batchSize
	if end > len(tuples) {
		end = len(tuples)
	}
	// Re-intern the barrier's tuples to continue in ID form. All values
	// are dictionary hits except ones a Hook introduced.
	out := newColBatch(len(o.n.cols))
	for _, t := range tuples[o.emitPos:end] {
		for c, v := range t {
			out.cols[c] = append(out.cols[c], ctx.Dict.Intern(v))
		}
		out.n++
	}
	o.emitPos = end
	return out, true, nil
}

func (o *colMaterializeOp) close(ctx *Ctx) {
	o.input.close(ctx)
	rows := 0
	if o.rel != nil {
		rows = o.rel.Len()
	}
	record(ctx, obs.Event{
		Op: obs.OpMaterialize, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: rows, Wall: o.wall,
		IDBatches: o.batches,
	})
}
