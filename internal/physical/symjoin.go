package physical

import (
	"fmt"
	"strings"
	"time"

	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// SymJoinNode is a symmetric hash join: both inputs are streams, neither
// has a Build barrier. Each side inserts its rows into its own hash
// table and probes the other side's table as it arrives, so a pair
// (l, r) is emitted exactly once — by whichever row arrived later. The
// join key is the set of column names the two inputs share; the output
// is the left columns followed by the right side's non-key columns
// (matching JoinNode's layout). The pull schedule alternates strictly
// between the sides, one batch at a time, so the emission order is
// deterministic and identical between the row and columnar executors.
//
// The compiler picks this operator when neither input is already
// materialized — the fused FILTER-step pipelines where a producing
// step's stream feeds the consuming step directly (see RuleOpts.Streams).
type SymJoinNode struct {
	Left, Right Node

	leftKey  []int // key column positions in Left, in shared-name order
	rightKey []int // matching key positions in Right
	rightNew []int // non-key positions of Right, appended to the output
	cols     []string
}

// NewSymJoin builds a symmetric hash join of two streams, keyed on the
// column names they share. With no shared columns it degenerates to a
// cross join (one hash bucket).
func NewSymJoin(left, right Node) (*SymJoinNode, error) {
	leftCols, rightCols := left.Columns(), right.Columns()
	leftPos := make(map[string]int, len(leftCols))
	for i, c := range leftCols {
		leftPos[c] = i
	}
	n := &SymJoinNode{Left: left, Right: right}
	n.cols = append(n.cols, leftCols...)
	for j, c := range rightCols {
		if p, shared := leftPos[c]; shared {
			n.leftKey = append(n.leftKey, p)
			n.rightKey = append(n.rightKey, j)
			continue
		}
		n.rightNew = append(n.rightNew, j)
		n.cols = append(n.cols, c)
	}
	for i, c := range rightCols {
		for _, dup := range rightCols[:i] {
			if c == dup {
				return nil, fmt.Errorf("physical: symjoin right input repeats column %q", c)
			}
		}
	}
	return n, nil
}

func (n *SymJoinNode) Kind() Kind        { return KindSymJoin }
func (n *SymJoinNode) Columns() []string { return n.cols }
func (n *SymJoinNode) Inputs() []Node    { return []Node{n.Left, n.Right} }
func (n *SymJoinNode) Desc() string {
	keys := make([]string, len(n.leftKey))
	for i, p := range n.leftKey {
		keys[i] = n.Left.Columns()[p]
	}
	if len(keys) == 0 {
		return "(cross)"
	}
	return "on " + strings.Join(keys, ",")
}

// --- row operator ---

func (n *SymJoinNode) newOp(p *Plan) operator {
	return &symJoinOp{n: n, id: p.ids[n], left: n.Left.newOp(p), right: n.Right.newOp(p)}
}

type symJoinOp struct {
	n           *SymJoinNode
	id          int
	left, right operator

	leftTab, rightTab   map[string][]storage.Tuple
	leftDone, rightDone bool
	pullLeft            bool
	keyBuf              []byte
	tracked             int
	released            bool
	pending             []storage.Tuple

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *symJoinOp) open(ctx *Ctx) error {
	if err := o.left.open(ctx); err != nil {
		return err
	}
	if err := o.right.open(ctx); err != nil {
		return err
	}
	o.leftTab = make(map[string][]storage.Tuple)
	o.rightTab = make(map[string][]storage.Tuple)
	o.pullLeft = true
	return nil
}

// emit builds the output row for a matched (left, right) pair.
func (o *symJoinOp) emit(l, r storage.Tuple, out []storage.Tuple) []storage.Tuple {
	row := make(storage.Tuple, 0, len(o.n.cols))
	row = append(row, l...)
	for _, p := range o.n.rightNew {
		row = append(row, r[p])
	}
	return append(out, row)
}

// absorbLeft inserts one left batch and probes the right table.
func (o *symJoinOp) absorbLeft(ctx *Ctx, batch []storage.Tuple) []storage.Tuple {
	var out []storage.Tuple
	for _, l := range batch {
		o.keyBuf = l.AppendKeyOn(o.keyBuf[:0], o.n.leftKey)
		o.leftTab[string(o.keyBuf)] = append(o.leftTab[string(o.keyBuf)], l)
		o.tracked++
		ctx.track(1)
		for _, r := range o.rightTab[string(o.keyBuf)] {
			out = o.emit(l, r, out)
		}
	}
	return out
}

// absorbRight inserts one right batch and probes the left table.
func (o *symJoinOp) absorbRight(ctx *Ctx, batch []storage.Tuple) []storage.Tuple {
	var out []storage.Tuple
	for _, r := range batch {
		o.keyBuf = r.AppendKeyOn(o.keyBuf[:0], o.n.rightKey)
		o.rightTab[string(o.keyBuf)] = append(o.rightTab[string(o.keyBuf)], r)
		o.tracked++
		ctx.track(1)
		for _, l := range o.leftTab[string(o.keyBuf)] {
			out = o.emit(l, r, out)
		}
	}
	return out
}

func (o *symJoinOp) next(ctx *Ctx) ([]storage.Tuple, bool, error) {
	if len(o.pending) > 0 {
		return o.emitChunk(), true, nil
	}
	for !o.leftDone || !o.rightDone {
		if err := ctx.Gate.Check(); err != nil {
			return nil, false, err
		}
		// Strict alternation: one batch left, one batch right; an
		// exhausted side yields its turn to the survivor.
		fromLeft := o.pullLeft
		if o.leftDone {
			fromLeft = false
		} else if o.rightDone {
			fromLeft = true
		}
		o.pullLeft = !fromLeft
		var (
			batch []storage.Tuple
			ok    bool
			err   error
		)
		if fromLeft {
			batch, ok, err = o.left.next(ctx)
		} else {
			batch, ok, err = o.right.next(ctx)
		}
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if fromLeft {
				o.leftDone = true
			} else {
				o.rightDone = true
			}
			continue
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		var out []storage.Tuple
		if fromLeft {
			out = o.absorbLeft(ctx, batch)
		} else {
			out = o.absorbRight(ctx, batch)
		}
		o.rowsIn += len(batch)
		o.rowsOut += len(out)
		o.batches++
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
		o.pending = out
		return o.emitChunk(), true, nil
	}
	// Both streams drained: the two hash tables die with the operator.
	if !o.released {
		ctx.track(-o.tracked)
		o.released = true
	}
	return nil, false, nil
}

func (o *symJoinOp) emitChunk() []storage.Tuple {
	n := len(o.pending)
	if n > batchSize {
		n = batchSize
	}
	chunk := o.pending[:n]
	o.pending = o.pending[n:]
	return chunk
}

func (o *symJoinOp) close(ctx *Ctx) {
	o.left.close(ctx)
	o.right.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpSymJoin, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Workers: 1, Wall: o.wall,
		BoxedBatches: o.batches,
	})
}

// --- columnar operator ---

// colSymTable is one side's accumulated rows in ID form: a column store
// of every row inserted so far plus a packed-key bucket index, rows in
// insertion order — the same enumeration order as the row operator's
// map[string][]Tuple buckets.
type colSymTable struct {
	store   colBatch
	buckets map[string][]int32
	keyBuf  []byte
}

func newColSymTable(width int) *colSymTable {
	return &colSymTable{store: newColBatch(width), buckets: make(map[string][]int32)}
}

// insert appends row i of batch, returning the bucket of the OTHER
// side's table is probed with the same packed key by the caller.
func (t *colSymTable) insert(batch colBatch, keyPos []int, i int) {
	t.keyBuf = batch.packRowOn(t.keyBuf[:0], keyPos, i)
	t.buckets[string(t.keyBuf)] = append(t.buckets[string(t.keyBuf)], int32(t.store.n))
	t.store.appendRow(batch, i)
}

// probe returns the insertion-ordered row indices matching the packed
// key of row i of batch.
func (t *colSymTable) probe(batch colBatch, keyPos []int, i int) []int32 {
	t.keyBuf = batch.packRowOn(t.keyBuf[:0], keyPos, i)
	return t.buckets[string(t.keyBuf)]
}

type colSymJoinOp struct {
	n           *SymJoinNode
	id          int
	left, right colOperator

	leftTab, rightTab   *colSymTable
	leftDone, rightDone bool
	pullLeft            bool
	tracked             int
	released            bool
	pending             colBatch

	rowsIn  int
	rowsOut int
	batches int
	wall    time.Duration
}

func (o *colSymJoinOp) open(ctx *Ctx) error {
	if err := o.left.open(ctx); err != nil {
		return err
	}
	if err := o.right.open(ctx); err != nil {
		return err
	}
	o.leftTab = newColSymTable(len(o.n.Left.Columns()))
	o.rightTab = newColSymTable(len(o.n.Right.Columns()))
	o.pullLeft = true
	return nil
}

// emitPair appends the joined row for left-store-or-batch row l and
// right row r (out layout: left columns, then right non-key columns).
func (o *colSymJoinOp) emitPair(out *colBatch, leftRows colBatch, l int, rightRows colBatch, r int) {
	nl := len(leftRows.cols)
	for c := 0; c < nl; c++ {
		out.cols[c] = append(out.cols[c], leftRows.cols[c][l])
	}
	for j, p := range o.n.rightNew {
		out.cols[nl+j] = append(out.cols[nl+j], rightRows.cols[p][r])
	}
	out.n++
}

func (o *colSymJoinOp) absorbLeft(ctx *Ctx, batch colBatch) colBatch {
	out := newColBatch(len(o.n.cols))
	for i := 0; i < batch.n; i++ {
		o.leftTab.insert(batch, o.n.leftKey, i)
		o.tracked++
		ctx.track(1)
		for _, r := range o.rightTab.probe(batch, o.n.leftKey, i) {
			o.emitPair(&out, batch, i, o.rightTab.store, int(r))
		}
	}
	return out
}

func (o *colSymJoinOp) absorbRight(ctx *Ctx, batch colBatch) colBatch {
	out := newColBatch(len(o.n.cols))
	for i := 0; i < batch.n; i++ {
		o.rightTab.insert(batch, o.n.rightKey, i)
		o.tracked++
		ctx.track(1)
		for _, l := range o.leftTab.probe(batch, o.n.rightKey, i) {
			o.emitPair(&out, o.leftTab.store, int(l), batch, i)
		}
	}
	return out
}

func (o *colSymJoinOp) next(ctx *Ctx) (colBatch, bool, error) {
	if o.pending.n > 0 {
		return o.emitChunk(), true, nil
	}
	for !o.leftDone || !o.rightDone {
		if err := ctx.Gate.Check(); err != nil {
			return colBatch{}, false, err
		}
		fromLeft := o.pullLeft
		if o.leftDone {
			fromLeft = false
		} else if o.rightDone {
			fromLeft = true
		}
		o.pullLeft = !fromLeft
		var (
			batch colBatch
			ok    bool
			err   error
		)
		if fromLeft {
			batch, ok, err = o.left.next(ctx)
		} else {
			batch, ok, err = o.right.next(ctx)
		}
		if err != nil {
			return colBatch{}, false, err
		}
		if !ok {
			if fromLeft {
				o.leftDone = true
			} else {
				o.rightDone = true
			}
			continue
		}
		var start time.Time
		if ctx.Col != nil {
			start = time.Now()
		}
		var out colBatch
		if fromLeft {
			out = o.absorbLeft(ctx, batch)
		} else {
			out = o.absorbRight(ctx, batch)
		}
		o.rowsIn += batch.n
		o.rowsOut += out.n
		o.batches++
		if ctx.Col != nil {
			o.wall += time.Since(start)
		}
		o.pending = out
		return o.emitChunk(), true, nil
	}
	if !o.released {
		ctx.track(-o.tracked)
		o.released = true
	}
	return colBatch{}, false, nil
}

func (o *colSymJoinOp) emitChunk() colBatch {
	k := o.pending.n
	if k > batchSize {
		k = batchSize
	}
	chunk := colBatch{n: k, cols: make([][]uint32, len(o.pending.cols))}
	for c := range o.pending.cols {
		chunk.cols[c] = o.pending.cols[c][:k:k]
		o.pending.cols[c] = o.pending.cols[c][k:]
	}
	o.pending.n -= k
	return chunk
}

func (o *colSymJoinOp) close(ctx *Ctx) {
	o.left.close(ctx)
	o.right.close(ctx)
	record(ctx, obs.Event{
		Op: obs.OpSymJoin, ID: o.id, Desc: o.n.Desc(),
		RowsIn: o.rowsIn, RowsOut: o.rowsOut, Workers: 1, Wall: o.wall,
		IDBatches: o.batches,
	})
}
