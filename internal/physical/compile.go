package physical

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// This file is the rule compiler: it statically replays the
// eval.Executor's bottom-up decisions — which pending subgoals are
// absorbed into each scan, which become Select/AntiJoin operators once
// bound, how each atom's argument positions classify into constants,
// probe keys, new columns, and repeated-variable checks — and emits the
// equivalent operator tree. The compiled pipeline therefore produces
// exactly the tuples the executor would, in the same order.

// termCol returns the binding-relation column name for a term:
// variables map to their own name, parameters get a '$' prefix (which
// cannot collide with a variable name).
func termCol(t datalog.Term) (string, bool) {
	switch x := t.(type) {
	case datalog.Var:
		return string(x), true
	case datalog.Param:
		return "$" + string(x), true
	default:
		return "", false
	}
}

// BarrierFactory decides, per joined atom, whether to insert a
// Materialize barrier after it: the dynamic strategy (§4.4) returns a
// non-nil Hook at pipeline positions where a FILTER decision is legal
// (parameters bound, head columns bound), along with a display label.
// atomIdx is the positive-atom index just joined; cols are the columns
// bound at that point.
type BarrierFactory func(atomIdx int, atom string, cols []string) (Hook, string)

// RuleOpts configures rule compilation.
type RuleOpts struct {
	// Order is the join order as positive-atom indices; it must cover
	// every positive atom (absorbed semi-join atoms are skipped).
	Order []int
	// Out projects the final bindings onto these terms.
	Out []datalog.Term
	// Dedup deduplicates the projected output (set semantics).
	Dedup bool
	// Barrier, when non-nil, is consulted after each joined atom (and its
	// pushed-down selections/negations) for a Materialize barrier.
	Barrier BarrierFactory
	// Streams maps predicate names to pipelines that produce the
	// predicate's tuples instead of a stored relation (fused step
	// execution). A streamed atom compiles to a symmetric hash join with
	// the bindings built so far (or becomes the pipeline source when it
	// is first in the order); its arguments must be distinct variables
	// or parameters, and it is never absorbed as a semi-join reducer.
	Streams map[string]Node
}

// CompileRule compiles one safe rule to an operator pipeline ending in a
// Project node. The rule must be safe (§3.3); every body atom's relation
// must exist in db with matching arity (step plans register prior step
// relations before compiling dependent steps).
func CompileRule(db *storage.Database, r *datalog.Rule, opts RuleOpts) (Node, error) {
	if vs := datalog.CheckSafety(r); len(vs) > 0 {
		return nil, fmt.Errorf("physical: rule %s is unsafe: %v", r.Head, vs[0])
	}
	for _, sg := range r.Body {
		a, ok := sg.(*datalog.Atom)
		if !ok {
			continue
		}
		if s, streamed := opts.Streams[a.Pred]; streamed {
			if len(s.Columns()) != len(a.Args) {
				return nil, fmt.Errorf("physical: atom %s has %d arguments but its stream has %d columns",
					a, len(a.Args), len(s.Columns()))
			}
			continue
		}
		rel, err := db.Relation(a.Pred)
		if err != nil {
			return nil, fmt.Errorf("physical: %w", err)
		}
		if rel.Arity() != len(a.Args) {
			return nil, fmt.Errorf("physical: atom %s has %d arguments but relation %s has %d columns",
				a, len(a.Args), a.Pred, rel.Arity())
		}
	}
	atoms := r.PositiveAtoms()
	c := &ruleCompiler{
		db:         db,
		atoms:      atoms,
		colPos:     make(map[string]int),
		joined:     make([]bool, len(atoms)),
		pendingCmp: r.Comparisons(),
		pendingNeg: r.NegatedAtoms(),
		streams:    opts.Streams,
	}
	for _, i := range opts.Order {
		if i < 0 || i >= len(atoms) {
			return nil, fmt.Errorf("physical: positive-atom index %d out of range", i)
		}
		if c.joined[i] { // absorbed into an earlier scan as a semi-join
			continue
		}
		if stream, ok := opts.Streams[atoms[i].Pred]; ok {
			if err := c.joinStream(i, stream); err != nil {
				return nil, err
			}
		} else if err := c.joinAtom(i); err != nil {
			return nil, err
		}
		if err := c.applyPending(); err != nil {
			return nil, err
		}
		if opts.Barrier != nil {
			if hook, desc := opts.Barrier(i, atoms[i].String(), c.cols); hook != nil {
				c.node = NewMaterialize(fmt.Sprintf("bind%d", c.steps), c.node, hook, desc, nil)
			}
		}
	}
	remaining := 0
	for _, done := range c.joined {
		if !done {
			remaining++
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("physical: join order covers %d of %d atoms", len(atoms)-remaining, len(atoms))
	}
	if c.node == nil {
		// Ground rule without positive atoms: pending subgoals filter the
		// unit stream.
		c.node = &UnitNode{}
		if err := c.applyPending(); err != nil {
			return nil, err
		}
	}
	if len(c.pendingCmp) > 0 || len(c.pendingNeg) > 0 {
		// Unreachable for safe rules; guard for internal consistency.
		return nil, fmt.Errorf("physical: %d comparisons and %d negations never became applicable",
			len(c.pendingCmp), len(c.pendingNeg))
	}
	return projectOnto(c.node, opts.Out, opts.Dedup)
}

// ruleCompiler tracks the static evaluation state: which columns are
// bound (and where), which atoms are joined, and which subgoals are
// still pending.
type ruleCompiler struct {
	db    *storage.Database
	atoms []*datalog.Atom

	node   Node
	cols   []string
	colPos map[string]int

	joined     []bool
	pendingCmp []*datalog.Comparison
	pendingNeg []*datalog.Atom
	streams    map[string]Node
	steps      int
}

// setCols replaces the bound-column state after emitting an operator.
func (c *ruleCompiler) setCols(cols []string) {
	c.cols = cols
	c.colPos = make(map[string]int, len(cols))
	for i, col := range cols {
		c.colPos[col] = i
	}
}

// argRefOf resolves a term against (bound columns, atom positions),
// mirroring the executor's absorbChecks getter priority: constant, then
// already-bound column, then a position of the atom being scanned.
func (c *ruleCompiler) argRefOf(t datalog.Term, atomPos map[string]int) (argRef, bool) {
	if cv, isConst := t.(datalog.Const); isConst {
		return argRef{src: srcConst, val: cv.Val}, true
	}
	col, _ := termCol(t)
	if p, ok := c.colPos[col]; ok {
		return argRef{src: srcCur, pos: p}, true
	}
	if atomPos != nil {
		if p, ok := atomPos[col]; ok {
			return argRef{src: srcBase, pos: p}, true
		}
	}
	return argRef{}, false
}

func (c *ruleCompiler) argRefsOf(terms []datalog.Term, atomPos map[string]int) ([]argRef, bool) {
	out := make([]argRef, len(terms))
	for i, t := range terms {
		r, ok := c.argRefOf(t, atomPos)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

// absorb collects the checks for every pending subgoal decidable during
// the scan of atom — comparisons, negations, and positive atoms acting
// as semi-join reducers — removing them from the pending lists and
// marking absorbed positive atoms joined (the Fig. 9 reducer shape).
func (c *ruleCompiler) absorb(atom *datalog.Atom) ([]*Check, error) {
	atomPos := make(map[string]int, len(atom.Args))
	for i, t := range atom.Args {
		if col, ok := termCol(t); ok {
			if _, dup := atomPos[col]; !dup {
				atomPos[col] = i
			}
		}
	}

	var checks []*Check

	var keepCmp []*datalog.Comparison
	for _, cm := range c.pendingCmp {
		l, okL := c.argRefOf(cm.Left, atomPos)
		r, okR := c.argRefOf(cm.Right, atomPos)
		if !okL || !okR {
			keepCmp = append(keepCmp, cm)
			continue
		}
		checks = append(checks, &Check{kind: checkCmp, desc: cm.String(), op: cm.Op, left: l, right: r})
	}
	c.pendingCmp = keepCmp

	var keepNeg []*datalog.Atom
	for _, a := range c.pendingNeg {
		refs, ok := c.argRefsOf(a.Args, atomPos)
		if !ok {
			keepNeg = append(keepNeg, a)
			continue
		}
		if err := c.checkArity(a); err != nil {
			return nil, err
		}
		checks = append(checks, &Check{kind: checkAntiMember, desc: a.String(), pred: a.Pred, args: refs})
	}
	c.pendingNeg = keepNeg

	for j, a := range c.atoms {
		if c.joined[j] || a == atom {
			continue
		}
		if _, streamed := c.streams[a.Pred]; streamed {
			// Streamed atoms have no stored relation to probe; they join
			// symmetrically in their own order slot.
			continue
		}
		refs, ok := c.argRefsOf(a.Args, atomPos)
		if !ok {
			continue
		}
		if err := c.checkArity(a); err != nil {
			return nil, err
		}
		checks = append(checks, &Check{kind: checkMember, desc: a.String(), pred: a.Pred, args: refs})
		c.joined[j] = true
	}
	return checks, nil
}

func (c *ruleCompiler) checkArity(a *datalog.Atom) error {
	rel, err := c.db.Relation(a.Pred)
	if err != nil {
		return fmt.Errorf("physical: %w", err)
	}
	if rel.Arity() != len(a.Args) {
		return fmt.Errorf("physical: atom %s arity %d vs relation arity %d", a, len(a.Args), rel.Arity())
	}
	return nil
}

// joinAtom emits the Scan (pipeline source) or HashJoin operator for the
// i-th positive atom, classifying its argument positions exactly as the
// executor's joinAtom does.
func (c *ruleCompiler) joinAtom(i int) error {
	atom := c.atoms[i]
	checks, err := c.absorb(atom)
	if err != nil {
		return err
	}
	var (
		consts   []constPos
		probeRel []int
		probeCur []int
		newCols  []string
		newPos   []int
		dup      [][2]int
	)
	firstNew := make(map[string]int)
	for p, t := range atom.Args {
		if cv, isConst := t.(datalog.Const); isConst {
			consts = append(consts, constPos{p, cv.Val})
			continue
		}
		col, _ := termCol(t)
		if cp, bound := c.colPos[col]; bound {
			probeRel = append(probeRel, p)
			probeCur = append(probeCur, cp)
			continue
		}
		if fp, seen := firstNew[col]; seen {
			dup = append(dup, [2]int{fp, p})
			continue
		}
		firstNew[col] = p
		newCols = append(newCols, col)
		newPos = append(newPos, p)
	}
	c.steps++
	if c.node == nil {
		// First atom: the binding side is the unit relation, so the scan
		// reads the base relation directly (insertion order, which equals
		// the hash-bucket order the executor's unit join observes).
		c.node = &ScanNode{
			Pred: atom.Pred, atom: atom.String(), arity: len(atom.Args),
			consts: consts, dup: dup, checks: checks,
			newPos: newPos, cols: append([]string(nil), newCols...),
		}
	} else {
		idxCols := make([]int, 0, len(consts)+len(probeRel))
		for _, cp := range consts {
			idxCols = append(idxCols, cp.pos)
		}
		idxCols = append(idxCols, probeRel...)
		outCols := append(append([]string(nil), c.cols...), newCols...)
		c.node = &JoinNode{
			Input: &BuildNode{Pred: atom.Pred, idxCols: idxCols},
			Probe: c.node,
			Pred:  atom.Pred, atom: atom.String(), arity: len(atom.Args),
			consts: consts, probeCur: probeCur, probeRel: probeRel,
			dup: dup, checks: checks, newPos: newPos, cols: outCols,
		}
	}
	c.setCols(c.node.Columns())
	c.joined[i] = true
	return nil
}

// joinStream joins the i-th positive atom from a producing pipeline
// instead of a stored relation. The stream's columns are renamed to the
// atom's terms by an identity projection; the result either becomes the
// pipeline source (first atom in the order) or joins the bindings so
// far through a symmetric hash join keyed on the shared column names.
func (c *ruleCompiler) joinStream(i int, stream Node) error {
	atom := c.atoms[i]
	names := make([]string, len(atom.Args))
	seen := make(map[string]bool, len(atom.Args))
	for p, t := range atom.Args {
		col, ok := termCol(t)
		if !ok {
			return fmt.Errorf("physical: streamed atom %s has a constant argument", atom)
		}
		if seen[col] {
			return fmt.Errorf("physical: streamed atom %s repeats %s", atom, col)
		}
		seen[col] = true
		names[p] = col
	}
	if len(stream.Columns()) != len(atom.Args) {
		return fmt.Errorf("physical: atom %s has %d arguments but its stream has %d columns",
			atom, len(atom.Args), len(stream.Columns()))
	}
	pos := make([]int, len(names))
	for p := range pos {
		pos[p] = p
	}
	renamed := Node(&ProjectNode{Probe: stream, pos: pos, cols: names})
	c.steps++
	if c.node == nil {
		c.node = renamed
	} else {
		sj, err := NewSymJoin(c.node, renamed)
		if err != nil {
			return err
		}
		c.node = sj
	}
	c.setCols(c.node.Columns())
	c.joined[i] = true
	return nil
}

// applyPending emits Select/AntiJoin operators for pending comparisons
// and negations whose terms are all bound.
func (c *ruleCompiler) applyPending() error {
	var keepCmp []*datalog.Comparison
	for _, cm := range c.pendingCmp {
		l, okL := c.argRefOf(cm.Left, nil)
		r, okR := c.argRefOf(cm.Right, nil)
		if !okL || !okR {
			keepCmp = append(keepCmp, cm)
			continue
		}
		c.steps++
		c.node = &SelectNode{Probe: c.node, desc: cm.String(), op: cm.Op, left: l, right: r, cols: c.cols}
	}
	c.pendingCmp = keepCmp

	var keepNeg []*datalog.Atom
	for _, a := range c.pendingNeg {
		srcPos := make([]int, len(a.Args))
		constVal := make([]storage.Value, len(a.Args))
		all := true
		for i, t := range a.Args {
			if cv, isConst := t.(datalog.Const); isConst {
				srcPos[i] = -1
				constVal[i] = cv.Val
				continue
			}
			col, _ := termCol(t)
			p, bound := c.colPos[col]
			if !bound {
				all = false
				break
			}
			srcPos[i] = p
		}
		if !all {
			keepNeg = append(keepNeg, a)
			continue
		}
		if err := c.checkArity(a); err != nil {
			return err
		}
		c.steps++
		c.node = &AntiJoinNode{
			Probe: c.node, Pred: a.Pred, atom: a.String(), arity: len(a.Args),
			srcPos: srcPos, constVal: constVal, cols: c.cols,
		}
	}
	c.pendingNeg = keepNeg
	return nil
}

// projectOnto appends the final projection onto the output terms; column
// names follow termCol, constants are not allowed.
func projectOnto(in Node, out []datalog.Term, dedup bool) (Node, error) {
	inCols := in.Columns()
	colPos := make(map[string]int, len(inCols))
	for i, col := range inCols {
		colPos[col] = i
	}
	cols := make([]string, len(out))
	pos := make([]int, len(out))
	for i, t := range out {
		col, ok := termCol(t)
		if !ok {
			return nil, fmt.Errorf("physical: cannot project constant term %s", t)
		}
		p, bound := colPos[col]
		if !bound {
			return nil, fmt.Errorf("physical: term %s is not bound (columns %v)", t, inCols)
		}
		cols[i] = col
		pos[i] = p
	}
	return &ProjectNode{Probe: in, pos: pos, cols: cols, Dedup: dedup}, nil
}
