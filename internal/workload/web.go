package workload

import (
	"fmt"
	"math/rand"

	"queryflocks/internal/storage"
)

// WebConfig parametrizes the Example 2.3 HTML-collection generator.
type WebConfig struct {
	// Docs is the number of documents.
	Docs int
	// Vocab is the vocabulary size.
	Vocab int
	// TitleWords is the mean number of distinct words per title.
	TitleWords int
	// AnchorsPerDoc is the mean number of inbound anchors per document.
	AnchorsPerDoc int
	// AnchorWords is the mean number of words per anchor text.
	AnchorWords int
	// Skew is the Zipf exponent of word frequency.
	Skew float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultWeb returns a config with word-frequency skew typical of text.
func DefaultWeb(docs int, seed int64) WebConfig {
	return WebConfig{
		Docs:          docs,
		Vocab:         docs, // vocabulary scales with collection size
		TitleWords:    4,
		AnchorsPerDoc: 2,
		AnchorWords:   3,
		Skew:          1.05,
		Seed:          seed,
	}
}

// Web generates inTitle(D, W), inAnchor(A, W), and link(A, D1, D2).
// Document IDs ("d12") and anchor IDs ("a7") are disjoint string spaces,
// matching the Fig. 4 assumption that "there are no values in common
// between these two types of ID's". Anchor text correlates with the target
// document's title (half of each anchor's words are drawn from the
// target's title), which is what makes the union flock find strongly
// connected word pairs.
func Web(cfg WebConfig) *storage.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipf(rng, cfg.Vocab, cfg.Skew)

	inTitle := storage.NewRelation("inTitle", "D", "W")
	inAnchor := storage.NewRelation("inAnchor", "A", "W")
	link := storage.NewRelation("link", "A", "D1", "D2")

	doc := func(i int) storage.Value { return storage.Str(fmt.Sprintf("d%d", i)) }
	word := func(i int) storage.Value { return storage.Str(fmt.Sprintf("w%d", i)) }

	titles := make([][]int, cfg.Docs)
	for d := 0; d < cfg.Docs; d++ {
		n := 1 + rng.Intn(2*cfg.TitleWords-1)
		for k := 0; k < n; k++ {
			w := zipf.Next()
			titles[d] = append(titles[d], w)
			inTitle.Insert(storage.Tuple{doc(d), word(w)})
		}
	}

	anchorID := 0
	for d := 0; d < cfg.Docs; d++ {
		anchors := rng.Intn(2*cfg.AnchorsPerDoc + 1)
		for k := 0; k < anchors; k++ {
			a := storage.Str(fmt.Sprintf("a%d", anchorID))
			anchorID++
			src := rng.Intn(cfg.Docs)
			link.Insert(storage.Tuple{a, doc(src), doc(d)})
			n := 1 + rng.Intn(2*cfg.AnchorWords-1)
			for j := 0; j < n; j++ {
				var w int
				if len(titles[d]) > 0 && rng.Intn(2) == 0 {
					w = titles[d][rng.Intn(len(titles[d]))]
				} else {
					w = zipf.Next()
				}
				inAnchor.Insert(storage.Tuple{a, word(w)})
			}
		}
	}

	db := storage.NewDatabase()
	db.Add(inTitle)
	db.Add(inAnchor)
	db.Add(link)
	return db
}
