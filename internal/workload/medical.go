package workload

import (
	"fmt"
	"math/rand"

	"queryflocks/internal/storage"
)

// SideEffect plants an unexplained medicine→symptom association — the
// signal the Fig. 3 flock is mining for.
type SideEffect struct {
	// Medicine and Symptom identify the planted pair (indices into the
	// generator's universes).
	Medicine, Symptom int
	// Rate is the probability that a patient taking the medicine exhibits
	// the symptom.
	Rate float64
}

// MedicalConfig parametrizes the Example 2.2 medical database generator.
type MedicalConfig struct {
	// Patients, Diseases, Symptoms, Medicines size the universes.
	Patients, Diseases, Symptoms, Medicines int
	// SymptomsPerDisease is the causes-relation fan-out per disease.
	SymptomsPerDisease int
	// MedicinesPerDisease is how many standard medicines treat a disease;
	// each patient takes one of them (§3.2's "the number of different
	// medicines administered for a disease is small").
	MedicinesPerDisease int
	// ExhibitRate is the probability a patient exhibits each symptom
	// caused by their disease.
	ExhibitRate float64
	// ExtraMedicines is the expected number of additional uniformly random
	// medicines each patient takes beyond the one treating their disease
	// (polypharmacy). It drives the exhibits-join-treatments fan-out that
	// makes the Fig. 5 pre-filters worthwhile.
	ExtraMedicines float64
	// NoiseRate is the expected number of extra uniformly random symptoms
	// a patient exhibits (unexplained, but too scattered to reach
	// support). Values above 1 make rare symptoms the majority of the
	// exhibits relation, the regime where Example 3.2's subquery (1) pays
	// off.
	NoiseRate float64
	// SideEffects are the planted unexplained associations.
	SideEffects []SideEffect
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultMedical returns a config shaped like Example 2.2's narrative:
// skewed disease prevalence, few medicines per disease, and two planted
// side effects strong enough to clear a support threshold of ~20 at 5k
// patients.
func DefaultMedical(patients int, seed int64) MedicalConfig {
	return MedicalConfig{
		Patients:            patients,
		Diseases:            50,
		Symptoms:            200,
		Medicines:           120,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 2,
		ExhibitRate:         0.8,
		NoiseRate:           0.3,
		SideEffects: []SideEffect{
			{Medicine: 3, Symptom: 190, Rate: 0.5},
			{Medicine: 7, Symptom: 195, Rate: 0.35},
		},
		Seed: seed,
	}
}

// Medical generates diagnoses(Patient, Disease), exhibits(Patient,
// Symptom), treatments(Patient, Medicine), and causes(Disease, Symptom).
// Patients are ints; diseases, symptoms and medicines are strings ("d3",
// "s17", "m5") so mined answers read naturally. Disease prevalence is
// Zipfian. The planted side effects are the high-support unexplained
// (symptom, medicine) pairs; ambient noise contributes unexplained
// symptoms at low support.
func Medical(cfg MedicalConfig) *storage.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	diagnoses := storage.NewRelation("diagnoses", "Patient", "Disease")
	exhibits := storage.NewRelation("exhibits", "Patient", "Symptom")
	treatments := storage.NewRelation("treatments", "Patient", "Medicine")
	causes := storage.NewRelation("causes", "Disease", "Symptom")

	disease := func(i int) storage.Value { return storage.Str(fmt.Sprintf("d%d", i)) }
	symptom := func(i int) storage.Value { return storage.Str(fmt.Sprintf("s%d", i)) }
	medicine := func(i int) storage.Value { return storage.Str(fmt.Sprintf("m%d", i)) }

	// Fixed structure: disease i causes SymptomsPerDisease symptoms and is
	// treated by MedicinesPerDisease medicines, assigned round-robin so
	// structure is deterministic and disjointness is controlled.
	causedBy := make([][]int, cfg.Diseases)
	treatedBy := make([][]int, cfg.Diseases)
	for d := 0; d < cfg.Diseases; d++ {
		for k := 0; k < cfg.SymptomsPerDisease; k++ {
			s := (d*cfg.SymptomsPerDisease + k) % cfg.Symptoms
			causedBy[d] = append(causedBy[d], s)
			causes.InsertValues(disease(d), symptom(s))
		}
		for k := 0; k < cfg.MedicinesPerDisease; k++ {
			treatedBy[d] = append(treatedBy[d], (d*cfg.MedicinesPerDisease+k)%cfg.Medicines)
		}
	}

	// Side-effect lookup: medicine -> planted symptoms.
	planted := make(map[int][]SideEffect)
	for _, se := range cfg.SideEffects {
		planted[se.Medicine] = append(planted[se.Medicine], se)
	}

	prevalence := NewZipf(rng, cfg.Diseases, 1.0)
	for p := 0; p < cfg.Patients; p++ {
		pid := storage.Int(int64(p))
		d := prevalence.Next()
		diagnoses.Insert(storage.Tuple{pid, disease(d)})
		m := treatedBy[d][rng.Intn(len(treatedBy[d]))]
		treatments.Insert(storage.Tuple{pid, medicine(m)})
		extra := int(cfg.ExtraMedicines)
		if rng.Float64() < cfg.ExtraMedicines-float64(extra) {
			extra++
		}
		for n := 0; n < extra; n++ {
			treatments.Insert(storage.Tuple{pid, medicine(rng.Intn(cfg.Medicines))})
		}
		for _, s := range causedBy[d] {
			if rng.Float64() < cfg.ExhibitRate {
				exhibits.Insert(storage.Tuple{pid, symptom(s)})
			}
		}
		noise := int(cfg.NoiseRate)
		if rng.Float64() < cfg.NoiseRate-float64(noise) {
			noise++
		}
		for n := 0; n < noise; n++ {
			exhibits.Insert(storage.Tuple{pid, symptom(rng.Intn(cfg.Symptoms))})
		}
		for _, se := range planted[m] {
			if rng.Float64() < se.Rate {
				exhibits.Insert(storage.Tuple{pid, symptom(se.Symptom)})
			}
		}
	}

	db := storage.NewDatabase()
	db.Add(diagnoses)
	db.Add(exhibits)
	db.Add(treatments)
	db.Add(causes)
	return db
}
