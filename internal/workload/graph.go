package workload

import (
	"math/rand"

	"queryflocks/internal/storage"
)

// GraphConfig parametrizes the directed-graph generator for the Fig. 6
// path flock ("nodes with at least c successors from which a path of
// length n extends").
type GraphConfig struct {
	// Nodes is the number of vertices.
	Nodes int
	// OutDegree is the mean out-degree of ordinary nodes.
	OutDegree int
	// Hubs is the number of high-fanout nodes; the flock's answers come
	// from hubs whose successors continue onward.
	Hubs int
	// HubDegree is the out-degree of hub nodes.
	HubDegree int
	// DeadEndFrac is the fraction of nodes with no outgoing arcs, which
	// makes deep cascade steps selective: many hubs fan out into dead
	// ends and are pruned only by the later steps of the Fig. 7 plan.
	DeadEndFrac float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultGraph returns a config whose shape rewards the Fig. 7 cascade:
// plenty of fanout at hubs but long paths are rare.
func DefaultGraph(nodes int, seed int64) GraphConfig {
	return GraphConfig{
		Nodes:       nodes,
		OutDegree:   2,
		Hubs:        nodes / 50,
		HubDegree:   30,
		DeadEndFrac: 0.5,
		Seed:        seed,
	}
}

// Graph generates arc(From, To) over int node IDs.
func Graph(cfg GraphConfig) *storage.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	arc := storage.NewRelation("arc", "From", "To")
	node := func(i int) storage.Value { return storage.Int(int64(i)) }

	deadEnd := make([]bool, cfg.Nodes)
	for i := range deadEnd {
		deadEnd[i] = rng.Float64() < cfg.DeadEndFrac
	}
	addArcs := func(from, degree int) {
		for k := 0; k < degree; k++ {
			to := rng.Intn(cfg.Nodes)
			if to == from {
				continue
			}
			arc.Insert(storage.Tuple{node(from), node(to)})
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		if deadEnd[i] {
			continue
		}
		addArcs(i, 1+rng.Intn(2*cfg.OutDegree-1))
	}
	for h := 0; h < cfg.Hubs; h++ {
		// Hubs are the first nodes; give them fanout even if marked dead.
		addArcs(h, cfg.HubDegree)
	}

	db := storage.NewDatabase()
	db.Add(arc)
	return db
}
