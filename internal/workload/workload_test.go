package workload

import (
	"math"
	"math/rand"
	"testing"

	"queryflocks/internal/storage"
)

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 1.0)
	counts := make([]int, 100)
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate: with s=1 over 100 ranks, p(0) ~ 1/H_100 ~ 0.19.
	p0 := float64(counts[0]) / n
	if p0 < 0.15 || p0 > 0.25 {
		t.Errorf("p(rank 0) = %.3f, want ~0.19", p0)
	}
	// Monotone-ish decay: top rank beats rank 50 by a wide margin.
	if counts[0] < 10*counts[50] {
		t.Errorf("skew too flat: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 10, 0) // s=0 is uniform
	counts := make([]int, 10)
	const n = 20_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if math.Abs(float64(c)-n/10) > n/20 {
			t.Errorf("rank %d count %d far from uniform", r, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0 ranks) should panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 0, 1)
}

func TestBasketsDeterministic(t *testing.T) {
	cfg := BasketConfig{Baskets: 200, Items: 50, MeanSize: 5, Skew: 0.9, Seed: 7}
	a := Baskets(cfg)
	b := Baskets(cfg)
	ra, _ := a.Relation("baskets")
	rb, _ := b.Relation("baskets")
	if !ra.Equal(rb) {
		t.Error("same seed produced different baskets")
	}
	cfg.Seed = 8
	rc, _ := Baskets(cfg).Relation("baskets")
	if ra.Equal(rc) {
		t.Error("different seeds produced identical baskets")
	}
}

func TestBasketsShape(t *testing.T) {
	cfg := BasketConfig{Baskets: 500, Items: 100, MeanSize: 6, Skew: 1.0, Seed: 3}
	db := Baskets(cfg)
	rel, err := db.Relation("baskets")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 {
		t.Fatalf("arity = %d", rel.Arity())
	}
	if rel.DistinctCount("BID") != cfg.Baskets {
		t.Errorf("baskets = %d, want %d", rel.DistinctCount("BID"), cfg.Baskets)
	}
	// Popular item 0 should appear in far more baskets than item 50.
	ix := rel.IndexOn("Item")
	m0, _ := ix.Lookup(storage.Tuple{storage.Int(0)}, nil)
	m50, _ := ix.Lookup(storage.Tuple{storage.Int(50)}, nil)
	n0, n50 := len(m0), len(m50)
	if n0 <= n50 {
		t.Errorf("no skew: item0 in %d baskets, item50 in %d", n0, n50)
	}
}

func TestWordsDefaults(t *testing.T) {
	db := Words(300, 200, 8, 11)
	rel, err := db.Relation("baskets")
	if err != nil {
		t.Fatal(err)
	}
	if rel.DistinctCount("BID") != 300 {
		t.Errorf("docs = %d", rel.DistinctCount("BID"))
	}
}

func TestAttachWeights(t *testing.T) {
	db := Baskets(BasketConfig{Baskets: 100, Items: 20, MeanSize: 4, Skew: 0.8, Seed: 5})
	if err := AttachWeights(db, 10, 6); err != nil {
		t.Fatal(err)
	}
	imp, err := db.Relation("importance")
	if err != nil {
		t.Fatal(err)
	}
	if imp.Len() != 100 {
		t.Errorf("importance rows = %d, want one per basket", imp.Len())
	}
	for _, tp := range imp.Tuples() {
		w := tp[1].AsInt()
		if w < 1 || w > 10 {
			t.Fatalf("weight %d out of range", w)
		}
	}
	// Missing baskets relation errors.
	if err := AttachWeights(storage.NewDatabase(), 10, 6); err == nil {
		t.Error("AttachWeights without baskets should error")
	}
}

func TestMedicalShape(t *testing.T) {
	cfg := DefaultMedical(2000, 13)
	db := Medical(cfg)
	for _, name := range []string{"diagnoses", "exhibits", "treatments", "causes"} {
		if !db.Has(name) {
			t.Fatalf("missing relation %q", name)
		}
	}
	diag := db.MustRelation("diagnoses")
	if diag.Len() != cfg.Patients {
		t.Errorf("diagnoses = %d, want %d", diag.Len(), cfg.Patients)
	}
	if db.MustRelation("treatments").Len() != cfg.Patients {
		t.Error("each patient should take exactly one medicine")
	}
	causes := db.MustRelation("causes")
	if causes.Len() != cfg.Diseases*cfg.SymptomsPerDisease {
		t.Errorf("causes = %d", causes.Len())
	}
	// The planted side-effect symptom must appear well above noise among
	// takers of the planted medicine.
	ex := db.MustRelation("exhibits")
	ixSym := ex.IndexOn("Symptom")
	sym190, _ := ixSym.Lookup(storage.Tuple{storage.Str("s190")}, nil)
	s190 := len(sym190)
	if s190 < 20 {
		t.Errorf("planted side-effect symptom s190 appears only %d times", s190)
	}
	// Determinism.
	db2 := Medical(cfg)
	if !ex.Equal(db2.MustRelation("exhibits")) {
		t.Error("same seed produced different exhibits")
	}
}

func TestWebShape(t *testing.T) {
	db := Web(DefaultWeb(300, 21))
	for _, name := range []string{"inTitle", "inAnchor", "link"} {
		if !db.Has(name) {
			t.Fatalf("missing relation %q", name)
		}
	}
	link := db.MustRelation("link")
	inAnchor := db.MustRelation("inAnchor")
	if link.Len() == 0 || inAnchor.Len() == 0 {
		t.Fatal("empty web relations")
	}
	// Every anchor with words must be a link anchor.
	linkAnchors := make(map[storage.Value]bool)
	for _, t := range link.Tuples() {
		linkAnchors[t[0]] = true
	}
	for _, tp := range inAnchor.Tuples() {
		if !linkAnchors[tp[0]] {
			t.Fatalf("anchor %v has words but no link", tp[0])
		}
	}
	// Doc and anchor ID spaces are disjoint (Fig. 4 requirement).
	docs := make(map[storage.Value]bool)
	for _, tp := range db.MustRelation("inTitle").Tuples() {
		docs[tp[0]] = true
	}
	for a := range linkAnchors {
		if docs[a] {
			t.Fatalf("ID %v is both an anchor and a document", a)
		}
	}
}

func TestGraphShape(t *testing.T) {
	cfg := DefaultGraph(1000, 31)
	db := Graph(cfg)
	arc := db.MustRelation("arc")
	if arc.Len() == 0 {
		t.Fatal("empty graph")
	}
	// Hubs have high out-degree.
	ix := arc.IndexOn("From")
	hubArcs, _ := ix.Lookup(storage.Tuple{storage.Int(0)}, nil)
	hubDeg := len(hubArcs)
	if hubDeg < cfg.HubDegree/2 {
		t.Errorf("hub 0 out-degree %d, want near %d", hubDeg, cfg.HubDegree)
	}
	// No self-loops.
	for _, tp := range arc.Tuples() {
		if tp[0] == tp[1] {
			t.Fatalf("self-loop at %v", tp[0])
		}
	}
	// Determinism.
	if !arc.Equal(Graph(cfg).MustRelation("arc")) {
		t.Error("same seed produced different graphs")
	}
}
