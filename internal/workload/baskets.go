package workload

import (
	"math/rand"

	"queryflocks/internal/storage"
)

// BasketConfig parametrizes the market-basket generator (the Quest-style
// workload behind Figs. 1–2) and, with word-oriented defaults, the §1.3
// "word occurrences in newspaper articles" dataset.
type BasketConfig struct {
	// Baskets is the number of baskets (or documents).
	Baskets int
	// Items is the size of the item (or vocabulary) universe.
	Items int
	// MeanSize is the average number of distinct items per basket; actual
	// sizes are uniform in [1, 2*MeanSize-1].
	MeanSize int
	// Skew is the Zipf exponent of item popularity. Retail-like data sits
	// near 0.7–0.9; word frequencies near 1.0–1.2.
	Skew float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Baskets generates the relation baskets(BID, Item) in a fresh database.
// Basket IDs are ints from 0; items are ints from 0 with Zipfian
// popularity (item 0 most popular).
func Baskets(cfg BasketConfig) *storage.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipf(rng, cfg.Items, cfg.Skew)
	rel := storage.NewRelation("baskets", "BID", "Item")
	for b := 0; b < cfg.Baskets; b++ {
		size := 1 + rng.Intn(2*cfg.MeanSize-1)
		for n := 0; n < size; n++ {
			rel.InsertValues(storage.Int(int64(b)), storage.Int(int64(zipf.Next())))
		}
	}
	db := storage.NewDatabase()
	db.Add(rel)
	return db
}

// Words generates the §1.3 word-occurrence dataset: documents as baskets,
// words as items, with word-frequency skew defaulted to Zipf s = 1.1.
// The relation is still named baskets(BID, Item) so the market-basket
// flock runs unchanged.
func Words(docs, vocab, meanLen int, seed int64) *storage.Database {
	return Baskets(BasketConfig{
		Baskets:  docs,
		Items:    vocab,
		MeanSize: meanLen,
		Skew:     1.1,
		Seed:     seed,
	})
}

// AttachWeights adds the importance(BID, W) relation of Fig. 10 to a
// basket database: every basket ID referenced by baskets gets a weight
// uniform in [1, maxWeight].
func AttachWeights(db *storage.Database, maxWeight int, seed int64) error {
	baskets, err := db.Relation("baskets")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	imp := storage.NewRelation("importance", "BID", "W")
	//lint:ignore DL005 keys are Normalize()d at the insertion below
	seen := make(map[storage.Value]struct{})
	for _, t := range baskets.Tuples() {
		// Normalize the dedup key: Int(1) and Float(1) are the same
		// basket, and giving them two independent weights would double-
		// count it in every weighted aggregate (joins collapse them).
		bid := t[0].Normalize()
		if _, dup := seen[bid]; dup {
			continue
		}
		seen[bid] = struct{}{}
		imp.InsertValues(bid, storage.Int(1+int64(rng.Intn(maxWeight))))
	}
	db.Add(imp)
	return nil
}
