// Package workload generates the synthetic datasets the experiments run
// on, substituting for the paper's proprietary inputs (retail baskets,
// newspaper word occurrences, medical records, HTML collections; see
// DESIGN.md's substitution table). All generators are deterministic given
// their Seed, so benches and EXPERIMENTS.md are reproducible.
package workload

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 1..N with P(rank k) proportional to 1/k^s. It
// supports any s >= 0 (the standard library's rand.Zipf requires s > 1),
// which matters because word-frequency skew near s = 1 is exactly the
// regime the §1.3 experiment depends on.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next samples a rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
