package datalog

import (
	"fmt"
)

// This file implements query containment for conjunctive queries via
// containment mappings ([CM77], §3.1). Containment is what justifies the
// generalized a-priori trick: a query Q1 containing Q2 (written Q2 ⊆ Q1)
// upper-bounds Q2's result on every database, so a support filter that
// rejects a parameter value under Q1 also rejects it under Q2.
//
// For extended CQs (negation, arithmetic) full containment is harder
// ([Klu82], [ZO93], [LS93]); following §3.3 we restrict to the syntactic
// subset-of-subgoals condition, which is sound for all three subgoal kinds
// (deleting any subgoal can only grow the result).

// Contains reports whether q2 ⊆ q1 holds for all databases, i.e. whether
// there is a containment mapping from q1 to q2. Both rules must be pure
// conjunctive queries (no negation, no arithmetic); otherwise an error is
// returned.
//
// Parameters are treated as constants shared between the two queries: a
// parameter maps only to itself, reflecting that a flock compares the two
// queries under a common parameter assignment.
func Contains(q1, q2 *Rule) (bool, error) {
	ok, _, err := containsBounded(q1, q2, -1)
	return ok, err
}

// ContainsBounded is Contains with a cap on backtracking work: the search
// spends at most `budget` atom-match attempts before giving up (negative
// budget = unlimited). It reports (contained, decided, err); decided is
// false when the budget ran out before the search concluded, in which
// case contained is meaningless. Static analyses use the bounded form so
// adversarial inputs — many same-predicate subgoals make the
// containment-mapping search exponential — cannot stall a lint run.
func ContainsBounded(q1, q2 *Rule, budget int) (contained, decided bool, err error) {
	return containsBounded(q1, q2, budget)
}

func containsBounded(q1, q2 *Rule, budget int) (bool, bool, error) {
	for _, r := range []*Rule{q1, q2} {
		if len(r.NegatedAtoms()) > 0 || len(r.Comparisons()) > 0 {
			return false, true, fmt.Errorf("datalog: Contains requires pure conjunctive queries; %s has negation or arithmetic", r.Head.Pred)
		}
	}
	if q1.Head.Pred != q2.Head.Pred || len(q1.Head.Args) != len(q2.Head.Args) {
		return false, true, nil
	}

	theta := make(map[Var]Term)
	// The head of q1 must map onto the head of q2.
	for i, t1 := range q1.Head.Args {
		if !bind(theta, t1, q2.Head.Args[i]) {
			return false, true, nil
		}
	}
	m := &matcher{budget: budget}
	if m.match(q1.PositiveAtoms(), q2.PositiveAtoms(), theta) {
		return true, true, nil
	}
	return false, !m.exhausted, nil
}

// bind extends theta so that term t1 (from q1) maps to t2 (from q2);
// reports false on conflict. Constants and parameters are rigid.
func bind(theta map[Var]Term, t1, t2 Term) bool {
	switch a := t1.(type) {
	case Var:
		if prev, ok := theta[a]; ok {
			return termEqual(prev, t2)
		}
		theta[a] = t2
		return true
	case Param:
		b, ok := t2.(Param)
		return ok && a == b
	case Const:
		b, ok := t2.(Const)
		return ok && a.Val.Equal(b.Val)
	default:
		return false
	}
}

func termEqual(a, b Term) bool {
	switch x := a.(type) {
	case Var:
		y, ok := b.(Var)
		return ok && x == y
	case Param:
		y, ok := b.(Param)
		return ok && x == y
	case Const:
		y, ok := b.(Const)
		return ok && x.Val.Equal(y.Val)
	default:
		return false
	}
}

// matcher backtracks over assignments of each atom of as1 to a compatible
// atom of as2 under theta, charging one budget unit per attempted pairing.
type matcher struct {
	budget    int // remaining attempts; negative = unlimited
	exhausted bool
}

func (m *matcher) match(as1, as2 []*Atom, theta map[Var]Term) bool {
	if len(as1) == 0 {
		return true
	}
	a1 := as1[0]
	for _, a2 := range as2 {
		if m.budget == 0 {
			m.exhausted = true
			return false
		}
		if m.budget > 0 {
			m.budget--
		}
		if a1.Pred != a2.Pred || len(a1.Args) != len(a2.Args) {
			continue
		}
		// Trail the bindings so we can undo on backtrack.
		trail := make([]Var, 0, len(a1.Args))
		ok := true
		for i, t1 := range a1.Args {
			if v, isVar := t1.(Var); isVar {
				if _, bound := theta[v]; !bound {
					if bind(theta, t1, a2.Args[i]) {
						trail = append(trail, v)
						continue
					}
					ok = false
					break
				}
			}
			if !bind(theta, t1, a2.Args[i]) {
				ok = false
				break
			}
		}
		if ok && m.match(as1[1:], as2, theta) {
			return true
		}
		for _, v := range trail {
			delete(theta, v)
		}
	}
	return false
}

// Equivalent reports whether two pure CQs are equivalent (mutual
// containment).
func Equivalent(q1, q2 *Rule) (bool, error) {
	a, err := Contains(q1, q2)
	if err != nil || !a {
		return false, err
	}
	return Contains(q2, q1)
}

// IsSubgoalSubset reports whether sub's body is a sub-multiset of full's
// body with identical head — the syntactic condition of §3.1/§3.3 under
// which sub is guaranteed to contain full, for extended CQs as well.
// Subgoals are compared structurally (same kind, predicate, terms).
func IsSubgoalSubset(sub, full *Rule) bool {
	if !atomEqual(sub.Head, full.Head) {
		return false
	}
	used := make([]bool, len(full.Body))
outer:
	for _, sg := range sub.Body {
		for i, fg := range full.Body {
			if !used[i] && subgoalEqual(sg, fg) {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func atomEqual(a, b *Atom) bool {
	if a.Pred != b.Pred || a.Negated != b.Negated || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !termEqual(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

func subgoalEqual(a, b Subgoal) bool {
	switch x := a.(type) {
	case *Atom:
		y, ok := b.(*Atom)
		return ok && atomEqual(x, y)
	case *Comparison:
		y, ok := b.(*Comparison)
		return ok && x.Op == y.Op && termEqual(x.Left, y.Left) && termEqual(x.Right, y.Right)
	default:
		return false
	}
}

// UnionContains reports whether union q ⊆ union p for pure CQ unions,
// using the classical sufficient-and-necessary condition for unions of
// CQs ([SY80] as used in §3.4): every member of q is contained in some
// member of p.
func UnionContains(p, q Union) (bool, error) {
	for _, qi := range q {
		found := false
		for _, pj := range p {
			ok, err := Contains(pj, qi)
			if err != nil {
				return false, err
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}
