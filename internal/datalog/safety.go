package datalog

import (
	"fmt"
	"strings"
)

// This file implements the safety conditions of §3.2–§3.3. A safe query is
// one whose result is finite on every database, and only safe subqueries
// can serve as a-priori-style pre-filters. Per §3.3 there are three
// conditions, and "parameters are variables, not constants" for conditions
// (2) and (3); parameters never appear in heads, so condition (1) does not
// involve them.

// SafetyViolation describes one way a rule fails the safety conditions.
type SafetyViolation struct {
	Condition int    // 1, 2, or 3, numbered as in §3.3
	Term      string // the offending variable or parameter, rendered
	Subgoal   string // the subgoal that triggered the requirement ("" for heads)
	// Pos anchors the violation: the offending subgoal's position, or the
	// head's for condition (1). Zero for programmatically built rules.
	Pos Pos
}

// Error renders the violation.
func (v SafetyViolation) Error() string {
	where := "the head"
	if v.Subgoal != "" {
		where = fmt.Sprintf("subgoal %s", v.Subgoal)
	}
	return fmt.Sprintf("safety condition (%d): %s in %s does not appear in a positive relational subgoal",
		v.Condition, v.Term, where)
}

// CheckSafety returns all safety violations of the rule, or nil if the rule
// is safe. The three conditions (§3.3):
//
//  1. Every variable in the head appears in a non-negated, non-arithmetic
//     subgoal of the body.
//  2. Every variable (or parameter) in a negated subgoal appears in a
//     non-negated, non-arithmetic subgoal.
//  3. Every variable (or parameter) in an arithmetic subgoal appears in a
//     non-negated, non-arithmetic subgoal.
func CheckSafety(r *Rule) []SafetyViolation {
	positive := make(map[Term]struct{})
	for _, a := range r.PositiveAtoms() {
		for _, t := range a.Args {
			switch t.(type) {
			case Var, Param:
				positive[t] = struct{}{}
			}
		}
	}
	limited := func(t Term) bool {
		switch t.(type) {
		case Var, Param:
			_, ok := positive[t]
			return ok
		default: // constants are always limited
			return true
		}
	}

	var out []SafetyViolation
	for _, t := range r.Head.Args {
		if _, isVar := t.(Var); isVar && !limited(t) {
			out = append(out, SafetyViolation{Condition: 1, Term: t.String(), Pos: r.Head.Pos})
		}
	}
	for _, a := range r.NegatedAtoms() {
		for _, t := range a.Args {
			if !limited(t) {
				out = append(out, SafetyViolation{Condition: 2, Term: t.String(), Subgoal: a.String(), Pos: a.Pos})
			}
		}
	}
	for _, c := range r.Comparisons() {
		for _, t := range []Term{c.Left, c.Right} {
			if !limited(t) {
				out = append(out, SafetyViolation{Condition: 3, Term: t.String(), Subgoal: c.String(), Pos: c.Pos})
			}
		}
	}
	return out
}

// IsSafe reports whether the rule satisfies all three safety conditions.
func IsSafe(r *Rule) bool { return len(CheckSafety(r)) == 0 }

// IsSafeUnion reports whether every rule of the union is safe; per §3.4 a
// union bounds the original only if each member subquery is safe.
func IsSafeUnion(u Union) bool {
	for _, r := range u {
		if !IsSafe(r) {
			return false
		}
	}
	return true
}

// ExplainSafety renders a human-readable safety report for a rule, used by
// the CLI's explain mode.
func ExplainSafety(r *Rule) string {
	vs := CheckSafety(r)
	if len(vs) == 0 {
		return fmt.Sprintf("%s\n  safe", r)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r)
	for _, v := range vs {
		fmt.Fprintf(&b, "  UNSAFE: %s\n", v.Error())
	}
	return strings.TrimRight(b.String(), "\n")
}
