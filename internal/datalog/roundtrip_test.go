package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTerm draws an arbitrary term.
func randomTerm(rng *rand.Rand) Term {
	switch rng.Intn(6) {
	case 0:
		return Var([]string{"X", "Y", "Z", "W1", "Count2"}[rng.Intn(5)])
	case 1:
		return Param([]string{"1", "2", "s", "m", "p9"}[rng.Intn(5)])
	case 2:
		return CInt(int64(rng.Intn(2000) - 1000))
	case 3:
		return CFloat(float64(rng.Intn(1000)) / 4)
	case 4:
		return CStr([]string{"beer", "diapers", "a_b", "x9"}[rng.Intn(4)])
	default:
		return CStr("hello world!") // forces quoting
	}
}

// randomAST builds an arbitrary syntactically valid rule (not necessarily
// safe — the parser and printer must round-trip regardless).
func randomAST(rng *rand.Rand) *Rule {
	preds := []string{"r", "s", "t_2", "longPredName"}
	head := NewAtom("answer")
	for i := rng.Intn(3); i > 0; i-- {
		head.Args = append(head.Args, Var([]string{"X", "Y", "Z"}[rng.Intn(3)]))
	}
	if len(head.Args) == 0 {
		head.Args = append(head.Args, Var("X"))
	}
	n := 1 + rng.Intn(5)
	body := make([]Subgoal, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			a := NewAtom(preds[rng.Intn(len(preds))])
			for j := 1 + rng.Intn(3); j > 0; j-- {
				a.Args = append(a.Args, randomTerm(rng))
			}
			body = append(body, a)
		case 2:
			a := NewAtom(preds[rng.Intn(len(preds))], randomTerm(rng), randomTerm(rng))
			a.Negated = true
			body = append(body, a)
		default:
			ops := []CmpOp{Lt, Le, Gt, Ge, Eq, Ne}
			body = append(body, &Comparison{
				Op:   ops[rng.Intn(len(ops))],
				Left: randomTerm(rng), Right: randomTerm(rng),
			})
		}
	}
	return NewRule(head, body...)
}

// TestRuleRoundTripProperty: for random ASTs, parse(String(ast)) must
// render identically to the original — the printer and parser are inverse
// up to normalization (which String already performs).
func TestRuleRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := randomAST(rng)
		src := r1.String()
		r2, err := ParseRule(src)
		if err != nil {
			t.Logf("parse failed on %q: %v", src, err)
			return false
		}
		return r2.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCloneIsDeepProperty: mutating a clone must never affect the
// original's rendering.
func TestCloneIsDeepProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := randomAST(rng)
		before := r1.String()
		c := r1.Clone()
		c.Head.Pred = "mutated"
		c.Head.Args = append(c.Head.Args, Var("Q"))
		for _, sg := range c.Body {
			switch g := sg.(type) {
			case *Atom:
				g.Pred = "mutated"
				if len(g.Args) > 0 {
					g.Args[0] = CStr("mutated")
				}
			case *Comparison:
				g.Left = CStr("mutated")
			}
		}
		return r1.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestRenameParamsProperty: renaming by an identity map is a no-op, and a
// rename followed by its inverse restores the rendering.
func TestRenameParamsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomAST(rng)
		before := r.String()
		if r.RenameParams(map[Param]Param{}).String() != before {
			return false
		}
		sigma := map[Param]Param{"1": "tmp1", "2": "tmp2", "s": "tmpS"}
		inverse := map[Param]Param{"tmp1": "1", "tmp2": "2", "tmpS": "s"}
		return r.RenameParams(sigma).RenameParams(inverse).String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestDeleteSubgoalsProperty: deleting nothing preserves the rule, and any
// deletion yields a body that is a subgoal subset of the original.
func TestDeleteSubgoalsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomAST(rng)
		if r.DeleteSubgoals().String() != r.String() {
			return false
		}
		n := len(r.Body)
		mask := rng.Intn(1 << n)
		var drop []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				drop = append(drop, i)
			}
		}
		sub := r.DeleteSubgoals(drop...)
		return IsSubgoalSubset(sub, r) && len(sub.Body) == n-len(drop)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
