package datalog_test

import (
	"fmt"

	"queryflocks/internal/datalog"
)

// Parsing a rule in the paper's notation.
func ExampleParseRule() {
	r, err := datalog.ParseRule(
		"answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)")
	if err != nil {
		panic(err)
	}
	fmt.Println("params:", r.Params())
	fmt.Println("positive:", len(r.PositiveAtoms()), "negated:", len(r.NegatedAtoms()))
	// Output:
	// params: [$s]
	// positive: 2 negated: 1
}

// The three safety conditions of §3.3 in action.
func ExampleCheckSafety() {
	unsafe, _ := datalog.ParseRule("answer(P) :- NOT causes(D,$s)")
	for _, v := range datalog.CheckSafety(unsafe) {
		fmt.Println(v.Error())
	}
	// Output:
	// safety condition (1): P in the head does not appear in a positive relational subgoal
	// safety condition (2): D in subgoal NOT causes(D,$s) does not appear in a positive relational subgoal
	// safety condition (2): $s in subgoal NOT causes(D,$s) does not appear in a positive relational subgoal
}

// Containment mappings ([CM77], §3.1): dropping a subgoal yields a
// containing query.
func ExampleContains() {
	full, _ := datalog.ParseRule("answer(B) :- baskets(B,$1) AND baskets(B,$2)")
	sub, _ := datalog.ParseRule("answer(B) :- baskets(B,$1)")
	ok, err := datalog.Contains(sub, full)
	if err != nil {
		panic(err)
	}
	fmt.Println("sub contains full:", ok)
	// Output:
	// sub contains full: true
}

// A full flock source with views, query, and filter.
func ExampleParseFlock() {
	src := `
VIEWS:
allCaused(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT allCaused(P,$s)
FILTER:
COUNT(answer.P) >= 20`
	fs, err := datalog.ParseFlock(src)
	if err != nil {
		panic(err)
	}
	fmt.Println("views:", len(fs.Views), "rules:", len(fs.Query))
	fmt.Println("filter:", fs.Filter)
	fmt.Println("monotone:", fs.Filter.Monotone())
	// Output:
	// views: 1 rules: 1
	// filter: COUNT(answer.P) >= 20
	// monotone: true
}
