package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Subgoal is one conjunct of a rule body: a (possibly negated) relational
// atom or an arithmetic comparison.
type Subgoal interface {
	fmt.Stringer
	isSubgoal()
	// terms returns the subgoal's argument terms.
	terms() []Term
	// Position returns the subgoal's source position (zero when the node
	// was built programmatically rather than parsed).
	Position() Pos
}

// Atom is a relational subgoal pred(t1, ..., tk), optionally negated.
// An Atom is also used (non-negated) as a rule head.
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
	// Pos is the source position of the predicate name (zero if the atom
	// was not parsed). It does not participate in structural equality.
	Pos Pos
}

func (*Atom) isSubgoal() {}

func (a *Atom) terms() []Term { return a.Args }

// Position returns the atom's source position.
func (a *Atom) Position() Pos { return a.Pos }

// String renders the atom in paper notation, e.g. "NOT causes(D,$s)".
func (a *Atom) String() string {
	var b strings.Builder
	if a.Negated {
		b.WriteString("NOT ")
	}
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a deep copy of the atom (terms are immutable and shared).
func (a *Atom) Clone() *Atom {
	return &Atom{Pred: a.Pred, Args: append([]Term(nil), a.Args...), Negated: a.Negated, Pos: a.Pos}
}

// NewAtom builds a positive atom.
func NewAtom(pred string, args ...Term) *Atom { return &Atom{Pred: pred, Args: args} }

// Not builds a negated copy of the atom.
func Not(a *Atom) *Atom {
	c := a.Clone()
	c.Negated = true
	return c
}

// Comparison is an arithmetic subgoal "Left Op Right" (§2.3), e.g. $1 < $2.
type Comparison struct {
	Op    CmpOp
	Left  Term
	Right Term
	// Pos is the source position of the left operand (zero if the
	// comparison was not parsed).
	Pos Pos
}

func (*Comparison) isSubgoal() {}

func (c *Comparison) terms() []Term { return []Term{c.Left, c.Right} }

// Position returns the comparison's source position.
func (c *Comparison) Position() Pos { return c.Pos }

// String renders the comparison, e.g. "$1 < $2".
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Clone returns a copy of the comparison.
func (c *Comparison) Clone() *Comparison {
	return &Comparison{Op: c.Op, Left: c.Left, Right: c.Right, Pos: c.Pos}
}

// Rule is one extended conjunctive query: a head atom and a body of
// subgoals, implicitly conjoined. A flock's query is a union of Rules with
// identical head predicate and arity (§3.4).
type Rule struct {
	Head *Atom
	Body []Subgoal
}

// NewRule builds a rule.
func NewRule(head *Atom, body ...Subgoal) *Rule { return &Rule{Head: head, Body: body} }

// Position returns the rule's source position (its head's).
func (r *Rule) Position() Pos { return r.Head.Pos }

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	body := make([]Subgoal, len(r.Body))
	for i, sg := range r.Body {
		switch g := sg.(type) {
		case *Atom:
			body[i] = g.Clone()
		case *Comparison:
			body[i] = g.Clone()
		}
	}
	return &Rule{Head: r.Head.Clone(), Body: body}
}

// String renders the rule in paper notation:
//
//	answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	b.WriteString(" :- ")
	for i, sg := range r.Body {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(sg.String())
	}
	return b.String()
}

// PositiveAtoms returns the non-negated relational subgoals, in body order.
func (r *Rule) PositiveAtoms() []*Atom {
	var out []*Atom
	for _, sg := range r.Body {
		if a, ok := sg.(*Atom); ok && !a.Negated {
			out = append(out, a)
		}
	}
	return out
}

// NegatedAtoms returns the negated relational subgoals, in body order.
func (r *Rule) NegatedAtoms() []*Atom {
	var out []*Atom
	for _, sg := range r.Body {
		if a, ok := sg.(*Atom); ok && a.Negated {
			out = append(out, a)
		}
	}
	return out
}

// Comparisons returns the arithmetic subgoals, in body order.
func (r *Rule) Comparisons() []*Comparison {
	var out []*Comparison
	for _, sg := range r.Body {
		if c, ok := sg.(*Comparison); ok {
			out = append(out, c)
		}
	}
	return out
}

// Vars returns the distinct variables of the rule (head and body), sorted.
func (r *Rule) Vars() []Var {
	seen := make(map[Var]struct{})
	collect := func(ts []Term) {
		for _, t := range ts {
			if v, ok := t.(Var); ok {
				seen[v] = struct{}{}
			}
		}
	}
	collect(r.Head.Args)
	for _, sg := range r.Body {
		collect(sg.terms())
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Params returns the distinct parameters of the rule's body, sorted.
// (Parameters may not appear in heads; the flock layer enforces that.)
func (r *Rule) Params() []Param {
	seen := make(map[Param]struct{})
	for _, sg := range r.Body {
		for _, t := range sg.terms() {
			if p, ok := t.(Param); ok {
				seen[p] = struct{}{}
			}
		}
	}
	return sortedParams(seen)
}

// HeadParams returns parameters appearing in the head (normally none;
// surfaced so validation can produce a precise error).
func (r *Rule) HeadParams() []Param {
	seen := make(map[Param]struct{})
	for _, t := range r.Head.Args {
		if p, ok := t.(Param); ok {
			seen[p] = struct{}{}
		}
	}
	return sortedParams(seen)
}

func sortedParams(set map[Param]struct{}) []Param {
	out := make([]Param, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predicates returns the distinct predicate names referenced in the body,
// sorted.
func (r *Rule) Predicates() []string {
	seen := make(map[string]struct{})
	for _, sg := range r.Body {
		if a, ok := sg.(*Atom); ok {
			seen[a.Pred] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Substitution maps parameters to constant terms. Applying it instantiates
// a parametrized query for one candidate parameter assignment, which is how
// the naive generate-and-test semantics of §2 is defined.
type Substitution map[Param]Const

// Substitute returns a copy of the rule with every parameter in the
// substitution's domain replaced by its constant.
func (r *Rule) Substitute(s Substitution) *Rule {
	out := r.Clone()
	sub := func(t Term) Term {
		if p, ok := t.(Param); ok {
			if c, bound := s[p]; bound {
				return c
			}
		}
		return t
	}
	for i, t := range out.Head.Args {
		out.Head.Args[i] = sub(t)
	}
	for _, sg := range out.Body {
		switch g := sg.(type) {
		case *Atom:
			for i, t := range g.Args {
				g.Args[i] = sub(t)
			}
		case *Comparison:
			g.Left = sub(g.Left)
			g.Right = sub(g.Right)
		}
	}
	return out
}

// RenameParams returns a copy of the rule with parameters renamed by
// sigma; parameters outside sigma's domain are unchanged. Used to check
// symmetric plan-step references (§3.1's exploitation of subquery
// equivalence).
func (r *Rule) RenameParams(sigma map[Param]Param) *Rule {
	out := r.Clone()
	ren := func(t Term) Term {
		if p, ok := t.(Param); ok {
			if q, mapped := sigma[p]; mapped {
				return q
			}
		}
		return t
	}
	for i, t := range out.Head.Args {
		out.Head.Args[i] = ren(t)
	}
	for _, sg := range out.Body {
		switch g := sg.(type) {
		case *Atom:
			for i, t := range g.Args {
				g.Args[i] = ren(t)
			}
		case *Comparison:
			g.Left = ren(g.Left)
			g.Right = ren(g.Right)
		}
	}
	return out
}

// DeleteSubgoals returns a copy of the rule without the subgoals at the
// given body positions. It is the syntactic operation behind the paper's
// subquery construction ("deleting one or more subgoals from Q", §3.1).
func (r *Rule) DeleteSubgoals(positions ...int) *Rule {
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	out := &Rule{Head: r.Head.Clone()}
	for i, sg := range r.Body {
		if !drop[i] {
			out.Body = append(out.Body, sg)
		}
	}
	return out.Clone()
}

// Union is a union of extended conjunctive queries sharing a head
// predicate and arity (§3.4).
type Union []*Rule

// String renders the union one rule per line.
func (u Union) String() string {
	parts := make([]string, len(u))
	for i, r := range u {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// Validate checks that the union is non-empty and head-compatible. When
// the offending rule carries a source position the error is a positioned
// *SyntaxError.
func (u Union) Validate() error {
	if len(u) == 0 {
		return fmt.Errorf("datalog: empty union")
	}
	h0 := u[0].Head
	for _, r := range u[1:] {
		if r.Head.Pred != h0.Pred || len(r.Head.Args) != len(h0.Args) {
			if r.Head.Pos.IsValid() {
				return syntaxErrorf(r.Head.Pos, "union heads differ: %s vs %s", h0, r.Head)
			}
			return fmt.Errorf("datalog: union heads differ: %s vs %s", h0, r.Head)
		}
	}
	return nil
}

// Params returns the distinct parameters across all rules of the union,
// sorted.
func (u Union) Params() []Param {
	seen := make(map[Param]struct{})
	for _, r := range u {
		for _, p := range r.Params() {
			seen[p] = struct{}{}
		}
	}
	return sortedParams(seen)
}
