package datalog

import "testing"

// FuzzParseFlock asserts the parser never panics and that anything it
// accepts re-parses after printing (printer/parser closure). Run the seed
// corpus in normal test runs; `go test -fuzz=FuzzParseFlock` explores.
func FuzzParseFlock(f *testing.F) {
	seeds := []string{
		"QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2)\nFILTER:\nCOUNT(answer.B) >= 20",
		"QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\nFILTER:\nCOUNT(answer.B) >= 20",
		"VIEWS:\nv(P,S) :- d(P,D) AND c(D,S)\nQUERY:\nanswer(P) :- e(P,$s) AND NOT v(P,$s)\nFILTER:\nCOUNT(answer.P) >= 2",
		"QUERY:\nanswer(A) :- link(A,D1,D2) AND inAnchor(A,$1)\nanswer(D) :- inTitle(D,$1)\nFILTER:\nCOUNT(answer(*)) >= 20",
		"QUERY:\nanswer(B,W) :- b(B,$1) AND i(B,W)\nFILTER:\nSUM(answer.W) >= 19.5",
		"QUERY:\nanswer(X) :- r(X,\"quoted \\\"str\\\"\") AND X != 3\nFILTER:\nMIN(answer.X) <= 5",
		"# comment\nQUERY:\nanswer(X) :- r(X) // c\nFILTER:\nMAX(answer.X) >= 1",
		"QUERY:",
		"",
		"QUERY:\nanswer(X) :- $1 < $2\nFILTER:\nCOUNT(*) >= 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fs, err := ParseFlock(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip through the printer.
		rendered := "QUERY:\n" + fs.Query.String() + "\nFILTER:\n" + fs.Filter.String()
		if len(fs.Views) > 0 {
			views := ""
			for _, v := range fs.Views {
				views += v.String() + "\n"
			}
			rendered = "VIEWS:\n" + views + rendered
		}
		if _, err := ParseFlock(rendered); err != nil {
			t.Fatalf("accepted source failed to re-parse after printing:\nsource: %q\nrendered: %q\nerr: %v",
				src, rendered, err)
		}
	})
}

// FuzzParsePlan asserts the plan parser never panics.
func FuzzParsePlan(f *testing.F) {
	f.Add("okS($s) := FILTER($s,\n answer(P) :- e(P,$s),\n COUNT(answer.P) >= 20\n);")
	f.Add("ok($a,$b) := FILTER(($a,$b), answer(X) :- r(X,$a) AND s(X,$b), SUM(answer.X) >= 2);")
	f.Add("x($1) := FILTER($1, a(B) :- r(B,$1), a(B) :- s(B,$1), COUNT(a.B) >= 1)")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParsePlan(src)
	})
}

// FuzzLexer asserts the lexer terminates without panicking on arbitrary
// bytes.
func FuzzLexer(f *testing.F) {
	f.Add(`answer(B) :- r(B,$1) AND "str" != 2.5e3`)
	f.Add(":- := ; . * () <= >= != # //")
	f.Add("$ \" \\ 3..4 -")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = lexAll(src)
	})
}
