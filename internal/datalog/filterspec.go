package datalog

import (
	"fmt"

	"queryflocks/internal/storage"
)

// AggKind identifies the aggregate of a filter condition. The paper's
// principal results concern COUNT (support); §5 extends to any monotone
// aggregate condition (SUM of non-negatives, MIN, MAX).
type AggKind int

// The supported filter aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// String returns the aggregate's source form.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// FilterSpec is the parsed form of a flock's filter condition, e.g.
//
//	COUNT(answer.B) >= 20
//	COUNT(answer(*)) >= 20
//	SUM(answer.W) >= 20
//
// Target names a head variable of the query's first rule; empty Target
// means "*": the aggregate ranges over whole answer tuples. Op relates the
// aggregate to Threshold.
type FilterSpec struct {
	Agg       AggKind
	Target    string // head-variable name, or "" for *
	Op        CmpOp
	Threshold storage.Value
}

// String renders the condition in the paper's notation.
func (f FilterSpec) String() string {
	target := "answer(*)"
	if f.Target != "" {
		target = "answer." + f.Target
	}
	return fmt.Sprintf("%s(%s) %s %s", f.Agg, target, f.Op, f.Threshold.Literal())
}

// Monotone reports whether the condition is monotone in the sense of §5:
// if it holds for a query result, it holds for every superset of that
// result. Only monotone conditions admit the a-priori optimization, because
// only then does a subquery's (larger) result passing-check upper-bound
// the full query's.
//
//	COUNT(...) >= t   monotone
//	SUM(...)   >= t   monotone for non-negative weights
//	MAX(...)   >= t   monotone
//	MIN(...)   <= t   monotone
func (f FilterSpec) Monotone() bool {
	switch f.Agg {
	case AggCount, AggSum, AggMax:
		return f.Op == Ge || f.Op == Gt
	case AggMin:
		return f.Op == Le || f.Op == Lt
	default:
		return false
	}
}

// Validate rejects malformed specs (e.g. a COUNT with a non-numeric
// threshold).
func (f FilterSpec) Validate() error {
	if !f.Threshold.IsNumeric() {
		return fmt.Errorf("datalog: filter threshold %s is not numeric", f.Threshold.Literal())
	}
	if f.Agg == AggCount && f.Target != "" {
		// COUNT over a named column is fine; nothing more to check.
		return nil
	}
	if (f.Agg == AggSum || f.Agg == AggMin || f.Agg == AggMax) && f.Target == "" {
		return fmt.Errorf("datalog: %s requires a named target column, not *", f.Agg)
	}
	return nil
}
