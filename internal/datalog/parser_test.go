package datalog

import (
	"strings"
	"testing"

	"queryflocks/internal/storage"
)

// The paper's running examples, used across the test suite.
const (
	// Fig. 2 plus the §2.3 arithmetic refinement.
	basketRule = "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2"

	// Example 2.2 / Fig. 3.
	medicalRule = `answer(P) :-
		exhibits(P,$s) AND
		treatments(P,$m) AND
		diagnoses(P,D) AND
		NOT causes(D,$s)`

	// Example 2.3 / Fig. 4 (3-rule union).
	webUnion = `
		answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
		answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
		answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2`
)

func mustRule(t *testing.T, src string) *Rule {
	t.Helper()
	r, err := ParseRule(src)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", src, err)
	}
	return r
}

func TestParseBasketRule(t *testing.T) {
	r := mustRule(t, basketRule)
	if r.Head.Pred != "answer" || len(r.Head.Args) != 1 {
		t.Fatalf("head = %s", r.Head)
	}
	if len(r.Body) != 3 {
		t.Fatalf("body has %d subgoals, want 3", len(r.Body))
	}
	if got := len(r.PositiveAtoms()); got != 2 {
		t.Errorf("positive atoms = %d, want 2", got)
	}
	if got := len(r.Comparisons()); got != 1 {
		t.Errorf("comparisons = %d, want 1", got)
	}
	params := r.Params()
	if len(params) != 2 || params[0] != "1" || params[1] != "2" {
		t.Errorf("params = %v", params)
	}
}

func TestParseMedicalRule(t *testing.T) {
	r := mustRule(t, medicalRule)
	if len(r.Body) != 4 {
		t.Fatalf("body has %d subgoals, want 4", len(r.Body))
	}
	neg := r.NegatedAtoms()
	if len(neg) != 1 || neg[0].Pred != "causes" || !neg[0].Negated {
		t.Fatalf("negated atoms = %v", neg)
	}
	vars := r.Vars()
	if len(vars) != 2 || vars[0] != "D" || vars[1] != "P" {
		t.Errorf("vars = %v", vars)
	}
	params := r.Params()
	if len(params) != 2 || params[0] != "m" || params[1] != "s" {
		t.Errorf("params = %v", params)
	}
}

func TestParseConstants(t *testing.T) {
	r := mustRule(t, `answer(B) :- baskets(B,beer) AND baskets(B,"rocky road") AND weight(B,3) AND score(B,2.5)`)
	atoms := r.PositiveAtoms()
	if c := atoms[0].Args[1].(Const); c.Val != storage.Str("beer") {
		t.Errorf("symbol constant = %v", c)
	}
	if c := atoms[1].Args[1].(Const); c.Val != storage.Str("rocky road") {
		t.Errorf("string constant = %v", c)
	}
	if c := atoms[2].Args[1].(Const); c.Val != storage.Int(3) {
		t.Errorf("int constant = %v", c)
	}
	if c := atoms[3].Args[1].(Const); c.Val != storage.Float(2.5) {
		t.Errorf("float constant = %v", c)
	}
}

func TestParseComparisonForms(t *testing.T) {
	ops := map[string]CmpOp{"<": Lt, "<=": Le, ">": Gt, ">=": Ge, "=": Eq, "!=": Ne}
	for src, want := range ops {
		r := mustRule(t, "answer(X) :- r(X,Y) AND X "+src+" Y")
		cs := r.Comparisons()
		if len(cs) != 1 || cs[0].Op != want {
			t.Errorf("op %q parsed as %v", src, cs)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		basketRule,
		medicalRule,
		`answer(X,Y) :- r(X,Y,z_9) AND NOT s(X,"a b") AND X >= 3`,
	} {
		r1 := mustRule(t, src)
		r2 := mustRule(t, r1.String())
		if r1.String() != r2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", r1, r2)
		}
	}
}

func TestParseUnionFig4(t *testing.T) {
	u, err := ParseUnion(webUnion)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 3 {
		t.Fatalf("union has %d rules, want 3", len(u))
	}
	params := u.Params()
	if len(params) != 2 || params[0] != "1" || params[1] != "2" {
		t.Errorf("union params = %v", params)
	}
	// Union round trip.
	u2, err := ParseUnion(u.String())
	if err != nil {
		t.Fatal(err)
	}
	if u.String() != u2.String() {
		t.Error("union round trip changed")
	}
}

func TestUnionValidate(t *testing.T) {
	if err := (Union{}).Validate(); err == nil {
		t.Error("empty union should be invalid")
	}
	bad, err := ParseUnion(`
		answer(X) :- r(X)
		other(X) :- r(X)`)
	if err == nil {
		t.Errorf("mismatched heads should fail to parse, got %v", bad)
	}
}

func TestParseFlockFig2(t *testing.T) {
	src := `
	# Fig. 2: market-basket association rules as a query flock
	QUERY:
	answer(B) :-
	    baskets(B,$1) AND
	    baskets(B,$2)
	FILTER:
	COUNT(answer.B) >= 20`
	fs, err := ParseFlock(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Query) != 1 {
		t.Fatalf("rules = %d", len(fs.Query))
	}
	f := fs.Filter
	if f.Agg != AggCount || f.Target != "B" || f.Op != Ge || f.Threshold != storage.Int(20) {
		t.Errorf("filter = %+v", f)
	}
	if !f.Monotone() {
		t.Error("COUNT >= must be monotone")
	}
	if got := f.String(); got != "COUNT(answer.B) >= 20" {
		t.Errorf("filter String = %q", got)
	}
}

func TestParseFlockFig4StarFilter(t *testing.T) {
	fs, err := ParseFlock("QUERY:\n" + webUnion + "\nFILTER:\nCOUNT(answer(*)) >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Filter.Target != "" {
		t.Errorf("star target parsed as %q", fs.Filter.Target)
	}
	if got := fs.Filter.String(); got != "COUNT(answer(*)) >= 20" {
		t.Errorf("String = %q", got)
	}
}

func TestParseFilterForms(t *testing.T) {
	for _, src := range []string{
		"COUNT(answer.B) >= 20",
		"COUNT(answer(*)) >= 20",
		"COUNT(*) >= 20",
		"SUM(answer.W) >= 19.5",
		"MIN(answer.X) <= 3",
		"MAX(answer.X) >= 3",
	} {
		if _, err := ParseFilter(src); err != nil {
			t.Errorf("ParseFilter(%q): %v", src, err)
		}
	}
}

func TestFilterMonotonicity(t *testing.T) {
	cases := []struct {
		src      string
		monotone bool
	}{
		{"COUNT(answer.B) >= 20", true},
		{"COUNT(answer.B) <= 20", false},
		{"SUM(answer.W) >= 20", true},
		{"SUM(answer.W) <= 20", false},
		{"MIN(answer.W) <= 20", true},
		{"MIN(answer.W) >= 20", false},
		{"MAX(answer.W) >= 20", true},
		{"MAX(answer.W) <= 20", false},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if f.Monotone() != c.monotone {
			t.Errorf("%q: Monotone = %v, want %v", c.src, f.Monotone(), c.monotone)
		}
	}
}

func TestFilterValidate(t *testing.T) {
	if err := (FilterSpec{Agg: AggSum, Target: "", Op: Ge, Threshold: storage.Int(1)}).Validate(); err == nil {
		t.Error("SUM(*) should be invalid")
	}
	if err := (FilterSpec{Agg: AggCount, Target: "B", Op: Ge, Threshold: storage.Str("x")}).Validate(); err == nil {
		t.Error("non-numeric threshold should be invalid")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"answer(B)",                      // no body
		"answer(B) :-",                   // empty body
		"answer(B) :- baskets(B",         // unterminated atom
		"answer(B) :- baskets(B,$)",      // bad param
		"answer(B) :- NOT $1 < $2",       // NOT on comparison
		"answer(B) :- baskets(B,$1) $2",  // missing AND
		`answer(B) :- baskets(B,"x)`,     // unterminated string
		"answer(B) :- baskets(B,$1) AND", // trailing AND
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q): expected error", src)
		}
	}
	badFlocks := []string{
		"FILTER:\nCOUNT(answer.B) >= 20",
		"QUERY:\nanswer(B) :- r(B)\nFILTER:\nCOUNT(answer.B) >= x",
		"QUERY:\nanswer(B) :- r(B)",
		"QUERY:\nanswer(B) :- r(B)\nFILTER:\nAVG(answer.B) >= 2",
	}
	for _, src := range badFlocks {
		if _, err := ParseFlock(src); err == nil {
			t.Errorf("ParseFlock(%q): expected error", src)
		}
	}
}

func TestParsePlanFig5(t *testing.T) {
	// Fig. 5: the three-step plan for the medical mining problem.
	src := `
	okS($s) := FILTER($s,
	    answer(P) :- exhibits(P,$s),
	    COUNT(answer.P) >= 20
	);
	okM($m) := FILTER($m,
	    answer(P) :- treatments(P,$m),
	    COUNT(answer.P) >= 20
	);
	ok($s,$m) := FILTER(($s,$m),
	    answer(P) :-
	        okS($s) AND
	        okM($m) AND
	        diagnoses(P,D) AND
	        exhibits(P,$s) AND
	        treatments(P,$m) AND
	        NOT causes(D,$s),
	    COUNT(answer.P) >= 20
	);`
	plan, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(plan.Steps))
	}
	s0 := plan.Steps[0]
	if s0.Name != "okS" || len(s0.Params) != 1 || s0.Params[0] != "s" {
		t.Errorf("step 0 = %+v", s0)
	}
	last := plan.Steps[2]
	if last.Name != "ok" || len(last.Params) != 2 {
		t.Errorf("last step = %+v", last)
	}
	if len(last.Query[0].Body) != 6 {
		t.Errorf("last step body = %d subgoals, want 6", len(last.Query[0].Body))
	}
	// The first two added subgoals must reference the earlier steps.
	preds := last.Query[0].Predicates()
	wantPreds := map[string]bool{"okS": true, "okM": true}
	for _, p := range preds {
		delete(wantPreds, p)
	}
	if len(wantPreds) != 0 {
		t.Errorf("last step missing references: %v (has %v)", wantPreds, preds)
	}
}

func TestParsePlanUnionStep(t *testing.T) {
	src := `
	ok1($1) := FILTER($1,
	    answer(D) :- inTitle(D,$1),
	    answer(A) :- inAnchor(A,$1),
	    COUNT(answer(*)) >= 20
	);`
	plan, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps[0].Query) != 2 {
		t.Errorf("union step rules = %d, want 2", len(plan.Steps[0].Query))
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"",
		"okS($s) := FILTER($m, answer(P) :- r(P,$m), COUNT(answer.P) >= 20);",    // param mismatch
		"okS($s,$t) := FILTER($s, answer(P) :- r(P,$s), COUNT(answer.P) >= 20);", // arity mismatch
		"okS($s) := JOIN($s, answer(P) :- r(P,$s), COUNT(answer.P) >= 20);",      // not FILTER
		"okS($s) := FILTER($s, answer(P) :- r(P,$s), COUNT(answer.P) >= 20",      // missing ')'
	}
	for _, src := range bad {
		if _, err := ParsePlan(src); err == nil {
			t.Errorf("ParsePlan(%q): expected error", src)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{"@", "answer(B) :~ r(B)", "! x", "$", `"abc`, `"\q"`, "3..4"}
	for _, src := range bad {
		if _, err := lexAll(src); err == nil {
			// "3..4" lexes as 3. .4? ensure at least no panic; some may lex fine.
			if src != "3..4" {
				t.Errorf("lexAll(%q): expected error", src)
			}
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
	# leading comment
	answer(B) :- // inline comment style
	    baskets(B,$1)   # trailing
	`
	r := mustRule(t, strings.TrimSpace(src))
	if len(r.Body) != 1 {
		t.Errorf("body = %v", r.Body)
	}
}

func TestSubstitute(t *testing.T) {
	r := mustRule(t, basketRule)
	s := Substitution{"1": CStr("beer"), "2": CStr("diapers")}
	inst := r.Substitute(s)
	if len(inst.Params()) != 0 {
		t.Errorf("instantiated rule still has params: %v", inst.Params())
	}
	want := `answer(B) :- baskets(B,beer) AND baskets(B,diapers) AND beer < diapers`
	if inst.String() != want {
		t.Errorf("Substitute = %s, want %s", inst, want)
	}
	// Original unchanged.
	if len(r.Params()) != 2 {
		t.Error("Substitute mutated the original rule")
	}
}

func TestDeleteSubgoals(t *testing.T) {
	r := mustRule(t, medicalRule)
	sub := r.DeleteSubgoals(1, 3) // drop treatments and NOT causes
	if len(sub.Body) != 2 {
		t.Fatalf("body = %d", len(sub.Body))
	}
	if sub.String() != "answer(P) :- exhibits(P,$s) AND diagnoses(P,D)" {
		t.Errorf("sub = %s", sub)
	}
	if len(r.Body) != 4 {
		t.Error("DeleteSubgoals mutated the original")
	}
	if !IsSubgoalSubset(sub, r) {
		t.Error("deleted-subgoal query should be a subgoal subset")
	}
}

func TestCmpOpEvalAndFlip(t *testing.T) {
	a, b := storage.Int(1), storage.Int(2)
	cases := []struct {
		op   CmpOp
		want bool
	}{{Lt, true}, {Le, true}, {Gt, false}, {Ge, false}, {Eq, false}, {Ne, true}}
	for _, c := range cases {
		if c.op.Eval(a, b) != c.want {
			t.Errorf("%v.Eval(1,2) = %v", c.op, !c.want)
		}
		// a op b == b flip(op) a
		if c.op.Eval(a, b) != c.op.Flip().Eval(b, a) {
			t.Errorf("Flip(%v) inconsistent", c.op)
		}
	}
}
