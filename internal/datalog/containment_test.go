package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustContains(t *testing.T, q1, q2 *Rule) bool {
	t.Helper()
	ok, err := Contains(q1, q2)
	if err != nil {
		t.Fatalf("Contains(%s, %s): %v", q1, q2, err)
	}
	return ok
}

// TestContainmentExample31 reproduces Example 3.1: both single-subgoal
// subqueries of the market-basket query contain it.
func TestContainmentExample31(t *testing.T) {
	full := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$2)")
	sub1 := mustRule(t, "answer(B) :- baskets(B,$1)")
	sub2 := mustRule(t, "answer(B) :- baskets(B,$2)")
	if !mustContains(t, sub1, full) {
		t.Error("sub1 should contain full")
	}
	if !mustContains(t, sub2, full) {
		t.Error("sub2 should contain full")
	}
	// The converse fails: full does not contain sub1 because $2 appears in
	// full but not sub1 and parameters map only to themselves.
	if mustContains(t, full, sub1) {
		t.Error("full must not contain sub1")
	}
}

func TestContainmentClassic(t *testing.T) {
	// Folding a path query: q2 (two distinct arcs) ⊆ q1? No — the classic
	// example is the reverse: the longer chain is contained in the shorter
	// pattern only when a homomorphism exists.
	q1 := mustRule(t, "p(X) :- e(X,Y)")
	q2 := mustRule(t, "p(X) :- e(X,Y) AND e(Y,Z)")
	if !mustContains(t, q1, q2) {
		t.Error("e(X,Y) should contain e(X,Y),e(Y,Z)")
	}
	if mustContains(t, q2, q1) {
		t.Error("chain-2 must not contain chain-1")
	}

	// Self-loop: q3 asks for a node with a self-loop; mapping X,Y,Z -> L
	// shows chain-2 contains... no: q3 ⊆ q2 (every self-loop node has a
	// 2-chain). Contains(q2, q3) should hold via X,Y,Z -> L.
	q3 := mustRule(t, "p(L) :- e(L,L)")
	if !mustContains(t, q2, q3) {
		t.Error("chain-2 should contain self-loop")
	}
	if mustContains(t, q3, q2) {
		t.Error("self-loop must not contain chain-2")
	}
}

func TestContainmentConstants(t *testing.T) {
	gen := mustRule(t, "p(X) :- r(X,Y)")
	spec := mustRule(t, "p(X) :- r(X,beer)")
	if !mustContains(t, gen, spec) {
		t.Error("general should contain constant-specialized")
	}
	if mustContains(t, spec, gen) {
		t.Error("constant-specialized must not contain general")
	}
	other := mustRule(t, "p(X) :- r(X,diapers)")
	if mustContains(t, spec, other) || mustContains(t, other, spec) {
		t.Error("different constants must be incomparable")
	}
}

func TestContainmentHeadMismatch(t *testing.T) {
	q1 := mustRule(t, "p(X) :- r(X)")
	q2 := mustRule(t, "q(X) :- r(X)")
	if mustContains(t, q1, q2) {
		t.Error("different head predicates are incomparable")
	}
	q3 := mustRule(t, "p(X,Y) :- r(X,Y)")
	if mustContains(t, q1, q3) {
		t.Error("different head arities are incomparable")
	}
}

func TestContainmentRequiresPureCQ(t *testing.T) {
	pure := mustRule(t, "p(X) :- r(X)")
	neg := mustRule(t, "p(X) :- r(X) AND NOT s(X)")
	arith := mustRule(t, "p(X) :- r(X) AND X < 3")
	if _, err := Contains(pure, neg); err == nil {
		t.Error("negation should be rejected")
	}
	if _, err := Contains(arith, pure); err == nil {
		t.Error("arithmetic should be rejected")
	}
}

func TestEquivalent(t *testing.T) {
	// Classic redundancy: a duplicated subgoal is equivalent to one copy.
	q1 := mustRule(t, "p(X) :- r(X,Y)")
	q2 := mustRule(t, "p(X) :- r(X,Y) AND r(X,Z)")
	eq, err := Equivalent(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("redundant subgoal should preserve equivalence")
	}
	q3 := mustRule(t, "p(X) :- r(X,Y) AND r(Y,Z)")
	eq, err = Equivalent(q1, q3)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("chain must not be equivalent to single arc")
	}
}

// TestSubsetImpliesContainment is the key soundness property behind §3.1:
// any safe subgoal-subset subquery (on pure CQs) contains the original.
// Verified by the containment-mapping decision procedure on random CQs.
func TestSubsetImpliesContainment(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		full := randomCQ(r)
		n := len(full.Body)
		mask := r.Intn(1 << n) // arbitrary subset; identity map works regardless
		var drop []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				drop = append(drop, i)
			}
		}
		sub := full.DeleteSubgoals(drop...)
		// Head variables might lose their binding subgoals; Contains still
		// must report containment (semantically the sub is unsafe/infinite,
		// which trivially contains). Restrict to subs keeping head bound to
		// stay within finite semantics.
		if !IsSafe(sub) {
			return true
		}
		ok, err := Contains(sub, full)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomCQ builds a small random pure conjunctive query over predicates
// r/2 and s/2 with variables X,Y,Z and params $a,$b.
func randomCQ(rng *rand.Rand) *Rule {
	terms := []Term{Var("X"), Var("Y"), Var("Z"), Param("a"), Param("b"), CStr("c0")}
	preds := []string{"r", "s"}
	n := 1 + rng.Intn(4)
	body := make([]Subgoal, n)
	for i := range body {
		body[i] = NewAtom(preds[rng.Intn(len(preds))],
			terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))])
	}
	// Head uses X, which may or may not be bound; callers filter by safety.
	return NewRule(NewAtom("answer", Var("X")), body...)
}

func TestUnionContainsFig4(t *testing.T) {
	full, err := ParseUnion(webUnion)
	if err != nil {
		t.Fatal(err)
	}
	// Drop arithmetic to get pure CQs for the union containment check.
	pureFull := make(Union, len(full))
	for i, r := range full {
		var drop []int
		for j, sg := range r.Body {
			if _, isCmp := sg.(*Comparison); isCmp {
				drop = append(drop, j)
			}
		}
		pureFull[i] = r.DeleteSubgoals(drop...)
	}
	// Example 3.3: one safe subquery per rule, restricted to $1.
	sub, err := ParseUnion(`
		answer(D) :- inTitle(D,$1)
		answer(A) :- inAnchor(A,$1)
		answer(A) :- link(A,D1,D2) AND inTitle(D2,$1)`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := UnionContains(sub, pureFull)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Example 3.3 union should contain the Fig. 4 union")
	}
	ok, err = UnionContains(pureFull, sub)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("full union must not contain the relaxed union")
	}
}

func TestIsSubgoalSubset(t *testing.T) {
	full := mustRule(t, medicalRule)
	sub := full.DeleteSubgoals(2)
	if !IsSubgoalSubset(sub, full) {
		t.Error("deleted-subgoal rule should be a subset")
	}
	if IsSubgoalSubset(full, sub) {
		t.Error("superset must not be a subset")
	}
	renamed := mustRule(t, "answer(Q) :- exhibits(Q,$s)")
	if IsSubgoalSubset(renamed, full) {
		t.Error("variable-renamed rule is not a syntactic subset")
	}
	// Duplicate subgoals: sub needs as many copies as it uses.
	dup := mustRule(t, "answer(B) :- baskets(B,$1) AND baskets(B,$1)")
	one := mustRule(t, "answer(B) :- baskets(B,$1)")
	if !IsSubgoalSubset(one, dup) {
		t.Error("single copy should be subset of duplicated")
	}
	if IsSubgoalSubset(dup, one) {
		t.Error("two copies are not a subset of one")
	}
}
