package datalog

import (
	"strings"
	"testing"
)

func TestSafetyBasics(t *testing.T) {
	cases := []struct {
		src  string
		safe bool
		cond int // first violated condition when unsafe
	}{
		{"answer(B) :- baskets(B,$1)", true, 0},
		{"answer(B) :- baskets(X,$1)", false, 1},      // head var B unlimited
		{"answer(P) :- NOT causes(D,$s)", false, 1},   // also violates 2; head first
		{"answer(X) :- r(X) AND NOT s(Y)", false, 2},  // Y only in negation
		{"answer(X) :- r(X) AND NOT s($p)", false, 2}, // param only in negation
		{"answer(X) :- r(X) AND Y < 3", false, 3},     // Y only in arithmetic
		{"answer(X) :- r(X) AND $p < 3", false, 3},    // param only in arithmetic
		{"answer(X) :- r(X,Y) AND NOT s(Y) AND Y < 3", true, 0},
		{"answer(X) :- r(X) AND 2 < 3", true, 0}, // constants are limited
		{"answer(X) :- r(X,beer)", true, 0},
	}
	for _, c := range cases {
		r := mustRule(t, c.src)
		vs := CheckSafety(r)
		if (len(vs) == 0) != c.safe {
			t.Errorf("%q: safe = %v, want %v (violations %v)", c.src, len(vs) == 0, c.safe, vs)
			continue
		}
		if !c.safe && vs[0].Condition != c.cond {
			t.Errorf("%q: first violation condition %d, want %d", c.src, vs[0].Condition, c.cond)
		}
	}
}

// TestSafetyExample32 reproduces the worked enumeration of Example 3.2:
// of the 14 nontrivial proper subsets of the medical query's 4 subgoals,
// exactly 8 are safe. Condition (1) rules out the subquery with only
// "NOT causes(D,$s)"; condition (2) rules out the other five subsets that
// include the negated subgoal without both diagnoses(P,D) and
// exhibits(P,$s).
func TestSafetyExample32(t *testing.T) {
	r := mustRule(t, medicalRule)
	if len(r.Body) != 4 {
		t.Fatal("medical rule should have 4 subgoals")
	}
	var safe, unsafe int
	var safeSubs []string
	for mask := 1; mask < 15; mask++ { // nonempty proper subsets
		var drop []int
		for i := 0; i < 4; i++ {
			if mask&(1<<i) == 0 {
				drop = append(drop, i)
			}
		}
		sub := r.DeleteSubgoals(drop...)
		if IsSafe(sub) {
			safe++
			safeSubs = append(safeSubs, sub.String())
		} else {
			unsafe++
		}
	}
	if safe != 8 || unsafe != 6 {
		t.Fatalf("safe = %d, unsafe = %d; want 8 and 6\nsafe: %s",
			safe, unsafe, strings.Join(safeSubs, "\n  "))
	}
	// The four candidate subqueries the paper highlights must be among them.
	wanted := []string{
		"answer(P) :- exhibits(P,$s)",
		"answer(P) :- treatments(P,$m)",
		"answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)",
		"answer(P) :- exhibits(P,$s) AND treatments(P,$m)",
	}
	have := make(map[string]bool)
	for _, s := range safeSubs {
		have[s] = true
	}
	for _, w := range wanted {
		if !have[w] {
			t.Errorf("expected safe subquery missing: %s", w)
		}
	}
}

// TestSafetyBruteForceAgreement cross-checks CheckSafety against a direct
// restatement of the definition on every subgoal subset of the paper's
// example queries.
func TestSafetyBruteForceAgreement(t *testing.T) {
	rules := []*Rule{
		mustRule(t, basketRule),
		mustRule(t, medicalRule),
		mustRule(t, "answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2) AND arc(Y2,Y3)"),
	}
	u, err := ParseUnion(webUnion)
	if err != nil {
		t.Fatal(err)
	}
	rules = append(rules, u...)

	for _, r := range rules {
		n := len(r.Body)
		for mask := 0; mask < 1<<n; mask++ {
			var drop []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					drop = append(drop, i)
				}
			}
			sub := r.DeleteSubgoals(drop...)
			if IsSafe(sub) != bruteForceSafe(sub) {
				t.Errorf("disagreement on %s: IsSafe=%v", sub, IsSafe(sub))
			}
		}
	}
}

// bruteForceSafe restates §3.3 directly.
func bruteForceSafe(r *Rule) bool {
	inPositive := func(t Term) bool {
		for _, a := range r.PositiveAtoms() {
			for _, u := range a.Args {
				if termEqual(t, u) {
					return true
				}
			}
		}
		return false
	}
	needsLimit := func(t Term) bool {
		switch t.(type) {
		case Var, Param:
			return true
		}
		return false
	}
	for _, t := range r.Head.Args {
		if _, isVar := t.(Var); isVar && !inPositive(t) {
			return false
		}
	}
	for _, a := range r.NegatedAtoms() {
		for _, t := range a.Args {
			if needsLimit(t) && !inPositive(t) {
				return false
			}
		}
	}
	for _, c := range r.Comparisons() {
		for _, t := range []Term{c.Left, c.Right} {
			if needsLimit(t) && !inPositive(t) {
				return false
			}
		}
	}
	return true
}

func TestIsSafeUnion(t *testing.T) {
	u, err := ParseUnion(webUnion)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSafeUnion(u) {
		t.Error("Fig. 4 union should be safe")
	}
	bad := append(Union{}, u...)
	bad = append(bad, mustRule(t, "answer(Z) :- inTitle(D,$1)"))
	if IsSafeUnion(bad) {
		t.Error("union with unsafe member should be unsafe")
	}
}

func TestExplainSafety(t *testing.T) {
	safe := ExplainSafety(mustRule(t, "answer(B) :- baskets(B,$1)"))
	if !strings.Contains(safe, "safe") {
		t.Errorf("ExplainSafety(safe) = %q", safe)
	}
	unsafe := ExplainSafety(mustRule(t, "answer(P) :- NOT causes(D,$s)"))
	if !strings.Contains(unsafe, "UNSAFE") {
		t.Errorf("ExplainSafety(unsafe) = %q", unsafe)
	}
	if !strings.Contains(unsafe, "condition (1)") {
		t.Errorf("want condition (1) mention: %q", unsafe)
	}
}

func TestSafetyViolationError(t *testing.T) {
	v := SafetyViolation{Condition: 2, Term: "$s", Subgoal: "NOT causes(D,$s)"}
	msg := v.Error()
	for _, want := range []string{"condition (2)", "$s", "NOT causes(D,$s)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
}
