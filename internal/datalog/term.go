// Package datalog defines the query language of the flock system: extended
// conjunctive queries — conjunctive queries with negated subgoals and
// arithmetic comparisons (§2.3 of the paper) — and unions thereof, written
// in the paper's Datalog notation. It provides the AST, a parser and
// pretty-printer, the safety checker of §3.2–§3.3, and the
// containment-mapping test of §3.1 ([CM77]).
//
// Conventions follow the paper: variables begin with an upper-case letter,
// parameters begin with '$', and predicates and symbolic constants are
// lower-case identifiers.
package datalog

import (
	"fmt"

	"queryflocks/internal/storage"
)

// Term is an argument of an atom or a side of a comparison: a variable, a
// parameter, or a constant.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a query variable (e.g. B, P, Y1). Variables are scoped to a rule.
type Var string

func (Var) isTerm()          {}
func (v Var) String() string { return string(v) }

// Param is a flock parameter (e.g. $1, $s). Parameters play the role
// "normally reserved for constants" (§2): the flock's answer is the set of
// parameter bindings whose instantiated query passes the filter. For safety
// checking, "parameters are variables, not constants" (§3.3).
type Param string

func (Param) isTerm()          {}
func (p Param) String() string { return "$" + string(p) }

// Const is a constant term wrapping a storage value.
type Const struct{ Val storage.Value }

func (Const) isTerm() {}
func (c Const) String() string {
	if c.Val.Kind() == storage.KindString {
		// Bare lower-case identifiers print unquoted, matching the paper's
		// notation (e.g. beer); anything else quotes.
		s := c.Val.AsString()
		if isPlainSymbol(s) {
			return s
		}
	}
	return c.Val.Literal()
}

// C builds a constant term from a storage value.
func C(v storage.Value) Const { return Const{Val: v} }

// CStr, CInt and CFloat are constant-term shorthands.
func CStr(s string) Const    { return Const{Val: storage.Str(s)} }
func CInt(i int64) Const     { return Const{Val: storage.Int(i)} }
func CFloat(f float64) Const { return Const{Val: storage.Float(f)} }

// isPlainSymbol reports whether s lexes as a lower-case identifier, and
// therefore can print without quotes.
func isPlainSymbol(s string) bool {
	if s == "" {
		return false
	}
	if !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// CmpOp is an arithmetic comparison operator.
type CmpOp int

// The comparison operators of the extended-CQ language.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String returns the operator's source form.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Flip returns the operator with its operands' roles exchanged, so that
// a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op
	}
}

// Eval applies the operator to two values using the storage total order.
func (op CmpOp) Eval(a, b storage.Value) bool {
	c := a.Compare(b)
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	default:
		panic(fmt.Sprintf("datalog: unknown CmpOp %d", int(op)))
	}
}
