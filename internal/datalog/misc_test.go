package datalog

import (
	"strings"
	"testing"

	"queryflocks/internal/storage"
)

func TestConstructorHelpers(t *testing.T) {
	if got := C(storage.Int(5)); got.Val != storage.Int(5) {
		t.Errorf("C = %v", got)
	}
	a := NewAtom("r", Var("X"))
	n := Not(a)
	if !n.Negated || a.Negated {
		t.Error("Not must negate a copy, not the original")
	}
	if n.String() != "NOT r(X)" {
		t.Errorf("Not render = %q", n.String())
	}
}

func TestHeadParams(t *testing.T) {
	r := NewRule(NewAtom("answer", Param("p"), Var("X")),
		NewAtom("r", Var("X"), Param("p")))
	hp := r.HeadParams()
	if len(hp) != 1 || hp[0] != "p" {
		t.Errorf("HeadParams = %v", hp)
	}
	clean := NewRule(NewAtom("answer", Var("X")), NewAtom("r", Var("X")))
	if len(clean.HeadParams()) != 0 {
		t.Error("clean rule should have no head params")
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if AggCount.String() != "COUNT" || AggSum.String() != "SUM" ||
		AggMin.String() != "MIN" || AggMax.String() != "MAX" {
		t.Error("AggKind names")
	}
	if !strings.Contains(AggKind(99).String(), "99") {
		t.Error("unknown AggKind")
	}
	if !strings.Contains(CmpOp(99).String(), "99") {
		t.Error("unknown CmpOp")
	}
	if Eq.Flip() != Eq || Ne.Flip() != Ne {
		t.Error("Eq/Ne flip to themselves")
	}
}

func TestCmpOpEvalPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown op Eval should panic")
		}
	}()
	CmpOp(99).Eval(storage.Int(1), storage.Int(2))
}

func TestFilterSpecStringStar(t *testing.T) {
	f := FilterSpec{Agg: AggCount, Op: Ge, Threshold: storage.Int(3)}
	if f.String() != "COUNT(answer(*)) >= 3" {
		t.Errorf("String = %q", f.String())
	}
}

func TestParseFlockSectionErrors(t *testing.T) {
	bad := []string{
		"PLAN:\nanswer(B) :- r(B)\nFILTER:\nCOUNT(answer.B) >= 2",   // wrong first section
		"QUERY:\nanswer(B) :- r(B)\nVIEWS:\nCOUNT(answer.B) >= 2",   // wrong second section
		"QUERY:\nanswer(B) :- r(B)\nFILTER:\nCOUNT(answer.B) >= 2x", // trailing junk
	}
	for _, src := range bad {
		if _, err := ParseFlock(src); err == nil {
			t.Errorf("ParseFlock(%q) should error", src)
		}
	}
}

func TestParseFilterTrailingJunk(t *testing.T) {
	if _, err := ParseFilter("COUNT(answer.B) >= 2 extra"); err == nil {
		t.Error("trailing junk should error")
	}
	if _, err := ParseFilter("COUNT answer.B >= 2"); err == nil {
		t.Error("missing parens should error")
	}
	if _, err := ParseFilter("COUNT(answer,B) >= 2"); err == nil {
		t.Error("comma target should error")
	}
	if _, err := ParseFilter("COUNT(answer.B) ? 2"); err == nil {
		t.Error("bad operator should error")
	}
	if _, err := ParseFilter("COUNT(answer.B) >= beer"); err == nil {
		t.Error("non-numeric threshold should error")
	}
}

func TestConstStringQuoting(t *testing.T) {
	cases := map[string]Const{
		"beer":     CStr("beer"),
		`"two w"`:  CStr("two w"),
		`"Upper"`:  CStr("Upper"),
		"3":        CInt(3),
		"2.5":      CFloat(2.5),
		`"99"`:     CStr("99"), // numeric-looking strings must quote
		`"it_9x"`:  {Val: storage.Str("it_9x\x00")},
		`"has\"q"`: CStr(`has"q`),
		`"a\nb"`:   CStr("a\nb"),
		`""`:       CStr(""),
	}
	for want, c := range cases {
		got := c.String()
		// Escaping details vary with strconv.Quote; just check quoted-vs-
		// bare and re-lexability for the plain ones.
		if strings.HasPrefix(want, `"`) != strings.HasPrefix(got, `"`) {
			t.Errorf("Const(%v).String() = %q, want quoting like %q", c.Val, got, want)
		}
	}
}

func TestUnionParamsAndString(t *testing.T) {
	u, err := ParseUnion(`
		answer(X) :- r(X,$a)
		answer(Y) :- s(Y,$b)`)
	if err != nil {
		t.Fatal(err)
	}
	ps := u.Params()
	if len(ps) != 2 || ps[0] != "a" || ps[1] != "b" {
		t.Errorf("union params = %v", ps)
	}
	if !strings.Contains(u.String(), "\n") {
		t.Error("union String should be multi-line")
	}
}
