package datalog

import (
	"fmt"
	"strings"
)

// This file renders rules and unions in a canonical form: variables are
// renamed to V0, V1, ... in order of first occurrence (head first, then
// body, left to right), and the result is printed with the standard
// pretty-printer. Two rules that differ only in variable naming or
// surface whitespace therefore render identically, while parameters —
// which are semantic (they name the flock's answer columns) — and
// constants are kept verbatim. The canonical text is the alpha-
// equivalence cache key used by the serving layer's plan cache and the
// cross-request candidate-subquery memo.

// CanonicalRule returns the rule's canonical rendering: the standard
// String form after renaming variables by first occurrence. The rule
// itself is not modified.
func CanonicalRule(r *Rule) string {
	return canonicalizeRule(r).String()
}

// CanonicalUnion returns the union's canonical rendering, one canonical
// rule per line in the union's given order. (Rule order is preserved: it
// is part of a plan's positional derivation contract, §4.2 rule 3.)
func CanonicalUnion(u Union) string {
	parts := make([]string, len(u))
	for i, r := range u {
		parts[i] = CanonicalRule(r)
	}
	return strings.Join(parts, "\n")
}

// CanonicalFilter renders a filter condition positionally against the
// query head: a named target column becomes its head-argument index
// ("COUNT(answer.#0) >= 5"). The verbatim FilterSpec.String rendering
// names the target through a head *variable*, which alpha-renaming
// changes — two alpha-equivalent programs would then canonicalize to
// different texts. Positions survive renaming, so this form is the one
// the serving-layer cache keys embed. A target that does not resolve
// against the head (an invalid program) falls back to the verbatim
// rendering, keeping the result deterministic.
func CanonicalFilter(spec FilterSpec, head *Atom) string {
	target := "answer(*)"
	if spec.Target != "" {
		pos := -1
		if head != nil {
			for i, t := range head.Args {
				if v, ok := t.(Var); ok && string(v) == spec.Target {
					pos = i
					break
				}
			}
		}
		if pos < 0 {
			return spec.String()
		}
		target = fmt.Sprintf("answer.#%d", pos)
	}
	return fmt.Sprintf("%s(%s) %s %s", spec.Agg, target, spec.Op, spec.Threshold.Literal())
}

// canonicalizeRule returns a copy of r with every variable renamed to
// V<n> in order of first occurrence.
func canonicalizeRule(r *Rule) *Rule {
	out := r.Clone()
	names := make(map[Var]Var)
	ren := func(t Term) Term {
		v, ok := t.(Var)
		if !ok {
			return t
		}
		nv, seen := names[v]
		if !seen {
			nv = Var(fmt.Sprintf("V%d", len(names)))
			names[v] = nv
		}
		return nv
	}
	for i, t := range out.Head.Args {
		out.Head.Args[i] = ren(t)
	}
	for _, sg := range out.Body {
		switch g := sg.(type) {
		case *Atom:
			for i, t := range g.Args {
				g.Args[i] = ren(t)
			}
		case *Comparison:
			g.Left = ren(g.Left)
			g.Right = ren(g.Right)
		}
	}
	return out
}
