package datalog

import (
	"fmt"
	"strconv"
	"strings"

	"queryflocks/internal/storage"
)

// FlockSource is the parsed form of a flock definition in the paper's
// notation: an optional VIEWS: section defining intermediate predicates
// (the §2.2 extension), a QUERY: section holding a union of rules, and a
// FILTER: section holding the support condition (Figs. 2–4).
type FlockSource struct {
	Views  []*Rule
	Query  Union
	Filter FilterSpec
	// FilterPos is the source position of the filter condition (its
	// aggregate keyword); zero when the source was built programmatically.
	FilterPos Pos
}

// PlanStepSpec is the parsed form of one FILTER step of a query plan
// (§4.1, Fig. 5):
//
//	okS($s) := FILTER($s,
//	    answer(P) :- exhibits(P,$s),
//	    COUNT(answer.P) >= 20
//	);
type PlanStepSpec struct {
	Name   string  // relation created by the step
	Params []Param // the step's parameter list, in declared order
	Query  Union
	Filter FilterSpec
	// Pos is the source position of the step's relation name.
	Pos Pos
}

// PlanSpec is a parsed sequence of FILTER steps.
type PlanSpec struct {
	Steps []PlanStepSpec
}

// parser is a recursive-descent parser over a pre-lexed token stream.
type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return syntaxErrorf(tokenPos(t), format, args...)
}

func tokenPos(t token) Pos { return Pos{Line: t.line, Col: t.col} }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, found %s", what, t)
	}
	return p.advance(), nil
}

// ParseRule parses a single rule such as
//
//	answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
func ParseRule(src string) (*Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	r, err := p.rule()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errorf(t, "unexpected %s after rule", t)
	}
	return r, nil
}

// ParseUnion parses one or more rules (a union query, §3.4).
func ParseUnion(src string) (Union, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	u, err := p.union(func(t token) bool { return t.kind == tokEOF })
	if err != nil {
		return nil, err
	}
	return u, nil
}

// ParseFilter parses a filter condition such as "COUNT(answer.B) >= 20".
func ParseFilter(src string) (FilterSpec, error) {
	p, err := newParser(src)
	if err != nil {
		return FilterSpec{}, err
	}
	f, err := p.filter()
	if err != nil {
		return FilterSpec{}, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return FilterSpec{}, p.errorf(t, "unexpected %s after filter", t)
	}
	return f, nil
}

// ParseFlock parses a full flock definition:
//
//	QUERY:
//	answer(B) :- baskets(B,$1) AND baskets(B,$2)
//	FILTER:
//	COUNT(answer.B) >= 20
func ParseFlock(src string) (*FlockSource, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var views []*Rule
	if t := p.peek(); t.kind == tokSection && t.text == "VIEWS" {
		p.advance()
		for p.peek().kind != tokSection && p.peek().kind != tokEOF {
			r, err := p.rule()
			if err != nil {
				return nil, err
			}
			views = append(views, r)
		}
	}
	if t, err := p.expect(tokSection, "'QUERY:'"); err != nil {
		return nil, err
	} else if t.text != "QUERY" {
		return nil, p.errorf(t, "expected 'QUERY:', found '%s:'", t.text)
	}
	u, err := p.union(func(t token) bool { return t.kind == tokSection || t.kind == tokEOF })
	if err != nil {
		return nil, err
	}
	if t, err := p.expect(tokSection, "'FILTER:'"); err != nil {
		return nil, err
	} else if t.text != "FILTER" {
		return nil, p.errorf(t, "expected 'FILTER:', found '%s:'", t.text)
	}
	filterPos := tokenPos(p.peek())
	f, err := p.filter()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errorf(t, "unexpected %s after flock", t)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, syntaxErrorf(filterPos, "%s", strings.TrimPrefix(err.Error(), "datalog: "))
	}
	return &FlockSource{Views: views, Query: u, Filter: f, FilterPos: filterPos}, nil
}

// ParsePlan parses a sequence of FILTER steps in the Fig. 5 notation.
// An optional leading "PLAN:" section header is accepted.
func ParsePlan(src string) (*PlanSpec, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSection && t.text == "PLAN" {
		p.advance()
	}
	var spec PlanSpec
	for p.peek().kind != tokEOF {
		step, err := p.planStep()
		if err != nil {
			return nil, err
		}
		spec.Steps = append(spec.Steps, step)
	}
	if len(spec.Steps) == 0 {
		return nil, fmt.Errorf("datalog: empty plan")
	}
	return &spec, nil
}

// union parses rules until stop(peek) holds.
func (p *parser) union(stop func(token) bool) (Union, error) {
	var u Union
	for !stop(p.peek()) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		u = append(u, r)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// rule parses: atom ":-" subgoal (AND subgoal)*
func (p *parser) rule() (*Rule, error) {
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies, "':-'"); err != nil {
		return nil, err
	}
	var body []Subgoal
	for {
		sg, err := p.subgoal()
		if err != nil {
			return nil, err
		}
		body = append(body, sg)
		if p.peek().kind != tokAnd {
			break
		}
		p.advance()
	}
	return &Rule{Head: head, Body: body}, nil
}

// subgoal parses: NOT atom | atom | term cmp term
func (p *parser) subgoal() (Subgoal, error) {
	t := p.peek()
	if t.kind == tokNot {
		p.advance()
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		a.Negated = true
		return a, nil
	}
	// A relational atom begins with a predicate identifier followed by '('.
	if t.kind == tokIdent && p.peekAt(1).kind == tokLParen {
		return p.atom()
	}
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	op, err := cmpOpFromText(opTok.text)
	if err != nil {
		return nil, p.errorf(opTok, "%v", err)
	}
	return &Comparison{Op: op, Left: left, Right: right, Pos: tokenPos(t)}, nil
}

// atom parses: pred "(" term ("," term)* ")"
func (p *parser) atom() (*Atom, error) {
	predTok := p.peek()
	if predTok.kind != tokIdent {
		return nil, p.errorf(predTok, "expected predicate name, found %s", predTok)
	}
	p.advance()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	a := &Atom{Pred: predTok.text, Pos: tokenPos(predTok)}
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		sep := p.peek()
		if sep.kind == tokComma {
			p.advance()
			continue
		}
		if sep.kind == tokRParen {
			p.advance()
			return a, nil
		}
		return nil, p.errorf(sep, "expected ',' or ')', found %s", sep)
	}
}

// term parses one argument term.
func (p *parser) term() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return Var(t.text), nil
	case tokParam:
		p.advance()
		return Param(t.text), nil
	case tokIdent:
		p.advance()
		return CStr(t.text), nil
	case tokString:
		p.advance()
		return CStr(t.text), nil
	case tokInt:
		p.advance()
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return CInt(i), nil
	case tokFloat:
		p.advance()
		f, _ := strconv.ParseFloat(t.text, 64)
		return CFloat(f), nil
	default:
		return nil, p.errorf(t, "expected a term, found %s", t)
	}
}

// filter parses: AGG "(" target ")" op number, with target one of
// "answer.Col", "answer(*)", or "*".
func (p *parser) filter() (FilterSpec, error) {
	aggTok := p.peek()
	agg, ok := aggFromText(aggTok.text)
	if aggTok.kind != tokVar || !ok {
		return FilterSpec{}, p.errorf(aggTok, "expected COUNT, SUM, MIN, or MAX, found %s", aggTok)
	}
	p.advance()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return FilterSpec{}, err
	}
	var target string
	switch t := p.peek(); t.kind {
	case tokStar: // COUNT(*)
		p.advance()
	case tokIdent: // answer.Col or answer(*)
		p.advance()
		switch sep := p.peek(); sep.kind {
		case tokDot:
			p.advance()
			col := p.peek()
			if col.kind != tokVar && col.kind != tokIdent {
				return FilterSpec{}, p.errorf(col, "expected a column name, found %s", col)
			}
			p.advance()
			target = col.text
		case tokLParen:
			p.advance()
			if _, err := p.expect(tokStar, "'*'"); err != nil {
				return FilterSpec{}, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return FilterSpec{}, err
			}
		default:
			return FilterSpec{}, p.errorf(sep, "expected '.' or '(*)' after %q", t.text)
		}
	default:
		return FilterSpec{}, p.errorf(t, "expected filter target, found %s", t)
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return FilterSpec{}, err
	}
	opTok, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return FilterSpec{}, err
	}
	op, err := cmpOpFromText(opTok.text)
	if err != nil {
		return FilterSpec{}, p.errorf(opTok, "%v", err)
	}
	numTok := p.peek()
	var threshold storage.Value
	switch numTok.kind {
	case tokInt:
		i, _ := strconv.ParseInt(numTok.text, 10, 64)
		threshold = storage.Int(i)
	case tokFloat:
		f, _ := strconv.ParseFloat(numTok.text, 64)
		threshold = storage.Float(f)
	default:
		return FilterSpec{}, p.errorf(numTok, "expected a numeric threshold, found %s", numTok)
	}
	p.advance()
	// Normalize "20 <= COUNT(...)" style by construction: we only parse the
	// aggregate-first form, so nothing to flip here.
	return FilterSpec{Agg: agg, Target: target, Op: op, Threshold: threshold}, nil
}

// planStep parses one FILTER step of the Fig. 5 plan notation.
func (p *parser) planStep() (PlanStepSpec, error) {
	nameTok := p.peek()
	if nameTok.kind != tokIdent && nameTok.kind != tokVar {
		return PlanStepSpec{}, p.errorf(nameTok, "expected step relation name, found %s", nameTok)
	}
	p.advance()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return PlanStepSpec{}, err
	}
	params, err := p.paramList(tokRParen)
	if err != nil {
		return PlanStepSpec{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return PlanStepSpec{}, err
	}
	if _, err := p.expect(tokAssign, "':='"); err != nil {
		return PlanStepSpec{}, err
	}
	kw := p.peek()
	if !(kw.kind == tokVar && kw.text == "FILTER") {
		return PlanStepSpec{}, p.errorf(kw, "expected FILTER, found %s", kw)
	}
	p.advance()
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return PlanStepSpec{}, err
	}
	// Parameter list: either "($s,$m)" or "$s".
	var stepParams []Param
	if p.peek().kind == tokLParen {
		p.advance()
		stepParams, err = p.paramList(tokRParen)
		if err != nil {
			return PlanStepSpec{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return PlanStepSpec{}, err
		}
	} else {
		stepParams, err = p.paramList(tokComma)
		if err != nil {
			return PlanStepSpec{}, err
		}
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return PlanStepSpec{}, err
	}
	// One or more rules, then the filter condition. A rule and the
	// condition are both comma-separated; disambiguate by whether the next
	// tokens begin an aggregate.
	var u Union
	for {
		r, err := p.rule()
		if err != nil {
			return PlanStepSpec{}, err
		}
		u = append(u, r)
		if _, err := p.expect(tokComma, "','"); err != nil {
			return PlanStepSpec{}, err
		}
		if t := p.peek(); t.kind == tokVar && p.peekAt(1).kind == tokLParen {
			if _, isAgg := aggFromText(t.text); isAgg {
				break
			}
		}
	}
	if err := u.Validate(); err != nil {
		return PlanStepSpec{}, err
	}
	f, err := p.filter()
	if err != nil {
		return PlanStepSpec{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return PlanStepSpec{}, err
	}
	if p.peek().kind == tokSemi {
		p.advance()
	}
	if len(params) != len(stepParams) {
		return PlanStepSpec{}, p.errorf(nameTok, "step %s declares %d parameters but FILTER lists %d",
			nameTok.text, len(params), len(stepParams))
	}
	for i := range params {
		if params[i] != stepParams[i] {
			return PlanStepSpec{}, p.errorf(nameTok, "step %s parameter %d: %s vs %s",
				nameTok.text, i, params[i], stepParams[i])
		}
	}
	return PlanStepSpec{Name: nameTok.text, Params: params, Query: u, Filter: f, Pos: tokenPos(nameTok)}, nil
}

// paramList parses "$a, $b, ..." stopping before the given terminator.
func (p *parser) paramList(until tokKind) ([]Param, error) {
	var out []Param
	for {
		t, err := p.expect(tokParam, "a parameter")
		if err != nil {
			return nil, err
		}
		out = append(out, Param(t.text))
		if p.peek().kind == tokComma && until != tokComma {
			p.advance()
			continue
		}
		return out, nil
	}
}

func cmpOpFromText(s string) (CmpOp, error) {
	switch s {
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	case "=":
		return Eq, nil
	case "!=":
		return Ne, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

func aggFromText(s string) (AggKind, bool) {
	switch s {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	default:
		return 0, false
	}
}
