package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF   tokKind = iota
	tokIdent         // lower-case identifier: predicate or symbolic constant
	tokVar           // upper-case identifier: variable
	tokParam         // $name
	tokInt
	tokFloat
	tokString // quoted string
	tokLParen
	tokRParen
	tokComma
	tokImplies // :-
	tokAssign  // :=
	tokCmp     // < <= > >= = !=
	tokSemi    // ;
	tokAnd     // AND (case-insensitive)
	tokNot     // NOT (case-insensitive)
	tokDot     // .
	tokStar    // *
	tokSection // QUERY: or FILTER: or PLAN: at start of a clause
)

// token is one lexeme with position info for error messages.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer turns flock/Datalog source into tokens. Comments run from '#' or
// "//" to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return syntaxErrorf(Pos{Line: line, Col: col}, format, args...)
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case c == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case c == '.':
		lx.advance()
		return token{tokDot, ".", line, col}, nil
	case c == '*':
		lx.advance()
		return token{tokStar, "*", line, col}, nil
	case c == ';':
		lx.advance()
		return token{tokSemi, ";", line, col}, nil
	case c == ':':
		lx.advance()
		switch lx.peekByte() {
		case '-':
			lx.advance()
			return token{tokImplies, ":-", line, col}, nil
		case '=':
			lx.advance()
			return token{tokAssign, ":=", line, col}, nil
		default:
			return token{}, lx.errorf(line, col, "expected ':-' or ':='")
		}
	case c == '<' || c == '>':
		lx.advance()
		text := string(c)
		if lx.peekByte() == '=' {
			lx.advance()
			text += "="
		}
		return token{tokCmp, text, line, col}, nil
	case c == '=':
		lx.advance()
		if lx.peekByte() == '=' { // tolerate ==
			lx.advance()
		}
		return token{tokCmp, "=", line, col}, nil
	case c == '!':
		lx.advance()
		if lx.peekByte() != '=' {
			return token{}, lx.errorf(line, col, "expected '!='")
		}
		lx.advance()
		return token{tokCmp, "!=", line, col}, nil
	case c == '$':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentByte(lx.peekByte()) {
			lx.advance()
		}
		if lx.pos == start {
			return token{}, lx.errorf(line, col, "'$' must be followed by a parameter name")
		}
		return token{tokParam, lx.src[start:lx.pos], line, col}, nil
	case c == '"':
		// Scan to the closing quote (honoring backslash escapes), then let
		// strconv.Unquote decode — the exact inverse of the printer's
		// strconv.Quote, so every escape Quote can emit round-trips.
		start := lx.pos
		lx.advance()
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(line, col, "unterminated string")
			}
			ch := lx.advance()
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, lx.errorf(line, col, "unterminated escape")
				}
				lx.advance()
				continue
			}
			if ch == '"' {
				break
			}
		}
		decoded, err := strconv.Unquote(lx.src[start:lx.pos])
		if err != nil {
			return token{}, lx.errorf(line, col, "bad string literal: %v", err)
		}
		return token{tokString, decoded, line, col}, nil
	case c == '-' || c >= '0' && c <= '9':
		start := lx.pos
		lx.advance()
		isFloat := false
		for lx.pos < len(lx.src) {
			d := lx.peekByte()
			if d >= '0' && d <= '9' {
				lx.advance()
				continue
			}
			if d == '.' && !isFloat && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				isFloat = true
				lx.advance()
				continue
			}
			if (d == 'e' || d == 'E') && lx.pos+1 < len(lx.src) {
				nxt := lx.src[lx.pos+1]
				if nxt >= '0' && nxt <= '9' || nxt == '-' || nxt == '+' {
					isFloat = true
					lx.advance() // e
					lx.advance() // sign or digit
					continue
				}
			}
			break
		}
		text := lx.src[start:lx.pos]
		if text == "-" {
			return token{}, lx.errorf(line, col, "lone '-'")
		}
		if isFloat {
			if _, err := strconv.ParseFloat(text, 64); err != nil {
				return token{}, lx.errorf(line, col, "bad number %q", text)
			}
			return token{tokFloat, text, line, col}, nil
		}
		if _, err := strconv.ParseInt(text, 10, 64); err != nil {
			return token{}, lx.errorf(line, col, "bad number %q", text)
		}
		return token{tokInt, text, line, col}, nil
	case isIdentStart(c):
		start := lx.pos
		lx.advance()
		for lx.pos < len(lx.src) && isIdentByte(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		upper := strings.ToUpper(text)
		switch upper {
		case "AND":
			return token{tokAnd, text, line, col}, nil
		case "NOT":
			return token{tokNot, text, line, col}, nil
		case "QUERY", "FILTER", "PLAN", "VIEWS":
			// Section headers are the keyword immediately followed by ':'.
			if lx.peekByte() == ':' && (lx.pos+1 >= len(lx.src) || lx.src[lx.pos+1] != '-') {
				lx.advance()
				return token{tokSection, upper, line, col}, nil
			}
		}
		if unicode.IsUpper(rune(text[0])) {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, lx.errorf(line, col, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// lexAll tokenizes the whole input (used by the parser).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
