package datalog

import "testing"

const benchFlockSrc = `
QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20`

func BenchmarkParseFlock(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFlock(benchFlockSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRule(b *testing.B) {
	const src = "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSafety(b *testing.B) {
	r, err := ParseRule("answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := CheckSafety(r); len(vs) != 0 {
			b.Fatal("should be safe")
		}
	}
}

func BenchmarkContains(b *testing.B) {
	q1, _ := ParseRule("p(X) :- e(X,Y) AND e(Y,Z) AND e(Z,W)")
	q2, _ := ParseRule("p(L) :- e(L,L)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := Contains(q1, q2)
		if err != nil || !ok {
			b.Fatal("chain should contain self-loop")
		}
	}
}

func BenchmarkRuleString(b *testing.B) {
	r, _ := ParseRule("answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.String()
	}
}
