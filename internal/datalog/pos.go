package datalog

import "fmt"

// Pos is a source position (1-based line and column) recorded by the
// parser on AST nodes so later analyses can anchor diagnostics to the
// text that produced them. The zero Pos means "no position" — nodes built
// programmatically (plan construction, subquery enumeration) carry none,
// and Clone/Substitute/RenameParams preserve whatever the original had.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position was actually recorded.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError is a positioned lexing or parsing failure. The rendered
// message keeps the historical "datalog: line:col: msg" shape, and the
// structured fields let front-ends (flockvet, the REPL, flockd) convert
// parse failures into positioned diagnostics instead of opaque strings.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error renders the failure in the parser's historical format.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("datalog: %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// syntaxErrorf builds a positioned syntax error.
func syntaxErrorf(pos Pos, format string, args ...any) *SyntaxError {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
