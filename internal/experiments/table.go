// Package experiments implements the reproduction suite: one experiment
// per figure or quantitative claim of the paper (see DESIGN.md §4 for the
// index). Each experiment builds its workload, runs the competing
// strategies, and returns a Table that cmd/flockbench prints and
// EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/storage"
)

// Table is a rendered experiment result. The struct marshals directly to
// JSON for machine-readable output (flockbench -json).
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string `json:"id"`
	// Title describes the experiment and the paper artifact it reproduces.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the measurements.
	Rows [][]string `json:"rows"`
	// Notes carries the claim being checked and the observed verdict.
	Notes []string `json:"notes,omitempty"`
	// Metrics carries machine-readable measurements (flockbench -json);
	// the parallel-scaling experiment fills one entry per worker count.
	Metrics []Metric `json:"metrics,omitempty"`
	// OpReports carries per-operator observability reports, one per
	// instrumented strategy run, when the configuration enables metrics
	// collection (flockbench -json).
	OpReports []*obs.RunReport `json:"op_reports,omitempty"`
	// Pipeline compares the streaming executor against the materializing
	// baseline (peak buffered tuples, allocation) per workload, when
	// metrics collection is enabled.
	Pipeline []PipelineMetric `json:"pipeline,omitempty"`
}

// PipelineMetric is one streaming-vs-materializing comparison: the
// streaming executor's peak buffered-tuples gauge against the
// materializing baseline's peak live intermediate tuples, plus the
// total bytes each mode allocated for the same evaluation. Both modes
// report through the same obs gauge: the streaming executor tracks
// retained operator state (group accumulators, dedup sets, sink
// inserts), the materializing baseline tracks the relations a
// relation-at-a-time operator holds live simultaneously (probe bindings
// plus join output; extended relation plus group map plus answer).
type PipelineMetric struct {
	Name             string `json:"name"`
	PeakStream       int    `json:"peak_stream_tuples"`
	PeakMaterialize  int    `json:"peak_materialize_tuples"`
	AllocStream      int64  `json:"alloc_stream_bytes"`
	AllocMaterialize int64  `json:"alloc_materialize_bytes"`
	// The row-at-a-time streaming oracle (ExecStreamRows), for isolating
	// what interned columnar batches buy over boxed-value streaming.
	PeakStreamRows  int   `json:"peak_stream_rows_tuples"`
	AllocStreamRows int64 `json:"alloc_stream_rows_bytes"`
	// Dictionary statistics of the columnar run: distinct equality
	// classes (incl. the null sentinel) and the intern hit/miss split.
	DictSize     int    `json:"dict_size"`
	InternHits   uint64 `json:"intern_hits"`
	InternMisses uint64 `json:"intern_misses"`
}

// Metric is one machine-readable measurement of a named workload at a
// worker count: absolute time per evaluation plus the speedup over the
// same workload at workers=1.
type Metric struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddReport aggregates an instrumented run's trace into an operator report
// and appends it. A nil trace (metrics collection off) is a no-op, so
// experiments thread Config.Instrument results through unconditionally.
func (t *Table) AddReport(tr *eval.Trace, strategy string, workers, answerRows int) {
	if tr == nil {
		return
	}
	t.OpReports = append(t.OpReports, tr.Report(strategy, workers, answerRows))
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiment workloads.
type Config struct {
	// Scale multiplies the default workload sizes; 1.0 is the EXPERIMENTS
	// reference scale. Smaller values keep CI fast.
	Scale float64
	// Seed drives every generator.
	Seed int64
	// Workers is the join/group-by worker count for every strategy under
	// test (0 = one per CPU, 1 = sequential). Answers are identical for
	// every worker count; E11 sweeps this knob explicitly.
	Workers int
	// Metrics enables per-operator observability collection: instrumented
	// experiments attach one obs.RunReport per strategy run to the table
	// (flockbench -json sets this).
	Metrics bool
	// Timeout, when positive, bounds each strategy evaluation's wall
	// clock (flockbench -timeout): a run that exceeds it aborts with
	// eval.ErrCanceled instead of holding the suite hostage.
	Timeout time.Duration
	// DataDir, when set, is a persistent storage data directory for the
	// engine experiments (E12) to ingest into and reopen; empty means a
	// temp directory that is removed when the experiment ends
	// (flockbench -data-dir).
	DataDir string
}

// DefaultConfig is the reference configuration used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1998} }

// EvalOpts returns the evaluation options the configuration implies.
// Each call starts a fresh wall-clock budget, so the timeout bounds one
// strategy evaluation, not the whole suite.
func (c Config) EvalOpts() *core.EvalOptions {
	return &core.EvalOptions{Workers: c.Workers, Limits: eval.Limits{Wall: c.Timeout}}
}

// Instrument returns a fresh trace for one strategy run when metrics
// collection is enabled, nil otherwise. A nil *eval.Trace threads through
// every evaluator as a no-op, so callers need not branch.
func (c Config) Instrument() *eval.Trace {
	if !c.Metrics {
		return nil
	}
	return &eval.Trace{}
}

// TracedOpts is EvalOpts with the given trace attached.
func (c Config) TracedOpts(tr *eval.Trace) *core.EvalOptions {
	opts := c.EvalOpts()
	opts.Trace = tr
	return opts
}

func (c Config) scaled(n int) int {
	s := int(float64(n) * c.Scale)
	if s < 1 {
		return 1
	}
	return s
}

// AddPipeline runs one workload under the three executors — interned
// columnar streaming (the default), row-at-a-time streaming, and the
// legacy materializing baseline — and records the peak intermediate
// buffering and allocation of each, plus the columnar run's dictionary
// statistics. All answers must be equal (the executor-oracle contract);
// a mismatch is returned as an error. A disabled-metrics configuration
// skips the comparison entirely.
func (t *Table) AddPipeline(cfg Config, name string,
	run func(exec eval.ExecMode, tr *eval.Trace) (*storage.Relation, error)) error {

	if !cfg.Metrics {
		return nil
	}
	measure := func(exec eval.ExecMode) (*storage.Relation, *obs.RunReport, int64, error) {
		tr := &eval.Trace{}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		rel, err := run(exec, tr)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, nil, 0, err
		}
		return rel, tr.Report(name+" ["+exec.String()+"]", cfg.Workers, rel.Len()),
			int64(after.TotalAlloc - before.TotalAlloc), nil
	}
	// Untimed warm-up: the first columnar run pays the one-time lazy
	// dictionary build, which amortizes across a service's lifetime and
	// would otherwise bill the measured run's allocation.
	if _, err := run(eval.ExecStream, nil); err != nil {
		return fmt.Errorf("pipeline %s (warm-up): %w", name, err)
	}
	streamRel, streamRep, streamAlloc, err := measure(eval.ExecStream)
	if err != nil {
		return fmt.Errorf("pipeline %s (stream): %w", name, err)
	}
	rowsRel, rowsRep, rowsAlloc, err := measure(eval.ExecStreamRows)
	if err != nil {
		return fmt.Errorf("pipeline %s (stream-rows): %w", name, err)
	}
	matRel, matRep, matAlloc, err := measure(eval.ExecMaterialize)
	if err != nil {
		return fmt.Errorf("pipeline %s (materialize): %w", name, err)
	}
	if !streamRel.Equal(matRel) || !streamRel.Equal(rowsRel) {
		return fmt.Errorf("pipeline %s: the three executors disagree", name)
	}
	t.Pipeline = append(t.Pipeline, PipelineMetric{
		Name:             name,
		PeakStream:       streamRep.PeakTuples,
		PeakMaterialize:  materializedPeak(matRep),
		AllocStream:      streamAlloc,
		AllocMaterialize: matAlloc,
		PeakStreamRows:   rowsRep.PeakTuples,
		AllocStreamRows:  rowsAlloc,
		DictSize:         streamRep.DictSize,
		InternHits:       streamRep.InternHits,
		InternMisses:     streamRep.InternMisses,
	})
	return nil
}

// materializedPeak reads the materializing baseline's peak live
// intermediate tuples. The legacy operators feed the same gauge the
// streaming executor uses (see Executor.JoinNext, Finish, and the
// group-by call sites); the event-derived max(rows_in + rows_out) is a
// floor for traces from operators that predate the gauge.
func materializedPeak(r *obs.RunReport) int {
	peak := r.PeakTuples
	for _, s := range r.Steps {
		if n := s.RowsIn + s.RowsOut; n > peak {
			peak = n
		}
	}
	return peak
}

// timed measures one evaluation and returns its duration. A garbage
// collection runs first so one strategy's allocation debris does not bill
// the next strategy's clock.
func timed(f func() error) (time.Duration, error) {
	runtime.GC()
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// speedup formats a ratio between two durations.
func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}
