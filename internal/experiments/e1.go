package experiments

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E1 reproduces the §1.3 claim: on word-occurrence data, rewriting the
// Fig. 1 pair-count query to pre-filter items with the support threshold
// (the hand-applied a-priori trick) gave a 20-fold speedup over the direct
// query in a commercial DBMS.
//
// Both forms run on this repository's engine, which is a stronger baseline
// than a 1998 DBMS: it hash-joins, deduplicates eagerly, and pushes
// comparisons into scans, so the rewrite's advantage is compressed at the
// paper's illustrative threshold of 20. The experiment therefore sweeps
// the support floor — the paper's own footnote 1 notes that practical
// floors are ~1% of baskets — and the measured factor grows to the
// claimed ~20x at a 5% floor, with the rewrite winning at every point.
func E1(cfg Config) (*Table, error) {
	docs := cfg.scaled(10_000)
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  docs,
		Items:    cfg.scaled(60_000),
		MeanSize: 15,
		Skew:     1.0,
		Seed:     cfg.Seed,
	})

	t := &Table{
		ID:     "E1",
		Title:  "Fig. 1 / §1.3 — direct SQL pair count vs. a-priori rewrite (word data)",
		Header: []string{"support", "direct (Fig. 1)", "a-priori rewrite", "speedup", "answer pairs"},
	}

	// The paper's 20, a 1% floor, a 5% floor. Tiny -scale values drive
	// the derived floors to zero, and a zero support means the filter
	// accepts empty results (an infinite flock) — clamp them to ≥ 1.
	supports := []int{20, max(docs/100, 1), max(docs/20, 1)}
	for _, support := range supports {
		f := paper.MarketBasket(support)
		var direct, rewritten *storage.Relation
		directTrace := cfg.Instrument()
		directTime, err := timed(func() error {
			var err error
			direct, err = f.Eval(db, cfg.TracedOpts(directTrace))
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("E1 direct (support %d): %w", support, err)
		}
		t.AddReport(directTrace, fmt.Sprintf("direct support=%d", support), cfg.Workers, direct.Len())
		// The symmetric plan of §3.1: one item-filter relation referenced
		// for both $1 and $2 (footnote 3's symmetry exploitation).
		plan, err := planner.PlanSharedFilter(f, "1")
		if err != nil {
			return nil, fmt.Errorf("E1 plan: %w", err)
		}
		rewriteTrace := cfg.Instrument()
		rewriteTime, err := timed(func() error {
			res, err := plan.Execute(db, cfg.TracedOpts(rewriteTrace))
			if err == nil {
				rewritten = res.Answer
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("E1 rewrite (support %d): %w", support, err)
		}
		if !direct.Equal(rewritten) {
			return nil, fmt.Errorf("E1: rewrite changed the answer at support %d", support)
		}
		t.AddReport(rewriteTrace, fmt.Sprintf("a-priori rewrite support=%d", support), cfg.Workers, rewritten.Len())
		t.AddRow(fmt.Sprintf("%d", support), ms(directTime), ms(rewriteTime),
			speedup(directTime, rewriteTime), fmt.Sprintf("%d", direct.Len()))
	}
	if err := t.AddPipeline(cfg, "direct support=20", func(exec eval.ExecMode, tr *eval.Trace) (*storage.Relation, error) {
		f := paper.MarketBasket(20)
		return f.Eval(db, &core.EvalOptions{Workers: cfg.Workers, Trace: tr, Exec: exec})
	}); err != nil {
		return nil, fmt.Errorf("E1: %w", err)
	}
	t.AddNote("paper claim: rewrite ~20x faster at its (newspaper-corpus) threshold of 20; " +
		"our set-oriented engine compresses the factor at support 20, and it grows toward the " +
		"claimed magnitude (10-20x across runs) at the realistic 5%% floor — the rewrite wins " +
		"at every support (answers verified equal)")
	return t, nil
}
