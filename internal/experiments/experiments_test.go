package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallConfig keeps the suite fast in CI while still exercising every
// code path.
func smallConfig() Config { return Config{Scale: 0.05, Seed: 7} }

func TestSuiteRunsAtSmallScale(t *testing.T) {
	for _, e := range Suite() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(smallConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			out := tab.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tab.Header[0]) {
				t.Errorf("rendering missing ID/header:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID(E5) = %v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID should error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("yes", "1")
	tab.AddRow("longer cell", "2")
	tab.AddNote("hello %d", 42)
	out := tab.String()
	for _, want := range []string{"== EX: demo ==", "longer cell", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Columns aligned: header and rows share the width of the longest cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
}

func TestConfigScaled(t *testing.T) {
	c := Config{Scale: 0.001}
	if c.scaled(100) != 1 {
		t.Errorf("scaled floor = %d, want 1", c.scaled(100))
	}
	c = Config{Scale: 2}
	if c.scaled(100) != 200 {
		t.Errorf("scaled = %d", c.scaled(100))
	}
	if DefaultConfig().Scale != 1.0 {
		t.Error("default scale")
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("ms = %q", got)
	}
	if got := speedup(20*time.Millisecond, 10*time.Millisecond); got != "2.0x" {
		t.Errorf("speedup = %q", got)
	}
	if got := speedup(time.Second, 0); got != "inf" {
		t.Errorf("speedup by zero = %q", got)
	}
}
