package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one entry of the reproduction suite.
type Experiment struct {
	// ID is the experiment identifier ("E1".."E8").
	ID string
	// Artifact names the paper figure/claim reproduced.
	Artifact string
	// Run executes the experiment at the given configuration.
	Run func(Config) (*Table, error)
}

// Suite returns the full experiment list, in order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", "Fig. 1 + §1.3 20x claim", E1},
		{"E2", "Fig. 2", E2},
		{"E3", "Figs. 3 & 5", E3},
		{"E4", "Fig. 4 + §3.4", E4},
		{"E5", "Figs. 6 & 7", E5},
		{"E6", "Figs. 8 & 9 + Ex. 4.4", E6},
		{"E7", "Fig. 10 + §5", E7},
		{"E8", "Ex. 3.2 enumeration", E8},
		{"E9", "footnote 2 itemset sequence", E9},
		{"E10", "§4.4 statistics accuracy", E10},
		{"E11", "parallel worker-sweep scaling", E11},
		{"E12", "storage engines: memory vs disk-streamed segments", E12},
		{"E13", "sharded flockd cluster: scatter/gather shard-sweep", E13},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Suite() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Suite() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
