package experiments

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E10 quantifies the statistics question §4.4 raises ("we may want to do
// substantial gathering of statistics to support the filter/don't filter
// decision"): for each candidate subquery of Example 3.2, how close do
// the closed-form independence model and a 30% entity sample come to the
// exact survivor fraction? The filter/skip decision at a 0.5 cutoff is
// shown for each estimator.
func E10(cfg Config) (*Table, error) {
	const support = 20
	db := workload.Medical(workload.MedicalConfig{
		Patients:            cfg.scaled(20_000),
		Diseases:            20,
		Symptoms:            cfg.scaled(8_000),
		Medicines:           6,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 1,
		ExhibitRate:         0.5,
		ExtraMedicines:      1.5,
		NoiseRate:           2.5,
		SideEffects: []workload.SideEffect{
			{Medicine: 1, Symptom: 17, Rate: 0.4},
		},
		Seed: cfg.Seed,
	})
	est := planner.NewEstimator(db)
	f := paper.Medical(support)
	rule := f.Query[0]

	t := &Table{
		ID:     "E10",
		Title:  "§4.4 statistics — exact vs. modeled vs. sampled survivor fractions (Ex. 3.2 subqueries)",
		Header: []string{"subquery", "params", "exact", "model", "sampled(30%)"},
	}

	cases := []struct {
		name   string
		sub    datalog.Union
		params []datalog.Param
	}{
		{"(1) exhibits", datalog.Union{rule.DeleteSubgoals(1, 2, 3)}, []datalog.Param{"s"}},
		{"(2) treatments", datalog.Union{rule.DeleteSubgoals(0, 2, 3)}, []datalog.Param{"m"}},
		{"(3) unexplained symptom", datalog.Union{rule.DeleteSubgoals(1)}, []datalog.Param{"s"}},
		{"(4) symptom-medicine pair", datalog.Union{rule.DeleteSubgoals(2, 3)}, []datalog.Param{"m", "s"}},
	}
	for _, c := range cases {
		exact, err := exactFraction(db, est, c.sub, c.params, support, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		model := est.SurvivorFraction(c.sub, c.params, support)
		sampled, err := est.SampledSurvivorFraction(c.sub, c.params, support,
			&planner.SampleOptions{Fraction: 0.3, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		t.AddRow(c.name, fmt.Sprintf("%v", c.params),
			verdictCell(exact, exact), verdictCell(model, exact), verdictCell(sampled, exact))
	}
	t.AddNote("filter/skip column marks show the 0.5-cutoff decision; ✓ = same decision as exact")
	t.AddNote("the closed-form model is exact for single-atom single-param subqueries ((1),(2)) and " +
		"approximate on joins ((3),(4)); sampling tracks the exact fraction everywhere")
	return t, nil
}

// exactFraction computes the true survivor fraction of a subquery.
func exactFraction(db *storage.Database, est *planner.Estimator, sub datalog.Union, params []datalog.Param, support, workers int) (float64, error) {
	spec := datalog.FilterSpec{
		Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(int64(support)),
	}
	flock, err := core.New(sub, spec)
	if err != nil {
		return 0, err
	}
	survivors, err := flock.Eval(db, &core.EvalOptions{Workers: workers})
	if err != nil {
		return 0, err
	}
	denom := 1.0
	for _, p := range params {
		best := -1.0
		for _, r := range sub {
			d := est.ParamCombos(r, []datalog.Param{p})
			if best < 0 || d < best {
				best = d
			}
		}
		denom *= best
	}
	if denom <= 0 {
		return 0, fmt.Errorf("no candidate assignments")
	}
	return float64(survivors.Len()) / denom, nil
}

// verdictCell renders a fraction with its filter/skip decision relative to
// the exact decision at a 0.5 cutoff.
func verdictCell(frac, exact float64) string {
	const cutoff = 0.5
	mark := "✓"
	if (frac < cutoff) != (exact < cutoff) {
		mark = "✗"
	}
	decision := "skip"
	if frac < cutoff {
		decision = "filter"
	}
	return fmt.Sprintf("%.4f %s %s", frac, decision, mark)
}
