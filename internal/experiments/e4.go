package experiments

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E4 reproduces Fig. 4: the strongly-connected-words union flock, and the
// §3.4 / Example 3.3 optimization — a union of one safe subquery per rule
// bounds the whole union, so a word can be pruned unless its summed
// appearances (title, anchor, linked-title) reach the threshold.
func E4(cfg Config) (*Table, error) {
	const support = 50
	// Wide titles and anchor texts make the rule-2/3 joins fan out by
	// titleWords x anchorWords per link, which is what the per-word bound
	// of Example 3.3 prunes; moderate skew keeps most words below support.
	db := workload.Web(workload.WebConfig{
		Docs:          cfg.scaled(8_000),
		Vocab:         cfg.scaled(40_000),
		TitleWords:    7,
		AnchorsPerDoc: 3,
		AnchorWords:   6,
		Skew:          0.9,
		Seed:          cfg.Seed,
	})
	f := paper.WebWords(support)

	t := &Table{
		ID:     "E4",
		Title:  "Fig. 4 / §3.4 — union flock with union-of-subqueries pruning",
		Header: []string{"plan", "time", "step survivors", "answer"},
	}

	variants := []struct {
		name string
		sets [][]datalog.Param
	}{
		{"no pre-filter", nil},
		{"ok($1) (Example 3.3)", [][]datalog.Param{{"1"}}},
		{"ok($1) + ok($2)", [][]datalog.Param{{"1"}, {"2"}}},
	}
	var reference *storage.Relation
	var baseTime float64
	for _, v := range variants {
		plan, err := planner.PlanWithParamSets(f, v.sets)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", v.name, err)
		}
		var answer *storage.Relation
		steps := "-"
		d, err := timed(func() error {
			r, err := plan.Execute(db, cfg.EvalOpts())
			if err != nil {
				return err
			}
			answer = r.Answer
			if len(r.Steps) > 1 {
				steps = ""
				for i, s := range r.Steps[:len(r.Steps)-1] {
					if i > 0 {
						steps += " "
					}
					steps += fmt.Sprintf("%s=%d", s.Name, s.Rows)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", v.name, err)
		}
		t.AddRow(v.name, ms(d), steps, fmt.Sprintf("%d", answer.Len()))
		if reference == nil {
			reference = answer
			baseTime = float64(d)
		} else if !answer.Equal(reference) {
			return nil, fmt.Errorf("E4: plan %q changed the answer", v.name)
		}
		if v.name == "ok($1) + ok($2)" {
			t.AddNote("both-filters speedup over no pre-filter: %.1fx", baseTime/float64(d))
		}
	}
	t.AddNote("union answers identical across plans (verified); counts sum across the 3 rules per §3.4")
	return t, nil
}
