package experiments

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
)

// E8 reproduces the worked enumeration of §3.2–§3.3 (Example 3.2): of the
// 14 nontrivial subgoal subsets of the medical query, safety condition (1)
// rules out 1, condition (2) rules out 5 more, and 8 remain as candidate
// subqueries. The table also enumerates the other running examples.
func E8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Ex. 3.2 — safe-subquery enumeration across the running examples",
		Header: []string{"flock", "subgoals", "nontrivial subsets", "safe subqueries", "param sets"},
	}
	flocks := []struct {
		name string
		rule int
		f    *core.Flock
	}{
		{"market basket (Fig. 2 + order)", 0, paper.MarketBasket(20)},
		{"medical (Fig. 3)", 0, paper.Medical(20)},
		{"web words rule 1 (Fig. 4)", 0, paper.WebWords(20)},
		{"web words rule 2 (Fig. 4)", 1, paper.WebWords(20)},
		{"path n=3 (Fig. 6)", 0, paper.Path(3, 20)},
	}
	for _, fl := range flocks {
		r := fl.f.Query[fl.rule]
		n := len(r.Body)
		subs := core.EnumerateSubqueries(r)
		sets := core.ParamSets(r)
		setDesc := ""
		for i, s := range sets {
			if i > 0 {
				setDesc += " "
			}
			setDesc += fmt.Sprintf("%v", s)
		}
		t.AddRow(fl.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", (1<<n)-2),
			fmt.Sprintf("%d", len(subs)), setDesc)
	}

	// The paper's exact counts for Example 3.2.
	medical := paper.Medical(20).Query[0]
	var cond1, cond2, safe int
	for mask := 1; mask < (1 << len(medical.Body)); mask++ {
		if mask == (1<<len(medical.Body))-1 {
			continue // proper subsets only
		}
		var drop []int
		for i := 0; i < len(medical.Body); i++ {
			if mask&(1<<i) == 0 {
				drop = append(drop, i)
			}
		}
		sub := medical.DeleteSubgoals(drop...)
		vs := datalog.CheckSafety(sub)
		switch {
		case len(vs) == 0:
			safe++
		case vs[0].Condition == 1:
			cond1++
		default:
			cond2++
		}
	}
	t.AddNote("Example 3.2 medical counts: %d ruled out by condition (1), %d by condition (2), %d safe — paper says 1, 5, 8",
		cond1, cond2, safe)
	if cond1 != 1 || cond2 != 5 || safe != 8 {
		return nil, fmt.Errorf("E8: enumeration disagrees with the paper (%d/%d/%d)", cond1, cond2, safe)
	}
	return t, nil
}
