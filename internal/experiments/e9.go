package experiments

import (
	"fmt"

	"queryflocks/internal/apriori"
	"queryflocks/internal/mining"
	"queryflocks/internal/workload"
)

// E9 exercises footnote 2's extension: all frequent itemsets (not just
// pairs) mined as a sequence of query flocks, each flock's query extended
// with subgoals over the previous flock's answer. The sequence must find
// exactly the same itemsets at every cardinality as the classic [AS94]
// level-wise algorithm.
func E9(cfg Config) (*Table, error) {
	const support = 100
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  cfg.scaled(20_000),
		Items:    cfg.scaled(2_000),
		MeanSize: 10,
		Skew:     1.1,
		Seed:     cfg.Seed,
	})

	t := &Table{
		ID:     "E9",
		Title:  "footnote 2 — frequent itemsets of every size as a sequence of flocks",
		Header: []string{"strategy", "time", "levels", "itemsets", "maximal"},
	}

	var res *mining.Result
	flockTime, err := timed(func() error {
		var err error
		res, err = mining.FrequentItemsets(db, support, nil)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E9 flocks: %w", err)
	}
	t.AddRow("flock sequence", ms(flockTime),
		fmt.Sprintf("%d", len(res.Levels)), fmt.Sprintf("%d", res.Count()),
		fmt.Sprintf("%d", len(res.MaximalItemsets())))

	ds, err := apriori.FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		return nil, err
	}
	var levels [][]apriori.Counted
	apTime, err := timed(func() error {
		levels = apriori.Frequent(ds, support, 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	apCount, apLevels := 0, 0
	for _, l := range levels {
		if len(l) == 0 {
			break
		}
		apLevels++
		apCount += len(l)
	}
	t.AddRow("classic a-priori [AS94]", ms(apTime),
		fmt.Sprintf("%d", apLevels), fmt.Sprintf("%d", apCount), "-")

	if apLevels != len(res.Levels) || apCount != res.Count() {
		return nil, fmt.Errorf("E9: flock sequence found %d sets in %d levels; apriori %d in %d",
			res.Count(), len(res.Levels), apCount, apLevels)
	}
	perLevel := ""
	for k, l := range res.Levels {
		if k > 0 {
			perLevel += " "
		}
		perLevel += fmt.Sprintf("L%d=%d", k+1, l.Len())
	}
	t.AddNote("levels agree with classic a-priori exactly: %s (verified)", perLevel)
	t.AddNote("each flock k's query semi-joins the (k-1)-level relation for every (k-1)-subset of its parameters")
	return t, nil
}
