package experiments

import (
	"fmt"
	"os"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E12 demonstrates the pluggable storage engine: the same flock, over the
// same data directory, evaluated with relations fully materialized
// (engine=memory) and streamed from the sorted segment files
// (engine=disk). The flock is a pure scan+group shape — frequent single
// items, the first a-priori pass — so the disk engine never needs the
// base relation resident: tuples stream through the scan operator into
// per-group COUNT accumulators, and the peak number of buffered tuples
// stays far below the base cardinality. That is the beyond-memory-budget
// claim: answering a flock over a relation that never fully exists in
// memory.
//
// Answers must be bit-identical across engines and worker counts (the
// storage-oracle contract); a mismatch fails the experiment.
func E12(cfg Config) (*Table, error) {
	// A small item universe against many baskets: per-group COUNT
	// accumulators stop retaining tuples once the monotone threshold is
	// reached, so the engine's peak buffered state is on the order of
	// items x threshold — far below the base cardinality it streams past.
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  cfg.scaled(20_000),
		Items:    cfg.scaled(500),
		MeanSize: 8,
		Skew:     1.0,
		Seed:     cfg.Seed,
	})
	baseRows := db.MustRelation("baskets").Len()

	// The data directory under test: -data-dir reuses (or creates) a
	// persistent one, otherwise the experiment ingests into a temp dir.
	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "flock-e12-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if err := storage.CreateDir(dir, db); err != nil {
		return nil, fmt.Errorf("E12 ingest: %w", err)
	}

	// Frequent single items — the first a-priori pass as a flock. One
	// positive subgoal and a monotone COUNT: the shape the disk engine can
	// answer without ever holding the base relation in memory.
	f := core.MustParse(`QUERY:
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.B) >= 20
`)

	t := &Table{
		ID:     "E12",
		Title:  "storage engines — memory-resident vs disk-streamed segments",
		Header: []string{"engine", "workers", "time", "answers", "peak tuples", "bytes read"},
	}

	var oracle *storage.Relation
	for _, engine := range []storage.Engine{storage.EngineMemory, storage.EngineDisk} {
		for _, workers := range []int{1, 8} {
			edb, _, err := storage.OpenDir(dir, engine)
			if err != nil {
				return nil, fmt.Errorf("E12 open %s: %w", engine, err)
			}
			tr := cfg.Instrument()
			opts := cfg.TracedOpts(tr)
			opts.Workers = workers
			var answer *storage.Relation
			elapsed, err := timed(func() error {
				var err error
				answer, err = f.Eval(edb, opts)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("E12 %s: %w", engine, err)
			}
			if oracle == nil {
				oracle = answer
			} else if !answer.Equal(oracle) {
				return nil, fmt.Errorf("E12: engine %s (workers=%d) disagrees with the oracle", engine, workers)
			}
			peak, bytesRead := "-", "-"
			if tr != nil {
				rep := tr.Report(fmt.Sprintf("E12 %s", engine), workers, answer.Len())
				t.OpReports = append(t.OpReports, rep)
				peak = fmt.Sprintf("%d", rep.PeakTuples)
				bytesRead = fmt.Sprintf("%d", rep.StorageBytesRead)
				// The beyond-memory-budget claim: the disk engine's peak
				// buffered tuples stay well below the base cardinality it
				// streamed past.
				if engine == storage.EngineDisk && rep.PeakTuples*4 > baseRows {
					return nil, fmt.Errorf("E12: disk peak %d tuples is not ≪ base %d rows",
						rep.PeakTuples, baseRows)
				}
			}
			t.AddRow(engine.String(), fmt.Sprintf("%d", workers), ms(elapsed),
				fmt.Sprintf("%d", answer.Len()), peak, bytesRead)
		}
	}
	// Cross-check against the original in-memory database, bypassing the
	// data directory round-trip entirely.
	direct, err := f.Eval(db, cfg.EvalOpts())
	if err != nil {
		return nil, err
	}
	if !direct.Equal(oracle) {
		return nil, fmt.Errorf("E12: data-directory answers differ from the in-memory database")
	}
	t.AddNote("answers bit-identical across engines, worker counts, and the CSV-loaded database (%d rows streamed)", baseRows)
	return t, nil
}
