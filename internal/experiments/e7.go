package experiments

import (
	"fmt"

	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E7 reproduces Fig. 10 / §5: the weighted market basket with a monotone
// SUM filter. The claim is that "the techniques described in this paper
// apply directly to any monotone filter condition": the same a-priori
// item-filter plan is legal for SUM-of-importance support, prunes the same
// way, and returns the identical answer to direct evaluation.
func E7(cfg Config) (*Table, error) {
	const (
		countSupport = 20
		maxWeight    = 10
		// Matching SUM threshold: mean weight is (1+maxWeight)/2, so 20
		// baskets carry ~110 of importance.
		sumSupport = 110
	)
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  cfg.scaled(20_000),
		Items:    cfg.scaled(8_000),
		MeanSize: 8,
		Skew:     1.0,
		Seed:     cfg.Seed,
	})
	if err := workload.AttachWeights(db, maxWeight, cfg.Seed+1); err != nil {
		return nil, err
	}
	f := paper.WeightedBasket(sumSupport)

	t := &Table{
		ID:     "E7",
		Title:  "Fig. 10 / §5 — weighted baskets under a monotone SUM filter",
		Header: []string{"strategy", "time", "answer pairs"},
	}

	var direct *storage.Relation
	directTime, err := timed(func() error {
		var err error
		direct, err = f.Eval(db, cfg.EvalOpts())
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E7 direct: %w", err)
	}
	t.AddRow("direct", ms(directTime), fmt.Sprintf("%d", direct.Len()))

	plan, err := planner.PlanSharedFilter(f, "1")
	if err != nil {
		return nil, fmt.Errorf("E7 plan (SUM filter must admit a-priori steps): %w", err)
	}
	var planned *storage.Relation
	planTime, err := timed(func() error {
		r, err := plan.Execute(db, cfg.EvalOpts())
		if err == nil {
			planned = r.Answer
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E7 plan exec: %w", err)
	}
	t.AddRow("item-filter plan (SUM)", ms(planTime), fmt.Sprintf("%d", planned.Len()))
	if !planned.Equal(direct) {
		return nil, fmt.Errorf("E7: plan changed the answer")
	}

	// Reference point: the unweighted COUNT flock at the equivalent
	// support, to show the weighted variant is a strict generalization.
	fc := paper.MarketBasket(countSupport)
	var counted *storage.Relation
	countTime, err := timed(func() error {
		var err error
		counted, err = fc.Eval(db, cfg.EvalOpts())
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("unweighted COUNT >= %d", countSupport), ms(countTime), fmt.Sprintf("%d", counted.Len()))

	promoted, demoted := 0, 0
	for _, tp := range direct.Tuples() {
		if !counted.Contains(tp) {
			promoted++
		}
	}
	for _, tp := range counted.Tuples() {
		if !direct.Contains(tp) {
			demoted++
		}
	}
	t.AddNote("SUM plan answer == direct (verified); monotone SUM admits the same plan space as COUNT")
	t.AddNote("plan speedup over direct: %s; weighting promoted %d pairs and demoted %d vs COUNT",
		speedup(directTime, planTime), promoted, demoted)
	return t, nil
}
