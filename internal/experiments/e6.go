package experiments

import (
	"fmt"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E6 reproduces Figs. 8–9 / Example 4.4: dynamic selection of filter
// steps. On data shaped to the example's assumptions (rare symptoms,
// popular medicines), the dynamic evaluator pinned to the Fig. 8 join
// order must (a) filter $s after the exhibits leaf, (b) skip $m, and (c)
// filter the ($s,$m) pair after the first join — producing a plan like
// Fig. 9 — and its runtime should track the best static plan without
// needing that plan chosen in advance.
func E6(cfg Config) (*Table, error) {
	const support = 20
	db := workload.Medical(workload.MedicalConfig{
		Patients:            cfg.scaled(20_000),
		Diseases:            20,
		Symptoms:            cfg.scaled(8_000),
		Medicines:           6,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 1,
		ExhibitRate:         0.5,
		ExtraMedicines:      1.5,
		NoiseRate:           2.5,
		SideEffects: []workload.SideEffect{
			{Medicine: 1, Symptom: 17, Rate: 0.4},
		},
		Seed: cfg.Seed,
	})
	f := paper.Medical(support)

	t := &Table{
		ID:     "E6",
		Title:  "Figs. 8–9 / Ex. 4.4 — dynamic filter selection vs. static plans",
		Header: []string{"strategy", "time", "filters applied", "answer"},
	}

	var reference *storage.Relation
	addStatic := func(name string, sets [][]datalog.Param) (float64, error) {
		plan, err := planner.PlanWithParamSets(f, sets)
		if err != nil {
			return 0, err
		}
		var answer *storage.Relation
		tr := cfg.Instrument()
		d, err := timed(func() error {
			r, err := plan.Execute(db, cfg.TracedOpts(tr))
			if err == nil {
				answer = r.Answer
			}
			return err
		})
		if err != nil {
			return 0, err
		}
		t.AddRow(name, ms(d), fmt.Sprintf("%d (static)", len(sets)), fmt.Sprintf("%d", answer.Len()))
		t.AddReport(tr, name, cfg.Workers, answer.Len())
		if reference == nil {
			reference = answer
		} else if !answer.Equal(reference) {
			return 0, fmt.Errorf("E6: static %q changed the answer", name)
		}
		return float64(d), nil
	}

	baseTime, err := addStatic("static: no pre-filter", nil)
	if err != nil {
		return nil, err
	}
	bestStatic, err := addStatic("static: okS + okM (Fig. 5)", [][]datalog.Param{{"s"}, {"m"}})
	if err != nil {
		return nil, err
	}

	var dres *planner.DynamicResult
	dynTrace := cfg.Instrument()
	dynTime, err := timed(func() error {
		var err error
		// Fig. 8 join order: exhibits, treatments, diagnoses.
		dres, err = planner.EvalDynamic(db, f, &planner.DynamicOptions{
			FixedOrder: []int{0, 1, 2}, Workers: cfg.Workers, Trace: dynTrace, Limits: eval.Limits{Wall: cfg.Timeout},
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E6 dynamic: %w", err)
	}
	t.AddRow("dynamic (§4.4, Fig. 8 order)", ms(dynTime),
		fmt.Sprintf("%d (decided at run time)", dres.FilterCount()), fmt.Sprintf("%d", dres.Answer.Len()))
	t.AddReport(dynTrace, "dynamic (§4.4, Fig. 8 order)", cfg.Workers, dres.Answer.Len())
	if !dres.Answer.Equal(reference) {
		return nil, fmt.Errorf("E6: dynamic changed the answer")
	}

	if err := t.AddPipeline(cfg, "dynamic (Fig. 8 order)", func(exec eval.ExecMode, tr *eval.Trace) (*storage.Relation, error) {
		r, err := planner.EvalDynamic(db, f, &planner.DynamicOptions{
			FixedOrder: []int{0, 1, 2}, Workers: cfg.Workers, Trace: tr, Exec: exec, Limits: eval.Limits{Wall: cfg.Timeout},
		})
		if err != nil {
			return nil, err
		}
		return r.Answer, nil
	}); err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}

	for _, d := range dres.Decisions {
		t.AddNote("decision %s", d)
	}
	t.AddNote("dynamic vs unfiltered: %.1fx; best static vs unfiltered: %.1fx",
		baseTime/float64(dynTime), baseTime/bestStatic)
	return t, nil
}
