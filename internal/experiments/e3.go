package experiments

import (
	"fmt"
	"strings"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E3 reproduces Figs. 3 and 5: the medical side-effect flock under every
// plan the paper's Example 3.2 discusses — no pre-filter, symptom filter
// (subquery 1), medicine filter (subquery 2), both (the Fig. 5 plan), the
// pair filter (subquery 4), and all of them together. Every plan must
// return the identical answer; the Fig. 5 plan is expected to beat the
// unfiltered evaluation on data where most symptoms are rare.
func E3(cfg Config) (*Table, error) {
	const support = 20
	mcfg := workload.MedicalConfig{
		Patients:            cfg.scaled(20_000),
		Diseases:            50,
		Symptoms:            cfg.scaled(20_000), // large universe keeps noise symptoms below support
		Medicines:           100,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 2,
		ExhibitRate:         0.6,
		ExtraMedicines:      2.0, // polypharmacy: the exhibits-treatments join fans out per patient
		NoiseRate:           3.0, // most exhibits tuples carry rare symptoms (Ex. 3.2's condition for subquery 1)
		SideEffects: []workload.SideEffect{
			{Medicine: 3, Symptom: 1, Rate: 0.4},
			{Medicine: 7, Symptom: 5, Rate: 0.3},
		},
		Seed: cfg.Seed,
	}
	db := workload.Medical(mcfg)
	f := paper.Medical(support)

	variants := []struct {
		name string
		sets [][]datalog.Param
	}{
		{"no pre-filter", nil},
		{"okS (subquery 1)", [][]datalog.Param{{"s"}}},
		{"okM (subquery 2)", [][]datalog.Param{{"m"}}},
		{"okS + okM (Fig. 5)", [][]datalog.Param{{"s"}, {"m"}}},
		{"pair filter (subquery 4)", [][]datalog.Param{{"s", "m"}}},
		{"okS + okM + pair", [][]datalog.Param{{"s"}, {"m"}, {"s", "m"}}},
	}

	t := &Table{
		ID:     "E3",
		Title:  "Figs. 3 & 5 — medical flock under the Example 3.2 plan space",
		Header: []string{"plan", "time", "step survivors", "answer"},
	}

	var reference *storage.Relation
	var baseTime, fig5Time string
	var base, fig5 float64
	for _, v := range variants {
		plan, err := planner.PlanWithParamSets(f, v.sets)
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", v.name, err)
		}
		var res *struct {
			answer *storage.Relation
			steps  string
		}
		tr := cfg.Instrument()
		d, err := timed(func() error {
			r, err := plan.Execute(db, cfg.TracedOpts(tr))
			if err != nil {
				return err
			}
			var parts []string
			for _, s := range r.Steps[:len(r.Steps)-1] {
				parts = append(parts, fmt.Sprintf("%s=%d", s.Name, s.Rows))
			}
			res = &struct {
				answer *storage.Relation
				steps  string
			}{r.Answer, strings.Join(parts, " ")}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", v.name, err)
		}
		if res.steps == "" {
			res.steps = "-"
		}
		t.AddRow(v.name, ms(d), res.steps, fmt.Sprintf("%d", res.answer.Len()))
		t.AddReport(tr, v.name, cfg.Workers, res.answer.Len())
		if reference == nil {
			reference = res.answer
			base = float64(d)
			baseTime = ms(d)
		} else if !res.answer.Equal(reference) {
			return nil, fmt.Errorf("E3: plan %q changed the answer", v.name)
		}
		if v.name == "okS + okM (Fig. 5)" {
			fig5 = float64(d)
			fig5Time = ms(d)
		}
	}
	if err := t.AddPipeline(cfg, "no pre-filter", func(exec eval.ExecMode, tr *eval.Trace) (*storage.Relation, error) {
		plan, err := planner.PlanWithParamSets(f, nil)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(db, &core.EvalOptions{Workers: cfg.Workers, Trace: tr, Exec: exec})
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	}); err != nil {
		return nil, fmt.Errorf("E3: %w", err)
	}
	t.AddNote("all plans return the same answer (verified)")
	t.AddNote("Fig. 5 plan %s vs unfiltered %s: %.1fx", fig5Time, baseTime, base/fig5)
	return t, nil
}
