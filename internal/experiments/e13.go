package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"queryflocks/internal/cluster"
	"queryflocks/internal/core"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E13 demonstrates the sharded flockd cluster: the basket workload is
// range-partitioned across in-process worker shards (each serving the
// real /partial HTTP handler over its Restrict()-ed view), and a
// coordinator scatters every FILTER computation, gathering and merging
// the serialized partial group states in shard order. The cluster oracle
// is the contract under test: the merged answer must be bit-identical to
// the single-node answer at every shard count, for both the direct
// evaluator and an executed static plan.
func E13(cfg Config) (*Table, error) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  cfg.scaled(2_000),
		Items:    cfg.scaled(40),
		MeanSize: 6,
		Skew:     0.9,
		Seed:     cfg.Seed,
	})
	f := core.MustParse(`QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 8
`)

	t := &Table{
		ID:     "E13",
		Title:  "sharded cluster — scatter/gather merge vs single node",
		Header: []string{"shards", "strategy", "time", "answers", "scattered", "fallbacks", "merged groups"},
	}

	// The single-node oracle every sharded run must reproduce exactly.
	oracle, err := f.Eval(db, cfg.EvalOpts())
	if err != nil {
		return nil, fmt.Errorf("E13 oracle: %w", err)
	}

	for _, shards := range []int{1, 2, 4} {
		m, err := cluster.BuildMap(db, "", 0, shards)
		if err != nil {
			return nil, fmt.Errorf("E13 map: %w", err)
		}
		servers := make([]*httptest.Server, shards)
		addrs := make([]string, shards)
		for i := range servers {
			wdb, err := m.Restrict(db, i)
			if err != nil {
				return nil, fmt.Errorf("E13 restrict %d: %w", i, err)
			}
			servers[i] = httptest.NewServer(cluster.PartialHandler(
				func() *storage.Database { return wdb }, cfg.Workers, cfg.Timeout))
			addrs[i] = servers[i].URL
		}
		co := cluster.New(m, &cluster.Client{
			Shards: addrs, Timeout: 30 * time.Second, Retries: 1, Backoff: 10 * time.Millisecond,
		}, db.Names())

		for _, strategy := range []string{"direct", "static"} {
			sess := co.Session()
			tr := cfg.Instrument()
			opts := cfg.TracedOpts(tr)
			opts.FilterEval = sess.FilterEval

			var answer *storage.Relation
			elapsed, err := timed(func() error {
				switch strategy {
				case "direct":
					var err error
					answer, err = f.Eval(db, opts)
					return err
				default:
					plan, err := planner.PlanStatic(f, planner.NewEstimator(db), nil)
					if err != nil {
						return err
					}
					res, err := plan.Execute(db, opts)
					if err != nil {
						return err
					}
					answer = res.Answer
					return nil
				}
			})
			if err != nil {
				return nil, fmt.Errorf("E13 %d shards %s: %w", shards, strategy, err)
			}
			if !answer.Equal(oracle) {
				return nil, fmt.Errorf("E13: %d shards (%s) disagrees with the single-node oracle", shards, strategy)
			}
			stats := sess.Stats()
			if stats.Scattered == 0 && stats.Fallbacks == 0 {
				return nil, fmt.Errorf("E13: %d shards (%s) neither scattered nor fell back", shards, strategy)
			}
			if tr != nil {
				t.OpReports = append(t.OpReports, tr.Report(fmt.Sprintf("E13 %d-shard %s", shards, strategy), cfg.Workers, answer.Len()))
			}
			t.AddRow(fmt.Sprintf("%d", shards), strategy, ms(elapsed),
				fmt.Sprintf("%d", answer.Len()),
				fmt.Sprintf("%d", stats.Scattered),
				fmt.Sprintf("%d", stats.Fallbacks),
				fmt.Sprintf("%d", stats.MergedGroups))
		}
		for _, s := range servers {
			s.Close()
		}
	}
	t.AddNote("merged answers bit-identical to the single node at 1, 2, and 4 shards for direct and static")
	return t, nil
}
