package experiments

import (
	"fmt"
	"strings"

	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E5 reproduces Figs. 6–7: the path flock and its n+1-step cascade plan.
// The query asks for nodes with at least `support` successors from which a
// path of length n extends; the cascade filters candidates with
// progressively longer prefixes. The paper's point is that arbitrarily
// long step sequences can each "make a useful simplification"; the table
// sweeps the cascade depth and reports per-step survivors.
func E5(cfg Config) (*Table, error) {
	const (
		support = 20
		n       = 3
	)
	db := workload.Graph(workload.GraphConfig{
		Nodes:       cfg.scaled(30_000),
		OutDegree:   2,
		Hubs:        cfg.scaled(600),
		HubDegree:   60,
		DeadEndFrac: 0.55,
		Seed:        cfg.Seed,
	})
	f := paper.Path(n, support)

	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Figs. 6–7 — path flock (n=%d) under cascade plans of increasing depth", n),
		Header: []string{"cascade depth", "time", "survivors per step", "answer"},
	}

	var reference *storage.Relation
	var times []float64
	for depth := 0; depth <= n; depth++ {
		plan, err := planner.PlanCascade(f, depth)
		if err != nil {
			return nil, fmt.Errorf("E5 depth %d: %w", depth, err)
		}
		var answer *storage.Relation
		var steps []string
		d, err := timed(func() error {
			r, err := plan.Execute(db, cfg.EvalOpts())
			if err != nil {
				return err
			}
			answer = r.Answer
			steps = steps[:0]
			for _, s := range r.Steps[:len(r.Steps)-1] {
				steps = append(steps, fmt.Sprintf("%d", s.Rows))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("E5 depth %d: %w", depth, err)
		}
		sv := strings.Join(steps, " -> ")
		if sv == "" {
			sv = "-"
		}
		t.AddRow(fmt.Sprintf("%d", depth), ms(d), sv, fmt.Sprintf("%d", answer.Len()))
		times = append(times, float64(d))
		if reference == nil {
			reference = answer
		} else if !answer.Equal(reference) {
			return nil, fmt.Errorf("E5: depth %d changed the answer", depth)
		}
	}
	best := 0
	for i, v := range times {
		if v < times[best] {
			best = i
		}
	}
	t.AddNote("answers identical at every depth (verified)")
	t.AddNote("survivors shrink monotonically along the cascade; best depth here: %d (%.1fx over depth 0)",
		best, times[0]/times[best])
	return t, nil
}
