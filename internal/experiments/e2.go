package experiments

import (
	"fmt"

	"queryflocks/internal/apriori"
	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E2 reproduces Fig. 2: the market-basket flock. It cross-validates the
// flock engine against the classic a-priori implementation (they must find
// exactly the same frequent pairs) and compares four evaluation routes:
// the direct flock, the flock under the item-filter plan, the hand-coded
// [AS94] algorithm, and the hand-coded no-pruning pair counter.
func E2(cfg Config) (*Table, error) {
	const support = 20
	// A retail-shaped universe much larger than the basket count keeps most
	// items below support — the regime where the a-priori item filter pays
	// (the paper's footnote 1: real floors are ~1% of baskets).
	db := workload.Baskets(workload.BasketConfig{
		Baskets:  cfg.scaled(20_000),
		Items:    cfg.scaled(8_000),
		MeanSize: 8,
		Skew:     1.0,
		Seed:     cfg.Seed,
	})
	f := paper.MarketBasket(support)

	t := &Table{
		ID:     "E2",
		Title:  "Fig. 2 — market-basket flock vs. classic a-priori",
		Header: []string{"strategy", "time", "frequent pairs"},
	}

	var direct *storage.Relation
	directTime, err := timed(func() error {
		var err error
		direct, err = f.Eval(db, cfg.EvalOpts())
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E2 direct: %w", err)
	}
	t.AddRow("flock direct", ms(directTime), fmt.Sprintf("%d", direct.Len()))

	plan, err := planner.PlanSharedFilter(f, "1")
	if err != nil {
		return nil, err
	}
	var planned *storage.Relation
	planTime, err := timed(func() error {
		res, err := plan.Execute(db, cfg.EvalOpts())
		if err == nil {
			planned = res.Answer
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E2 plan: %w", err)
	}
	t.AddRow("flock + item-filter plan", ms(planTime), fmt.Sprintf("%d", planned.Len()))

	ds, err := apriori.FromBaskets(db.MustRelation("baskets"))
	if err != nil {
		return nil, err
	}
	var apPairs []apriori.Counted
	apTime, err := timed(func() error {
		apPairs = apriori.FrequentPairs(ds, support)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("hand-coded a-priori [AS94]", ms(apTime), fmt.Sprintf("%d", len(apPairs)))

	var naivePairs []apriori.Counted
	naiveTime, err := timed(func() error {
		naivePairs = apriori.NaivePairs(ds, support)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("hand-coded naive pair count", ms(naiveTime), fmt.Sprintf("%d", len(naivePairs)))

	var setmLevels [][]apriori.Counted
	setmTime, err := timed(func() error {
		setmLevels = apriori.SETM(ds, support, 2)
		return nil
	})
	if err != nil {
		return nil, err
	}
	setmPairs := 0
	if len(setmLevels) > 1 {
		setmPairs = len(setmLevels[1])
	}
	t.AddRow("set-oriented SETM [HS95]", ms(setmTime), fmt.Sprintf("%d", setmPairs))
	if setmPairs != len(apPairs) {
		return nil, fmt.Errorf("E2: SETM found %d pairs, apriori %d", setmPairs, len(apPairs))
	}

	want := apriori.PairsRelation(ds, apPairs)
	if !direct.Equal(want) || !planned.Equal(want) {
		return nil, fmt.Errorf("E2: flock answers differ from classic a-priori")
	}
	t.AddNote("flock == classic a-priori on all %d pairs (verified)", want.Len())
	t.AddNote("item-filter plan speedup over direct flock: %s; a-priori over naive count: %s",
		speedup(directTime, planTime), speedup(naiveTime, apTime))
	return t, nil
}
