package experiments

import (
	"fmt"
	"runtime"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// E11 measures the parallel partitioned execution layer: the market-basket
// flock of Fig. 2 evaluated directly (hash join + group-by) on the E1
// word-occurrence workload and the E2 retail workload, swept over worker
// counts. Every worker count must produce the identical answer — the knob
// only changes the wall clock. The Metrics field carries the machine-
// readable ns/op and speedup-vs-sequential numbers that flockbench -json
// emits.
//
// Expected shape: near-linear scaling on the join-dominated word workload
// up to the physical core count, flatter on the group-by-heavy retail
// workload (the merge of per-worker partial aggregates is sequential). On
// a single-core host every worker count times within noise of workers=1.
func E11(cfg Config) (*Table, error) {
	type bench struct {
		name    string
		db      *storage.Database
		support int
	}
	benches := []bench{
		{
			name: "E1 word pairs",
			db: workload.Baskets(workload.BasketConfig{
				Baskets:  cfg.scaled(10_000),
				Items:    cfg.scaled(60_000),
				MeanSize: 15,
				Skew:     1.0,
				Seed:     cfg.Seed,
			}),
			support: 20,
		},
		{
			name: "E2 retail baskets",
			db: workload.Baskets(workload.BasketConfig{
				Baskets:  cfg.scaled(20_000),
				Items:    cfg.scaled(8_000),
				MeanSize: 8,
				Skew:     1.0,
				Seed:     cfg.Seed,
			}),
			support: 20,
		},
	}

	sweep := []int{1, 2, 4}
	if max := runtime.GOMAXPROCS(0); max > 4 {
		sweep = append(sweep, max)
	}

	t := &Table{
		ID:     "E11",
		Title:  "parallel partitioned join + group-by — worker sweep (Fig. 2 flock)",
		Header: []string{"workload", "workers", "time", "speedup", "answers"},
	}

	for _, b := range benches {
		f := paper.MarketBasket(b.support)
		var baseline time.Duration
		var want *storage.Relation
		for _, w := range sweep {
			var answer *storage.Relation
			elapsed, err := timed(func() error {
				var err error
				answer, err = f.Eval(b.db, &core.EvalOptions{Workers: w})
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("E11 %s (workers %d): %w", b.name, w, err)
			}
			if want == nil {
				baseline, want = elapsed, answer
			} else if !answer.Equal(want) {
				return nil, fmt.Errorf("E11 %s: workers=%d changed the answer", b.name, w)
			}
			ratio := float64(baseline) / float64(elapsed)
			t.AddRow(b.name, fmt.Sprintf("%d", w), ms(elapsed),
				fmt.Sprintf("%.2fx", ratio), fmt.Sprintf("%d", want.Len()))
			t.Metrics = append(t.Metrics, Metric{
				Name:    b.name,
				Workers: w,
				NsPerOp: elapsed.Nanoseconds(),
				Speedup: ratio,
			})
		}
	}
	t.AddNote("answers verified identical across all worker counts on both workloads")
	t.AddNote("speedup is vs. workers=1 on this host (%d logical CPUs); single-core hosts "+
		"stay within noise of sequential", runtime.GOMAXPROCS(0))
	return t, nil
}
