package planner

import (
	"os"
	"path/filepath"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// corpusDB builds the workload database matching one examples/flocks
// program: the generators provide the relation names each figure
// references (baskets, arc, the medical quartet, the web trio).
func corpusDB(t *testing.T, name string) *storage.Database {
	t.Helper()
	switch name {
	case "fig2-baskets.flock":
		return workload.Baskets(workload.BasketConfig{Baskets: 80, Items: 10, MeanSize: 4, Skew: 1.0, Seed: 11})
	case "fig10-weighted.flock":
		db := workload.Baskets(workload.BasketConfig{Baskets: 80, Items: 10, MeanSize: 4, Skew: 1.0, Seed: 11})
		if err := workload.AttachWeights(db, 9, 13); err != nil {
			t.Fatal(err)
		}
		return db
	case "fig3-medical.flock", "multidisease-views.flock":
		return workload.Medical(workload.DefaultMedical(150, 17))
	case "fig4-webwords.flock":
		return workload.Web(workload.DefaultWeb(60, 19))
	case "fig6-graphpaths.flock":
		return workload.Graph(workload.DefaultGraph(40, 23))
	default:
		t.Fatalf("no workload generator for corpus program %s", name)
		return nil
	}
}

// TestColumnarMatchesRowsCorpus is the interned-execution property test:
// for every program in examples/flocks, on its generated workload
// database, the columnar ID pipeline (ExecStream) must be bit-identical
// to the row-at-a-time streaming pipeline (ExecStreamRows) — same
// answer tuples in the same order (Dump equality), and for the dynamic
// strategy the same decision sequence — at worker counts 1, 2 and 8.
func TestColumnarMatchesRowsCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "flocks")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".flock" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			f, err := core.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			db := corpusDB(t, name)

			variants := map[string]func(int, eval.ExecMode) (*sweepAnswer, error){
				"direct": func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
					rel, err := f.Eval(db, &core.EvalOptions{Workers: workers, Exec: exec})
					return &sweepAnswer{rel: rel}, err
				},
				"static": func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
					plan, err := PlanStatic(f, NewEstimator(db), nil)
					if err != nil {
						return nil, err
					}
					res, err := plan.Execute(db, &core.EvalOptions{Workers: workers, Exec: exec})
					if err != nil {
						return nil, err
					}
					return &sweepAnswer{rel: res.Answer}, nil
				},
				"dynamic": func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
					res, err := EvalDynamic(db, f, &DynamicOptions{Workers: workers, Exec: exec})
					if err != nil {
						return nil, err
					}
					return &sweepAnswer{rel: res.Answer, decisions: res.Decisions}, nil
				},
			}
			for vname, run := range variants {
				t.Run(vname, func(t *testing.T) {
					var colDump string
					for _, w := range []int{1, 2, 8} {
						col, err := run(w, eval.ExecStream)
						if err != nil {
							t.Fatalf("columnar workers=%d: %v", w, err)
						}
						rows, err := run(w, eval.ExecStreamRows)
						if err != nil {
							t.Fatalf("rows workers=%d: %v", w, err)
						}
						if got, want := col.rel.Dump(), rows.rel.Dump(); got != want {
							t.Fatalf("workers=%d: columnar answer not bit-identical to row path\ncolumnar:\n%s\nrows:\n%s", w, got, want)
						}
						if len(col.decisions) != len(rows.decisions) {
							t.Fatalf("workers=%d: %d columnar decisions vs %d row", w, len(col.decisions), len(rows.decisions))
						}
						for i := range col.decisions {
							if col.decisions[i].String() != rows.decisions[i].String() {
								t.Fatalf("workers=%d decision %d differs:\ncolumnar: %s\nrows: %s",
									w, i, col.decisions[i], rows.decisions[i])
							}
						}
						if colDump == "" {
							colDump = col.rel.Dump()
						} else if got := col.rel.Dump(); got != colDump {
							t.Fatalf("workers=%d: columnar answer order differs between worker counts\ngot:\n%s\nwant:\n%s", w, got, colDump)
						}
					}
				})
			}
		})
	}
}
