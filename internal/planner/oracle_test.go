package planner

import (
	"math/rand"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// TestAllStrategiesAgreeRandomized runs every evaluation strategy — direct,
// naive oracle, static plans at several cutoffs, level-wise, and dynamic at
// several ratios — over randomized small datasets and checks they agree.
func TestAllStrategiesAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		db := workload.Baskets(workload.BasketConfig{
			Baskets:  20 + rng.Intn(60),
			Items:    4 + rng.Intn(10),
			MeanSize: 2 + rng.Intn(3),
			Skew:     rng.Float64() * 1.5,
			Seed:     rng.Int63(),
		})
		threshold := 1 + rng.Intn(5)
		f := paper.MarketBasket(threshold)

		want, err := f.EvalNaive(db)
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		check := func(name string, got *storage.Relation, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d %s differs (threshold %d)\ngot:\n%s\nwant:\n%s",
					trial, name, threshold, got.Dump(), want.Dump())
			}
		}

		direct, err := f.Eval(db, nil)
		check("direct", direct, err)

		est := NewEstimator(db)
		for _, cutoff := range []float64{0.1, 0.5, 0.9} {
			plan, err := PlanStatic(f, est, &StaticOptions{SurvivorCutoff: cutoff})
			if err != nil {
				t.Fatalf("trial %d static(%g): %v", trial, cutoff, err)
			}
			res, err := plan.Execute(db, nil)
			check("static", res.Answer, err)
		}

		lw, err := PlanLevelwise(f, 0)
		if err != nil {
			t.Fatalf("trial %d levelwise: %v", trial, err)
		}
		lwRes, err := lw.Execute(db, nil)
		check("levelwise", lwRes.Answer, err)

		for _, ratio := range []float64{0.2, 1.0, 5.0} {
			res, err := EvalDynamic(db, f, &DynamicOptions{FilterRatio: ratio, Order: eval.OrderGreedy})
			if err != nil {
				t.Fatalf("trial %d dynamic(%g): %v", trial, ratio, err)
			}
			check("dynamic", res.Answer, err)
		}
	}
}

// TestCascadeAgreesRandomizedGraphs sweeps cascade depths on random graphs
// against the direct evaluator for the Fig. 6 path flock.
func TestCascadeAgreesRandomizedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		db := workload.Graph(workload.GraphConfig{
			Nodes:       60 + rng.Intn(200),
			OutDegree:   1 + rng.Intn(3),
			Hubs:        1 + rng.Intn(5),
			HubDegree:   5 + rng.Intn(10),
			DeadEndFrac: rng.Float64() * 0.7,
			Seed:        rng.Int63(),
		})
		n := 1 + rng.Intn(3)
		f := paper.Path(n, 1+rng.Intn(4))
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		for depth := 0; depth <= n+1; depth++ {
			plan, err := PlanCascade(f, depth)
			if err != nil {
				t.Fatalf("trial %d depth %d: %v", trial, depth, err)
			}
			res, err := plan.Execute(db, nil)
			if err != nil {
				t.Fatalf("trial %d depth %d exec: %v", trial, depth, err)
			}
			if !res.Answer.Equal(direct) {
				t.Fatalf("trial %d depth %d differs", trial, depth)
			}
		}
	}
}

// TestUnionStaticAgrees checks §3.4: static plans over union flocks (one
// subquery per rule) agree with direct evaluation on web data.
func TestUnionStaticAgrees(t *testing.T) {
	db := workload.Web(workload.DefaultWeb(200, 41))
	f := paper.WebWords(3)
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sets := range [][][]datalog.Param{
		{{"1"}},
		{{"2"}},
		{{"1"}, {"2"}},
	} {
		plan, err := PlanWithParamSets(f, sets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answer.Equal(direct) {
			t.Errorf("union plan %v differs from direct", sets)
		}
	}
}
