package planner_test

import (
	"fmt"

	"queryflocks/internal/paper"
	"queryflocks/internal/planner"
	"queryflocks/internal/storage"
)

// layeredGraph: hub 0 fans out to 30 nodes, 10 of which continue onward;
// node 1000 fans out to 25 dead ends.
func layeredGraph() *storage.Database {
	arc := storage.NewRelation("arc", "From", "To")
	for j := 0; j < 30; j++ {
		arc.InsertValues(storage.Int(0), storage.Int(int64(100+j)))
		if j < 10 {
			arc.InsertValues(storage.Int(int64(100+j)), storage.Int(int64(200+j)))
		}
	}
	for j := 0; j < 25; j++ {
		arc.InsertValues(storage.Int(1000), storage.Int(int64(1100+j)))
	}
	db := storage.NewDatabase()
	db.Add(arc)
	return db
}

// The Fig. 7 cascade for the Fig. 6 path flock: each step prunes with a
// longer prefix.
func ExamplePlanCascade() {
	flock := paper.Path(1, 10) // nodes with >= 10 successors that continue
	plan, err := planner.PlanCascade(flock, 1)
	if err != nil {
		panic(err)
	}
	res, err := plan.Execute(layeredGraph(), nil)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Steps {
		fmt.Printf("%s: %d\n", s.Name, s.Rows)
	}
	// Output:
	// ok0: 2
	// ok: 1
}

// Dynamic filter selection (§4.4): the evaluator reports each decision.
func ExampleEvalDynamic() {
	flock := paper.Path(1, 10)
	res, err := planner.EvalDynamic(layeredGraph(), flock, &planner.DynamicOptions{
		FixedOrder: []int{0, 1},
	})
	if err != nil {
		panic(err)
	}
	for _, d := range res.Decisions {
		fmt.Println(d)
	}
	fmt.Println("answers:", res.Answer.Len())
	// The second decision re-filters: after the first FILTER the pipeline
	// continues from the reduced relation (avg 27.50 per assignment), and
	// the drop to avg 10.00 is "significantly lower" than that baseline.
	//
	// Output:
	// after arc($1,X): params [$1] avg 5.42: FILTER 65 -> 55 rows
	// after arc(X,Y1): params [$1] avg 10.00: FILTER 10 -> 10 rows
	// answers: 1
}
