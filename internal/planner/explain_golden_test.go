package planner

import (
	"strings"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

// goldenDB builds the fixture database of the golden EXPLAIN tests: a
// small basket relation with fixed contents, so greedy join orders (and
// hence the compiled trees) are deterministic.
func goldenDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	b := storage.NewRelation("baskets", "bid", "item")
	for _, p := range []struct {
		bid  int64
		item string
	}{
		{1, "chips"}, {1, "salsa"}, {2, "chips"}, {2, "salsa"},
		{2, "beer"}, {3, "beer"}, {3, "salsa"}, {4, "chips"},
	} {
		b.InsertValues(storage.Int(p.bid), storage.Str(p.item))
	}
	db.Add(b)
	return db
}

// goldenFlock is the shared fixture flock (the Fig. 2 market-basket
// shape) all three compilation paths render.
func goldenFlock(t *testing.T) *core.Flock {
	t.Helper()
	f, err := core.Parse(`
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const goldenDirect = `materialize#1 flock
└─ group#2 flock [COUNT(answer.B) >= 2]
   └─ project#3 $1,$2,B
      └─ join#4 baskets(B,$2) (+1 absorbed)
         ├─ build#5 baskets key(0)
         └─ scan#6 baskets(B,$1)`

// TestGoldenExplainDirect pins the direct strategy's physical tree: one
// pipeline per rule into the flock's group-filter and sink, with the
// $1 < $2 comparison absorbed into the second join.
func TestGoldenExplainDirect(t *testing.T) {
	plan, err := core.CompileDirect(goldenDB(t), goldenFlock(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Explain(); got != goldenDirect {
		t.Errorf("direct physical tree drifted:\n%s\nwant:\n%s", got, goldenDirect)
	}
}

const goldenSteps = `step ok_1:
materialize#1 ok_1
└─ group#2 ok_1 [COUNT(answer.B) >= 2]
   └─ project#3 $1,B
      └─ scan#4 baskets(B,$1)
step ok_2:
materialize#1 ok_2
└─ group#2 ok_2 [COUNT(answer.B) >= 2]
   └─ project#3 $2,B
      └─ scan#4 baskets(B,$2)
step ok:
materialize#1 ok
└─ group#2 ok [COUNT(answer.B) >= 2]
   └─ project#3 $1,$2,B
      └─ join#4 baskets(B,$2) (+2 absorbed)
         ├─ build#5 baskets key(0)
         └─ join#6 baskets(B,$1)
            ├─ build#7 baskets key(1)
            └─ scan#8 ok_1($1)`

// TestGoldenExplainStaticPlan pins the per-step physical trees of a
// FILTER-step plan (level-wise, one single-parameter step per
// parameter): the final step scans the tiny ok_1 step relation first
// and semi-joins ok_2 as an absorbed check.
func TestGoldenExplainStaticPlan(t *testing.T) {
	f := goldenFlock(t)
	plan, err := PlanLevelwise(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := plan.CompileSteps(goldenDB(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, st := range steps {
		b.WriteString("step " + st.Name + ":\n")
		b.WriteString(st.Plan.Explain())
		b.WriteByte('\n')
	}
	if got := strings.TrimRight(b.String(), "\n"); got != goldenSteps {
		t.Errorf("static step trees drifted:\n%s\nwant:\n%s", got, goldenSteps)
	}
}

const goldenDynamic = `materialize#1 flock
└─ group#2 flock [COUNT(answer.B) >= 2]
   └─ project#3 $1,$2,B
      └─ materialize#4 bind2 [decide on [$1 $2]]
         └─ join#5 baskets(B,$2) (+1 absorbed)
            ├─ build#6 baskets key(0)
            └─ materialize#7 bind1 [decide on [$1]]
               └─ scan#8 baskets(B,$1)`

// TestGoldenExplainDynamic pins the dynamic strategy's barrier plan: a
// Materialize decision barrier after every join where some parameters
// and all head columns are bound.
func TestGoldenExplainDynamic(t *testing.T) {
	plan, err := CompileDynamic(goldenDB(t), goldenFlock(t), &DynamicOptions{FixedOrder: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Explain(); got != goldenDynamic {
		t.Errorf("dynamic physical tree drifted:\n%s\nwant:\n%s", got, goldenDynamic)
	}
}
