package planner

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/eval"
	"queryflocks/internal/obs"
	"queryflocks/internal/physical"
	"queryflocks/internal/storage"
)

// This file implements the dynamic strategy of §4.4: choose a join order
// in advance, then decide whether to apply a FILTER step only after seeing
// each intermediate relation. "If the size of an intermediate relation is
// such that the average number of tuples per assignment of values to the
// parameters is significantly lower than it was at any previous step that
// computed a relation with the same set of parameters, then there is a
// good chance that many value-assignments will be eliminated on this
// step"; for a parameter set not previously encountered, the average is
// compared against the support threshold itself.
//
// A FILTER applied at an intermediate node is sound because the subgoals
// joined so far form a safe subquery of the full rule (the head variables
// must already be bound, which the implementation checks), so its
// per-assignment result upper-bounds the full query's (§3.1).

// DynamicOptions configures the dynamic evaluator.
type DynamicOptions struct {
	// FilterRatio triggers a filter at a fresh parameter set when the
	// average group size is below FilterRatio × threshold. Default 1.0
	// (the paper's "somewhat below 20").
	FilterRatio float64
	// RefilterRatio triggers a repeat filter on an already-seen parameter
	// set when the average group size has dropped below RefilterRatio ×
	// its previous best. Default 0.5 ("significantly lower").
	RefilterRatio float64
	// Order picks the join order fixed before execution begins.
	Order eval.OrderStrategy
	// FixedOrder, when non-nil, pins the join order (positive-atom
	// indices), overriding Order. Example 4.4 fixes the Fig. 8 tree this
	// way. Only meaningful for single-rule flocks.
	FixedOrder []int
	// Trace, when non-nil, records engine steps.
	Trace *eval.Trace
	// Workers is the worker count for the partitioned join, anti-join,
	// and group-by operators: 0 (the default) means one worker per CPU,
	// 1 forces the sequential paths, larger values are used as given.
	// Answers and Decisions are identical for every worker count.
	Workers int
	// Exec selects the streaming physical-plan executor (default), where
	// decisions run as hooks on Materialize barriers, or the legacy
	// step-by-step executor (eval.ExecMaterialize). Answers and Decisions
	// are identical.
	Exec eval.ExecMode
	// Ctx, when non-nil, cancels the evaluation cooperatively; both modes
	// observe it between joins and decision points and abort with
	// eval.ErrCanceled.
	Ctx context.Context
	// Limits bounds the evaluation (see eval.Limits); zero is unlimited,
	// and unhit limits never change answers or decisions.
	Limits eval.Limits
	// Gate, when non-nil, is a pre-resolved checkpoint shared by a larger
	// evaluation; when nil, one is derived from Ctx and Limits per
	// EvalDynamic call.
	Gate *eval.Gate
}

func (o *DynamicOptions) orDefault() DynamicOptions {
	out := DynamicOptions{FilterRatio: 1.0, RefilterRatio: 0.5, Order: eval.OrderGreedy}
	if o == nil {
		return out
	}
	if o.FilterRatio > 0 {
		out.FilterRatio = o.FilterRatio
	}
	if o.RefilterRatio > 0 {
		out.RefilterRatio = o.RefilterRatio
	}
	out.Order = o.Order
	out.FixedOrder = o.FixedOrder
	out.Trace = o.Trace
	out.Workers = o.Workers
	out.Exec = o.Exec
	out.Ctx = o.Ctx
	out.Limits = o.Limits
	out.Gate = o.Gate
	return out
}

// Decision records one filter/don't-filter choice made during dynamic
// evaluation (the paper's Example 4.4 narrative, machine-readable).
type Decision struct {
	// After names the join step the decision follows.
	After string
	// Params is the parameter set bound at this node.
	Params []datalog.Param
	// AvgGroup is the observed tuples-per-assignment ratio.
	AvgGroup float64
	// Filtered reports whether a FILTER step was applied.
	Filtered bool
	// RowsBefore and RowsAfter give the intermediate sizes around the
	// filter (equal when not filtered).
	RowsBefore, RowsAfter int
}

// String renders the decision.
func (d Decision) String() string {
	verdict := "skip"
	if d.Filtered {
		verdict = fmt.Sprintf("FILTER %d -> %d rows", d.RowsBefore, d.RowsAfter)
	}
	return fmt.Sprintf("after %s: params %v avg %.2f: %s", d.After, d.Params, d.AvgGroup, verdict)
}

// DynamicResult is the outcome of a dynamic evaluation.
type DynamicResult struct {
	Answer    *storage.Relation
	Decisions []Decision
}

// FilterCount returns how many FILTER reductions were applied.
func (r *DynamicResult) FilterCount() int {
	n := 0
	for _, d := range r.Decisions {
		if d.Filtered {
			n++
		}
	}
	return n
}

// String summarizes the run.
func (r *DynamicResult) String() string {
	var b strings.Builder
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "%s\n", d)
	}
	fmt.Fprintf(&b, "answer: %d rows", r.Answer.Len())
	return b.String()
}

// EvalDynamic evaluates the flock with dynamic filter selection. The
// flock's filter must be monotone (intermediate filtering is unsound
// otherwise). Multi-rule (union) flocks are evaluated rule-by-rule without
// intermediate filtering — per-rule pruning would be unsound because the
// union's support sums contributions across rules (§3.4) — and then
// filtered at the end.
func EvalDynamic(db *storage.Database, f *core.Flock, opts *DynamicOptions) (*DynamicResult, error) {
	o := opts.orDefault()
	if !f.Filter.Monotone() {
		return nil, fmt.Errorf("planner: dynamic filtering requires a monotone filter; %s is not", f.Filter)
	}
	if f.Filter.PassesEmpty() {
		return nil, fmt.Errorf("planner: filter %s accepts the empty result", f.Filter)
	}
	if err := f.CheckDatabase(db); err != nil {
		return nil, err
	}
	if o.Gate == nil {
		// Resolve once: views, every rule, and the final group-by share
		// one wall clock and budget.
		o.Gate = eval.NewGate(o.Ctx, o.Limits)
	}
	db, err := f.MaterializeViews(db, &core.EvalOptions{Order: o.Order, Trace: o.Trace, Workers: o.Workers, Gate: o.Gate})
	if err != nil {
		return nil, err
	}

	res := &DynamicResult{}
	if o.Exec == eval.ExecMaterialize {
		var ext *storage.Relation
		for _, r := range f.Query {
			part, err := evalRuleDynamic(db, f, r, &o, res, len(f.Query) == 1)
			if err != nil {
				return nil, err
			}
			if ext == nil {
				ext = part
			} else {
				for _, t := range part.Tuples() {
					ext.Insert(t)
				}
			}
		}
		res.Answer = core.GroupAndFilterWorkers(ext, len(f.Params), f.Filter, "flock", o.Workers)
		o.Gate.NoteLive(ext.Len() + res.Answer.Len())
		if err := o.Gate.CheckOutput(res.Answer.Len()); err != nil {
			return nil, err
		}
		if err := o.Gate.Check(); err != nil {
			return nil, err
		}
		if o.Trace != nil {
			// The final group-by holds the merged extended relation and the
			// answer live at once; record that through the shared peak gauge
			// so streaming comparisons see the baseline's true footprint.
			o.Trace.Collector().ObservePeak(ext.Len() + res.Answer.Len())
		}
		return res, nil
	}
	plan, err := compileDynamic(db, f, &o, res)
	if err != nil {
		return nil, err
	}
	ans, err := eval.RunPlan(db, plan, &eval.Options{Trace: o.Trace, Workers: o.Workers, Exec: o.Exec, Gate: o.Gate})
	if err != nil {
		return nil, err
	}
	res.Answer = ans
	return res, nil
}

// CompileDynamic returns the physical plan EvalDynamic would execute —
// the EXPLAIN rendering path. Decision barriers appear as Materialize
// nodes at every legal filter point; whether each one filters is decided
// at run time by its hook. Views must already be materialized into db;
// the plan is single-use (its hooks share decision state).
func CompileDynamic(db *storage.Database, f *core.Flock, opts *DynamicOptions) (*physical.Plan, error) {
	o := opts.orDefault()
	if !f.Filter.Monotone() {
		return nil, fmt.Errorf("planner: dynamic filtering requires a monotone filter; %s is not", f.Filter)
	}
	if f.Filter.PassesEmpty() {
		return nil, fmt.Errorf("planner: filter %s accepts the empty result", f.Filter)
	}
	return compileDynamic(db, f, &o, &DynamicResult{})
}

// filterGrouper adapts a core.Filter to the physical executor's Grouper
// (every core.GroupAcc satisfies the streaming subset of the contract).
type filterGrouper struct{ f core.Filter }

func (g filterGrouper) NewGroup() physical.GroupAcc { return g.f.NewGroup() }

// compileDynamic compiles the flock to one physical plan whose §4.4
// "filter now?" decisions run as hooks on Materialize barriers: the
// compiler places a barrier at every pipeline position where a FILTER
// step is legal (some parameters bound, all head columns bound), and the
// hook — executed when the barrier materializes — observes the actual
// intermediate relation, applies the avg-tuples-per-assignment rules,
// and swaps in the reduced relation when it decides to filter.
// Decisions append to res in pipeline order, exactly as the
// materializing path records them. Multi-rule flocks compile without
// barriers (per-rule pruning is unsound; see EvalDynamic).
func compileDynamic(db *storage.Database, f *core.Flock, o *DynamicOptions, res *DynamicResult) (*physical.Plan, error) {
	paramCols := make(map[string]datalog.Param, len(f.Params))
	for _, p := range f.Params {
		paramCols["$"+string(p)] = p
	}
	threshold := thresholdOf(f)
	allowFiltering := len(f.Query) == 1

	branches := make([]physical.Node, len(f.Query))
	for bi, r := range f.Query {
		order := o.FixedOrder
		if order == nil {
			var err error
			order, err = eval.JoinOrder(db, r, o.Order)
			if err != nil {
				return nil, err
			}
		} else if len(order) != len(r.PositiveAtoms()) {
			return nil, fmt.Errorf("planner: fixed order covers %d of %d atoms", len(order), len(r.PositiveAtoms()))
		}
		headCols := make([]string, 0, len(r.Head.Args))
		for _, t := range r.Head.Args {
			col, ok := termCol(t)
			if !ok {
				return nil, fmt.Errorf("planner: constant head argument %s", t)
			}
			headCols = append(headCols, col)
		}
		var barrier physical.BarrierFactory
		if allowFiltering {
			bestAvg := make(map[string]float64) // param-set key -> best avg seen
			barrier = func(_ int, atom string, cols []string) (physical.Hook, string) {
				boundParams, paramPos := boundParamsOfCols(cols, paramCols)
				if len(boundParams) == 0 {
					return nil, ""
				}
				if !allIn(cols, headCols) {
					// The subquery-so-far is unsafe as a FILTER query (its
					// head would be unbound); no legal filter step here.
					return nil, ""
				}
				hook := func(cur *storage.Relation) (*storage.Relation, error) {
					return decideFilter(cur, f, o, res, atom, boundParams, paramPos, headCols, threshold, bestAvg)
				}
				return hook, fmt.Sprintf("decide on %v", boundParams)
			}
		}
		node, err := physical.CompileRule(db, r, physical.RuleOpts{
			Order:   order,
			Out:     extendedTerms(f.Params, r),
			Barrier: barrier,
		})
		if err != nil {
			return nil, err
		}
		branches[bi] = node
	}
	in := branches[0]
	if len(branches) > 1 {
		un, err := physical.NewUnion(branches)
		if err != nil {
			return nil, err
		}
		in = un
	}
	group, err := physical.NewGroup("flock", len(f.Params), filterGrouper{f.Filter}, f.Filter.String(), in)
	if err != nil {
		return nil, err
	}
	return physical.NewPlan(physical.NewMaterialize("flock", group, nil, "", nil)), nil
}

// decideFilter is the runtime body of one decision barrier: the §4.4
// rules of evalRuleDynamic, observing the materialized intermediate.
func decideFilter(cur *storage.Relation, f *core.Flock, o *DynamicOptions, res *DynamicResult,
	atom string, boundParams []datalog.Param, paramPos []int, headCols []string,
	threshold int, bestAvg map[string]float64) (*storage.Relation, error) {

	rows := cur.Len()
	assigns := distinctOn(cur, paramPos)
	avg := 0.0
	if assigns > 0 {
		avg = float64(rows) / float64(assigns)
	}
	key := paramSetKey(boundParams)
	prev, seen := bestAvg[key]
	shouldFilter := false
	switch {
	case rows == 0:
		// Nothing to prune.
	case !seen:
		// Fresh parameter set: compare against the threshold (§4.4's
		// "important special case").
		shouldFilter = avg < o.FilterRatio*float64(threshold)
	default:
		shouldFilter = avg < o.RefilterRatio*prev
	}
	d := Decision{
		After:      atom,
		Params:     boundParams,
		AvgGroup:   avg,
		RowsBefore: rows,
		RowsAfter:  rows,
	}
	out := cur
	if shouldFilter {
		reduced, err := filterIntermediate(cur, paramPos, headCols, f.Filter)
		if err != nil {
			return nil, err
		}
		d.Filtered = true
		d.RowsAfter = reduced.Len()
		// The pipeline continues from the reduced relation, so the §4.4
		// "as it was at any previous step" baseline for this parameter
		// set is the post-filter average (see evalRuleDynamic).
		avg = 0
		if n := distinctOn(reduced, paramPos); n > 0 {
			avg = float64(reduced.Len()) / float64(n)
		}
		out = reduced
	}
	if !seen || avg < prev {
		bestAvg[key] = avg
	}
	if o.Trace != nil {
		o.Trace.Collector().Record(obs.Event{
			Op:       obs.OpDecision,
			Desc:     fmt.Sprintf("after %s on %v", atom, boundParams),
			RowsIn:   d.RowsBefore,
			RowsOut:  d.RowsAfter,
			Groups:   assigns,
			Filtered: d.Filtered,
		})
	}
	res.Decisions = append(res.Decisions, d)
	return out, nil
}

// evalRuleDynamic runs one rule through the executor, interleaving filter
// decisions, and returns the rule's extended answer (params + head).
func evalRuleDynamic(db *storage.Database, f *core.Flock, r *datalog.Rule,
	o *DynamicOptions, res *DynamicResult, allowFiltering bool) (*storage.Relation, error) {

	ex, err := eval.NewExecutor(db, r, o.Trace)
	if err != nil {
		return nil, err
	}
	ex.SetWorkers(o.Workers)
	ex.SetGate(o.Gate)
	order := o.FixedOrder
	if order == nil {
		var err error
		order, err = eval.JoinOrder(db, r, o.Order)
		if err != nil {
			return nil, err
		}
	} else if len(order) != len(r.PositiveAtoms()) {
		return nil, fmt.Errorf("planner: fixed order covers %d of %d atoms", len(order), len(r.PositiveAtoms()))
	}

	headCols := make([]string, 0, len(r.Head.Args))
	for _, t := range r.Head.Args {
		col, ok := termCol(t)
		if !ok {
			return nil, fmt.Errorf("planner: constant head argument %s", t)
		}
		headCols = append(headCols, col)
	}
	paramCols := make(map[string]datalog.Param, len(f.Params))
	for _, p := range f.Params {
		paramCols["$"+string(p)] = p
	}
	threshold := thresholdOf(f)
	bestAvg := make(map[string]float64) // param-set key -> best avg seen

	atoms := r.PositiveAtoms()
	for _, i := range order {
		if ex.Joined(i) { // absorbed into an earlier scan as a semi-join
			continue
		}
		if err := ex.JoinNext(i); err != nil {
			return nil, err
		}
		if !allowFiltering {
			continue
		}
		cur := ex.Current()
		boundParams, paramPos := boundParamsOf(cur, paramCols)
		if len(boundParams) == 0 {
			continue
		}
		if !allBound(cur, headCols) {
			// The subquery-so-far is unsafe as a FILTER query (its head
			// would be unbound); no legal filter step exists here.
			continue
		}
		rows := cur.Len()
		assigns := distinctOn(cur, paramPos)
		avg := 0.0
		if assigns > 0 {
			avg = float64(rows) / float64(assigns)
		}
		key := paramSetKey(boundParams)
		prev, seen := bestAvg[key]
		shouldFilter := false
		switch {
		case rows == 0:
			// Nothing to prune.
		case !seen:
			// Fresh parameter set: compare against the threshold (§4.4's
			// "important special case").
			shouldFilter = avg < o.FilterRatio*float64(threshold)
		default:
			shouldFilter = avg < o.RefilterRatio*prev
		}
		d := Decision{
			After:      atoms[i].String(),
			Params:     boundParams,
			AvgGroup:   avg,
			RowsBefore: rows,
			RowsAfter:  rows,
		}
		if shouldFilter {
			reduced, err := filterIntermediate(cur, paramPos, headCols, f.Filter)
			if err != nil {
				return nil, err
			}
			if err := ex.ReplaceCurrent(reduced); err != nil {
				return nil, err
			}
			d.Filtered = true
			d.RowsAfter = reduced.Len()
			// The pipeline continues from the reduced relation, so the §4.4
			// "as it was at any previous step" baseline for this parameter
			// set is the post-filter average. Remembering the pre-filter
			// average would compare later steps against a state that no
			// longer exists and refilter too eagerly.
			avg = 0
			if n := distinctOn(reduced, paramPos); n > 0 {
				avg = float64(reduced.Len()) / float64(n)
			}
		}
		if !seen || avg < prev {
			bestAvg[key] = avg
		}
		if o.Trace != nil {
			o.Trace.Collector().Record(obs.Event{
				Op:       obs.OpDecision,
				Desc:     fmt.Sprintf("after %s on %v", atoms[i], boundParams),
				RowsIn:   d.RowsBefore,
				RowsOut:  d.RowsAfter,
				Groups:   assigns,
				Filtered: d.Filtered,
			})
		}
		res.Decisions = append(res.Decisions, d)
	}
	return ex.Finish(extendedTerms(f.Params, r))
}

// extendedTerms builds the (params..., head args...) projection list.
func extendedTerms(params []datalog.Param, r *datalog.Rule) []datalog.Term {
	out := make([]datalog.Term, 0, len(params)+len(r.Head.Args))
	for _, p := range params {
		out = append(out, p)
	}
	return append(out, r.Head.Args...)
}

// boundParamsOf returns the flock parameters bound in the relation's
// columns (sorted) and their column positions (in the same order).
func boundParamsOf(rel *storage.Relation, paramCols map[string]datalog.Param) ([]datalog.Param, []int) {
	type bp struct {
		p   datalog.Param
		pos int
	}
	var found []bp
	for i, c := range rel.Columns() {
		if p, ok := paramCols[c]; ok {
			found = append(found, bp{p, i})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].p < found[j].p })
	params := make([]datalog.Param, len(found))
	pos := make([]int, len(found))
	for i, f := range found {
		params[i] = f.p
		pos[i] = f.pos
	}
	return params, pos
}

// boundParamsOfCols is boundParamsOf over a plain column list (the
// compile-time shape the barrier factory sees).
func boundParamsOfCols(cols []string, paramCols map[string]datalog.Param) ([]datalog.Param, []int) {
	type bp struct {
		p   datalog.Param
		pos int
	}
	var found []bp
	for i, c := range cols {
		if p, ok := paramCols[c]; ok {
			found = append(found, bp{p, i})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].p < found[j].p })
	params := make([]datalog.Param, len(found))
	pos := make([]int, len(found))
	for i, f := range found {
		params[i] = f.p
		pos[i] = f.pos
	}
	return params, pos
}

// allIn reports whether every want column appears in cols.
func allIn(cols, want []string) bool {
	for _, w := range want {
		ok := false
		for _, c := range cols {
			if c == w {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func allBound(rel *storage.Relation, cols []string) bool {
	for _, c := range cols {
		if rel.ColumnIndex(c) < 0 {
			return false
		}
	}
	return true
}

func distinctOn(rel *storage.Relation, pos []int) int {
	return rel.Index(pos).GroupCount()
}

// filterIntermediate applies a FILTER step to an intermediate binding
// relation: group by the bound parameters, count the (distinct) head
// tuples per group via the flock's filter, and keep only rows whose
// parameter assignment passes. It stays sequential regardless of the
// worker knob: unlike GroupAndFilterWorkers it must keep every binding
// row (not one row per group), and its input — an already filter-worthy
// intermediate — is usually small enough that partitioning would not pay.
func filterIntermediate(cur *storage.Relation, paramPos []int, headCols []string, filter core.Filter) (*storage.Relation, error) {
	headPos := make([]int, len(headCols))
	for i, c := range headCols {
		headPos[i] = cur.ColumnIndex(c)
	}
	type group struct {
		acc  core.GroupAcc
		done bool
	}
	groups := make(map[string]*group)
	// The filter must see *distinct* head tuples per group (set
	// semantics): dedupe (params, head) projections first.
	seen := make(map[string]struct{})
	for _, t := range cur.Tuples() {
		gkey := t.KeyOn(paramPos)
		hkey := gkey + "\x00" + t.KeyOn(headPos)
		g, ok := groups[gkey]
		if !ok {
			g = &group{acc: filter.NewGroup()}
			groups[gkey] = g
		}
		if g.done {
			continue
		}
		if _, dup := seen[hkey]; dup {
			continue
		}
		seen[hkey] = struct{}{}
		g.acc.Add(t.Project(headPos))
		if g.acc.Done() {
			g.done = true
		}
	}
	out := storage.NewRelation(cur.Name()+"_f", cur.Columns()...)
	for _, t := range cur.Tuples() {
		if g := groups[t.KeyOn(paramPos)]; g != nil && g.acc.Passes() {
			out.Insert(t)
		}
	}
	return out, nil
}
