package planner

import (
	"fmt"
	"math"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
)

// This file implements the full exponential search §4.3 grounds in the
// System-R tradition ("there is ample precedent for making exponential
// searches to find the best query plan... because queries tend to be
// small, exponential searches are often computationally feasible"): every
// subset of the candidate parameter sets is turned into a plan, each plan
// is costed under the independence model, and the cheapest wins.

// virtualRel carries the estimated shape of a not-yet-materialized step
// relation, so later steps' costs can account for the semi-join reduction.
type virtualRel struct {
	rows     float64
	distinct map[string]float64 // column term -> distinct estimate
}

// EstimatePlanCost predicts the total work of executing the plan: for
// each step, the sum of estimated intermediate-result sizes along a
// greedy join order of its query (so scans of large base relations are
// paid for, not just final outputs), with references to earlier steps
// modeled as virtual relations sized by their estimated survivor counts.
func (e *Estimator) EstimatePlanCost(p *core.Plan) float64 {
	threshold := thresholdOf(p.Flock)
	virt := make(map[string]virtualRel)
	total := 0.0
	for _, step := range p.Steps {
		stepRows := 0.0
		for _, r := range step.Query {
			stepRows += e.ruleWorkWith(r, virt)
		}
		total += stepRows

		// Estimate the step's survivor relation. The survivor fraction of
		// the step's stripped subquery scales the parameter-combination
		// count.
		combos := 1.0
		distinct := make(map[string]float64, len(step.Params))
		for _, prm := range step.Params {
			d := e.paramDistinct(p.Flock, prm)
			frac := e.paramSurvivorFrac(p.Flock, prm, threshold)
			surv := d * frac
			if surv < 1 {
				surv = 1
			}
			distinct["$"+string(prm)] = surv
			combos *= surv
		}
		virt[step.Name] = virtualRel{rows: combos, distinct: distinct}
	}
	return total
}

// paramDistinct estimates the number of candidate values of one parameter.
func (e *Estimator) paramDistinct(f *core.Flock, prm datalog.Param) float64 {
	best := math.Inf(1)
	for _, r := range f.Query {
		d := e.ParamCombos(r, []datalog.Param{prm})
		if d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) || best < 1 {
		return 1
	}
	return best
}

// paramSurvivorFrac estimates the fraction of a parameter's values that
// survive its minimal single-parameter subquery at the threshold; 1.0 when
// no such subquery exists.
func (e *Estimator) paramSurvivorFrac(f *core.Flock, prm datalog.Param, threshold int) float64 {
	sub, err := core.UnionSubquery(f.Query, []datalog.Param{prm})
	if err != nil {
		return 1
	}
	frac := e.SurvivorFraction(sub, []datalog.Param{prm}, threshold)
	if frac <= 0 {
		return 1.0 / math.Max(1, e.paramDistinct(f, prm)) // at least one survivor
	}
	return frac
}

// ruleWorkWith estimates the total work of evaluating r's body: the sum
// of intermediate sizes joining the positive atoms smallest-relation-
// first, under the independence model, with virtual step relations
// resolved from virt.
func (e *Estimator) ruleWorkWith(r *datalog.Rule, virt map[string]virtualRel) float64 {
	const (
		negSelectivity = 0.8
		cmpSelectivity = 0.5
	)
	// Mirror the engine's greedy order: start with the smallest relation,
	// then repeatedly take the smallest atom connected to the bound
	// columns, falling back to the smallest disconnected one.
	all := r.PositiveAtoms()
	size := func(a *datalog.Atom) float64 {
		if v, isVirtual := virt[a.Pred]; isVirtual {
			return v.rows
		}
		if rel, err := e.db.Source(a.Pred); err == nil {
			return float64(rel.Len())
		}
		return 0
	}
	cols := func(a *datalog.Atom) []string {
		var out []string
		for _, t := range a.Args {
			if c, ok := termCol(t); ok {
				out = append(out, c)
			}
		}
		return out
	}
	used := make([]bool, len(all))
	bound := make(map[string]bool)
	atoms := make([]*datalog.Atom, 0, len(all))
	for len(atoms) < len(all) {
		best, bestConn := -1, false
		for i, a := range all {
			if used[i] {
				continue
			}
			conn := len(atoms) == 0
			if !conn {
				for _, c := range cols(a) {
					if bound[c] {
						conn = true
						break
					}
				}
			}
			switch {
			case best < 0,
				conn && !bestConn,
				conn == bestConn && size(a) < size(all[best]):
				best, bestConn = i, conn
			}
		}
		used[best] = true
		atoms = append(atoms, all[best])
		for _, c := range cols(all[best]) {
			bound[c] = true
		}
	}

	rows := 1.0
	work := 0.0
	distinct := make(map[string]float64)
	for _, a := range atoms {
		var relRows float64
		colDistinct := func(i int) float64 { return 1 }
		if v, isVirtual := virt[a.Pred]; isVirtual {
			relRows = v.rows
			colDistinct = func(i int) float64 {
				col, ok := termCol(a.Args[i])
				if !ok {
					return 1
				}
				if d, have := v.distinct[col]; have {
					return d
				}
				return v.rows
			}
		} else {
			rel, err := e.db.Source(a.Pred)
			if err != nil {
				continue
			}
			relRows = float64(rel.Len())
			colDistinct = func(i int) float64 {
				return float64(rel.DistinctCount(rel.Columns()[i]))
			}
		}
		rows *= relRows
		for i, t := range a.Args {
			col, ok := termCol(t)
			if !ok {
				d := colDistinct(i)
				if d > 1 {
					rows /= d
				}
				continue
			}
			d := colDistinct(i)
			if d < 1 {
				d = 1
			}
			if prev, bound := distinct[col]; bound {
				rows /= math.Max(prev, d)
				distinct[col] = math.Min(prev, d)
			} else {
				distinct[col] = d
			}
		}
		if rows < 1 {
			rows = 1
		}
		work += rows
	}
	for range r.NegatedAtoms() {
		rows *= negSelectivity
	}
	for range r.Comparisons() {
		rows *= cmpSelectivity
	}
	return work + rows
}

// ExhaustiveOptions configures the exhaustive search.
type ExhaustiveOptions struct {
	// MaxSetSize bounds candidate parameter-set sizes (default 2).
	MaxSetSize int
	// MaxCandidates caps the number of candidate sets considered (the
	// search is 2^candidates); default 12.
	MaxCandidates int
}

func (o *ExhaustiveOptions) orDefault() ExhaustiveOptions {
	out := ExhaustiveOptions{MaxSetSize: 2, MaxCandidates: 12}
	if o == nil {
		return out
	}
	if o.MaxSetSize > 0 {
		out.MaxSetSize = o.MaxSetSize
	}
	if o.MaxCandidates > 0 {
		out.MaxCandidates = o.MaxCandidates
	}
	return out
}

// PlanExhaustive searches every subset of the candidate parameter sets,
// costs each induced plan with EstimatePlanCost, and returns the cheapest.
// The trivial plan (no pre-filters) participates, so the result is never
// worse than no filtering under the model.
func PlanExhaustive(f *core.Flock, est *Estimator, opts *ExhaustiveOptions) (*core.Plan, error) {
	o := opts.orDefault()
	candidates := candidateSets(f, o.MaxSetSize)
	if len(candidates) > o.MaxCandidates {
		candidates = candidates[:o.MaxCandidates]
	}
	var best *core.Plan
	bestCost := math.Inf(1)
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var sets [][]datalog.Param
		for i, set := range candidates {
			if mask&(1<<i) != 0 {
				sets = append(sets, set)
			}
		}
		plan, err := PlanWithParamSets(f, sets)
		if err != nil {
			continue // some combination may be invalid; skip it
		}
		cost := est.EstimatePlanCost(plan)
		if cost < bestCost {
			best, bestCost = plan, cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("planner: exhaustive search found no valid plan")
	}
	return best, nil
}
