package planner

import (
	"math"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// exactSurvivorFraction computes the ground truth by evaluating the
// subquery as a flock at the full threshold.
func exactSurvivorFraction(t *testing.T, db *storage.Database, sub datalog.Union, params []datalog.Param, threshold int) float64 {
	t.Helper()
	spec := datalog.FilterSpec{
		Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(int64(threshold)),
	}
	flock, err := core.New(sub, spec)
	if err != nil {
		t.Fatal(err)
	}
	survivors, err := flock.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(db)
	denom := est.sampledParamCombos(db, sub, params)
	if denom == 0 {
		t.Fatal("no candidates")
	}
	return float64(survivors.Len()) / denom
}

func TestSampledSurvivorFractionSingleParam(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 8_000, Items: 800, MeanSize: 8, Skew: 1.0, Seed: 9,
	})
	est := NewEstimator(db)
	f := paper.MarketBasket(40)
	sub, err := core.UnionSubquery(f.Query, []datalog.Param{"1"})
	if err != nil {
		t.Fatal(err)
	}
	exact := exactSurvivorFraction(t, db, sub, []datalog.Param{"1"}, 40)
	sampled, err := est.SampledSurvivorFraction(sub, []datalog.Param{"1"}, 40, &SampleOptions{Fraction: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 || exact >= 1 {
		t.Fatalf("degenerate exact fraction %g", exact)
	}
	// Entity sampling at 25% has real variance around the threshold; the
	// estimate must land within a factor of ~2 of the truth.
	if sampled < exact/2 || sampled > exact*2 {
		t.Errorf("sampled %g vs exact %g (off by more than 2x)", sampled, exact)
	}
}

// TestSampledBeatsModelOnJoinSubquery is the ablation DESIGN.md calls out:
// on Example 3.2's join subquery (3), the closed-form model guesses from
// an exponential assumption, while sampling evaluates the actual join —
// sampling must land closer to the truth.
func TestSampledBeatsModelOnJoinSubquery(t *testing.T) {
	db := workload.Medical(example44Config())
	est := NewEstimator(db)
	f := paper.Medical(20)
	// Subquery (3): exhibits + diagnoses + NOT causes, params {s}.
	sub3 := datalog.Union{f.Query[0].DeleteSubgoals(1)} // drop treatments
	params := []datalog.Param{"s"}

	exact := exactSurvivorFraction(t, db, sub3, params, 20)
	model := est.SurvivorFraction(sub3, params, 20)
	sampled, err := est.SampledSurvivorFraction(sub3, params, 20, &SampleOptions{Fraction: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	errModel := math.Abs(model - exact)
	errSampled := math.Abs(sampled - exact)
	t.Logf("exact %.4f model %.4f (err %.4f) sampled %.4f (err %.4f)",
		exact, model, errModel, sampled, errSampled)
	if errSampled > errModel {
		t.Errorf("sampling (err %.4f) should beat the closed-form model (err %.4f)", errSampled, errModel)
	}
}

func TestSampledSurvivorFractionFractionOne(t *testing.T) {
	// Fraction 1.0 = no sampling: the estimate must equal the exact value.
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 1_000, Items: 200, MeanSize: 6, Skew: 1.0, Seed: 2,
	})
	est := NewEstimator(db)
	f := paper.MarketBasket(10)
	sub, _ := core.UnionSubquery(f.Query, []datalog.Param{"1"})
	exact := exactSurvivorFraction(t, db, sub, []datalog.Param{"1"}, 10)
	got, err := est.SampledSurvivorFraction(sub, []datalog.Param{"1"}, 10, &SampleOptions{Fraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 1e-9 {
		t.Errorf("fraction 1.0: got %g, want exact %g", got, exact)
	}
}

func TestPlanStaticWithSampling(t *testing.T) {
	db := workload.Medical(example44Config())
	est := NewEstimator(db)
	f := paper.Medical(20)
	plan, err := PlanStatic(f, est, &StaticOptions{Sampling: &SampleOptions{Fraction: 0.3, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("sampling-guided plan differs from direct")
	}
	// The symptom filter must still be selected on this data.
	found := false
	for _, s := range plan.Steps {
		if s.Name == "ok_s" {
			found = true
		}
	}
	if !found {
		t.Errorf("sampling-guided planner skipped the symptom filter:\n%s", plan)
	}
}

func TestSampledSurvivorFractionErrors(t *testing.T) {
	est := NewEstimator(storage.NewDatabase())
	f := paper.MarketBasket(10)
	sub, _ := core.UnionSubquery(f.Query, []datalog.Param{"1"})
	if _, err := est.SampledSurvivorFraction(sub, []datalog.Param{"1"}, 10, nil); err == nil {
		t.Error("missing relations should error")
	}
}
