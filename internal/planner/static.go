package planner

import (
	"fmt"
	"sort"
	"strings"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
)

// This file implements §4.3's first restricted search: "select some sets of
// parameters; for each selected set S, select a subset of the subgoals of
// the original query that is safe and includes exactly the parameters of
// S; use this subquery to define a relation R_S that restricts the
// parameters S; finally, at the last step, use the original query together
// with all the subgoals formed from the relations R_S."

// StaticOptions configures the static planner.
type StaticOptions struct {
	// SurvivorCutoff: include a filter step only if its estimated fraction
	// of surviving parameter assignments is below this value. Default 0.5.
	SurvivorCutoff float64
	// MaxSetSize bounds the parameter-set sizes considered (default 2:
	// singletons and pairs, matching the paper's examples).
	MaxSetSize int
	// ForceSets, when non-nil, bypasses the cost model and builds exactly
	// these filter steps (used by benches to compare specific plans).
	ForceSets [][]datalog.Param
	// Sampling, when non-nil, estimates survivor fractions by evaluating
	// each candidate subquery on a sampled database (§4.4's "substantial
	// gathering of statistics") instead of the closed-form model —
	// slower, far more accurate on join subqueries.
	Sampling *SampleOptions
}

func (o *StaticOptions) orDefault() StaticOptions {
	out := StaticOptions{SurvivorCutoff: 0.5, MaxSetSize: 2}
	if o == nil {
		return out
	}
	if o.SurvivorCutoff > 0 {
		out.SurvivorCutoff = o.SurvivorCutoff
	}
	if o.MaxSetSize > 0 {
		out.MaxSetSize = o.MaxSetSize
	}
	out.ForceSets = o.ForceSets
	out.Sampling = o.Sampling
	return out
}

// PlanWithParamSets builds the §4.3-heuristic-1 plan with one FILTER step
// per given parameter set, in order. Each step uses the minimal safe
// subquery per rule for its set (§3.4) and references every prior step
// whose parameters are a subset of its own; the final step references all
// steps. Passing no sets yields the trivial single-step plan.
func PlanWithParamSets(f *core.Flock, sets [][]datalog.Param) (*core.Plan, error) {
	var steps []core.FilterStep
	for _, set := range sets {
		sub, err := core.UnionSubquery(f.Query, set)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		var refs []core.FilterStep
		for _, prev := range steps {
			if isParamSubset(prev.Params, set) {
				refs = append(refs, prev)
			}
		}
		steps = append(steps, core.FilterStep{
			Name:   stepName(set),
			Params: sortedParams(set),
			Query:  core.WithStepRefs(sub, refs...),
		})
	}
	steps = append(steps, core.FinalStep(f, "ok", steps...))
	return core.NewPlan(f, steps)
}

// PlanSharedFilter builds the symmetric a-priori plan of §3.1 / footnote 3:
// one FILTER step computes the survivor set for the canonical parameter,
// and the final step references that single relation once per flock
// parameter (renamed). This halves the pre-filtering work for symmetric
// flocks like the market-basket pair query; plan validation rejects the
// construction when the flock is not actually symmetric in the renamed
// parameters.
func PlanSharedFilter(f *core.Flock, canonical datalog.Param) (*core.Plan, error) {
	sub, err := core.UnionSubquery(f.Query, []datalog.Param{canonical})
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	step := core.FilterStep{
		Name:   stepName([]datalog.Param{canonical}),
		Params: []datalog.Param{canonical},
		Query:  sub,
	}
	refs := make([]core.StepRef, 0, len(f.Params))
	for _, p := range f.Params {
		refs = append(refs, core.StepRef{Step: step, Args: []datalog.Param{p}})
	}
	final := core.FinalStepRefs(f, "ok", refs...)
	return core.NewPlan(f, []core.FilterStep{step, final})
}

// PlanStatic chooses filter steps by cost estimation and builds the plan.
// Candidate sets are the parameter sets admitting safe subqueries, up to
// MaxSetSize, considered smallest-first (so pair steps can reuse singleton
// steps, as in the a-priori construction). A set is selected when its
// estimated survivor fraction is below SurvivorCutoff.
func PlanStatic(f *core.Flock, est *Estimator, opts *StaticOptions) (*core.Plan, error) {
	o := opts.orDefault()
	if o.ForceSets != nil {
		return PlanWithParamSets(f, o.ForceSets)
	}
	threshold := thresholdOf(f)
	var chosen [][]datalog.Param
	for _, set := range candidateSets(f, o.MaxSetSize) {
		b, err := est.EstimateFilter(f, set, threshold)
		if err != nil {
			continue // no safe subquery for this set in some rule
		}
		frac := b.SurvivorFrac
		if o.Sampling != nil {
			if sampled, err := est.SampledSurvivorFraction(b.Subquery, set, threshold, o.Sampling); err == nil {
				frac = sampled
			}
		}
		if frac < o.SurvivorCutoff {
			chosen = append(chosen, set)
		}
	}
	return PlanWithParamSets(f, chosen)
}

// candidateSets returns parameter sets (size <= maxSize, excluding the
// full set when it equals the whole flock only if... the full set is a
// legitimate candidate — Example 3.2's subquery (4) filters ($s,$m)
// pairs), ordered smallest-first for a-priori-style reuse.
func candidateSets(f *core.Flock, maxSize int) [][]datalog.Param {
	// Intersect the per-rule availability: a set is a candidate only if
	// every rule has a safe subquery with exactly that set.
	counts := make(map[string][]datalog.Param)
	occur := make(map[string]int)
	for _, r := range f.Query {
		for _, set := range core.ParamSets(r) {
			if len(set) > maxSize {
				continue
			}
			k := paramSetKey(set)
			counts[k] = set
			occur[k]++
		}
	}
	var out [][]datalog.Param
	for k, set := range counts {
		if occur[k] == len(f.Query) {
			out = append(out, set)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return paramSetKey(out[i]) < paramSetKey(out[j])
	})
	return out
}

func sortedParams(set []datalog.Param) []datalog.Param {
	out := append([]datalog.Param(nil), set...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func isParamSubset(sub, super []datalog.Param) bool {
	m := make(map[datalog.Param]bool, len(super))
	for _, p := range super {
		m[p] = true
	}
	for _, p := range sub {
		if !m[p] {
			return false
		}
	}
	return true
}

func paramSetKey(set []datalog.Param) string {
	parts := make([]string, len(set))
	for i, p := range sortedParams(set) {
		parts[i] = string(p)
	}
	return strings.Join(parts, "\x00")
}

// stepName derives a deterministic relation name for a parameter set,
// e.g. ok_s, ok_m, ok_m_s.
func stepName(set []datalog.Param) string {
	parts := make([]string, len(set))
	for i, p := range sortedParams(set) {
		parts[i] = string(p)
	}
	return "ok_" + strings.Join(parts, "_")
}
