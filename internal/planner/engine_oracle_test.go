package planner

import (
	"os"
	"path/filepath"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

// TestDiskEngineMatchesMemoryCorpus is the storage-engine property test:
// for every program in examples/flocks, the same data directory opened
// with the disk engine (relations streamed from sorted segments) must be
// bit-identical to the memory engine (relations materialized at open) —
// same answer tuples in the same order (Dump equality), and for the
// dynamic strategy the same decision sequence — across strategies
// direct/static/dynamic and worker counts 1, 2 and 8.
func TestDiskEngineMatchesMemoryCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "flocks")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".flock" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			f, err := core.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			base := corpusDB(t, name)
			dataDir := t.TempDir()
			if err := storage.CreateDir(dataDir, base); err != nil {
				t.Fatal(err)
			}
			memDB, _, err := storage.OpenDir(dataDir, storage.EngineMemory)
			if err != nil {
				t.Fatal(err)
			}
			diskDB, _, err := storage.OpenDir(dataDir, storage.EngineDisk)
			if err != nil {
				t.Fatal(err)
			}

			variants := map[string]func(*storage.Database, int) (*sweepAnswer, error){
				"direct": func(db *storage.Database, workers int) (*sweepAnswer, error) {
					rel, err := f.Eval(db, &core.EvalOptions{Workers: workers})
					return &sweepAnswer{rel: rel}, err
				},
				"static": func(db *storage.Database, workers int) (*sweepAnswer, error) {
					plan, err := PlanStatic(f, NewEstimator(db), nil)
					if err != nil {
						return nil, err
					}
					res, err := plan.Execute(db, &core.EvalOptions{Workers: workers})
					if err != nil {
						return nil, err
					}
					return &sweepAnswer{rel: res.Answer}, nil
				},
				"dynamic": func(db *storage.Database, workers int) (*sweepAnswer, error) {
					res, err := EvalDynamic(db, f, &DynamicOptions{Workers: workers})
					if err != nil {
						return nil, err
					}
					return &sweepAnswer{rel: res.Answer, decisions: res.Decisions}, nil
				},
			}
			for vname, run := range variants {
				t.Run(vname, func(t *testing.T) {
					var firstDump string
					for _, w := range []int{1, 2, 8} {
						mem, err := run(memDB, w)
						if err != nil {
							t.Fatalf("memory workers=%d: %v", w, err)
						}
						disk, err := run(diskDB, w)
						if err != nil {
							t.Fatalf("disk workers=%d: %v", w, err)
						}
						if got, want := disk.rel.Dump(), mem.rel.Dump(); got != want {
							t.Fatalf("workers=%d: disk answer not bit-identical to memory\ndisk:\n%s\nmemory:\n%s", w, got, want)
						}
						if len(disk.decisions) != len(mem.decisions) {
							t.Fatalf("workers=%d: %d disk decisions vs %d memory", w, len(disk.decisions), len(mem.decisions))
						}
						for i := range disk.decisions {
							if disk.decisions[i].String() != mem.decisions[i].String() {
								t.Fatalf("workers=%d decision %d differs:\ndisk: %s\nmemory: %s",
									w, i, disk.decisions[i], mem.decisions[i])
							}
						}
						if firstDump == "" {
							firstDump = disk.rel.Dump()
						} else if got := disk.rel.Dump(); got != firstDump {
							t.Fatalf("workers=%d: disk answer order differs between worker counts\ngot:\n%s\nwant:\n%s", w, got, firstDump)
						}
					}
					// The round-trip itself must be lossless: answers over the
					// reopened directory equal answers over the generator's
					// in-memory database.
					orig, err := run(base, 1)
					if err != nil {
						t.Fatalf("original db: %v", err)
					}
					if got, want := firstDump, orig.rel.Dump(); got != want {
						t.Fatalf("data-dir answer differs from original database\ndata-dir:\n%s\noriginal:\n%s", got, want)
					}
				})
			}
		})
	}
}
