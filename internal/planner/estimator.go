// Package planner searches for good query-flock plans. It provides
//
//   - a System-R-style cost model over catalog statistics (§4.2's "the
//     general theory of cost-based optimization applies here"),
//   - the static search heuristics of §4.3: per-parameter-set filter
//     selection (heuristic 1, generalizing a-priori for item pairs) and
//     the level-wise / cascade construction (heuristic 2, generalizing
//     a-priori for k-item sets, including the Fig. 7 n+1-step plan), and
//   - the dynamic strategy of §4.4, which has "no analog in conventional
//     query optimization": it decides whether to apply a FILTER step only
//     after seeing the sizes of intermediate relations.
package planner

import (
	"fmt"
	"math"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// Estimator predicts evaluation costs and filter benefits from catalog
// statistics, under the classic independence assumptions: join on a shared
// column divides the cross product by the larger distinct count, and
// columns are independent.
type Estimator struct {
	db    *storage.Database
	stats *storage.Stats
}

// NewEstimator builds an estimator over the database's current statistics.
func NewEstimator(db *storage.Database) *Estimator {
	return &Estimator{db: db, stats: storage.NewStats(db)}
}

// Stats exposes the underlying statistics view.
func (e *Estimator) Stats() *storage.Stats { return e.stats }

// RuleRows estimates the number of binding tuples produced by joining all
// positive subgoals of r (before projection). Negated subgoals and
// comparisons are credited a fixed selectivity each.
func (e *Estimator) RuleRows(r *datalog.Rule) float64 {
	const (
		negSelectivity = 0.8
		cmpSelectivity = 0.5
	)
	rows := 1.0
	distinct := make(map[string]float64) // term column -> current distinct estimate
	for _, a := range r.PositiveAtoms() {
		rel, err := e.db.Source(a.Pred)
		if err != nil {
			continue // unknown relations contribute nothing; CheckDatabase reports them
		}
		rows *= float64(rel.Len())
		for i, t := range a.Args {
			col, ok := termCol(t)
			if !ok {
				// A constant argument is a selection on the column.
				d := float64(rel.DistinctCount(rel.Columns()[i]))
				if d > 1 {
					rows /= d
				}
				continue
			}
			d := float64(rel.DistinctCount(rel.Columns()[i]))
			if d < 1 {
				d = 1
			}
			if prev, bound := distinct[col]; bound {
				rows /= math.Max(prev, d)
				distinct[col] = math.Min(prev, d)
			} else {
				distinct[col] = d
			}
		}
		if rows < 1 {
			rows = 1
		}
	}
	for range r.NegatedAtoms() {
		rows *= negSelectivity
	}
	for range r.Comparisons() {
		rows *= cmpSelectivity
	}
	return rows
}

// UnionRows sums RuleRows across the union's members.
func (e *Estimator) UnionRows(u datalog.Union) float64 {
	total := 0.0
	for _, r := range u {
		total += e.RuleRows(r)
	}
	return total
}

// ParamCombos estimates the number of distinct value combinations of the
// given parameters available to a rule: the product over parameters of the
// smallest distinct count among the columns where the parameter occurs
// positively.
func (e *Estimator) ParamCombos(r *datalog.Rule, params []datalog.Param) float64 {
	total := 1.0
	for _, p := range params {
		best := math.Inf(1)
		for _, a := range r.PositiveAtoms() {
			rel, err := e.db.Source(a.Pred)
			if err != nil {
				continue
			}
			for i, t := range a.Args {
				if q, ok := t.(datalog.Param); ok && q == p {
					d := float64(rel.DistinctCount(rel.Columns()[i]))
					if d < best {
						best = d
					}
				}
			}
		}
		if math.IsInf(best, 1) || best < 1 {
			best = 1
		}
		total *= best
	}
	return total
}

// AvgGroupSize estimates the average number of query-result tuples per
// parameter assignment for the rule — the quantity §4.4 compares against
// the support threshold to decide whether filtering is worthwhile.
func (e *Estimator) AvgGroupSize(r *datalog.Rule, params []datalog.Param) float64 {
	combos := e.ParamCombos(r, params)
	if combos < 1 {
		combos = 1
	}
	return e.RuleRows(r) / combos
}

// SurvivorFraction estimates the fraction of parameter assignments that
// survive the support threshold under the given subquery. For the common
// single-atom, single-parameter subquery (e.g. okS: symptoms in >= 20
// exhibits tuples) the estimate is exact, computed from the relation's
// group-size distribution; otherwise it falls back to a smooth heuristic
// in the average group size.
func (e *Estimator) SurvivorFraction(sub datalog.Union, params []datalog.Param, threshold int) float64 {
	if len(sub) == 1 && len(params) == 1 {
		r := sub[0]
		atoms := r.PositiveAtoms()
		if len(atoms) == 1 && len(r.Body) == 1 {
			rel, err := e.db.Source(atoms[0].Pred)
			if err == nil {
				for i, t := range atoms[0].Args {
					if q, ok := t.(datalog.Param); ok && q == params[0] {
						return e.stats.SurvivorFraction(atoms[0].Pred, rel.Columns()[i], threshold)
					}
				}
			}
		}
	}
	// Heuristic: with average group size g against threshold t, model the
	// group-size distribution as exponential with mean g; the survivor
	// fraction is then exp(-t/g).
	total := 0.0
	for _, r := range sub {
		g := e.AvgGroupSize(r, params)
		if g <= 0 {
			continue
		}
		frac := math.Exp(-float64(threshold) / g)
		total += frac
	}
	if total > 1 {
		total = 1
	}
	return total
}

// FilterBenefit summarizes the estimated effect of one candidate FILTER
// step.
type FilterBenefit struct {
	Params       []datalog.Param
	Subquery     datalog.Union
	Cost         float64 // estimated rows materialized by the step's query
	AvgGroup     float64 // estimated tuples per parameter assignment
	SurvivorFrac float64 // estimated fraction of assignments kept
}

// String renders the benefit estimate.
func (b FilterBenefit) String() string {
	return fmt.Sprintf("params %v: cost %.0f rows, avg group %.2f, survivors %.1f%%",
		b.Params, b.Cost, b.AvgGroup, 100*b.SurvivorFrac)
}

// EstimateFilter evaluates a candidate parameter set for the flock,
// choosing the minimal safe subquery per rule (§3.4).
func (e *Estimator) EstimateFilter(f *core.Flock, params []datalog.Param, threshold int) (FilterBenefit, error) {
	sub, err := core.UnionSubquery(f.Query, params)
	if err != nil {
		return FilterBenefit{}, err
	}
	avg := 0.0
	for _, r := range sub {
		avg += e.AvgGroupSize(r, params)
	}
	return FilterBenefit{
		Params:       params,
		Subquery:     sub,
		Cost:         e.UnionRows(sub),
		AvgGroup:     avg,
		SurvivorFrac: e.SurvivorFraction(sub, params, threshold),
	}, nil
}

func termCol(t datalog.Term) (string, bool) {
	switch x := t.(type) {
	case datalog.Var:
		return string(x), true
	case datalog.Param:
		return "$" + string(x), true
	default:
		return "", false
	}
}

// thresholdOf extracts an integer support threshold from the flock's
// filter for estimation purposes (SUM-style thresholds round up).
func thresholdOf(f *core.Flock) int {
	v := f.Filter.Spec().Threshold
	switch v.Kind() {
	case storage.KindInt:
		return int(v.AsInt())
	case storage.KindFloat:
		return int(math.Ceil(v.AsFloat()))
	default:
		return 1
	}
}
