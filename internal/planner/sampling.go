package planner

import (
	"fmt"
	"math"
	"math/rand"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/storage"
)

// This file implements sampling-based statistics, §4.4's suggestion that
// "we may want to do substantial gathering of statistics to support the
// filter/don't filter decision". The closed-form independence model in
// estimator.go is exact only for single-atom single-parameter subqueries;
// for joins (e.g. Example 3.2's subquery (3), or the pair subquery (4))
// it falls back to a distributional guess. Sampling instead evaluates the
// candidate subquery on a Bernoulli sample of the *grouping* entities and
// scales the threshold, giving a consistent estimate of the survivor
// fraction at a fraction of the cost.

// SampleOptions configures sampling-based estimation.
type SampleOptions struct {
	// Fraction of head-entity values to keep (0 < f <= 1). Default 0.1.
	Fraction float64
	// Seed drives the sample; fixed default for reproducibility.
	Seed int64
	// Workers is the worker count for evaluating the subquery over the
	// sample (0 = per CPU, 1 = sequential). The estimate is identical for
	// every worker count.
	Workers int
}

func (o *SampleOptions) orDefault() SampleOptions {
	out := SampleOptions{Fraction: 0.1, Seed: 1}
	if o == nil {
		return out
	}
	if o.Fraction > 0 && o.Fraction <= 1 {
		out.Fraction = o.Fraction
	}
	out.Seed = o.Seed
	out.Workers = o.Workers
	return out
}

// SampledSurvivorFraction estimates the fraction of parameter assignments
// whose subquery result reaches the threshold, by evaluating the subquery
// over a sampled database and comparing each group against the scaled
// threshold.
//
// The sample is taken on the subquery's head-variable values (the counted
// entities, e.g. patients): every base relation containing a head variable
// keeps only tuples whose value hashes into the sample. Sampling entities
// rather than tuples preserves the join structure — a sampled patient
// keeps all of their exhibits and treatments rows — so each group's count
// scales by ~Fraction and the support comparison stays unbiased apart
// from small-count noise.
func (e *Estimator) SampledSurvivorFraction(sub datalog.Union, params []datalog.Param, threshold int, opts *SampleOptions) (float64, error) {
	o := opts.orDefault()
	if err := sub.Validate(); err != nil {
		return 0, err
	}
	// Collect the head variables (per rule; names may differ across rules
	// but positions align).
	sampleDB, err := e.sampleByHeadEntities(sub, o)
	if err != nil {
		return 0, err
	}
	scaled := int(math.Ceil(float64(threshold) * o.Fraction))
	if scaled < 1 {
		scaled = 1
	}
	spec := datalog.FilterSpec{
		Agg: datalog.AggCount, Op: datalog.Ge, Threshold: storage.Int(int64(scaled)),
	}
	flock, err := core.New(sub, spec)
	if err != nil {
		return 0, fmt.Errorf("planner: sampling subquery: %w", err)
	}
	survivors, err := flock.Eval(sampleDB, &core.EvalOptions{Workers: o.Workers})
	if err != nil {
		return 0, err
	}
	// Denominator: candidate assignments in the sample (distinct values of
	// the parameters over their positive positions).
	denom := e.sampledParamCombos(sampleDB, sub, params)
	if denom == 0 {
		return 0, nil
	}
	frac := float64(survivors.Len()) / denom
	if frac > 1 {
		frac = 1
	}
	return frac, nil
}

// sampleByHeadEntities builds a database where relations mentioning a head
// variable keep only tuples whose head-entity value falls in the sample.
func (e *Estimator) sampleByHeadEntities(sub datalog.Union, o SampleOptions) (*storage.Database, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	//lint:ignore DL005 decide Normalize()s the memo key before every access
	keep := make(map[storage.Value]bool)
	decide := func(v storage.Value) bool {
		// Normalize the memo key: Int(1) and Float(1) are one head
		// entity, and sampling them independently would bias the
		// estimate by keeping half of an entity's tuples.
		v = v.Normalize()
		if kept, seen := keep[v]; seen {
			return kept
		}
		kept := rng.Float64() < o.Fraction
		keep[v] = kept
		return kept
	}

	// For each relation, find the argument positions bound to head
	// variables in any rule.
	headPos := make(map[string]map[int]bool)
	for _, r := range sub {
		headVars := make(map[datalog.Term]bool)
		for _, t := range r.Head.Args {
			headVars[t] = true
		}
		for _, a := range r.PositiveAtoms() {
			for i, t := range a.Args {
				if headVars[t] {
					if headPos[a.Pred] == nil {
						headPos[a.Pred] = make(map[int]bool)
					}
					headPos[a.Pred][i] = true
				}
			}
		}
	}

	out := storage.NewDatabase()
	for _, r := range sub {
		for _, a := range r.PositiveAtoms() {
			if out.Has(a.Pred) {
				continue
			}
			rel, err := e.db.Relation(a.Pred)
			if err != nil {
				return nil, fmt.Errorf("planner: %w", err)
			}
			positions := headPos[a.Pred]
			if len(positions) == 0 {
				out.Add(rel)
				continue
			}
			sampled := storage.NewRelation(rel.Name(), rel.Columns()...)
			for _, t := range rel.Tuples() {
				ok := true
				for p := range positions {
					if !decide(t[p]) {
						ok = false
						break
					}
				}
				if ok {
					sampled.Insert(t)
				}
			}
			out.Add(sampled)
		}
		// Negated atoms' relations pass through unsampled (they test
		// membership, not counts).
		for _, a := range r.NegatedAtoms() {
			if !out.Has(a.Pred) {
				rel, err := e.db.Relation(a.Pred)
				if err != nil {
					return nil, fmt.Errorf("planner: %w", err)
				}
				out.Add(rel)
			}
		}
	}
	return out, nil
}

// sampledParamCombos counts candidate parameter assignments in the sampled
// database: the product over parameters of the distinct values at the
// parameter's positive positions (minimum across occurrences).
func (e *Estimator) sampledParamCombos(db *storage.Database, sub datalog.Union, params []datalog.Param) float64 {
	total := 1.0
	for _, prm := range params {
		best := math.Inf(1)
		for _, r := range sub {
			for _, a := range r.PositiveAtoms() {
				rel, err := db.Relation(a.Pred)
				if err != nil {
					continue
				}
				for i, t := range a.Args {
					if q, ok := t.(datalog.Param); ok && q == prm {
						d := float64(rel.DistinctCount(rel.Columns()[i]))
						if d < best {
							best = d
						}
					}
				}
			}
		}
		if math.IsInf(best, 1) {
			return 0
		}
		total *= best
	}
	return total
}
