package planner

import (
	"fmt"
	"testing"

	"queryflocks/internal/paper"
	"queryflocks/internal/workload"
)

// TestDynamicWorkersMatchSequential runs the §4.4 dynamic strategy across
// the worker sweep on a medical workload large enough to cross the
// partitioning thresholds. Not just the answer but the full decision
// narrative must be invariant: the partitioned operators reproduce the
// sequential intermediate relations exactly, so every filter/skip choice —
// which depends on intermediate sizes — is the same at every worker count.
func TestDynamicWorkersMatchSequential(t *testing.T) {
	db := workload.Medical(workload.DefaultMedical(2_000, 17))
	f := paper.Medical(5)

	base, err := EvalDynamic(db, f, &DynamicOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Decisions) == 0 {
		t.Fatal("no decisions recorded at workers=1")
	}
	for _, w := range []int{0, 2, 3, 8} {
		res, err := EvalDynamic(db, f, &DynamicOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Answer.Equal(base.Answer) {
			t.Fatalf("workers=%d: answer %d rows, want %d", w, res.Answer.Len(), base.Answer.Len())
		}
		if got, want := fmt.Sprintf("%v", res.Decisions), fmt.Sprintf("%v", base.Decisions); got != want {
			t.Fatalf("workers=%d decisions diverge:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestDynamicParallelRaceSoak hammers the dynamic strategy with more
// workers than cores on a workload that repeatedly crosses the parallel
// join and group-by paths. Its real assertion is `go test -race ./...`:
// any shared mutable state in the partitioned operators surfaces here.
func TestDynamicParallelRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("race soak skipped with -short")
	}
	db := workload.Medical(workload.DefaultMedical(1_500, 13))
	f := paper.Medical(4)
	want, err := EvalDynamic(db, f, &DynamicOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		res, err := EvalDynamic(db, f, &DynamicOptions{Workers: 8})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !res.Answer.Equal(want.Answer) {
			t.Fatalf("round %d: answer changed under workers=8", round)
		}
	}
}
