package planner

import (
	"context"
	"runtime"
	"testing"
	"time"

	"queryflocks/internal/core"
	"queryflocks/internal/eval"
	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// sweepWorkers is the worker grid of the streaming-vs-materializing
// oracle sweep: sequential, two-way, one per CPU, and oversubscribed.
func sweepWorkers() []int {
	n := runtime.NumCPU()
	return []int{1, 2, n, 2 * n}
}

// sweepAnswer pairs a strategy's answer with any dynamic decisions.
type sweepAnswer struct {
	rel       *storage.Relation
	decisions []Decision
}

// TestStreamingMatchesMaterializingSweep is the executor oracle: for
// every strategy (direct, static plan, level-wise plan, dynamic) the
// streaming physical executor must produce answers identical to the
// legacy materializing executor at every worker count — and, for the
// dynamic strategy, the same decision sequence. Streaming runs must
// additionally agree with each other tuple-for-tuple in order (Dump
// equality), the determinism contract of the partitioned operators.
//
// The whole sweep runs twice: once unbounded and once under a live
// context plus generous wall/tuple/row limits, because unhit budgets
// must never change any strategy's answer in either executor.
func TestStreamingMatchesMaterializingSweep(t *testing.T) {
	cases := []struct {
		name   string
		ctx    context.Context
		limits eval.Limits
	}{
		{name: "unlimited"},
		{name: "generous limits", ctx: context.Background(),
			limits: eval.Limits{Wall: time.Hour, MaxTuples: 1 << 30, MaxRows: 1 << 30}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runOracleSweep(t, c.ctx, c.limits)
		})
	}
}

func runOracleSweep(t *testing.T, ctx context.Context, limits eval.Limits) {
	db := workload.Baskets(workload.BasketConfig{
		Baskets: 120, Items: 12, MeanSize: 4, Skew: 1.0, Seed: 7,
	})
	f := paper.MarketBasket(3)

	evalOpts := func(workers int, exec eval.ExecMode) *core.EvalOptions {
		return &core.EvalOptions{Workers: workers, Exec: exec, Ctx: ctx, Limits: limits}
	}
	runPlan := func(mk func() (*core.Plan, error)) func(int, eval.ExecMode) (*sweepAnswer, error) {
		return func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
			plan, err := mk()
			if err != nil {
				return nil, err
			}
			res, err := plan.Execute(db, evalOpts(workers, exec))
			if err != nil {
				return nil, err
			}
			return &sweepAnswer{rel: res.Answer}, nil
		}
	}
	variants := map[string]func(int, eval.ExecMode) (*sweepAnswer, error){
		"direct": func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
			rel, err := f.Eval(db, evalOpts(workers, exec))
			return &sweepAnswer{rel: rel}, err
		},
		"static": runPlan(func() (*core.Plan, error) {
			return PlanStatic(f, NewEstimator(db), nil)
		}),
		"levelwise": runPlan(func() (*core.Plan, error) {
			return PlanLevelwise(f, 0)
		}),
		"dynamic": func(workers int, exec eval.ExecMode) (*sweepAnswer, error) {
			res, err := EvalDynamic(db, f, &DynamicOptions{Workers: workers, Exec: exec, Ctx: ctx, Limits: limits})
			if err != nil {
				return nil, err
			}
			return &sweepAnswer{rel: res.Answer, decisions: res.Decisions}, nil
		},
	}

	want, err := f.EvalNaive(db)
	if err != nil {
		t.Fatal(err)
	}

	for name, run := range variants {
		t.Run(name, func(t *testing.T) {
			var streamDump string
			for _, w := range sweepWorkers() {
				stream, err := run(w, eval.ExecStream)
				if err != nil {
					t.Fatalf("stream workers=%d: %v", w, err)
				}
				mat, err := run(w, eval.ExecMaterialize)
				if err != nil {
					t.Fatalf("materialize workers=%d: %v", w, err)
				}
				if !stream.rel.Equal(want) {
					t.Fatalf("workers=%d: streaming answer differs from naive oracle\ngot:\n%s", w, stream.rel.Dump())
				}
				if !stream.rel.Equal(mat.rel) {
					t.Fatalf("workers=%d: streaming and materializing answers differ\nstream:\n%s\nmaterialize:\n%s",
						w, stream.rel.Dump(), mat.rel.Dump())
				}
				if len(stream.decisions) != len(mat.decisions) {
					t.Fatalf("workers=%d: %d streaming decisions vs %d materializing",
						w, len(stream.decisions), len(mat.decisions))
				}
				for i := range stream.decisions {
					if stream.decisions[i].String() != mat.decisions[i].String() {
						t.Fatalf("workers=%d decision %d differs:\nstream: %s\nmaterialize: %s",
							w, i, stream.decisions[i], mat.decisions[i])
					}
				}
				if streamDump == "" {
					streamDump = stream.rel.Dump()
				} else if got := stream.rel.Dump(); got != streamDump {
					t.Fatalf("workers=%d: streaming answer order differs between worker counts\ngot:\n%s\nwant:\n%s",
						w, got, streamDump)
				}
			}
		})
	}
}
