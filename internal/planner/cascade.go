package planner

import (
	"fmt"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
)

// This file implements §4.3's second restricted search: "select a list of
// subsets of the subgoals of the original query that form safe queries;
// turn each subquery into a FILTER step, first adding to Q any subgoals
// that can be formed from the result of a prior step". The canonical
// instance is the Fig. 7 cascade for the Fig. 6 path flock: step k filters
// nodes by the first k subgoals, each step semi-joining with the previous
// step's survivors.

// PlanCascade builds the Fig. 7-style prefix cascade for a single-rule
// flock: for k = 1..n-1, a step keeping the first k body subgoals (skipped
// when the prefix is unsafe or binds no parameter), each referencing the
// nearest prior step whose parameters are a subset of its own; the final
// step keeps everything. depth bounds the number of pre-filter steps
// (depth < 1 yields the trivial plan).
func PlanCascade(f *core.Flock, depth int) (*core.Plan, error) {
	if len(f.Query) != 1 {
		return nil, fmt.Errorf("planner: cascade plans require a single-rule flock; this one has %d rules", len(f.Query))
	}
	r := f.Query[0]
	n := len(r.Body)
	var steps []core.FilterStep
	for k := 1; k < n && len(steps) < depth; k++ {
		var drop []int
		for i := k; i < n; i++ {
			drop = append(drop, i)
		}
		sub := r.DeleteSubgoals(drop...)
		if !datalog.IsSafe(sub) {
			continue
		}
		params := sub.Params()
		if len(params) == 0 {
			continue
		}
		q := datalog.Union{sub}
		// Reference the most recent prior step usable from this prefix.
		for i := len(steps) - 1; i >= 0; i-- {
			if isParamSubset(steps[i].Params, params) {
				q = core.WithStepRefs(q, steps[i])
				break
			}
		}
		steps = append(steps, core.FilterStep{
			Name:   fmt.Sprintf("ok%d", len(steps)),
			Params: params,
			Query:  q,
		})
	}
	var refs []core.FilterStep
	if len(steps) > 0 {
		refs = steps[len(steps)-1:] // the final step semi-joins the last survivors
	}
	steps = append(steps, core.FinalStep(f, "ok", refs...))
	return core.NewPlan(f, steps)
}

// PlanLevelwise builds the generalized a-priori plan of §4.3 heuristic 2
// for k-item-set-style flocks: one FILTER step per parameter subset of
// size 1, then size 2, ... up to maxSize (excluding the full parameter
// set, which the mandatory final step covers), each step referencing all
// prior steps over subsets of its parameters. Parameter sets lacking a
// safe subquery in some rule are skipped.
func PlanLevelwise(f *core.Flock, maxSize int) (*core.Plan, error) {
	if maxSize <= 0 || maxSize >= len(f.Params) {
		maxSize = len(f.Params) - 1
	}
	var sets [][]datalog.Param
	for _, set := range candidateSets(f, maxSize) {
		if len(set) == len(f.Params) {
			continue
		}
		sets = append(sets, set)
	}
	return PlanWithParamSets(f, sets)
}
