package planner

import (
	"math"
	"testing"

	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/workload"
)

func TestEstimatePlanCostOrdersPlansSensibly(t *testing.T) {
	// On Example 4.4-shaped data (rare symptoms, popular medicines) the
	// model must cost the okS plan below the trivial plan, and the okM
	// plan above the okS plan.
	db := workload.Medical(example44Config())
	est := NewEstimator(db)
	f := paper.Medical(20)

	cost := func(sets [][]datalog.Param) float64 {
		plan, err := PlanWithParamSets(f, sets)
		if err != nil {
			t.Fatal(err)
		}
		return est.EstimatePlanCost(plan)
	}
	trivial := cost(nil)
	okS := cost([][]datalog.Param{{"s"}})
	okM := cost([][]datalog.Param{{"m"}})
	if !(okS < trivial) {
		t.Errorf("okS cost %.0f should beat trivial %.0f", okS, trivial)
	}
	if !(okS < okM) {
		t.Errorf("okS cost %.0f should beat okM %.0f", okS, okM)
	}
	for _, c := range []float64{trivial, okS, okM} {
		if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
			t.Fatalf("degenerate cost %v", c)
		}
	}
}

func TestPlanExhaustiveMedical(t *testing.T) {
	db := workload.Medical(example44Config())
	est := NewEstimator(db)
	f := paper.Medical(20)
	plan, err := PlanExhaustive(f, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen plan must include the symptom filter on this data.
	found := false
	for _, s := range plan.Steps {
		if s.Name == "ok_s" {
			found = true
		}
	}
	if !found {
		t.Errorf("exhaustive search skipped the symptom filter:\n%s", plan)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("exhaustive plan differs from direct")
	}
}

func TestPlanExhaustiveNeverWorseThanTrivialUnderModel(t *testing.T) {
	db := medicalDB()
	est := NewEstimator(db)
	f := paper.Medical(5)
	plan, err := PlanExhaustive(f, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	trivial, err := PlanWithParamSets(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.EstimatePlanCost(plan) > est.EstimatePlanCost(trivial) {
		t.Error("exhaustive choice costs more than the trivial plan under its own model")
	}
}

func TestPlanExhaustiveUnionFlock(t *testing.T) {
	db := workload.Web(workload.DefaultWeb(200, 3))
	est := NewEstimator(db)
	f := paper.WebWords(3)
	plan, err := PlanExhaustive(f, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("exhaustive union plan differs from direct")
	}
}

func TestExhaustiveOptionsCaps(t *testing.T) {
	db := medicalDB()
	est := NewEstimator(db)
	f := paper.Medical(5)
	plan, err := PlanExhaustive(f, est, &ExhaustiveOptions{MaxSetSize: 1, MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With one candidate there are two plans (with/without); both legal.
	if len(plan.Steps) > 2 {
		t.Errorf("capped search produced %d steps", len(plan.Steps))
	}
}
