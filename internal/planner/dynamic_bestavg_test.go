package planner

import (
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

// TestDynamicRecordsPostFilterAverage is the regression for the §4.4
// baseline bookkeeping: after a FILTER step fires, the pipeline continues
// from the reduced relation, so the remembered "average tuples per
// assignment" for that parameter set must be the post-filter average.
// The buggy version recorded the pre-filter average, so the baseline
// described a relation that no longer existed and later steps compared
// against a number far below the pipeline's actual state.
//
// The instance is built so the two behaviours produce different decision
// sequences at the third join:
//
//	after r($m,B):  36 rows / 10 assignments, avg 3.6 >= 3    -> skip
//	after s(B,C):   16 rows / 10 assignments, avg 1.6 < 1.8   -> FILTER
//	                reduced to 8 rows / 2 assignments, avg 4.0
//	after u(C,D):    2 rows /  2 assignments, avg 1.0
//
// With the post-filter baseline 3.6 (step 1's average survives as best),
// 1.0 < 0.5*3.6 and the third step re-filters. With the buggy pre-filter
// baseline 1.6, 1.0 >= 0.5*1.6 and the third step skips.
func TestDynamicRecordsPostFilterAverage(t *testing.T) {
	r := storage.NewRelation("r", "M", "B")
	for m := 1; m <= 8; m++ {
		for j := 1; j <= 3; j++ {
			r.InsertValues(storage.Int(int64(m)), storage.Int(int64(m*10+j)))
		}
	}
	for m := 9; m <= 10; m++ {
		for j := 1; j <= 6; j++ {
			r.InsertValues(storage.Int(int64(m)), storage.Int(int64(m*10+j)))
		}
	}
	s := storage.NewRelation("s", "B", "C")
	for m := 1; m <= 8; m++ {
		s.InsertValues(storage.Int(int64(m*10+1)), storage.Int(int64(m*10+1)))
	}
	for m := 9; m <= 10; m++ {
		for j := 1; j <= 4; j++ {
			s.InsertValues(storage.Int(int64(m*10+j)), storage.Int(int64(m*10+j)))
		}
	}
	u := storage.NewRelation("u", "C", "D")
	u.InsertValues(storage.Int(91), storage.Int(1))
	u.InsertValues(storage.Int(101), storage.Int(1))
	db := storage.NewDatabase()
	db.Add(r)
	db.Add(s)
	db.Add(u)

	f := core.MustParse(`
QUERY:
answer(B) :- r($m,B) AND s(B,C) AND u(C,D)
FILTER:
COUNT(answer.B) >= 3`)

	res, err := EvalDynamic(db, f, &DynamicOptions{
		FixedOrder:    []int{0, 1, 2},
		FilterRatio:   1.0,
		RefilterRatio: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 3 {
		t.Fatalf("expected 3 decisions, got %d:\n%s", len(res.Decisions), res)
	}
	wantFiltered := []bool{false, true, true}
	for i, d := range res.Decisions {
		if d.Filtered != wantFiltered[i] {
			t.Errorf("decision %d (%s): filtered=%v, want %v", i, d.After, d.Filtered, wantFiltered[i])
		}
	}

	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Error("dynamic answer differs from direct evaluation")
	}
}
