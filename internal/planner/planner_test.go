package planner

import (
	"fmt"
	"strings"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
	"queryflocks/internal/paper"
	"queryflocks/internal/storage"
	"queryflocks/internal/workload"
)

// medicalDB returns a modest planted-side-effect database whose threshold
// support of 5 keeps tests fast.
func medicalDB() *storage.Database {
	cfg := workload.DefaultMedical(600, 17)
	return workload.Medical(cfg)
}

func TestEstimatorBasics(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{Baskets: 500, Items: 80, MeanSize: 5, Skew: 1.0, Seed: 3})
	est := NewEstimator(db)
	f := paper.MarketBasket(5)

	rows := est.RuleRows(f.Query[0])
	if rows <= 0 {
		t.Fatalf("RuleRows = %g", rows)
	}
	combos := est.ParamCombos(f.Query[0], f.Params)
	if combos < 100 { // ~80*80 under independence
		t.Errorf("ParamCombos = %g", combos)
	}
	avg := est.AvgGroupSize(f.Query[0], f.Params)
	if avg <= 0 {
		t.Errorf("AvgGroupSize = %g", avg)
	}

	// Exact survivor fraction for a single-atom single-param subquery must
	// match direct measurement.
	sub, err := core.UnionSubquery(f.Query, []datalog.Param{"1"})
	if err != nil {
		t.Fatal(err)
	}
	frac := est.SurvivorFraction(sub, []datalog.Param{"1"}, 5)
	exact := est.Stats().SurvivorFraction("baskets", "Item", 5)
	if frac != exact {
		t.Errorf("SurvivorFraction = %g, want exact %g", frac, exact)
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("survivor fraction %g not informative for skewed data", frac)
	}
}

func TestEstimateFilterBenefit(t *testing.T) {
	db := medicalDB()
	est := NewEstimator(db)
	f := paper.Medical(5)
	b, err := est.EstimateFilter(f, []datalog.Param{"s"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cost <= 0 || b.SurvivorFrac < 0 || b.SurvivorFrac > 1 {
		t.Errorf("benefit = %+v", b)
	}
	if !strings.Contains(b.String(), "params") {
		t.Errorf("String = %q", b)
	}
	if _, err := est.EstimateFilter(f, []datalog.Param{"zz"}, 5); err == nil {
		t.Error("unknown param should error")
	}
}

func TestPlanWithParamSetsVariantsAgree(t *testing.T) {
	db := medicalDB()
	f := paper.Medical(5)
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string][][]datalog.Param{
		"none":      nil,
		"okS":       {{"s"}},
		"okM":       {{"m"}},
		"both":      {{"s"}, {"m"}},
		"pair":      {{"s", "m"}},
		"all three": {{"s"}, {"m"}, {"s", "m"}},
	}
	for name, sets := range variants {
		plan, err := PlanWithParamSets(f, sets)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Answer.Equal(direct) {
			t.Errorf("%s: answer differs from direct\n%s", name, plan)
		}
	}
}

// example44Config shapes the medical data to Example 4.4's narrative:
// rare symptoms (patients-per-symptom below threshold 20), few popular
// medicines (patients-per-medicine far above it).
func example44Config() workload.MedicalConfig {
	return workload.MedicalConfig{
		Patients:            800,
		Diseases:            20,
		Symptoms:            400,
		Medicines:           4,
		SymptomsPerDisease:  4,
		MedicinesPerDisease: 1,
		ExhibitRate:         0.5,
		NoiseRate:           0.6,
		SideEffects:         []workload.SideEffect{{Medicine: 1, Symptom: 399, Rate: 0.4}},
		Seed:                23,
	}
}

func TestPlanStaticChoosesUsefulFilters(t *testing.T) {
	// On data with many rare symptoms and few popular medicines, the cost
	// model must select the symptom filter and not the medicine filter —
	// the paper's Example 3.2 intuition.
	db := workload.Medical(example44Config())
	est := NewEstimator(db)
	f := paper.Medical(20)
	plan, err := PlanStatic(f, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	rendered := plan.String()
	if !strings.Contains(rendered, "ok_s($s)") {
		t.Errorf("static plan did not select the symptom filter:\n%s", rendered)
	}
	if strings.Contains(rendered, "ok_m($m)") {
		t.Errorf("static plan selected the unproductive medicine filter:\n%s", rendered)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("static plan answer differs from direct")
	}
}

func TestPlanStaticForceSets(t *testing.T) {
	f := paper.Medical(5)
	db := medicalDB()
	est := NewEstimator(db)
	plan, err := PlanStatic(f, est, &StaticOptions{ForceSets: [][]datalog.Param{{"m"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "ok_m($m)") {
		t.Errorf("forced set missing:\n%s", plan)
	}
	if len(plan.Steps) != 2 {
		t.Errorf("steps = %d, want 2", len(plan.Steps))
	}
}

func TestPlanStaticCutoffMonotone(t *testing.T) {
	// A stricter survivor cutoff can only select a subset of the filter
	// steps a looser one selects.
	db := medicalDB()
	est := NewEstimator(db)
	f := paper.Medical(5)
	strict, err := PlanStatic(f, est, &StaticOptions{SurvivorCutoff: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := PlanStatic(f, est, &StaticOptions{SurvivorCutoff: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Steps) > len(loose.Steps) {
		t.Errorf("strict cutoff chose %d steps, loose %d", len(strict.Steps), len(loose.Steps))
	}
	strictNames := make(map[string]bool)
	for _, s := range strict.Steps {
		strictNames[s.Name] = true
	}
	for name := range strictNames {
		found := false
		for _, s := range loose.Steps {
			if s.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("strict step %q missing from loose plan", name)
		}
	}
}

func TestPlanSharedFilter(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{Baskets: 600, Items: 200, MeanSize: 5, Skew: 1.0, Seed: 12})
	f := paper.MarketBasket(5)
	plan, err := PlanSharedFilter(f, "1")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d, want 2 (one shared filter + final)", len(plan.Steps))
	}
	rendered := plan.String()
	if !strings.Contains(rendered, "ok_1($1)") || !strings.Contains(rendered, "ok_1($2)") {
		t.Errorf("final step should reference ok_1 for both params:\n%s", rendered)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("shared-filter plan differs from direct")
	}

	// Asymmetric flock: construction must fail validation.
	if _, err := PlanSharedFilter(paper.Medical(5), "s"); err == nil {
		t.Error("shared filter on the asymmetric medical flock should fail")
	}
}

func TestPlanCascadePathFlock(t *testing.T) {
	db := workload.Graph(workload.DefaultGraph(800, 5))
	f := paper.Path(2, 5)
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	for depth := 0; depth <= 3; depth++ {
		plan, err := PlanCascade(f, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		wantSteps := depth + 1
		if depth > 2 { // only 2 proper prefixes exist for n=2 (3 subgoals)
			wantSteps = 3
		}
		if len(plan.Steps) != wantSteps {
			t.Errorf("depth %d: steps = %d, want %d", depth, len(plan.Steps), wantSteps)
		}
		res, err := plan.Execute(db, nil)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if !res.Answer.Equal(direct) {
			t.Errorf("depth %d: cascade answer differs", depth)
		}
	}
	// Deeper steps only shrink the candidate set.
	plan, _ := PlanCascade(f, 3)
	res, _ := plan.Execute(db, nil)
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].Rows > res.Steps[i-1].Rows {
			t.Errorf("cascade step %d grew: %v", i, res.Steps)
		}
	}
}

func TestPlanCascadeRejectsUnions(t *testing.T) {
	f := paper.WebWords(5)
	if _, err := PlanCascade(f, 2); err == nil {
		t.Error("cascade on a union flock should error")
	}
}

func TestPlanLevelwise(t *testing.T) {
	db := medicalDB()
	f := paper.Medical(5)
	plan, err := PlanLevelwise(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton steps for $m and $s, then the final step.
	if len(plan.Steps) != 3 {
		t.Errorf("levelwise steps = %d:\n%s", len(plan.Steps), plan)
	}
	res, err := plan.Execute(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("levelwise answer differs")
	}
}

func TestEvalDynamicMedical(t *testing.T) {
	db := medicalDB()
	f := paper.Medical(5)
	res, err := EvalDynamic(db, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Fatalf("dynamic answer differs:\n%s", res)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	if !strings.Contains(res.String(), "answer:") {
		t.Errorf("summary = %q", res)
	}
}

// TestDynamicExample44Narrative reproduces Example 4.4 with the Fig. 8
// join order pinned (exhibits, then treatments, then diagnoses): the
// evaluator must FILTER on $s after the exhibits leaf (patients-per-
// symptom below the threshold) and must consider ($s,$m) at the first
// interior node.
func TestDynamicExample44Narrative(t *testing.T) {
	db := workload.Medical(example44Config())
	f := paper.Medical(20)
	// Positive atoms in body order: 0 exhibits, 1 treatments, 2 diagnoses.
	res, err := EvalDynamic(db, f, &DynamicOptions{FixedOrder: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 3 {
		t.Fatalf("decisions = %d:\n%s", len(res.Decisions), res)
	}
	first := res.Decisions[0]
	if paramSetKey(first.Params) != "s" || !first.Filtered {
		t.Errorf("after exhibits: want FILTER on $s, got %s", first)
	}
	second := res.Decisions[1]
	if paramSetKey(second.Params) != "m\x00s" {
		t.Errorf("after treatments: want ($m,$s) decision, got %s", second)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("dynamic answer differs from direct")
	}
}

// TestDynamicGreedySkipsMedicineLeaf is the other half of the Example 4.4
// narrative: when the join order starts at the treatments leaf, the
// patients-per-medicine ratio is far above the threshold and the
// evaluator must skip filtering $m there.
func TestDynamicGreedySkipsMedicineLeaf(t *testing.T) {
	db := workload.Medical(example44Config())
	f := paper.Medical(20)
	// treatments first (index 1), then diagnoses, then exhibits.
	res, err := EvalDynamic(db, f, &DynamicOptions{FixedOrder: []int{1, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Decisions[0]
	if paramSetKey(first.Params) != "m" || first.Filtered {
		t.Errorf("after treatments: want skip on $m, got %s", first)
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("dynamic answer differs from direct")
	}
}

func TestEvalDynamicUnionFallsBack(t *testing.T) {
	db := workload.Web(workload.DefaultWeb(150, 9))
	f := paper.WebWords(3)
	res, err := EvalDynamic(db, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterCount() != 0 {
		t.Errorf("union flock must not be filtered mid-rule; got %d filters", res.FilterCount())
	}
	direct, _ := f.Eval(db, nil)
	if !res.Answer.Equal(direct) {
		t.Error("dynamic union answer differs from direct")
	}
}

func TestEvalDynamicRejectsNonMonotone(t *testing.T) {
	f := core.MustParse(`
QUERY:
answer(B,W) :- baskets(B,$1) AND importance(B,W)
FILTER:
MIN(answer.W) >= 3`)
	db := workload.Baskets(workload.BasketConfig{Baskets: 10, Items: 5, MeanSize: 2, Skew: 0, Seed: 1})
	if err := workload.AttachWeights(db, 5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := EvalDynamic(db, f, nil); err == nil || !strings.Contains(err.Error(), "monotone") {
		t.Errorf("expected monotonicity error, got %v", err)
	}
}

func TestDynamicRatioExtremes(t *testing.T) {
	db := medicalDB()
	f := paper.Medical(5)
	direct, _ := f.Eval(db, nil)

	// Ratio near zero: never filter; still correct.
	res, err := EvalDynamic(db, f, &DynamicOptions{FilterRatio: 1e-12, RefilterRatio: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterCount() != 0 {
		t.Errorf("tiny ratio filtered %d times", res.FilterCount())
	}
	if !res.Answer.Equal(direct) {
		t.Error("no-filter dynamic differs")
	}

	// Huge ratio: filter at every eligible node; still correct.
	res, err = EvalDynamic(db, f, &DynamicOptions{FilterRatio: 1e12, RefilterRatio: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterCount() == 0 {
		t.Error("huge ratio never filtered")
	}
	if !res.Answer.Equal(direct) {
		t.Error("aggressive dynamic differs")
	}
}

func TestDynamicMatchesDirectOnWeighted(t *testing.T) {
	db := workload.Baskets(workload.BasketConfig{Baskets: 400, Items: 60, MeanSize: 4, Skew: 1.0, Seed: 77})
	if err := workload.AttachWeights(db, 5, 78); err != nil {
		t.Fatal(err)
	}
	f := paper.WeightedBasket(12)
	res, err := EvalDynamic(db, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Error("dynamic weighted answer differs from direct")
	}
}

// TestDynamicRefilterSameParamSet exercises §4.4's other trigger: a
// repeat FILTER when a later intermediate with the SAME parameter set has
// an average group size "significantly lower than it was at any previous
// step". The Fig. 6 path flock visits parameter set {$1} at every join;
// on a dead-end-heavy graph the ratio collapses along the path.
func TestDynamicRefilterSameParamSet(t *testing.T) {
	// A layered graph where the second join is highly selective: 25 "big"
	// roots fan out to 25 successors each and 25 "small" roots to 5 each
	// (average 15 < threshold 20, so the fresh {$1} set filters), and only
	// every 10th successor continues onward (rows per root collapse to ~3,
	// far below 0.9x the previous ratio, so {$1} re-filters).
	arc := storage.NewRelation("arc", "From", "To")
	node := func(kind string, i, j int) storage.Value {
		return storage.Str(fmt.Sprintf("%s_%d_%d", kind, i, j))
	}
	for r := 0; r < 50; r++ {
		fanout := 25
		if r >= 25 {
			fanout = 5
		}
		for j := 0; j < fanout; j++ {
			arc.Insert(storage.Tuple{node("r", r, 0), node("x", r, j)})
			if j%10 == 0 {
				arc.Insert(storage.Tuple{node("x", r, j), node("y", r, j)})
			}
		}
	}
	db := storage.NewDatabase()
	db.Add(arc)
	f := paper.Path(2, 20)
	res, err := EvalDynamic(db, f, &DynamicOptions{
		FixedOrder:    []int{0, 1, 2},
		FilterRatio:   1.0,
		RefilterRatio: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expect at least two filters over the same param set {$1}: one at
	// the first arc (fresh set) and another when the dead ends slash the
	// ratio.
	filters := 0
	for _, d := range res.Decisions {
		if paramSetKey(d.Params) == "1" && d.Filtered {
			filters++
		}
	}
	if filters < 2 {
		t.Fatalf("expected a re-filter on {$1}; decisions:\n%s", res)
	}
	direct, err := f.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(direct) {
		t.Error("refiltering changed the answer")
	}
}

// TestDynamicUnionRandomized cross-checks the dynamic evaluator on the
// union flock across random web workloads (it must fall back soundly).
func TestDynamicUnionRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := workload.Web(workload.WebConfig{
			Docs: 100 + int(seed)*40, Vocab: 300, TitleWords: 3,
			AnchorsPerDoc: 2, AnchorWords: 2, Skew: 0.8, Seed: seed,
		})
		f := paper.WebWords(2 + int(seed)%3)
		res, err := EvalDynamic(db, f, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		direct, err := f.Eval(db, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Answer.Equal(direct) {
			t.Fatalf("seed %d: dynamic union differs", seed)
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{After: "exhibits(P,$s)", Params: []datalog.Param{"s"}, AvgGroup: 3.5, Filtered: true, RowsBefore: 100, RowsAfter: 40}
	s := d.String()
	for _, want := range []string{"exhibits", "3.50", "FILTER", "100", "40"} {
		if !strings.Contains(s, want) {
			t.Errorf("decision %q missing %q", s, want)
		}
	}
	d.Filtered = false
	if !strings.Contains(d.String(), "skip") {
		t.Errorf("unfiltered decision %q", d.String())
	}
}
