// Package analysis implements flockvet: static analysis of flock programs.
// It layers a diagnostics framework — stable codes, severities, source
// positions, machine-readable output — over the semantic checks the paper
// implies: safety of subqueries (§3.2–§3.3), redundancy via containment
// mappings (§3.1, [CM77]), union-branch subsumption (§3.4), plan legality
// (§4.2), and monotonicity of filter conditions (§5).
//
// Every diagnostic carries a stable QFxxx code so front-ends (the flockvet
// CLI, the flockql REPL, the flockd service) and tests can match on the
// kind of problem rather than on message text. docs/LANGUAGE.md catalogues
// the codes.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"queryflocks/internal/datalog"
)

// Severity ranks a diagnostic. Errors mean the program is rejected (it
// cannot be evaluated, or its answer would be infinite); warnings flag
// constructs that evaluate but are probably not what the author meant or
// that defeat optimizations; infos are advisory.
type Severity int

// The severities, ordered so that higher is worse.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns "info", "warning", or "error".
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes "info"/"warning"/"error".
func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("analysis: unknown severity %q", str)
	}
	return nil
}

// Diagnostic is one finding: a stable code, a severity, an optional source
// position, and a human-readable message.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Message  string   `json:"message"`
}

// String renders "file:line:col: severity: message [QFxxx]"; the position
// prefix is omitted for diagnostics without one.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" || d.Line > 0 {
		file := d.File
		if file == "" {
			file = "<input>"
		}
		if d.Line > 0 {
			fmt.Fprintf(&b, "%s:%d:%d: ", file, d.Line, d.Col)
		} else {
			fmt.Fprintf(&b, "%s: ", file)
		}
	}
	fmt.Fprintf(&b, "%s: %s [%s]", d.Severity, d.Message, d.Code)
	return b.String()
}

// at attaches a source position to a diagnostic under construction.
func (d Diagnostic) at(pos datalog.Pos) Diagnostic {
	if pos.IsValid() {
		d.Line, d.Col = pos.Line, pos.Col
	}
	return d
}

// Sort orders diagnostics by position (line, then column), then by
// severity (errors first), then by code — a stable presentation order for
// reports and golden files.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Code < b.Code
	})
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Render formats diagnostics one per line.
func Render(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
