package analysis

import (
	"queryflocks/internal/core"
	"queryflocks/internal/datalog"
)

// This file holds the semantic passes. Each maps one class of flock-program
// problem to a stable QFxxx code; docs/LANGUAGE.md catalogues them with
// minimal offending programs.

// passViews checks the view discipline of the §2.2 extension (QF015):
// views must be parameter-free, have variable-only heads, and form a
// non-recursive sequence (each view references only base relations or
// views defined strictly earlier).
func passViews(a *analyzer) {
	defined := make(map[string]bool)
	heads := make(map[string]bool)
	for _, v := range a.fs.Views {
		heads[v.Head.Pred] = true
	}
	for _, v := range a.fs.Views {
		if ps := v.Params(); len(ps) > 0 {
			a.report("QF015", SevError, v.Position(),
				"view %s mentions parameter %s; views must be parameter-free", v.Head, ps[0])
		}
		for _, t := range v.Head.Args {
			if _, isVar := t.(datalog.Var); !isVar {
				a.report("QF015", SevError, v.Position(),
					"view %s head arguments must be variables", v.Head)
				break
			}
		}
		for _, pred := range v.Predicates() {
			if pred == v.Head.Pred {
				a.report("QF015", SevError, v.Position(), "view %s is recursive", v.Head)
			} else if heads[pred] && !defined[pred] {
				a.report("QF015", SevError, v.Position(),
					"view %s references %q before it is defined", v.Head, pred)
			}
		}
		defined[v.Head.Pred] = true
	}
}

// passSafety reports every violation of the §3.3 safety conditions (QF002)
// in query rules and views. An unsafe rule has an infinite result on some
// database, so it can neither be evaluated nor serve as an a-priori
// subquery.
func passSafety(a *analyzer) {
	check := func(r *datalog.Rule, what string) {
		for _, v := range datalog.CheckSafety(r) {
			pos := v.Pos
			if !pos.IsValid() {
				pos = r.Position()
			}
			a.report("QF002", SevError, pos, "%s %s is unsafe: %v", what, r.Head, v)
		}
	}
	for _, v := range a.fs.Views {
		check(v, "view")
	}
	for _, r := range a.fs.Query {
		check(r, "rule")
	}
}

// passParamsInHead rejects parameters in rule heads (QF003): a flock is a
// query *about* its parameters; the head describes each assignment's
// result, so a parameter there conflates the two levels.
func passParamsInHead(a *analyzer) {
	for _, r := range a.fs.Query {
		if hp := r.HeadParams(); len(hp) > 0 {
			a.report("QF003", SevError, r.Head.Pos,
				"parameter %s appears in the head of %s", hp[0], r.Head)
		}
	}
}

// passUnboundParams requires every parameter of the flock to appear in a
// positive relational subgoal of every rule (QF004). A rule that leaves a
// parameter unconstrained makes the flock's answer infinite: any value of
// that parameter yields the same query result.
func passUnboundParams(a *analyzer) {
	params := a.fs.Query.Params()
	for _, r := range a.fs.Query {
		positive := make(map[datalog.Param]bool)
		for _, at := range r.PositiveAtoms() {
			for _, t := range at.Args {
				if p, ok := t.(datalog.Param); ok {
					positive[p] = true
				}
			}
		}
		for _, p := range params {
			if !positive[p] {
				a.report("QF004", SevError, r.Position(),
					"parameter %s does not appear in a positive subgoal of rule %s; its binding is unconstrained", p, r.Head)
			}
		}
	}
}

// passNoParams rejects parameter-free flocks (QF005): with nothing to
// mine over, the FILTER section has no answer relation to build.
func passNoParams(a *analyzer) {
	if len(a.fs.Query) > 0 && len(a.fs.Query.Params()) == 0 {
		a.report("QF005", SevError, a.fs.Query[0].Position(), "flock query has no parameters")
	}
}

// passFilter resolves the filter condition against the query head and
// checks the §5 properties:
//
//   - QF006: the target must name a head variable of the first rule;
//   - QF007: a condition satisfied by the empty result makes every
//     parameter assignment an answer — the flock's answer is infinite;
//   - QF008: a non-monotone condition evaluates, but disables a-priori
//     subquery pruning (§3) and FILTER plans (§4.2 legality rule 1).
func passFilter(a *analyzer) {
	if len(a.fs.Query) == 0 {
		return
	}
	f, err := core.NewFilter(a.fs.Filter, a.fs.Query[0].Head)
	if err != nil {
		a.report("QF006", SevError, a.fs.FilterPos,
			"filter target %q is not a head variable of %s", a.fs.Filter.Target, a.fs.Query[0].Head)
		return
	}
	if f.PassesEmpty() {
		a.report("QF007", SevError, a.fs.FilterPos,
			"filter %s is satisfied by an empty query result, so every parameter assignment qualifies (infinite answer)", f)
		return
	}
	if !f.Monotone() {
		a.report("QF008", SevWarning, a.fs.FilterPos,
			"filter %s is not monotone; a-priori subquery pruning (§3) and FILTER plans (§4.2) are unavailable", f)
	}
}

// passComparisons evaluates arithmetic subgoals that do not depend on any
// binding: constant-vs-constant comparisons and comparisons of a term with
// itself. An always-false subgoal (QF011) silences its rule; an
// always-true one (QF012) is dead weight.
func passComparisons(a *analyzer) {
	for _, r := range a.fs.Query {
		for _, c := range r.Comparisons() {
			if lc, ok := c.Left.(datalog.Const); ok {
				if rc, ok := c.Right.(datalog.Const); ok {
					if c.Op.Eval(lc.Val, rc.Val) {
						a.report("QF012", SevWarning, c.Pos,
							"comparison %s is always true and can be deleted", c)
					} else {
						a.report("QF011", SevWarning, c.Pos,
							"comparison %s is always false; rule %s can produce no answers", c, r.Head)
					}
					continue
				}
			}
			if sameTerm(c.Left, c.Right) {
				switch c.Op {
				case datalog.Lt, datalog.Gt, datalog.Ne:
					a.report("QF011", SevWarning, c.Pos,
						"comparison %s is always false; rule %s can produce no answers", c, r.Head)
				case datalog.Le, datalog.Ge, datalog.Eq:
					a.report("QF012", SevWarning, c.Pos,
						"comparison %s is always true and can be deleted", c)
				}
			}
		}
	}
}

func sameTerm(x, y datalog.Term) bool {
	switch l := x.(type) {
	case datalog.Var:
		r, ok := y.(datalog.Var)
		return ok && l == r
	case datalog.Param:
		r, ok := y.(datalog.Param)
		return ok && l == r
	default:
		return false
	}
}

// passRedundantSubgoal flags subgoals whose deletion leaves an equivalent
// query (QF009). For a pure conjunctive query the test is exact via
// containment mappings (§3.1): deleting a subgoal can only grow the
// result, so the rule is equivalent to the reduced one iff the reduced one
// is contained in it — iff the full rule maps homomorphically onto the
// reduced body. For extended CQs (negation, arithmetic) only literal
// duplicate subgoals are flagged, the sound syntactic special case.
func passRedundantSubgoal(a *analyzer) {
	budget := a.opts.budget()
	for _, r := range a.fs.Query {
		if len(r.NegatedAtoms()) == 0 && len(r.Comparisons()) == 0 {
			for i := range r.Body {
				if len(r.Body) == 1 {
					break
				}
				reduced := r.DeleteSubgoals(i)
				contained, decided, err := datalog.ContainsBounded(r, reduced, budget)
				if err != nil || !decided {
					continue
				}
				if contained {
					a.report("QF009", SevWarning, r.Body[i].Position(),
						"subgoal %s is redundant: deleting it leaves an equivalent query (containment mapping, §3.1)", r.Body[i])
				}
			}
			continue
		}
		// Extended CQ: flag literal duplicates only.
		for i := range r.Body {
			for j := range r.Body[:i] {
				if r.Body[i].String() == r.Body[j].String() {
					a.report("QF009", SevWarning, r.Body[i].Position(),
						"subgoal %s duplicates an earlier subgoal and can be deleted", r.Body[i])
					break
				}
			}
		}
	}
}

// passSubsumedBranch flags union branches contained in another branch
// (QF010): by the union-containment condition of §3.4 ([SY80]) such a
// branch contributes nothing to the flock's answer. Only pure-CQ branch
// pairs are tested.
func passSubsumedBranch(a *analyzer) {
	budget := a.opts.budget()
	pure := func(r *datalog.Rule) bool {
		return len(r.NegatedAtoms()) == 0 && len(r.Comparisons()) == 0
	}
	for j, rj := range a.fs.Query {
		if !pure(rj) {
			continue
		}
		for i, ri := range a.fs.Query {
			if i == j || !pure(ri) {
				continue
			}
			contained, decided, err := datalog.ContainsBounded(ri, rj, budget)
			if err != nil || !decided || !contained {
				continue
			}
			// Equivalent pair: flag only the later branch, once.
			if i > j {
				back, decidedBack, _ := datalog.ContainsBounded(rj, ri, budget)
				if decidedBack && back {
					continue
				}
			}
			a.report("QF010", SevWarning, rj.Position(),
				"union branch %d is contained in branch %d and can be deleted (§3.4)", j+1, i+1)
			break
		}
	}
}

// passSingletonVars flags variables used exactly once in a rule's body
// (QF013): a join variable that joins nothing is usually a typo for
// another variable or a parameter. Head occurrences count as uses, and
// head-only variables are already QF002 (unsafe), so only body singletons
// reach this pass.
func passSingletonVars(a *analyzer) {
	for _, r := range a.fs.Query {
		counts := make(map[datalog.Var]int)
		where := make(map[datalog.Var]datalog.Pos)
		seen := func(t datalog.Term, pos datalog.Pos) {
			if v, ok := t.(datalog.Var); ok {
				counts[v]++
				if _, have := where[v]; !have {
					where[v] = pos
				}
			}
		}
		for _, t := range r.Head.Args {
			seen(t, r.Head.Pos)
			if v, ok := t.(datalog.Var); ok {
				counts[v]++ // head use makes a single body occurrence legitimate
			}
		}
		for _, sg := range r.Body {
			switch g := sg.(type) {
			case *datalog.Atom:
				for _, t := range g.Args {
					seen(t, g.Pos)
				}
			case *datalog.Comparison:
				seen(g.Left, g.Pos)
				seen(g.Right, g.Pos)
			}
		}
		for _, v := range r.Vars() {
			if counts[v] == 1 {
				a.report("QF013", SevWarning, where[v],
					"variable %s is used only once in rule %s; a misspelled join variable?", v, r.Head)
			}
		}
	}
}

// passSchema checks every referenced relation against a loaded database
// (QF016): the relation must exist and its arity must match the atom's.
// Predicates defined by the flock's views are checked against the view's
// declared arity instead. The pass is inert without Options.DB.
func passSchema(a *analyzer) {
	if a.opts.DB == nil {
		return
	}
	viewArity := make(map[string]int, len(a.fs.Views))
	for _, v := range a.fs.Views {
		viewArity[v.Head.Pred] = len(v.Head.Args)
	}
	check := func(r *datalog.Rule) {
		for _, sg := range r.Body {
			at, ok := sg.(*datalog.Atom)
			if !ok {
				continue
			}
			if arity, isView := viewArity[at.Pred]; isView {
				if arity != len(at.Args) {
					a.report("QF016", SevError, at.Pos,
						"atom %s has %d arguments but view %s has %d", at, len(at.Args), at.Pred, arity)
				}
				continue
			}
			rel, err := a.opts.DB.Relation(at.Pred)
			if err != nil {
				a.report("QF016", SevError, at.Pos, "relation %q not found in the database", at.Pred)
				continue
			}
			if rel.Arity() != len(at.Args) {
				a.report("QF016", SevError, at.Pos,
					"atom %s has %d arguments but relation %s has %d columns", at, len(at.Args), at.Pred, rel.Arity())
			}
		}
	}
	for _, v := range a.fs.Views {
		check(v)
	}
	for _, r := range a.fs.Query {
		check(r)
	}
}
