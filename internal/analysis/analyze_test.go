package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"queryflocks/internal/core"
	"queryflocks/internal/storage"
)

// has reports whether a diagnostic with the code (and at least the given
// severity match) exists, returning the first one.
func find(ds []Diagnostic, code string) (Diagnostic, bool) {
	for _, d := range ds {
		if d.Code == code {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func codes(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func TestSyntaxErrorQF001(t *testing.T) {
	ds := AnalyzeSource("QUERY:\nanswer(B :- baskets(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2", Options{File: "t.flock"})
	d, ok := find(ds, "QF001")
	if !ok {
		t.Fatalf("want QF001, got %v", ds)
	}
	if d.Severity != SevError || d.Line != 2 {
		t.Errorf("QF001 = %+v, want error on line 2", d)
	}
	if d.File != "t.flock" || !strings.HasPrefix(d.String(), "t.flock:2:") {
		t.Errorf("rendering %q should carry file:line:col", d.String())
	}
}

func TestUnsafeRuleQF002(t *testing.T) {
	src := `
QUERY:
answer(X) :- baskets(B,$1) AND X > 5
FILTER:
COUNT(answer.X) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF002")
	if !ok {
		t.Fatalf("want QF002, got %v", ds)
	}
	if d.Severity != SevError {
		t.Errorf("QF002 severity = %v", d.Severity)
	}
	if d.Line != 3 {
		t.Errorf("QF002 line = %d, want 3: %+v", d.Line, d)
	}
	if !strings.Contains(d.Message, "unsafe") {
		t.Errorf("message %q should mention unsafety", d.Message)
	}
}

func TestParamInHeadQF003(t *testing.T) {
	src := `
QUERY:
answer($1) :- baskets(B,$1)
FILTER:
COUNT(answer(*)) >= 2`
	ds := AnalyzeSource(src, Options{})
	if d, ok := find(ds, "QF003"); !ok || d.Severity != SevError || d.Line != 3 {
		t.Fatalf("want QF003 error on line 3, got %v", ds)
	}
}

func TestUnboundParameterQF004(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1)
answer(B) :- sales(B,B)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF004")
	if !ok {
		t.Fatalf("want QF004, got %v", ds)
	}
	if d.Severity != SevError || d.Line != 4 {
		t.Errorf("QF004 = %+v, want error on line 4 (the rule leaving $1 unbound)", d)
	}
	if !strings.Contains(d.Message, "$1") {
		t.Errorf("message %q should name the parameter", d.Message)
	}
}

func TestNoParametersQF005(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,X)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	if d, ok := find(ds, "QF005"); !ok || d.Severity != SevError {
		t.Fatalf("want QF005 error, got %v", ds)
	}
}

func TestBadFilterTargetQF006(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.Z) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF006")
	if !ok {
		t.Fatalf("want QF006, got %v", ds)
	}
	if d.Severity != SevError || d.Line != 5 {
		t.Errorf("QF006 = %+v, want error at the filter on line 5", d)
	}
}

func TestFilterPassesEmptyQF007(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1)
FILTER:
COUNT(answer.B) >= 0`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF007")
	if !ok {
		t.Fatalf("want QF007, got %v", ds)
	}
	if d.Severity != SevError || !strings.Contains(d.Message, "infinite") {
		t.Errorf("QF007 = %+v, want error mentioning the infinite answer", d)
	}
}

func TestNonMonotoneFilterQF008(t *testing.T) {
	src := `
QUERY:
answer(B,W) :- baskets(B,$1) AND importance(B,W)
FILTER:
MIN(answer.W) >= 3`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF008")
	if !ok {
		t.Fatalf("want QF008, got %v", ds)
	}
	if d.Severity != SevWarning || d.Line != 5 {
		t.Errorf("QF008 = %+v, want warning at the filter on line 5", d)
	}
	if HasErrors(ds) {
		t.Errorf("non-monotone filter should not be an error: %v", ds)
	}
}

func TestRedundantSubgoalQF009Containment(t *testing.T) {
	// Deleting baskets(B,X) leaves an equivalent query: the containment
	// mapping sends X to $1. The parameterized subgoal is NOT redundant —
	// deleting it would unbind $1 — and must not be flagged.
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,X)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF009")
	if !ok {
		t.Fatalf("want QF009, got %v", ds)
	}
	if d.Severity != SevWarning || d.Line != 3 {
		t.Errorf("QF009 = %+v, want warning on line 3", d)
	}
	if !strings.Contains(d.Message, "baskets(B,X)") {
		t.Errorf("message %q should name the redundant subgoal, not the parameterized one", d.Message)
	}
	var count int
	for _, x := range ds {
		if x.Code == "QF009" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want exactly one QF009 (the parameterized subgoal is live), got %v", ds)
	}
}

func TestRedundantSubgoalQF009Duplicate(t *testing.T) {
	// Extended CQ (comparison present): only literal duplicates flag.
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$1) AND $1 < 10
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	if d, ok := find(ds, "QF009"); !ok || d.Severity != SevWarning {
		t.Fatalf("want duplicate-subgoal QF009, got %v", ds)
	}
}

func TestSubsumedUnionBranchQF010(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1)
answer(B) :- baskets(B,$1) AND sales(B,B)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF010")
	if !ok {
		t.Fatalf("want QF010, got %v", ds)
	}
	if d.Severity != SevWarning || d.Line != 4 {
		t.Errorf("QF010 = %+v, want warning on line 4 (the subsumed branch)", d)
	}
}

func TestComparisonQF011QF012(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND 3 > 5 AND $1 = $1
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	if d, ok := find(ds, "QF011"); !ok || d.Severity != SevWarning || d.Line != 3 {
		t.Fatalf("want QF011 warning on line 3, got %v", ds)
	}
	if d, ok := find(ds, "QF012"); !ok || d.Severity != SevWarning {
		t.Fatalf("want QF012 warning, got %v", ds)
	} else if !strings.Contains(d.Message, "$1 = $1") {
		t.Errorf("QF012 message %q should show the tautology", d.Message)
	}
}

func TestSingletonVariableQF013(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND sales(B,X)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF013")
	if !ok {
		t.Fatalf("want QF013, got %v", ds)
	}
	if d.Severity != SevWarning || !strings.Contains(d.Message, "X") {
		t.Errorf("QF013 = %+v, want warning naming X", d)
	}
	// A variable shared between head and one subgoal is not a singleton.
	for _, x := range ds {
		if x.Code == "QF013" && strings.Contains(x.Message, "variable B ") {
			t.Errorf("B is head-projected, not a singleton: %v", x)
		}
	}
}

func TestViewErrorsQF015(t *testing.T) {
	src := `
VIEWS:
bad(X) :- bad(X)
QUERY:
answer(B) :- bad(B) AND baskets(B,$1)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF015")
	if !ok {
		t.Fatalf("want QF015, got %v", ds)
	}
	if d.Severity != SevError || !strings.Contains(d.Message, "recursive") || d.Line != 3 {
		t.Errorf("QF015 = %+v, want recursion error on line 3", d)
	}

	src = `
VIEWS:
v(X) :- baskets(X,$1)
QUERY:
answer(B) :- v(B) AND baskets(B,$1)
FILTER:
COUNT(answer.B) >= 2`
	ds = AnalyzeSource(src, Options{})
	if d, ok := find(ds, "QF015"); !ok || !strings.Contains(d.Message, "parameter-free") {
		t.Fatalf("want parameter-free QF015, got %v", ds)
	}
}

func TestSchemaQF016(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(storage.NewRelation("baskets", "BID", "Item"))
	src := `
QUERY:
answer(B) :- baskets(B,$1,X) AND nosuch(B,$1)
FILTER:
COUNT(answer.B) >= 2`
	ds := AnalyzeSource(src, Options{DB: db})
	var missing, arity bool
	for _, d := range ds {
		if d.Code != "QF016" {
			continue
		}
		if d.Severity != SevError {
			t.Errorf("QF016 severity = %v", d.Severity)
		}
		if strings.Contains(d.Message, "not found") {
			missing = true
		}
		if strings.Contains(d.Message, "columns") {
			arity = true
		}
	}
	if !missing || !arity {
		t.Fatalf("want missing-relation and arity QF016s, got %v", ds)
	}
	// Without a database the pass is inert.
	if _, ok := find(AnalyzeSource(src, Options{}), "QF016"); ok {
		t.Error("QF016 must not fire without a database")
	}
}

func TestCleanProgramHasNoDiagnostics(t *testing.T) {
	src := `
QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2`
	if ds := AnalyzeSource(src, Options{}); len(ds) != 0 {
		t.Fatalf("Fig. 2 flock should lint clean, got %v", ds)
	}
}

func TestStripExplainPreservesPositions(t *testing.T) {
	src := "EXPLAIN ANALYZE QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nCOUNT(answer.Z) >= 2"
	ds := AnalyzeSource(src, Options{})
	d, ok := find(ds, "QF006")
	if !ok {
		t.Fatalf("want QF006 after EXPLAIN stripping, got %v", ds)
	}
	if d.Line != 4 {
		t.Errorf("position should refer to the original text: %+v", d)
	}
	if got := StripExplain("explain QUERY:x"); !strings.HasPrefix(got, "        QUERY:") {
		t.Errorf("StripExplain = %q", got)
	}
	if got := StripExplain("EXPLAINQUERY:"); got != "EXPLAINQUERY:" {
		t.Errorf("EXPLAIN must be a whole word, got %q", got)
	}
}

func TestDiagnosticJSONAndSort(t *testing.T) {
	ds := []Diagnostic{
		{Code: "QF013", Severity: SevWarning, Line: 9, Col: 1, Message: "w"},
		{Code: "QF002", Severity: SevError, Line: 3, Col: 5, Message: "e"},
	}
	Sort(ds)
	if ds[0].Code != "QF002" {
		t.Errorf("sort should order by position: %v", codes(ds))
	}
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("JSON = %s", b)
	}
	var back []Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Severity != SevError || back[1].Severity != SevWarning {
		t.Errorf("roundtrip = %+v", back)
	}
	if !HasErrors(ds) {
		t.Error("HasErrors should see the QF002")
	}
	if !strings.Contains(Render(ds), "[QF002]") {
		t.Errorf("Render = %q", Render(ds))
	}
}

func TestContainmentBudgetLimitsWork(t *testing.T) {
	// Many same-predicate subgoals make the containment search explode;
	// with a tiny budget the redundancy passes must stay silent, not hang.
	var b strings.Builder
	b.WriteString("QUERY:\nanswer(XA) :- p(XA,$1)")
	for i := 1; i < 14; i++ {
		b.WriteString(" AND p(X")
		b.WriteString(string(rune('A' + i)))
		b.WriteString(",$1)")
	}
	b.WriteString("\nFILTER:\nCOUNT(answer.XA) >= 2")
	ds := AnalyzeSource(b.String(), Options{ContainmentBudget: 10})
	if HasErrors(ds) {
		t.Fatalf("budgeted analysis must not error: %v", ds)
	}
}

func TestAnalyzePlanLegalityCodes(t *testing.T) {
	flockSrc := `
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m)
FILTER:
COUNT(answer.P) >= 2`
	f, err := core.Parse(flockSrc)
	if err != nil {
		t.Fatal(err)
	}

	// QF020: a step whose written filter differs from the flock's (rule 1).
	ds := AnalyzePlanSource(f, `
ok($s,$m) := FILTER(($s,$m),
    answer(P) :- exhibits(P,$s) AND treatments(P,$m),
    COUNT(answer.P) >= 99
);`, Options{})
	if d, ok := find(ds, "QF020"); !ok || d.Severity != SevError || d.Line != 2 {
		t.Fatalf("want QF020 error on line 2, got %v", ds)
	}

	// QF021: duplicate step names (rule 2).
	ds = AnalyzePlanSource(f, `
okS($s) := FILTER($s,
    answer(P) :- exhibits(P,$s),
    COUNT(answer.P) >= 2
);
okS($s) := FILTER($s,
    answer(P) :- exhibits(P,$s),
    COUNT(answer.P) >= 2
);`, Options{})
	if d, ok := find(ds, "QF021"); !ok || !strings.Contains(d.Message, "defined twice") {
		t.Fatalf("want QF021, got %v", ds)
	}

	// QF022: a step not derived from the flock's rule (rule 3).
	ds = AnalyzePlanSource(f, `
okS($s) := FILTER($s,
    answer(P) :- unrelated(P,$s),
    COUNT(answer.P) >= 2
);
ok($s,$m) := FILTER(($s,$m),
    answer(P) :- okS($s) AND exhibits(P,$s) AND treatments(P,$m),
    COUNT(answer.P) >= 2
);`, Options{})
	d, ok := find(ds, "QF022")
	if !ok {
		t.Fatalf("want QF022, got %v", ds)
	}
	if d.Line != 2 || !strings.Contains(d.Message, "legality rule 3") {
		t.Errorf("QF022 = %+v, want position of step okS and rule 3 in message", d)
	}

	// QF023: final step restricting the wrong parameters (rule 4).
	ds = AnalyzePlanSource(f, `
okS($s) := FILTER($s,
    answer(P) :- exhibits(P,$s),
    COUNT(answer.P) >= 2
);`, Options{})
	if d, ok := find(ds, "QF023"); !ok || !strings.Contains(d.Message, "legality rule 4") {
		t.Fatalf("want QF023, got %v", ds)
	}

	// QF014: a dead intermediate step.
	ds = AnalyzePlanSource(f, `
okS($s) := FILTER($s,
    answer(P) :- exhibits(P,$s),
    COUNT(answer.P) >= 2
);
ok($s,$m) := FILTER(($s,$m),
    answer(P) :- exhibits(P,$s) AND treatments(P,$m),
    COUNT(answer.P) >= 2
);`, Options{})
	if d, ok := find(ds, "QF014"); !ok || d.Severity != SevWarning || d.Line != 2 {
		t.Fatalf("want QF014 warning on line 2, got %v", ds)
	}

	// A legal plan yields no diagnostics.
	ds = AnalyzePlanSource(f, `
okS($s) := FILTER($s,
    answer(P) :- exhibits(P,$s),
    COUNT(answer.P) >= 2
);
ok($s,$m) := FILTER(($s,$m),
    answer(P) :- okS($s) AND exhibits(P,$s) AND treatments(P,$m),
    COUNT(answer.P) >= 2
);`, Options{})
	if len(ds) != 0 {
		t.Fatalf("legal plan should lint clean, got %v", ds)
	}

	// QF001: plan syntax error.
	ds = AnalyzePlanSource(f, "ok($s := FILTER", Options{})
	if _, ok := find(ds, "QF001"); !ok {
		t.Fatalf("want QF001, got %v", ds)
	}
}
