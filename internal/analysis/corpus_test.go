package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden diagnostics files")

// TestExamplesCorpusGolden lints every program under examples/flocks and
// diffs the rendered diagnostics against committed golden files. The
// corpus must produce zero errors (warnings are allowed and pinned); run
// `go test ./internal/analysis -run Corpus -update` after an intentional
// change to a pass or to the corpus.
func TestExamplesCorpusGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "flocks")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".flock") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("empty corpus")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			ds := AnalyzeSource(string(src), Options{File: name})
			if HasErrors(ds) {
				t.Errorf("corpus program must lint without errors:\n%s", Render(ds))
			}
			got := Render(ds)
			goldenPath := filepath.Join("testdata", "golden", name+".diag")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}
