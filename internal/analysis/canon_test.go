package analysis

import (
	"strings"
	"testing"

	"queryflocks/internal/datalog"
)

func canonOf(t *testing.T, src string) string {
	t.Helper()
	fs, err := datalog.ParseFlock(StripExplain(src))
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return CanonicalProgram(fs)
}

func TestCanonicalProgramAlphaInvariant(t *testing.T) {
	base := canonOf(t, `QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 5`)

	variants := []string{
		// Renamed head/body variable.
		`QUERY:
answer(Basket) :- baskets(Basket,$1) AND baskets(Basket,$2) AND $1 < $2
FILTER:
COUNT(answer.Basket) >= 5`,
		// Whitespace and an EXPLAIN prefix.
		`EXPLAIN
QUERY:
  answer( B )   :-   baskets(B, $1)  AND baskets(B, $2) AND $1 < $2
FILTER:
  COUNT( answer.B ) >= 5`,
	}
	for i, v := range variants {
		if got := canonOf(t, v); got != base {
			t.Errorf("variant %d canonicalizes differently:\n%s\nvs base:\n%s", i, got, base)
		}
	}
}

func TestCanonicalProgramFilterIsPositional(t *testing.T) {
	c := canonOf(t, `QUERY:
answer(Basket) :- baskets(Basket,$1)
FILTER:
COUNT(answer.Basket) >= 5`)
	if !strings.Contains(c, "answer.#0") {
		t.Fatalf("filter target should be positional, got:\n%s", c)
	}
	if strings.Contains(c, "answer.Basket") {
		t.Fatalf("source variable name leaked into the canonical filter:\n%s", c)
	}
}

func TestCanonicalProgramDistinguishesSemantics(t *testing.T) {
	mk := func(threshold, param string) string {
		return canonOf(t, `QUERY:
answer(B) :- baskets(B,`+param+`)
FILTER:
COUNT(answer.B) >= `+threshold)
	}
	if mk("5", "$1") == mk("6", "$1") {
		t.Fatal("different thresholds must not share a canonical form")
	}
	if mk("5", "$1") == mk("5", "$item") {
		t.Fatal("parameters are semantically significant and must stay verbatim")
	}
}
